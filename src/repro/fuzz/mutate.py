"""Structured mutators: one small, validity-preserving edit per call.

Each mutator is a pure function ``(rng, tuple) -> tuple-or-None`` that
edits exactly one dimension of a :class:`ScenarioTuple` and returns
``None`` when it does not apply (e.g. "remove an op" on an empty
schedule).  :func:`apply_mutation` picks mutators with a seeded RNG and
re-validates every candidate through :meth:`ScenarioTuple.validate` --
which *builds* the real ``FaultPlan``/``NetFaultPlan``, so the plans'
own validators (probability bounds, disjoint windows, ``max_faults``
budgets) gate every mutation.  The property tests simply hammer this
loop and assert no invalid tuple ever escapes.

Validity is mostly by construction rather than by rejection: new
bandwidth/partition/crash windows are appended *after* the last
existing window on the same resource, so the disjointness invariant
survives any mutation order.
"""

from __future__ import annotations

import random
from dataclasses import replace
from typing import Callable, List, Optional, Tuple

from repro.fs.structures import PAGE_SIZE

from repro.fuzz.tuples import (FAULT_TOLERANT_KINDS, MAX_FILES, MAX_GAP_NS,
                               MAX_IO, MAX_OFFSET, MAX_OPS, N_CHANNELS,
                               OP_KINDS, ScenarioTuple, make_op)

Mutator = Callable[[random.Random, ScenarioTuple],
                   Optional[ScenarioTuple]]

#: (name, fn) registry; register_mutator appends.
MUTATORS: List[Tuple[str, Mutator]] = []


def register_mutator(name: str):
    def deco(fn: Mutator) -> Mutator:
        MUTATORS.append((name, fn))
        return fn
    return deco


def _rand_op(rng: random.Random, nfiles: int) -> Tuple:
    kind = rng.choices(OP_KINDS, weights=(5, 3, 2, 1))[0]
    f = rng.randrange(nfiles)
    gap = rng.choice((0, 0, 1_000, 20_000, 100_000))
    if kind == "truncate":
        return make_op(kind, f, rng.randrange(0, MAX_OFFSET), 0, 0, gap)
    nbytes = rng.randrange(1, 4 * PAGE_SIZE)
    offset = 0 if kind == "append" else rng.randrange(0, 8 * PAGE_SIZE)
    return make_op(kind, f, offset, nbytes, rng.getrandbits(32), gap)


# -- workload dimension ------------------------------------------------

@register_mutator("wl-insert-op")
def _wl_insert(rng, t):
    ops = list(t.workload.ops)
    if len(ops) >= MAX_OPS:
        return None
    ops.insert(rng.randrange(len(ops) + 1), _rand_op(rng, t.workload.nfiles))
    return replace(t, workload=replace(t.workload, ops=tuple(ops)))


@register_mutator("wl-remove-op")
def _wl_remove(rng, t):
    ops = list(t.workload.ops)
    if not ops:
        return None
    ops.pop(rng.randrange(len(ops)))
    return replace(t, workload=replace(t.workload, ops=tuple(ops)))


@register_mutator("wl-duplicate-op")
def _wl_dup(rng, t):
    ops = list(t.workload.ops)
    if not ops or len(ops) >= MAX_OPS:
        return None
    i = rng.randrange(len(ops))
    ops.insert(i, ops[i])
    return replace(t, workload=replace(t.workload, ops=tuple(ops)))


@register_mutator("wl-tweak-field")
def _wl_tweak(rng, t):
    """Nudge one numeric field of one op (offset/nbytes/seed/gap)."""
    ops = list(t.workload.ops)
    if not ops:
        return None
    i = rng.randrange(len(ops))
    kind, f, a, b, pseed, gap = ops[i]
    which = rng.randrange(4)
    if which == 0:
        a = rng.choice((0, PAGE_SIZE - 1, PAGE_SIZE, a // 2,
                        min(a * 2 + 1, MAX_OFFSET)))
    elif which == 1 and kind != "truncate":
        b = rng.choice((1, PAGE_SIZE, PAGE_SIZE + 1, max(1, b // 2),
                        min(max(1, b * 2), MAX_IO)))
    elif which == 2:
        pseed = rng.getrandbits(32)
    else:
        gap = rng.choice((0, 1_000, 20_000, MAX_GAP_NS))
    ops[i] = make_op(kind, f, a, b, pseed, gap)
    return replace(t, workload=replace(t.workload, ops=tuple(ops)))


@register_mutator("wl-swap-ops")
def _wl_swap(rng, t):
    ops = list(t.workload.ops)
    if len(ops) < 2:
        return None
    i = rng.randrange(len(ops) - 1)
    ops[i], ops[i + 1] = ops[i + 1], ops[i]
    return replace(t, workload=replace(t.workload, ops=tuple(ops)))


@register_mutator("wl-add-file")
def _wl_add_file(rng, t):
    wl = t.workload
    if wl.nfiles >= MAX_FILES:
        return None
    return replace(t, workload=replace(wl, nfiles=wl.nfiles + 1))


# -- fault dimension ---------------------------------------------------

@register_mutator("fault-prob")
def _fault_prob(rng, t):
    """Set/clear a probabilistic descriptor-fault rate (forces a
    fault-tolerant kind to keep the tuple valid)."""
    field_name = rng.choice(("p_xfer_error", "p_chan_halt"))
    value = rng.choice((0.0, 0.05, 0.2, 0.5))
    fault = replace(t.fault, **{field_name: value})
    kind = t.kind if (not fault.descriptor_faulty
                      or t.kind in FAULT_TOLERANT_KINDS) \
        else rng.choice(FAULT_TOLERANT_KINDS)
    return replace(t, kind=kind, fault=fault)


@register_mutator("fault-add-halt")
def _fault_add_halt(rng, t):
    halts = t.fault.halts + ((rng.randrange(N_CHANNELS),
                              rng.randrange(1, 64)),)
    kind = t.kind if t.kind in FAULT_TOLERANT_KINDS \
        else rng.choice(FAULT_TOLERANT_KINDS)
    return replace(t, kind=kind, fault=replace(t.fault, halts=halts))


@register_mutator("fault-halt-storm")
def _fault_halt_storm(rng, t):
    """Halt every channel at its first descriptor -- the degrade-path
    forcing pattern (all failovers exhausted)."""
    halts = tuple((ch, 1) for ch in range(N_CHANNELS))
    if t.fault.halts == halts:
        return None
    kind = t.kind if t.kind in FAULT_TOLERANT_KINDS \
        else rng.choice(FAULT_TOLERANT_KINDS)
    return replace(t, kind=kind, fault=replace(t.fault, halts=halts))


@register_mutator("fault-add-xfer")
def _fault_add_xfer(rng, t):
    xfers = t.fault.xfers + ((rng.randrange(N_CHANNELS),
                              rng.randrange(1, 64)),)
    kind = t.kind if t.kind in FAULT_TOLERANT_KINDS \
        else rng.choice(FAULT_TOLERANT_KINDS)
    return replace(t, kind=kind, fault=replace(t.fault, xfers=xfers))


@register_mutator("fault-add-bw")
def _fault_add_bw(rng, t):
    """Append a bandwidth-throttle window after the last one (keeps
    the disjoint-window invariant by construction)."""
    start = max((s + d for s, d, _ in t.fault.bw), default=0) + \
        rng.randrange(1, 50_000)
    window = (start, rng.randrange(10_000, 200_000),
              rng.choice((0.1, 0.25, 0.5)))
    return replace(t, fault=replace(t.fault, bw=t.fault.bw + (window,)))


@register_mutator("fault-drop-one")
def _fault_drop(rng, t):
    f = t.fault
    pools = [p for p in ("halts", "xfers", "bw") if getattr(f, p)]
    if not pools:
        return None
    pool = rng.choice(pools)
    items = list(getattr(f, pool))
    items.pop(rng.randrange(len(items)))
    return replace(t, fault=replace(f, **{pool: tuple(items)}))


@register_mutator("fault-reseed")
def _fault_reseed(rng, t):
    if not t.fault.active:
        return None
    return replace(t, fault=replace(t.fault, seed=rng.getrandbits(16)))


# -- net dimension -----------------------------------------------------

@register_mutator("net-toggle")
def _net_toggle(rng, t):
    return replace(t, net=replace(t.net, enabled=not t.net.enabled,
                                  seed=rng.getrandbits(16)))


@register_mutator("net-prob")
def _net_prob(rng, t):
    field_name = rng.choice(("p_drop", "p_dup", "p_delay"))
    value = rng.choice((0.0, 0.05, 0.15, 0.4))
    return replace(t, net=replace(t.net, enabled=True,
                                  **{field_name: value}))


@register_mutator("net-add-partition")
def _net_add_partition(rng, t):
    net = t.net
    n_iso = rng.randrange(1, net.n_nodes - 1) if net.n_nodes > 2 else 1
    group = tuple(sorted(rng.sample(range(net.n_nodes), n_iso)))
    start = max((s + d for s, d, _ in net.partitions), default=10_000) + \
        rng.randrange(1, 40_000)
    window = (start, rng.randrange(20_000, 120_000), group)
    return replace(t, net=replace(net, enabled=True,
                                  partitions=net.partitions + (window,)))


@register_mutator("net-add-crash")
def _net_add_crash(rng, t):
    net = t.net
    node = rng.randrange(net.n_nodes)
    start = max((at + down for n, at, down in net.crashes if n == node),
                default=10_000) + rng.randrange(1, 40_000)
    crash = (node, start, rng.randrange(20_000, 120_000))
    return replace(t, net=replace(net, enabled=True,
                                  crashes=net.crashes + (crash,)))


@register_mutator("net-load")
def _net_load(rng, t):
    return replace(t, net=replace(
        t.net, enabled=True,
        n_clients=rng.randrange(1, 4),
        writes_per_client=rng.randrange(2, 12)))


# -- runtime dimension -------------------------------------------------

@register_mutator("rt-rate")
def _rt_rate(rng, t):
    rate = rng.choice((None, 50_000.0, 200_000.0, 1_000_000.0))
    burst = rng.choice((1, 2, 8, 32))
    return replace(t, runtime=replace(t.runtime, rate_ops_per_sec=rate,
                                      burst=burst))


@register_mutator("rt-inflight")
def _rt_inflight(rng, t):
    return replace(t, runtime=replace(
        t.runtime, max_inflight=rng.choice((None, 1, 2, 8))))


@register_mutator("rt-policy")
def _rt_policy(rng, t):
    from repro.runtime.admission import POLICIES
    return replace(t, runtime=replace(t.runtime,
                                      policy=rng.choice(tuple(POLICIES))))


@register_mutator("rt-deadline")
def _rt_deadline(rng, t):
    return replace(t, runtime=replace(
        t.runtime, deadline_us=rng.choice((None, 5, 50, 500, 5_000))))


# -- crash dimension ---------------------------------------------------

@register_mutator("crash-toggle")
def _crash_toggle(rng, t):
    return replace(t, crash=replace(t.crash, enabled=not t.crash.enabled))


@register_mutator("crash-knobs")
def _crash_knobs(rng, t):
    return replace(t, crash=replace(
        t.crash, enabled=True,
        per_signature=rng.choice((1, 2, 4)),
        budget=rng.choice((16, 48, 128)),
        seed=rng.getrandbits(16)))


# -- kind dimension ----------------------------------------------------

@register_mutator("kind-switch")
def _kind_switch(rng, t):
    from repro.workloads.factory import FS_KINDS
    pool = FAULT_TOLERANT_KINDS if t.fault.descriptor_faulty \
        else tuple(FS_KINDS)
    kind = rng.choice([k for k in pool if k != t.kind] or [t.kind])
    if kind == t.kind:
        return None
    return replace(t, kind=kind)


def mutator_names() -> Tuple[str, ...]:
    return tuple(name for name, _ in MUTATORS)


def apply_mutation(rng: random.Random, t: ScenarioTuple,
                   tries: int = 24) -> Tuple[str, ScenarioTuple]:
    """One validated mutation; raises only if ``tries`` successive
    picks all fail to produce a *new, valid* tuple (practically
    unreachable -- insert-op alone always applies below MAX_OPS)."""
    for _ in range(tries):
        name, fn = MUTATORS[rng.randrange(len(MUTATORS))]
        candidate = fn(rng, t)
        if candidate is None or candidate == t:
            continue
        try:
            candidate.validate()
        except (ValueError, KeyError):
            continue
        return name, candidate
    raise RuntimeError(f"no applicable mutation found in {tries} tries "
                       f"for tuple {t.key()}")
