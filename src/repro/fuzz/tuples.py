"""Scenario tuples: the fuzzer's genome.

A :class:`ScenarioTuple` is one point of the scenario space the
fuzzer searches::

    (workload schedule) x (FaultPlan) x (NetFaultPlan)
        x (admission/deadline config) x (crash-plan config)

Every dimension is a small frozen dataclass that (a) round-trips
through plain JSON (so reproducers can be committed under
``tests/corpus/`` and shipped over a multiprocessing pipe), and
(b) *builds* the real object it stands for -- ``FaultSpec.build()``
returns a live :class:`~repro.faults.FaultPlan`, which runs that
plan's own input validators.  :meth:`ScenarioTuple.validate` therefore
proves the plan-validity invariants (probability bounds, disjoint
windows, ``max_faults`` budget) by construction, and the mutator
property tests simply call it after every mutation.

The workload schedule is a flat tuple of uniform 6-tuples::

    (kind, file, a, b, payload_seed, gap_ns)

    write     a=offset   b=nbytes
    append    a unused   b=nbytes
    read      a=offset   b=nbytes
    truncate  a=size     b unused

so structured mutators can tweak fields without per-kind cases.
Payloads are derived from ``payload_seed`` at run time (tuples stay a
few hundred bytes however much data the run moves).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, replace
from typing import Any, Dict, List, Optional, Tuple

from repro.faults.plan import (BandwidthFault, ChannelHaltFault, FaultPlan,
                               TransferErrorFault)
from repro.fs.structures import PAGE_SIZE
from repro.net.plan import NetFaultPlan, NodeCrashFault, PartitionFault
from repro.runtime.admission import POLICIES

#: Schedule op kinds (mutators pick from this).
OP_KINDS = ("write", "append", "read", "truncate")

#: Bounds keeping a single scenario cheap to execute.
MAX_OPS = 64
MAX_IO = 8 * PAGE_SIZE
MAX_OFFSET = 16 * PAGE_SIZE
MAX_FILES = 4
MAX_GAP_NS = 1_000_000

#: DMA channels on the single-node platform the runner uses.
N_CHANNELS = 8

#: Filesystems whose write path survives injected DMA descriptor
#: faults (supervised retry / failover / degrade).  Descriptor faults
#: on an unsupervised baseline strand the write forever (nova/odinfs)
#: or silently lose the halted channel's chunk (the Naive ablation
#: drops the FaultSupervisor entirely -- an early fuzz campaign found
#: the resulting differential divergence; triaged as a modeled
#: deficiency of the §6.4 baseline, not a bug, and encoded here as a
#: validity constraint).
FAULT_TOLERANT_KINDS = ("easyio",)


def _tuplify(value):
    """Recursively convert JSON lists back into tuples."""
    if isinstance(value, list):
        return tuple(_tuplify(v) for v in value)
    return value


@dataclass(frozen=True)
class WorkloadSpec:
    """The op schedule: ``nfiles`` pre-created files plus uniform
    6-tuple ops (see the module docstring for the field layout)."""

    nfiles: int = 1
    ops: Tuple[Tuple, ...] = ()

    def validate(self) -> None:
        if not 1 <= self.nfiles <= MAX_FILES:
            raise ValueError(f"nfiles must be in [1, {MAX_FILES}], "
                             f"got {self.nfiles}")
        if len(self.ops) > MAX_OPS:
            raise ValueError(f"schedule exceeds {MAX_OPS} ops")
        for op in self.ops:
            if len(op) != 6:
                raise ValueError(f"malformed op {op!r}")
            kind, f, a, b, pseed, gap = op
            if kind not in OP_KINDS:
                raise ValueError(f"unknown op kind {kind!r}")
            if not 0 <= f < self.nfiles:
                raise ValueError(f"op targets file {f} of {self.nfiles}")
            if a < 0 or b < 0 or gap < 0:
                raise ValueError(f"negative field in op {op!r}")
            if a > MAX_OFFSET or gap > MAX_GAP_NS:
                raise ValueError(f"op field out of range in {op!r}")
            if kind in ("write", "append", "read") \
                    and not 1 <= b <= MAX_IO:
                raise ValueError(f"{kind} nbytes must be in "
                                 f"[1, {MAX_IO}], got {b}")

    def size(self) -> int:
        """Shrinker metric: op count plus the pages of data moved."""
        total = len(self.ops) + self.nfiles - 1
        for op in self.ops:
            if op[0] in ("write", "append", "read"):
                total += (op[3] + PAGE_SIZE - 1) // PAGE_SIZE
        return total


@dataclass(frozen=True)
class FaultSpec:
    """The hardware-fault dimension (media faults are excluded: line
    recording refuses them, and a corrupted page legitimately diverges
    the differential check)."""

    seed: int = 0
    p_xfer_error: float = 0.0
    p_chan_halt: float = 0.0
    max_faults: int = 8
    halts: Tuple[Tuple[int, int], ...] = ()   # (channel, sn)
    xfers: Tuple[Tuple[int, int], ...] = ()   # (channel, sn)
    bw: Tuple[Tuple[int, int, float], ...] = ()  # (start, dur, factor)

    @property
    def active(self) -> bool:
        return bool(self.p_xfer_error or self.p_chan_halt or self.halts
                    or self.xfers or self.bw)

    @property
    def descriptor_faulty(self) -> bool:
        """Whether the plan can fail DMA descriptors (needs a
        fault-tolerant filesystem kind)."""
        return bool(self.p_xfer_error or self.p_chan_halt or self.halts
                    or self.xfers)

    def build(self) -> Optional[FaultPlan]:
        """A live plan (running FaultPlan's validators), or None."""
        if not self.active:
            return None
        schedule: List[Any] = \
            [ChannelHaltFault(ch, sn) for ch, sn in self.halts] + \
            [TransferErrorFault(ch, sn) for ch, sn in self.xfers] + \
            [BandwidthFault(s, d, f) for s, d, f in self.bw]
        return FaultPlan(seed=self.seed,
                         p_xfer_error=self.p_xfer_error,
                         p_chan_halt=self.p_chan_halt,
                         schedule=schedule, max_faults=self.max_faults)

    def validate(self) -> None:
        for ch, sn in self.halts + self.xfers:
            if not 0 <= ch < N_CHANNELS:
                raise ValueError(f"channel {ch} out of range")
        self.build()

    def size(self) -> int:
        return (len(self.halts) + len(self.xfers) + len(self.bw)
                + (1 if self.p_xfer_error else 0)
                + (1 if self.p_chan_halt else 0))


@dataclass(frozen=True)
class NetSpec:
    """The network dimension: a bounded replication run under a
    :class:`~repro.net.plan.NetFaultPlan` (cluster oracles are the
    detector)."""

    enabled: bool = False
    seed: int = 0
    n_nodes: int = 3
    n_clients: int = 2
    writes_per_client: int = 5
    deadline_us: int = 5_000
    p_drop: float = 0.0
    p_dup: float = 0.0
    p_delay: float = 0.0
    max_faults: int = 32
    partitions: Tuple[Tuple[int, int, Tuple[int, ...]], ...] = ()
    crashes: Tuple[Tuple[int, int, int], ...] = ()   # (node, at, down)

    def build_schedule(self) -> List[Any]:
        return ([PartitionFault(s, d, group)
                 for s, d, group in self.partitions]
                + [NodeCrashFault(node, at, down)
                   for node, at, down in self.crashes])

    def build(self) -> Optional[NetFaultPlan]:
        """A live plan (running NetFaultPlan's validators), or None."""
        if not self.enabled:
            return None
        return NetFaultPlan(seed=self.seed, p_drop=self.p_drop,
                            p_dup=self.p_dup, p_delay=self.p_delay,
                            max_faults=self.max_faults,
                            schedule=self.build_schedule())

    def validate(self) -> None:
        if not 2 <= self.n_nodes <= 5:
            raise ValueError(f"n_nodes must be in [2, 5], got {self.n_nodes}")
        if self.n_clients < 1 or self.writes_per_client < 1:
            raise ValueError("need at least one client and one write")
        if self.deadline_us < 1:
            raise ValueError("deadline_us must be >= 1")
        for _s, _d, group in self.partitions:
            if not group or any(not 0 <= n < self.n_nodes for n in group):
                raise ValueError(f"partition group {group} out of range")
            if len(set(group)) >= self.n_nodes:
                raise ValueError("partition group covers every node")
        for node, _at, down in self.crashes:
            if not 0 <= node < self.n_nodes:
                raise ValueError(f"crash node {node} out of range")
            if down < 1:
                raise ValueError("crash down_ns must be >= 1 (finite)")
        self.build()

    def size(self) -> int:
        if not self.enabled:
            return 0
        return (1 + len(self.partitions) + len(self.crashes)
                + (1 if self.p_drop else 0) + (1 if self.p_dup else 0)
                + (1 if self.p_delay else 0))


@dataclass(frozen=True)
class RuntimeSpec:
    """Admission-control and per-op deadline configuration."""

    rate_ops_per_sec: Optional[float] = None
    burst: int = 8
    max_inflight: Optional[int] = None
    policy: str = "reject"
    deadline_us: Optional[int] = None

    @property
    def admission_active(self) -> bool:
        return (self.rate_ops_per_sec is not None
                or self.max_inflight is not None)

    def build(self, engine, stats):
        """A live controller (or None when no limit is set)."""
        from repro.runtime.admission import AdmissionController
        if not self.admission_active:
            return None
        return AdmissionController(engine,
                                   rate_ops_per_sec=self.rate_ops_per_sec,
                                   burst=self.burst,
                                   max_inflight=self.max_inflight,
                                   policy=self.policy, stats=stats)

    def validate(self) -> None:
        if self.policy not in POLICIES:
            raise ValueError(f"policy must be one of {POLICIES}")
        if self.rate_ops_per_sec is not None and self.rate_ops_per_sec <= 0:
            raise ValueError("rate_ops_per_sec must be > 0")
        if self.burst < 1:
            raise ValueError("burst must be >= 1")
        if self.max_inflight is not None and self.max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if self.deadline_us is not None and self.deadline_us < 1:
            raise ValueError("deadline_us must be >= 1")

    def size(self) -> int:
        return ((1 if self.admission_active else 0)
                + (1 if self.deadline_us is not None else 0))


@dataclass(frozen=True)
class CrashSpec:
    """The crash dimension: line-granularity crash plans over the
    recorded stream (:class:`~repro.crash.plans.CrashPlanner` knobs)."""

    enabled: bool = True
    seed: int = 0
    per_signature: Optional[int] = 2
    budget: Optional[int] = 48

    def validate(self) -> None:
        if self.per_signature is not None and self.per_signature < 1:
            raise ValueError("per_signature must be >= 1 or None")
        if self.budget is not None and self.budget < 1:
            raise ValueError("budget must be >= 1 or None")

    def size(self) -> int:
        return 1 if self.enabled else 0


@dataclass(frozen=True)
class ScenarioTuple:
    """One fuzzable scenario; see the module docstring."""

    kind: str = "easyio"
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    fault: FaultSpec = field(default_factory=FaultSpec)
    net: NetSpec = field(default_factory=NetSpec)
    runtime: RuntimeSpec = field(default_factory=RuntimeSpec)
    crash: CrashSpec = field(default_factory=CrashSpec)

    def validate(self) -> "ScenarioTuple":
        from repro.workloads.factory import fs_class
        fs_class(self.kind)
        self.workload.validate()
        self.fault.validate()
        self.net.validate()
        self.runtime.validate()
        self.crash.validate()
        if self.fault.descriptor_faulty \
                and self.kind not in FAULT_TOLERANT_KINDS:
            raise ValueError(
                f"descriptor faults require a fault-tolerant kind "
                f"{FAULT_TOLERANT_KINDS}, got {self.kind!r}")
        return self

    def size(self) -> int:
        """The shrinker's metric; every accepted reduction must not
        increase it (tests pin monotonicity)."""
        return (self.workload.size() + self.fault.size() + self.net.size()
                + self.runtime.size() + self.crash.size())

    # -- serialization ------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ScenarioTuple":
        return cls(
            kind=data.get("kind", "easyio"),
            workload=WorkloadSpec(**{k: _tuplify(v) for k, v in
                                     data.get("workload", {}).items()}),
            fault=FaultSpec(**{k: _tuplify(v) for k, v in
                               data.get("fault", {}).items()}),
            net=NetSpec(**{k: _tuplify(v) for k, v in
                           data.get("net", {}).items()}),
            runtime=RuntimeSpec(**data.get("runtime", {})),
            crash=CrashSpec(**data.get("crash", {})),
        )

    def canonical_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    def key(self) -> str:
        """Stable content hash (corpus dedup, reports, replay ids)."""
        return hashlib.sha1(self.canonical_json().encode()).hexdigest()[:16]

    def replaced(self, **kwargs) -> "ScenarioTuple":
        return replace(self, **kwargs)


def make_op(kind: str, file: int = 0, a: int = 0, b: int = 0,
            pseed: int = 0, gap_ns: int = 0) -> Tuple:
    """Build one schedule op tuple (keyword-friendly helper)."""
    return (kind, file, a, b, pseed, gap_ns)


def schedule_from_seed(seed: int, n_ops: int = 24,
                       nfiles: int = 1) -> WorkloadSpec:
    """A reproducible mixed op schedule (the differential test's
    generator, extended with appends, files, and inter-op gaps)."""
    import random
    rng = random.Random(seed)
    ops = []
    for _ in range(n_ops):
        kind = rng.choices(OP_KINDS, weights=(5, 2, 2, 1))[0]
        f = rng.randrange(nfiles)
        gap = rng.choice((0, 0, 1_000, 20_000))
        if kind == "write":
            ops.append(make_op("write", f, rng.randrange(0, 6 * PAGE_SIZE),
                               rng.randrange(1, 4 * PAGE_SIZE),
                               rng.getrandbits(32), gap))
        elif kind == "append":
            ops.append(make_op("append", f, 0,
                               rng.randrange(1, 2 * PAGE_SIZE),
                               rng.getrandbits(32), gap))
        elif kind == "read":
            ops.append(make_op("read", f, rng.randrange(0, 8 * PAGE_SIZE),
                               rng.randrange(1, 4 * PAGE_SIZE), 0, gap))
        else:
            ops.append(make_op("truncate", f,
                               rng.randrange(0, 8 * PAGE_SIZE), 0, 0, gap))
    return WorkloadSpec(nfiles=nfiles, ops=tuple(ops))
