"""The campaign's global coverage map (novelty detector + energy
signal).

:class:`CoverageMap` accumulates the coverage keys of every executed
scenario (:func:`repro.fuzz.scenario.run_scenario` assembles them from
the :mod:`repro.obs.coverage` extractors).  The corpus scheduler asks
one question -- "did this run reach anything new?" -- and rewards the
parent tuple whose mutation did.

The map is the one *stateful* object in the fuzzer, so it follows the
repo's stats discipline: a :meth:`reset` restores construction state,
and ``tests/test_stats_reset.py`` pins that back-to-back campaigns in
one process cannot cross-contaminate through it.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable


class CoverageMap:
    """Union of coverage keys across runs, with per-key hit counts."""

    def __init__(self):
        self.hits: Dict[str, int] = {}
        self.observed_runs = 0

    def __len__(self) -> int:
        return len(self.hits)

    def novelty(self, keys: Iterable[str]) -> int:
        """How many of ``keys`` the map has never seen (read-only)."""
        return sum(1 for k in keys if k not in self.hits)

    def observe(self, keys: Iterable[str]) -> int:
        """Record one run's coverage; return the novel-key count."""
        novel = 0
        for k in keys:
            if k not in self.hits:
                novel += 1
                self.hits[k] = 1
            else:
                self.hits[k] += 1
        self.observed_runs += 1
        return novel

    def signature(self) -> str:
        """Order-independent hash of the key *set* (campaign
        fingerprints; hit counts are excluded so the signature is a
        pure reachability statement)."""
        h = hashlib.sha1()
        for k in sorted(self.hits):
            h.update(k.encode())
            h.update(b"\0")
        return h.hexdigest()[:16]

    def as_dict(self) -> Dict[str, int]:
        return dict(self.hits)

    def reset(self) -> None:
        """Restore construction state (stats-reset discipline)."""
        self.hits.clear()
        self.observed_runs = 0


def merge_coverage(maps: Iterable[CoverageMap]) -> CoverageMap:
    """Fold several maps into a fresh one (campaign aggregation)."""
    out = CoverageMap()
    for m in maps:
        for k, n in m.hits.items():
            out.hits[k] = out.hits.get(k, 0) + n
        out.observed_runs += m.observed_runs
    return out
