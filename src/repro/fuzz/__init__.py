"""Coverage-guided scenario fuzzing for the EasyIO reproduction.

The fuzzer searches the space of ``(workload schedule, FaultPlan,
NetFaultPlan, admission/deadline config, crash plan)`` tuples for
executions that violate any invariant the repo can check -- trace
oracles, mechanism crash oracles, differential-vs-NOVA byte equality,
cluster oracles -- guided by coverage signals the codebase already
emits.  See DESIGN.md §16 for the architecture.
"""

from repro.fuzz.campaign import (CampaignReport, Failure, FuzzConfig,
                                 run_campaign)
from repro.fuzz.corpus import (CorpusEntry, load_reproducers, pick_parents,
                               reproducer_dict, seed_corpus,
                               write_reproducer)
from repro.fuzz.coverage import CoverageMap, merge_coverage
from repro.fuzz.mutate import (MUTATORS, apply_mutation, mutator_names,
                               register_mutator)
from repro.fuzz.scenario import (DETECTORS, Finding, ScenarioResult,
                                 run_scenario)
from repro.fuzz.shrink import shrink
from repro.fuzz.tuples import (CrashSpec, FAULT_TOLERANT_KINDS, FaultSpec,
                               NetSpec, RuntimeSpec, ScenarioTuple,
                               WorkloadSpec, make_op, schedule_from_seed)

__all__ = [
    "CampaignReport", "Failure", "FuzzConfig", "run_campaign",
    "CorpusEntry", "load_reproducers", "pick_parents", "reproducer_dict",
    "seed_corpus", "write_reproducer",
    "CoverageMap", "merge_coverage",
    "MUTATORS", "apply_mutation", "mutator_names", "register_mutator",
    "DETECTORS", "Finding", "ScenarioResult", "run_scenario",
    "shrink",
    "CrashSpec", "FAULT_TOLERANT_KINDS", "FaultSpec", "NetSpec",
    "RuntimeSpec", "ScenarioTuple", "WorkloadSpec", "make_op",
    "schedule_from_seed",
]
