"""Seed corpus, energy scheduling, and reproducer files.

Seeds
    :func:`seed_corpus` hand-places starting tuples in the interesting
    corners of the scenario space (clean schedules, probabilistic fault
    storms, the all-channels halt that exhausts failover, admission
    pressure, tight deadlines, a partitioned cluster).  Everything else
    the fuzzer must discover by mutation.

Energy
    :class:`CorpusEntry` carries the AFL-style scheduling state: a
    parent's weight is its *novel-coverage rate* ``(1 + novel) /
    (1 + chosen)``, so tuples whose children keep reaching new
    coverage are mutated more, and stale ones decay.

Reproducers
    A reproducer file under ``tests/corpus/`` is one JSON object --
    the minimal tuple, the mutant it catches (if planted), the
    expected detector set, and provenance -- self-contained enough
    for ``tests/test_corpus.py`` to replay in tier-1 with no fuzzing
    machinery involved.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.fuzz.tuples import (FaultSpec, N_CHANNELS, NetSpec, RuntimeSpec,
                               ScenarioTuple, WorkloadSpec, make_op,
                               schedule_from_seed)

#: Schema tag written into every reproducer file.
REPRO_FORMAT = 1


def seed_corpus() -> List[ScenarioTuple]:
    """The hand-placed starting population (all validated)."""
    halt_storm = tuple((ch, 1) for ch in range(N_CHANNELS))
    seeds = [
        # Clean mixed schedule: the differential/crash baseline.
        ScenarioTuple(workload=schedule_from_seed(101, n_ops=12)),
        # Append-heavy: log-append fences (skip_append_fence country).
        ScenarioTuple(workload=WorkloadSpec(ops=(
            make_op("append", 0, 0, 300, 1),
            make_op("append", 0, 0, 5000, 2),
            make_op("append", 0, 0, 700, 3)))),
        # Failover exhausted: every channel halted, degraded persists
        # (reorder_amend_persist country).
        ScenarioTuple(
            workload=WorkloadSpec(ops=(
                make_op("write", 0, 0, 8192, 11),
                make_op("write", 0, 4096, 8192, 12))),
            fault=FaultSpec(halts=halt_storm)),
        # Probabilistic fault storm on the supervised path.
        ScenarioTuple(
            workload=schedule_from_seed(202, n_ops=10),
            fault=FaultSpec(seed=7, p_xfer_error=0.3, p_chan_halt=0.1)),
        # Admission pressure + tight deadlines.
        ScenarioTuple(
            workload=schedule_from_seed(303, n_ops=10),
            runtime=RuntimeSpec(rate_ops_per_sec=100_000.0, burst=1,
                                policy="degrade", deadline_us=100)),
        # Replication under partition + message loss.
        ScenarioTuple(
            workload=WorkloadSpec(ops=(make_op("write", 0, 0, 4096, 21),)),
            net=NetSpec(enabled=True, seed=5, p_drop=0.1,
                        partitions=((30_000, 40_000, (0,)),))),
    ]
    for s in seeds:
        s.validate()
    return seeds


@dataclass
class CorpusEntry:
    """One scheduled tuple plus its energy accounting."""

    tuple: ScenarioTuple
    signature: str = ""
    #: Times picked as a mutation parent.
    chosen: int = 0
    #: Novel coverage keys reached by this tuple's own run plus
    #: children credited back to it.
    novel: int = 0

    @property
    def energy(self) -> float:
        return (1.0 + self.novel) / (1.0 + self.chosen)


def pick_parents(rng, corpus: List[CorpusEntry],
                 n: int) -> List[CorpusEntry]:
    """Energy-weighted sample (with replacement) of mutation parents."""
    weights = [e.energy for e in corpus]
    return rng.choices(corpus, weights=weights, k=n)


# -- reproducer files --------------------------------------------------

def reproducer_dict(t: ScenarioTuple, *, mutant: Optional[str],
                    expect: List[str], note: str = "",
                    shrink_evals: int = 0,
                    original_size: int = 0) -> dict:
    """The committed-file payload for one shrunk failing tuple."""
    return {
        "format": REPRO_FORMAT,
        "tuple": t.to_dict(),
        "key": t.key(),
        "mutant": mutant,
        #: Detector names that must fire on replay (subset match).
        "expect": sorted(expect),
        "note": note,
        "shrink": {"evals": shrink_evals,
                   "from_size": original_size,
                   "to_size": t.size()},
    }


def write_reproducer(directory: str, name: str, payload: dict) -> str:
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{name}.json")
    with open(path, "w") as f:
        json.dump(payload, f, indent=1, sort_keys=True)
        f.write("\n")
    return path


def load_reproducers(directory: str) -> List[Tuple[str, dict]]:
    """``(filename, payload)`` for every committed reproducer, sorted
    for deterministic replay order."""
    if not os.path.isdir(directory):
        return []
    out = []
    for fname in sorted(os.listdir(directory)):
        if not fname.endswith(".json"):
            continue
        with open(os.path.join(directory, fname)) as f:
            payload = json.load(f)
        if payload.get("format") != REPRO_FORMAT:
            raise ValueError(f"{fname}: unknown reproducer format "
                             f"{payload.get('format')!r}")
        out.append((fname, payload))
    return out
