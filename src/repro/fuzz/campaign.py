"""The campaign driver: generations of mutate -> run -> select.

A campaign is a sequence of *generations*.  Each generation picks
mutation parents from the corpus by energy (seeded RNG), mutates them,
and ships the batch to :func:`repro.analysis.sweep.run_fuzz_batch` --
the same order-preserving pool used by every other sweep in the repo.
Results are merged back **sequentially, in batch order**.

That batching is what makes the campaign bit-reproducible at any
worker count: the contents of generation *g* depend only on the corpus
state *before* generation *g*, each scenario's verdict is a pure
function of its spec, and the merge order is the batch order -- so
``processes=1`` and ``processes=16`` walk exactly the same tuple
sequence and end in exactly the same state.  :meth:`CampaignReport.
fingerprint` hashes that walk (tuple keys, coverage signatures,
verdicts) and tests/test_fuzz_campaign.py pins serial == parallel.

Mutant campaigns (``FuzzConfig.mutant``) plant one of the known
``CRASH_MUTANTS`` into every run -- the ground-truth exercise that
seeds the committed regression corpus.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.fuzz.corpus import CorpusEntry, pick_parents, seed_corpus
from repro.fuzz.coverage import CoverageMap
from repro.fuzz.mutate import apply_mutation
from repro.fuzz.scenario import ScenarioResult
from repro.fuzz.tuples import FAULT_TOLERANT_KINDS, ScenarioTuple


@dataclass(frozen=True)
class FuzzConfig:
    """One campaign's knobs (everything that affects the walk)."""

    seed: int = 0
    #: Total scenario executions (seeds included).
    budget: int = 60
    #: Mutations generated per generation.
    batch: int = 8
    #: Pool width; verdicts are identical for any value.
    processes: int = 1
    #: Plant a known bug into every run (corpus seeding / CI smoke).
    mutant: Optional[str] = None
    #: Stop at the first N failing tuples (0 = never stop early).
    stop_after_failures: int = 0


@dataclass
class Failure:
    """One failing tuple as the campaign saw it."""

    tuple_dict: dict
    key: str
    findings: List[Tuple]
    #: Executions completed when this failure surfaced (time-to-
    #: detection in tuples, the EXPERIMENTS.md metric).
    found_at: int


@dataclass
class CampaignReport:
    config: FuzzConfig
    executed: int = 0
    generations: int = 0
    corpus_size: int = 0
    coverage: CoverageMap = field(default_factory=CoverageMap)
    failures: List[Failure] = field(default_factory=list)
    #: The deterministic walk: (tuple key, coverage signature, verdict)
    #: per execution, in order.
    walk: List[Tuple[str, str, bool]] = field(default_factory=list)

    @property
    def distinct_signatures(self) -> int:
        return len({sig for _, sig, _ in self.walk})

    def fingerprint(self) -> str:
        """Hash of the full walk -- equal fingerprints mean the
        campaigns executed the same tuples with the same coverage and
        verdicts (the bit-reproducibility check)."""
        h = hashlib.sha1()
        for key, sig, failing in self.walk:
            h.update(f"{key}:{sig}:{int(failing)};".encode())
        return h.hexdigest()[:16]

    def as_dict(self) -> dict:
        return {
            "seed": self.config.seed,
            "budget": self.config.budget,
            "mutant": self.config.mutant,
            "executed": self.executed,
            "generations": self.generations,
            "corpus_size": self.corpus_size,
            "coverage_keys": len(self.coverage),
            "distinct_signatures": self.distinct_signatures,
            "failures": [{"key": f.key, "found_at": f.found_at,
                          "findings": [list(x) for x in f.findings],
                          "tuple": f.tuple_dict}
                         for f in self.failures],
            "fingerprint": self.fingerprint(),
        }


def _spec(t: ScenarioTuple, mutant: Optional[str]) -> dict:
    return {"tuple": t.to_dict(), "mutant": mutant}


def run_campaign(config: FuzzConfig,
                 seeds: Optional[List[ScenarioTuple]] = None) -> CampaignReport:
    """Run one seeded campaign to its budget (see module docstring)."""
    from repro.analysis.sweep import run_fuzz_batch

    rng = random.Random(config.seed)
    report = CampaignReport(config=config)
    seeds = list(seeds) if seeds is not None else seed_corpus()
    if config.mutant is not None:
        # A planted persistence mutant only exists on the supervised
        # write path: keep every scenario on a fault-tolerant kind.
        seeds = [s for s in seeds if s.kind in FAULT_TOLERANT_KINDS]
    corpus: List[CorpusEntry] = []
    seen_keys = {s.key() for s in seeds}

    def merge(parent: Optional[CorpusEntry], t: ScenarioTuple,
              result: ScenarioResult) -> None:
        novel = report.coverage.observe(result.coverage)
        report.executed += 1
        report.walk.append((t.key(), result.signature(), result.failing))
        if result.failing:
            report.failures.append(Failure(
                tuple_dict=t.to_dict(), key=t.key(),
                findings=[f.as_tuple() for f in result.findings],
                found_at=report.executed))
        if parent is None:
            corpus.append(CorpusEntry(t, signature=result.signature(),
                                      novel=novel))
        elif novel:
            parent.novel += novel
            corpus.append(CorpusEntry(t, signature=result.signature(),
                                      novel=novel))

    def done() -> bool:
        if report.executed >= config.budget:
            return True
        return (config.stop_after_failures
                and len(report.failures) >= config.stop_after_failures)

    # Generation 0: the seeds themselves.
    batch = [(None, s) for s in seeds[:config.budget]]
    results = run_fuzz_batch([_spec(t, config.mutant) for _, t in batch],
                             processes=config.processes)
    for (parent, t), rd in zip(batch, results):
        merge(parent, t, ScenarioResult.from_dict(rd))
    report.generations = 1

    while not done() and corpus:
        n = min(config.batch, config.budget - report.executed)
        parents = pick_parents(rng, corpus, n)
        batch = []
        for parent in parents:
            parent.chosen += 1
            for _ in range(8):  # re-roll key collisions
                _name, child = apply_mutation(rng, parent.tuple)
                if config.mutant is not None \
                        and child.kind not in FAULT_TOLERANT_KINDS:
                    # kind-switch may leave the supervised path; the
                    # planted mutant would be meaningless there.
                    child = child.replaced(kind=parent.tuple.kind)
                if child.key() not in seen_keys:
                    break
            seen_keys.add(child.key())
            batch.append((parent, child))
        results = run_fuzz_batch(
            [_spec(t, config.mutant) for _, t in batch],
            processes=config.processes)
        for (parent, t), rd in zip(batch, results):
            merge(parent, t, ScenarioResult.from_dict(rd))
        report.generations += 1

    report.corpus_size = len(corpus)
    return report
