"""Execute one scenario tuple with every bug detector armed.

One :func:`run_scenario` call is the fuzzer's fitness function.  It
runs the tuple's op schedule on a traced, line-recording platform with
the tuple's fault plan and admission/deadline config installed, then
turns four independent detectors loose on the execution:

1. **trace oracles** -- the full :class:`~repro.obs.TraceChecker` set
   over the recorded stream (ack-implies-durable, SN ordering,
   span causality, deadline finality, ...);
2. **crash plans** -- the :class:`~repro.crash.plans.CrashPlanner`'s
   mechanism-pruned crash states replayed through recovery, checked by
   the mechanism oracles *and* per-op state legality;
3. **differential vs NOVA** -- the schedule's *effective* ops (those
   that verifiably committed) replayed on a clean synchronous NOVA
   instance; final contents, sizes, and every successful read's bytes
   must match byte-for-byte;
4. **cluster oracles** -- when the net dimension is enabled, a bounded
   replication run under the tuple's :class:`NetFaultPlan`, checked by
   the three cluster invariants.

Plus two implicit detectors: a drained engine with a live workload
process is a **hang**, and any unexpected exception out of the
simulation is an **exception** finding.

Everything is deterministic: the engine is seeded and single-threaded,
payloads derive from per-op seeds, and the crash planner samples from
the tuple's crash seed -- ``run_scenario`` is a pure function of
``(tuple, mutant)``, which is what makes campaign results independent
of worker count.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.crash.crashmonkey import (_check_state, _mechanism_checks,
                                     make_fs_on_image,
                                     snapshot_with_content)
from repro.fs.nova import DeadlineExceeded, FsError
from repro.fs.pmimage import PMImage
from repro.fs.recovery import (TornLogEntryError,
                               completion_buffer_validator, recover)
from repro.hw.platform import Platform, PlatformConfig
from repro.obs import TraceChecker, Tracer, default_tracing
from repro.obs.coverage import (ack_gap_buckets, counter_buckets,
                                trace_vocabulary)
from repro.runtime.admission import OverloadStats
from repro.sim.engine import WaitTimeout
from repro.workloads.factory import make_fs

from repro.fuzz.tuples import FAULT_TOLERANT_KINDS, ScenarioTuple

#: Detector names as they appear in findings.
DETECTORS = ("trace", "crash", "differential", "cluster", "hang",
             "exception")


@dataclass(frozen=True)
class Finding:
    """One detected failure, replayable from the owning tuple."""

    detector: str
    check: str
    detail: str
    plan: Optional[str] = None

    def as_tuple(self) -> Tuple:
        return (self.detector, self.check, self.detail, self.plan)


@dataclass
class ScenarioResult:
    """The detectors' verdicts plus the coverage signature."""

    key: str
    findings: List[Finding] = field(default_factory=list)
    #: Sorted coverage keys (see repro.obs.coverage).
    coverage: Tuple[str, ...] = ()
    #: Per-schedule-op outcome strings, in schedule order.
    outcomes: Tuple[str, ...] = ()
    #: Crash-section accounting: plans replayed / raw states pruned.
    crash_plans: int = 0
    raw_states: int = 0

    @property
    def failing(self) -> bool:
        return bool(self.findings)

    def signature(self) -> str:
        """Stable hash of the coverage signature (campaign reports)."""
        h = hashlib.sha1()
        for key in self.coverage:
            h.update(key.encode())
            h.update(b"\0")
        return h.hexdigest()[:16]

    def as_dict(self) -> dict:
        return {"key": self.key,
                "findings": [f.as_tuple() for f in self.findings],
                "coverage": list(self.coverage),
                "outcomes": list(self.outcomes),
                "crash_plans": self.crash_plans,
                "raw_states": self.raw_states}

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioResult":
        return cls(key=data["key"],
                   findings=[Finding(*f) for f in data["findings"]],
                   coverage=tuple(data["coverage"]),
                   outcomes=tuple(data["outcomes"]),
                   crash_plans=data["crash_plans"],
                   raw_states=data["raw_states"])


def _payload(pseed: int, nbytes: int) -> bytes:
    """Deterministic per-op file content."""
    return random.Random(pseed).randbytes(nbytes)


def _settle(fs, result):
    """Wait out async I/O and the Naive ablation's deferred commit."""
    if result.is_async:
        yield result.pending
    continuation = getattr(result, "continuation", None)
    if continuation is not None:
        yield from continuation(fs.context(record=False))


#: Simulated-time cap: no legal scenario comes near it, so hitting it
#: (engine still busy) reads as livelock rather than slow progress.
RUN_HORIZON_NS = 10_000_000_000


def run_scenario(t: ScenarioTuple,
                 mutant: Optional[str] = None) -> ScenarioResult:
    """Run one tuple through every detector (see module docstring).

    ``mutant`` plants a known persistence bug from
    :data:`repro.core.easyio.CRASH_MUTANTS` into the recording run --
    the fuzzer's ground truth for "can we still find real bugs".
    """
    t.validate()
    if mutant is not None and t.kind not in FAULT_TOLERANT_KINDS:
        raise ValueError(f"crash mutants need kind in "
                         f"{FAULT_TOLERANT_KINDS}, got {t.kind!r}")
    result = ScenarioResult(key=t.key())
    findings = result.findings

    platform = Platform(PlatformConfig.single_node())
    engine = platform.engine
    tracer = Tracer(engine)
    engine.tracer = tracer

    lines = t.crash.enabled or mutant is not None
    image = PMImage(record=True)
    stream = None
    if lines:
        stream = image.enable_line_recording()
        stream.tracer = tracer
    fs = make_fs(t.kind, platform, image=image)
    if mutant is not None:
        from repro.core.easyio import install_crash_mutant
        install_crash_mutant(fs, mutant)

    fault_plan = t.fault.build()
    if fault_plan is not None:
        fault_plan.install(platform, image=image)
    overload = OverloadStats()
    admission = t.runtime.build(engine, overload)

    wl = t.workload
    outcomes: List[str] = []
    op_ids: List[Optional[int]] = []
    reads: List[Tuple[int, bytes]] = []
    digest_cache: dict = {}
    #: (stream_start, stream_end, snapshot) per op (creates = op 0).
    oracle: List[Tuple[int, int, dict]] = []
    inos: List[int] = []

    def record_op(sstart: int) -> int:
        send = stream.position() if stream is not None else 0
        oracle.append((sstart, send,
                       snapshot_with_content(fs, digest_cache)))
        if stream is not None:
            stream.op_bounds.append((sstart, send))
        return send

    def driver():
        # Each create is its own oracle op: creates are individually
        # atomic, so a crash mid-preamble may legally leave a prefix
        # of the files (lumping them into one window false-positives
        # the atomicity check -- an early fuzz triage pinned this).
        spos = 0
        for i in range(wl.nfiles):
            ino = yield from fs.create(fs.context(record=False), f"/f{i}")
            inos.append(ino)
            spos = record_op(spos)
        for op in wl.ops:
            kind, f, a, b, pseed, gap = op
            if gap:
                yield engine.timeout(gap)
            verdict = admission.admit() if admission is not None else "admit"
            if verdict == "reject":
                outcomes.append("rejected")
                op_ids.append(None)
                spos = record_op(spos)
                continue
            deadline = (engine.now + t.runtime.deadline_us * 1_000
                        if t.runtime.deadline_us is not None else None)
            ctx = fs.context(deadline=deadline)
            if verdict == "degrade":
                ctx.force_sync = True
            op_ids.append(ctx.op_id)
            try:
                if kind == "write":
                    res = yield from fs.write(ctx, inos[f], a, b,
                                              _payload(pseed, b))
                    yield from _settle(fs, res)
                elif kind == "append":
                    res = yield from fs.append(ctx, inos[f], b,
                                               _payload(pseed, b))
                    yield from _settle(fs, res)
                elif kind == "read":
                    res = yield from fs.read(ctx, inos[f], a, b,
                                             want_data=True)
                    yield from _settle(fs, res)
                    reads.append((len(outcomes), bytes(res.value)))
                else:  # truncate
                    yield from fs.truncate(ctx, inos[f], a)
                outcomes.append("ok")
            except DeadlineExceeded:
                outcomes.append("deadline")
            except WaitTimeout:
                outcomes.append("timeout")
            except FsError as exc:
                outcomes.append(f"fserr:{type(exc).__name__}")
            finally:
                if admission is not None:
                    admission.release()
            spos = record_op(spos)

    proc = engine.process(driver())
    try:
        engine.run(until=RUN_HORIZON_NS)
    except Exception as exc:  # engine-level blow-up: always a finding
        findings.append(Finding("exception", type(exc).__name__,
                                f"engine raised during run: {exc!r}"))
        result.outcomes = tuple(outcomes)
        result.coverage = _assemble_coverage(
            tracer, (), engine, fs, overload, fault_plan, None, None,
            outcomes)
        return result
    hang = proc.is_alive
    if hang:
        last = tracer.events[-1].name if tracer.events else "<no events>"
        findings.append(Finding(
            "hang", "workload-stalled",
            f"engine drained (t={engine.now}) with the workload still "
            f"parked after op {len(outcomes)}; last trace event {last!r}"))
    elif not proc.ok:
        findings.append(Finding("exception", type(proc.value).__name__,
                                f"workload raised: {proc.value!r}"))

    # -- detector 1: trace-invariant oracles --------------------------
    for v in TraceChecker().check(tracer.events):
        findings.append(Finding("trace", v.oracle, str(v)))

    # -- detector 3: differential vs clean NOVA -----------------------
    clean_exit = not hang and proc.ok
    if clean_exit:
        findings.extend(_differential(t, tracer, outcomes, op_ids, reads,
                                      oracle[-1][2] if oracle else {}))

    # -- detector 2: crash plans through recovery ---------------------
    planner = None
    if t.crash.enabled and clean_exit and stream is not None:
        planner, crash_findings = _crash_section(t, stream, oracle)
        findings.extend(crash_findings)
        result.crash_plans = len(planner.plans())
        result.raw_states = planner.raw_states

    # -- detector 4: cluster oracles over the net dimension -----------
    net_tracers: list = []
    net_stats = None
    if t.net.enabled:
        net_stats, cluster_findings = _net_section(t, net_tracers)
        findings.extend(cluster_findings)

    result.outcomes = tuple(outcomes)
    result.coverage = _assemble_coverage(
        tracer, net_tracers, engine, fs, overload, fault_plan, planner,
        net_stats, outcomes)
    return result


def _differential(t, tracer, outcomes, op_ids, reads,
                  target_snap) -> List[Finding]:
    """Replay the verifiably-committed ops on clean NOVA and compare.

    The effective schedule is decided from *evidence*, not hope: a
    write/append counts exactly when its op id emitted ``write_commit``
    (so a deadline "clean miss" whose data still landed is included,
    and a cleanly-aborted one is excluded).  A deadline-aborted
    truncate has no such trace marker, making the final state
    ambiguous -- those runs skip the detector rather than guess.
    """
    from repro.obs.trace import POINT
    committed = {ev.op for ev in tracer.events
                 if ev.ph == POINT and ev.name == "write_commit"
                 and ev.op is not None}
    effective: List[Tuple] = []
    read_bytes = {i: b for i, b in reads}
    expected_reads: List[bytes] = []
    for i, (op, outcome) in enumerate(zip(t.workload.ops, outcomes)):
        kind = op[0]
        if kind in ("write", "append"):
            if outcome == "ok" or op_ids[i] in committed:
                effective.append(op)
        elif kind == "truncate":
            if outcome == "ok":
                effective.append(op)
            elif outcome in ("deadline", "timeout"):
                return []  # ambiguous final state: skip the detector
        elif kind == "read" and outcome == "ok":
            effective.append(op)
            expected_reads.append(read_bytes[i])

    ref_platform = Platform(PlatformConfig.single_node())
    ref = make_fs("nova", ref_platform)
    got_reads: List[bytes] = []

    def replay():
        ref_inos = []
        for i in range(t.workload.nfiles):
            ino = yield from ref.create(ref.context(record=False), f"/f{i}")
            ref_inos.append(ino)
        for op in effective:
            kind, f, a, b, pseed, _gap = op
            ctx = ref.context(record=False)
            if kind == "write":
                res = yield from ref.write(ctx, ref_inos[f], a, b,
                                           _payload(pseed, b))
                yield from _settle(ref, res)
            elif kind == "append":
                res = yield from ref.append(ctx, ref_inos[f], b,
                                            _payload(pseed, b))
                yield from _settle(ref, res)
            elif kind == "read":
                res = yield from ref.read(ctx, ref_inos[f], a, b,
                                          want_data=True)
                got_reads.append(bytes(res.value))
            else:
                yield from ref.truncate(ctx, ref_inos[f], a)

    proc = ref_platform.engine.process(replay())
    ref_platform.engine.run()
    if proc.is_alive or not proc.ok:
        why = "stalled" if proc.is_alive else repr(proc.value)
        return [Finding("differential", "replay-error",
                        f"the effective schedule failed on clean NOVA "
                        f"({why}) although every op succeeded under "
                        f"faults")]

    findings = []
    ref_snap = snapshot_with_content(ref)
    if target_snap != ref_snap:
        diff = sorted(set(target_snap.items())
                      ^ set(ref_snap.items()))[:4]
        findings.append(Finding(
            "differential", "content",
            f"final state diverged from the NOVA replay of the "
            f"effective schedule: {diff}"))
    for i, (got, want) in enumerate(zip(expected_reads, got_reads)):
        if got != want:
            findings.append(Finding(
                "differential", "read",
                f"effective read #{i} returned different bytes than "
                f"the NOVA replay ({len(got)} vs {len(want)} bytes)"))
            break
    return findings


def _crash_section(t, stream, oracle):
    """Replay the planner's crash plans through recovery."""
    from repro.crash.linestream import replay_plan
    from repro.crash.plans import CrashPlanner

    planner = CrashPlanner(stream, per_signature=t.crash.per_signature,
                           budget=t.crash.budget, seed=t.crash.seed)
    findings: List[Finding] = []
    validator_needed = t.kind in ("easyio", "naive")
    for plan in planner.plans():
        img = replay_plan(stream, plan)
        platform = Platform(PlatformConfig.single_node())
        fs2 = make_fs_on_image(t.kind, platform, img)
        validator = (completion_buffer_validator(img)
                     if validator_needed else None)
        try:
            recover(fs2, validator)
        except TornLogEntryError as exc:
            findings.append(Finding("crash", "torn-entry", str(exc),
                                    plan.cls))
            continue
        fail = _mechanism_checks(fs2, img, validator)
        if fail is None:
            snap = snapshot_with_content(fs2)
            fail = _check_state(snap, oracle, plan.lo, plan.hi)
        if fail is not None:
            findings.append(Finding("crash", fail[0], fail[1], plan.cls))
    return planner, findings


def _net_section(t, net_tracers):
    """A bounded replication run under the tuple's NetFaultPlan."""
    from repro.workloads.replication import (ReplicationConfig,
                                             run_replication)
    spec = t.net
    cfg = ReplicationConfig(
        n_nodes=spec.n_nodes, n_clients=spec.n_clients,
        writes_per_client=spec.writes_per_client,
        deadline_us=spec.deadline_us, seed=spec.seed,
        p_drop=spec.p_drop, p_dup=spec.p_dup, p_delay=spec.p_delay,
        max_faults=spec.max_faults, schedule=spec.build_schedule(),
        check_oracles=True)
    with default_tracing(collect=net_tracers):
        res = run_replication(cfg)
    findings = [Finding("cluster", v.oracle, str(v))
                for v in res.violations]
    return res.stats, findings


def _assemble_coverage(tracer, net_tracers, engine, fs, overload,
                       fault_plan, planner, net_stats,
                       outcomes) -> Tuple[str, ...]:
    """Union every coverage extractor into one sorted signature."""
    from collections import Counter
    keys = set()
    keys |= trace_vocabulary(tracer.events)
    keys |= ack_gap_buckets(tracer.events)
    for tr in net_tracers:
        keys |= trace_vocabulary(tr.events)
    keys |= counter_buckets("engine", engine.stats.as_dict())
    fault_stats = getattr(fs, "fault_stats", None)
    if fault_stats is not None:
        keys |= counter_buckets("fault", fault_stats.as_dict())
    keys |= counter_buckets("overload", overload.as_dict())
    if fault_plan is not None:
        keys |= counter_buckets("inject", fault_plan.injected)
    if planner is not None:
        keys |= counter_buckets("plan", planner.plan_classes)
    if net_stats is not None:
        keys |= counter_buckets("net", net_stats.as_dict())
    keys |= counter_buckets("out", Counter(outcomes))
    return tuple(sorted(keys))
