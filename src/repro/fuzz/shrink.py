"""Delta-debugging shrinker: failing tuple -> minimal reproducer.

Classic ddmin over the op schedule, then a fixed catalogue of
dimension simplifications (zero a probability, drop a fault, disable
the net dimension, strip admission, shrink an op's byte count...),
iterated to a fixpoint.  A candidate is accepted only if the caller's
``predicate`` still holds **and** :meth:`ScenarioTuple.size` does not
increase -- which makes the result monotonically non-increasing in
tuple size by construction (a property test pins this, plus
determinism: candidates are generated in a fixed order, the seed only
breaks ties inside ddmin's chunk ordering).

The predicate is arbitrary -- "any finding", "this detector fired",
or the corpus-seeding one: "fails with the mutant planted AND passes
without it" (so a committed reproducer is evidence the *mutant* is the
cause, not an engine quirk).
"""

from __future__ import annotations

import random
from dataclasses import replace
from typing import Callable, Iterator, Tuple

from repro.fs.structures import PAGE_SIZE

from repro.fuzz.tuples import (CrashSpec, FaultSpec, NetSpec, RuntimeSpec,
                               ScenarioTuple)

Predicate = Callable[[ScenarioTuple], bool]


class ShrinkBudget(Exception):
    """Raised internally when max_evals is exhausted (caught: the best
    tuple so far is returned)."""


class _Shrinker:
    def __init__(self, predicate: Predicate, seed: int, max_evals: int):
        self.predicate = predicate
        self.rng = random.Random(seed)
        self.max_evals = max_evals
        self.evals = 0
        self.cache: dict = {}

    def holds(self, t: ScenarioTuple) -> bool:
        key = t.key()
        if key in self.cache:
            return self.cache[key]
        if self.evals >= self.max_evals:
            raise ShrinkBudget
        self.evals += 1
        try:
            t.validate()
            ok = bool(self.predicate(t))
        except Exception:
            ok = False
        self.cache[key] = ok
        return ok

    def accept(self, current: ScenarioTuple,
               candidate: ScenarioTuple) -> bool:
        return (candidate.size() <= current.size()
                and candidate != current
                and self.holds(candidate))

    # -- ddmin over the op schedule -----------------------------------
    def ddmin_ops(self, t: ScenarioTuple) -> ScenarioTuple:
        ops = list(t.workload.ops)
        granularity = 2
        while len(ops) >= 2:
            chunk = max(1, len(ops) // granularity)
            starts = list(range(0, len(ops), chunk))
            self.rng.shuffle(starts)  # seed-determined probe order
            reduced = False
            for start in starts:
                keep = ops[:start] + ops[start + chunk:]
                cand = replace(t, workload=replace(t.workload,
                                                   ops=tuple(keep)))
                if self.accept(t, cand):
                    ops = keep
                    t = cand
                    granularity = max(granularity - 1, 2)
                    reduced = True
                    break
            if not reduced:
                if chunk == 1:
                    break
                granularity = min(granularity * 2, len(ops))
        return t

    # -- dimension simplifications (fixed order) ----------------------
    def candidates(self, t: ScenarioTuple) -> Iterator[ScenarioTuple]:
        f, n, r = t.fault, t.net, t.runtime
        # fault: drop whole dimension, then one element at a time,
        # then zero each probability.
        if f.active:
            yield replace(t, fault=FaultSpec())
        for pool in ("halts", "xfers", "bw"):
            items = getattr(f, pool)
            for i in range(len(items)):
                yield replace(t, fault=replace(
                    f, **{pool: items[:i] + items[i + 1:]}))
        for p in ("p_xfer_error", "p_chan_halt"):
            if getattr(f, p):
                yield replace(t, fault=replace(f, **{p: 0.0}))
        # net: disable, then strip windows/probabilities/load.
        if n.enabled:
            yield replace(t, net=NetSpec())
            for i in range(len(n.partitions)):
                yield replace(t, net=replace(
                    n, partitions=n.partitions[:i] + n.partitions[i + 1:]))
            for i in range(len(n.crashes)):
                yield replace(t, net=replace(
                    n, crashes=n.crashes[:i] + n.crashes[i + 1:]))
            for p in ("p_drop", "p_dup", "p_delay"):
                if getattr(n, p):
                    yield replace(t, net=replace(n, **{p: 0.0}))
            if n.writes_per_client > 1:
                yield replace(t, net=replace(
                    n, writes_per_client=n.writes_per_client // 2))
        # runtime: strip admission and deadlines.
        if r.admission_active or r.deadline_us is not None:
            yield replace(t, runtime=RuntimeSpec())
        if r.deadline_us is not None:
            yield replace(t, runtime=replace(r, deadline_us=None))
        if r.admission_active:
            yield replace(t, runtime=replace(r, rate_ops_per_sec=None,
                                             max_inflight=None))
        # crash: disable the sweep (differential/trace findings only).
        if t.crash.enabled:
            yield replace(t, crash=CrashSpec(enabled=False))
        # workload: fewer files, smaller ops, no gaps.
        if t.workload.nfiles > 1:
            used = {op[1] for op in t.workload.ops}
            if used and max(used) < t.workload.nfiles - 1 or not used:
                yield replace(t, workload=replace(
                    t.workload, nfiles=t.workload.nfiles - 1))
        for i, op in enumerate(t.workload.ops):
            kind, fl, a, b, pseed, gap = op
            ops = list(t.workload.ops)
            if gap:
                ops[i] = (kind, fl, a, b, pseed, 0)
                yield replace(t, workload=replace(t.workload,
                                                  ops=tuple(ops)))
                ops = list(t.workload.ops)
            if kind != "truncate" and b > PAGE_SIZE:
                ops[i] = (kind, fl, a, max(1, b // 2), pseed, gap)
                yield replace(t, workload=replace(t.workload,
                                                  ops=tuple(ops)))
                ops = list(t.workload.ops)
            if a:
                ops[i] = (kind, fl, 0, b, pseed, gap)
                yield replace(t, workload=replace(t.workload,
                                                  ops=tuple(ops)))

    def simplify(self, t: ScenarioTuple) -> ScenarioTuple:
        progress = True
        while progress:
            progress = False
            for cand in self.candidates(t):
                if self.accept(t, cand):
                    t = cand
                    progress = True
                    break
        return t


def shrink(t: ScenarioTuple, predicate: Predicate, *, seed: int = 0,
           max_evals: int = 400) -> Tuple[ScenarioTuple, int]:
    """Reduce ``t`` while ``predicate`` holds; returns ``(minimal,
    evaluations_spent)``.

    Deterministic for a given ``(tuple, predicate, seed)``; the result
    never has a larger :meth:`~ScenarioTuple.size` than the input.  If
    the predicate does not hold on the input, it is returned unchanged
    (nothing to shrink).
    """
    shrinker = _Shrinker(predicate, seed, max_evals)
    try:
        if not shrinker.holds(t):
            return t, shrinker.evals
        rounds = 0
        while rounds < 8:
            rounds += 1
            before = t
            t = shrinker.ddmin_ops(t)
            t = shrinker.simplify(t)
            if t == before:
                break
    except ShrinkBudget:
        pass
    return t, shrinker.evals
