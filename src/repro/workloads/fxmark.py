"""FxMark-style microbenchmarks [58].

Three of FxMark's data-plane workloads, as the paper uses them:

* **DWAL/DWOL** (private-file writes) and **DRBL** (private-file reads)
  drive the Figure 8 single-thread latency comparison and the Figure 9
  throughput-vs-latency sweeps.  Each worker owns a preallocated file
  and issues fixed-size I/Os at rotating offsets.
* **DWOM** (shared-file writes) drives the Figure 11 two-level-locking
  ablation: every worker overwrites distinct blocks of one shared file,
  so the file lock is the bottleneck.

Two driver modes, matching the paper's methodology (§6.2):

* synchronous filesystems run one kernel thread pinned per core;
* EasyIO/Naive run inside the Caladan-like runtime, two uthreads per
  core, optionally colocated with pure-compute uthreads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.analysis.metrics import LatencySeries, ThroughputMeter
from repro.fs.structures import PAGE_SIZE
from repro.runtime import Compute, Runtime, Syscall, Yield
from repro.workloads.factory import make_fs, make_platform, uses_uthread_runtime

US = 1000  # ns per µs


@dataclass
class FxmarkConfig:
    """One microbenchmark run."""

    kind: str = "nova"            # filesystem under test
    op: str = "write"             # "write" | "read"
    io_size: int = 16 * 1024
    workers: int = 1              # worker threads == cores in sync mode
    shared: bool = False          # DWOM: all workers share one file
    duration_us: int = 3000
    warmup_us: int = 600
    file_bytes: int = 4 * 1024 * 1024
    uthreads_per_core: int = 2    # EasyIO runs 2x uthreads (paper §6.2)
    compute_ns: int = 0           # per-op application compute
    compute_uthreads_per_core: int = 0   # colocated pure-compute uthreads
    single_node: bool = False
    steal: bool = True
    model: object = None          # optional CostModel override
    #: Payload-elision mode: skip storing page contents (identical
    #: simulated timing, see ElidingPagePersister) -- for pure
    #: performance sweeps; never for crash/fault/recovery runs.
    elide: bool = False

    def __post_init__(self):
        if self.op not in ("write", "read"):
            raise ValueError(f"op must be 'read' or 'write', got {self.op!r}")
        if self.io_size % PAGE_SIZE:
            raise ValueError("io_size must be page-aligned for FxMark runs")
        if self.io_size > self.file_bytes:
            raise ValueError("io_size larger than the file")


@dataclass
class FxmarkResult:
    """Measured outcome of one run."""

    config: FxmarkConfig
    throughput_ops: float         # ops/s in the measurement window
    bandwidth_gbps: float
    latency: LatencySeries
    cores: int                    # worker cores occupied
    cpu_busy_fraction: float      # of the worker cores, in the window
    total_ops: int
    breakdown: Dict[str, float] = field(default_factory=dict)

    @property
    def mean_us(self) -> float:
        return self.latency.mean_us()

    @property
    def p99_us(self) -> float:
        return self.latency.p99_us()


def settle(fs, result):
    """Wait out an asynchronous op; run its deferred commit syscall if
    the filesystem (the Naive ablation) split the op in two."""
    if result.is_async:
        yield result.pending
    continuation = getattr(result, "continuation", None)
    if continuation is not None:
        ctx = fs.context(record=False)
        yield from continuation(ctx)
    return result


def run_to_completion(engine, proc, what: str = "workload"):
    """Drain the engine and fail loudly if the process stalled."""
    engine.run()
    if proc.is_alive:
        raise RuntimeError(f"{what} stalled (deadlock or missing wakeup)")
    if not proc.ok:
        raise proc.value
    return proc.value


def _prepare_file(fs, path: str, nbytes: int):
    """Create and fill one file (setup phase, costs excluded)."""
    ctx = fs.context(record=False)
    ino = yield from fs.create(ctx, path)
    chunk = 256 * 1024
    off = 0
    while off < nbytes:
        step = min(chunk, nbytes - off)
        ctx = fs.context(record=False)
        result = yield from fs.write(ctx, ino, off, step)
        yield from settle(fs, result)
        off += step
    return ino


def _op_once(fs, ctx, op: str, ino: int, offset: int, size: int):
    if op == "write":
        result = yield from fs.write(ctx, ino, offset, size)
    else:
        result = yield from fs.read(ctx, ino, offset, size)
    return result


def run_fxmark(cfg: FxmarkConfig) -> FxmarkResult:
    """Execute one microbenchmark configuration and return its result."""
    platform = make_platform(single_node=cfg.single_node, model=cfg.model)
    fs = make_fs(cfg.kind, platform, elide_payloads=cfg.elide)
    engine = platform.engine
    n = cfg.workers
    if n < 1:
        raise ValueError("need at least one worker")
    worker_cores = platform.cores[:n]

    # ---- setup: files ------------------------------------------------
    slots = cfg.file_bytes // cfg.io_size
    files: List[int] = []
    uthread_mode = uses_uthread_runtime(cfg.kind)
    total_workers = n * cfg.uthreads_per_core if uthread_mode else n
    n_files = 1 if cfg.shared else total_workers
    def setup():
        for i in range(n_files):
            ino = yield from _prepare_file(fs, f"/fx{i}", cfg.file_bytes)
            files.append(ino)
    proc = engine.process(setup())
    run_to_completion(engine, proc, "fxmark setup")

    t_start = engine.now
    warmup_end = t_start + cfg.warmup_us * US
    t_end = t_start + cfg.duration_us * US
    meter = ThroughputMeter(warmup_end, t_end)
    lat = LatencySeries(f"{cfg.kind}-{cfg.op}")
    busy_at_warmup: List[int] = []

    def snapshot_busy():
        yield engine.sleep(warmup_end - engine.now)
        busy_at_warmup.extend(core.busy_ns() for core in worker_cores)
    engine.process(snapshot_busy())

    def offset_for(worker: int, i: int) -> int:
        if cfg.shared:
            # DWOM: distinct rotating blocks of the shared file.
            return ((worker + i * n) % slots) * cfg.io_size
        return (i % slots) * cfg.io_size

    breakdown_sum: Dict[str, float] = {}
    breakdown_ops = 0

    def account(result):
        nonlocal breakdown_ops
        if result.ctx is not None and engine.now >= warmup_end:
            for phase, ns in result.ctx.breakdown.items():
                breakdown_sum[phase] = breakdown_sum.get(phase, 0.0) + ns
            breakdown_ops += 1

    if uthread_mode:
        runtime = Runtime(platform, cores=worker_cores, steal=cfg.steal)

        def ut_worker(widx: int, ino: int):
            i = 0
            while engine.now < t_end:
                off = offset_for(widx, i)
                t0 = engine.now
                result = yield Syscall(
                    lambda ctx, o=off: _op_once(fs, ctx, cfg.op, ino, o,
                                                cfg.io_size))
                if engine.now >= warmup_end:
                    lat.record(engine.now - t0)
                meter.record(engine.now, cfg.io_size)
                account(result)
                if cfg.compute_ns:
                    yield Compute(cfg.compute_ns)
                i += 1

        def compute_worker():
            # Scientific-computation uthread (Fig 11): computes in
            # slices and yields cooperatively between them.
            while engine.now < t_end:
                yield Compute(5 * US)
                yield Yield()

        for u in range(total_workers):
            ino = files[0] if cfg.shared else files[u % n_files]
            runtime.spawn(ut_worker(u, ino), core=u % n, name=f"fx{u}")
        for c in range(n * cfg.compute_uthreads_per_core):
            runtime.spawn(compute_worker(), core=c % n, name=f"cpu{c}")
        engine.run()
        if runtime.active_uthreads:
            # This really happens: the Naive ablation holds the file
            # lock across its two syscalls, so colocating two DWOM
            # uthreads on one core deadlocks (§3 of the paper).
            raise RuntimeError(
                f"{runtime.active_uthreads} uthreads deadlocked "
                f"({cfg.kind} on a shared file: the §3 lock-across-"
                f"scheduling deadlock)")
    else:
        def sync_worker(widx: int, ino: int, core):
            i = 0
            core.mark_busy(f"fx{widx}")
            try:
                while engine.now < t_end:
                    off = offset_for(widx, i)
                    ctx = fs.context(core=core)
                    t0 = engine.now
                    result = yield from _op_once(fs, ctx, cfg.op, ino, off,
                                                 cfg.io_size)
                    # Busy-poll the completion (single-thread EasyIO
                    # latency mode; sync filesystems never hit this) and
                    # run any deferred commit (the Naive ablation).
                    yield from settle(fs, result)
                    if engine.now >= warmup_end:
                        lat.record(engine.now - t0)
                    meter.record(engine.now, cfg.io_size)
                    account(result)
                    if cfg.compute_ns:
                        yield engine.sleep(cfg.compute_ns)
                    i += 1
            finally:
                core.mark_idle()

        procs = [engine.process(
                     sync_worker(w, files[0] if cfg.shared else files[w],
                                 worker_cores[w]),
                     name=f"fx{w}")
                 for w in range(n)]
        engine.run()
        for proc in procs:
            if not proc.ok:  # pragma: no cover
                raise proc.value

    window = t_end - warmup_end
    if busy_at_warmup:
        busy = sum(core.busy_ns() - b0
                   for core, b0 in zip(worker_cores, busy_at_warmup))
        cpu_fraction = busy / (len(worker_cores) * window)
    else:  # pragma: no cover - warmup snapshot always runs
        cpu_fraction = 1.0
    avg_breakdown = {p: v / breakdown_ops for p, v in breakdown_sum.items()} \
        if breakdown_ops else {}
    return FxmarkResult(
        config=cfg,
        throughput_ops=meter.ops_per_sec(),
        bandwidth_gbps=meter.bandwidth_gbps(),
        latency=lat,
        cores=n,
        cpu_busy_fraction=min(1.0, cpu_fraction),
        total_ops=meter.ops,
        breakdown=avg_breakdown,
    )


def measure_single_op(kind: str, op: str, io_size: int,
                      single_node: bool = False, repeats: int = 32,
                      model=None, elide: bool = False):
    """Single-threaded per-op latency + CPU breakdown (Figures 1 and 8).

    One worker, busy-polling completions, private preallocated file.
    Returns ``(mean_latency_ns, mean_cpu_ns, breakdown_dict)``.
    """
    platform = make_platform(single_node=single_node, model=model)
    fs = make_fs(kind, platform, elide_payloads=elide)
    engine = platform.engine
    file_bytes = max(4 * 1024 * 1024, io_size * 4)
    slots = file_bytes // io_size
    out = {"lat": 0, "cpu": 0, "bd": {}, "n": 0}

    def run():
        ino = yield from _prepare_file(fs, "/probe", file_bytes)
        # Warm two ops, then measure.
        for i in range(repeats + 2):
            off = (i % slots) * io_size
            ctx = fs.context()
            t0 = engine.now
            result = yield from _op_once(fs, ctx, op, ino, off, io_size)
            yield from settle(fs, result)
            if i < 2:
                continue
            out["lat"] += engine.now - t0
            out["cpu"] += ctx.cpu_ns
            for phase, ns in ctx.breakdown.items():
                out["bd"][phase] = out["bd"].get(phase, 0) + ns
            out["n"] += 1

    proc = engine.process(run())
    run_to_completion(engine, proc, "single-op probe")
    n = out["n"]
    return (out["lat"] / n, out["cpu"] / n,
            {p: v / n for p, v in out["bd"].items()})
