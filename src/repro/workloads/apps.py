"""The eight real-world applications (Table 1, Figure 10) and the
web-server + garbage-collector colocation (Figure 12).

Each application is modelled as a closed loop of
``read -> compute -> (sometimes) write`` with Table 1's exact I/O sizes
and read/write ratios.  The compute-per-operation constants are chosen
from the underlying libraries' published per-byte costs so each app
lands in the paper's classification:

* Snappy, Grep, KNN, BFS, Fileserver -- I/O-intensive or balanced
  (EasyIO wins big);
* JPGDecoder, AES -- computation-dominated (EasyIO wins slightly);
* Webserver -- high contention on the shared log (EasyIO capped).

As in the paper, synchronous filesystems run one worker thread per
core; EasyIO runs workers as uthreads (two per core) on the runtime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.metrics import LatencySeries, ThroughputMeter, Timeline
from repro.core.channel_manager import AppProfile
from repro.runtime import Compute, Runtime, Sleep, Syscall
from repro.workloads.factory import make_fs, make_platform, uses_uthread_runtime
from repro.workloads.fxmark import US, _prepare_file, run_to_completion, settle

KB = 1024
MB = 1024 * 1024


@dataclass(frozen=True)
class AppSpec:
    """One Table-1 application."""

    name: str
    read_bytes: int            # avg read size per loop iteration
    write_bytes: int           # avg write size (0 = read-only)
    write_every: int           # one write per this many iterations
    compute_ns: int            # application compute per iteration
    shared_log: bool = False   # webserver: all workers append one log
    fileserver: bool = False   # create/write/read/stat/delete cycle

    @property
    def rw_ratio(self) -> str:
        if self.write_bytes == 0:
            return "1:0"
        if self.write_every > 1:
            return f"{self.write_every}:1"
        return "1:1"


#: Table 1, with calibrated compute costs (see module docstring).
APPS: Dict[str, AppSpec] = {
    "snappy": AppSpec("Snappy", read_bytes=910 * KB, write_bytes=1900 * KB,
                      write_every=1, compute_ns=400_000),
    "jpgdecoder": AppSpec("JPGDecoder", read_bytes=343 * KB,
                          write_bytes=6300 * KB, write_every=1,
                          compute_ns=9_000_000),
    "aes": AppSpec("AES", read_bytes=64 * KB, write_bytes=64 * KB,
                   write_every=1, compute_ns=450_000),
    "grep": AppSpec("Grep", read_bytes=2 * MB, write_bytes=0,
                    write_every=1, compute_ns=350_000),
    "knn": AppSpec("KNN", read_bytes=1 * MB, write_bytes=0,
                   write_every=1, compute_ns=470_000),
    "bfs": AppSpec("BFS", read_bytes=1 * MB, write_bytes=0,
                   write_every=1, compute_ns=120_000),
    "fileserver": AppSpec("Fileserver", read_bytes=1 * MB,
                          write_bytes=1040 * KB, write_every=1,
                          compute_ns=30_000, fileserver=True),
    "webserver": AppSpec("Webserver", read_bytes=256 * KB,
                         write_bytes=16 * KB, write_every=10,
                         compute_ns=15_000, shared_log=True),
}


@dataclass
class AppResult:
    """Outcome of one application run."""

    app: str
    kind: str
    cores: int
    throughput_ops: float
    latency: LatencySeries
    total_ops: int
    cpu_busy_fraction: float


def run_app(kind: str, app_name: str, cores: int,
            duration_us: int = 40_000, warmup_us: int = 8_000,
            single_node: bool = False) -> AppResult:
    """Run one application on one filesystem with ``cores`` workers."""
    spec = APPS[app_name.lower()]
    platform = make_platform(single_node=single_node)
    fs = make_fs(kind, platform)
    engine = platform.engine
    uthread_mode = uses_uthread_runtime(kind)
    workers = cores * 2 if uthread_mode else cores
    worker_cores = platform.cores[:cores]

    # ---- setup ---------------------------------------------------------
    inputs: List[int] = []
    outputs: List[int] = []
    log_ino: List[int] = []

    def setup():
        for w in range(workers):
            ino = yield from _prepare_file(fs, f"/in{w}",
                                           max(spec.read_bytes, 4096))
            inputs.append(ino)
            if spec.write_bytes and not spec.shared_log:
                ctx = fs.context(record=False)
                out = yield from fs.create(ctx, f"/out{w}")
                outputs.append(out)
        if spec.shared_log:
            ctx = fs.context(record=False)
            ino = yield from fs.create(ctx, "/log")
            log_ino.append(ino)
        if spec.fileserver:
            for w in range(workers):
                ctx = fs.context(record=False)
                yield from fs.mkdir(ctx, f"/dir{w}")

    proc = engine.process(setup())
    run_to_completion(engine, proc, "app setup")

    t_start = engine.now
    warmup_end = t_start + warmup_us * US
    t_end = t_start + duration_us * US
    meter = ThroughputMeter(warmup_end, t_end)
    lat = LatencySeries(f"{kind}-{app_name}")
    busy0: List[int] = []

    def snapshot():
        yield engine.sleep(warmup_end - engine.now)
        busy0.extend(c.busy_ns() for c in worker_cores)
    engine.process(snapshot())

    def iteration_ops(w: int, i: int):
        """The (op-factory, is_write) steps of one loop iteration."""
        steps = []
        if spec.fileserver:
            path = f"/dir{w}/f{i}"
            steps.append(lambda ctx: fs.create(ctx, path))
            steps.append(lambda ctx, p=path: _write_path(fs, ctx, p,
                                                         spec.write_bytes))
            steps.append(lambda ctx, p=path: _read_path(fs, ctx, p,
                                                        spec.read_bytes))
            steps.append(lambda ctx, p=path: fs.stat(ctx, p))
            steps.append(lambda ctx, p=path: fs.unlink(ctx, p))
            return steps
        ino = inputs[w]
        steps.append(lambda ctx: fs.read(ctx, ino, 0, spec.read_bytes))
        if spec.write_bytes and i % spec.write_every == 0:
            if spec.shared_log:
                target = log_ino[0]
                # Append to the shared log at a bounded rotating offset
                # (a real log is truncated/rotated; this keeps the
                # contention pattern without unbounded growth).
                off = (i % 256) * spec.write_bytes
                steps.append(lambda ctx, o=off: fs.write(
                    ctx, target, o, spec.write_bytes))
            else:
                target = outputs[w]
                steps.append(lambda ctx: fs.write(
                    ctx, target, 0, spec.write_bytes))
        return steps

    if uthread_mode:
        runtime = Runtime(platform, cores=worker_cores)

        def ut_worker(w: int):
            i = 0
            # Stagger start-up so identical per-op times do not convoy
            # every worker into the same I/O phase.
            yield Sleep(1 + (w * (spec.compute_ns + 40_000)) // max(1, workers))
            while engine.now < t_end:
                t0 = engine.now
                for make in iteration_ops(w, i):
                    yield Syscall(make)
                if spec.compute_ns:
                    yield Compute(spec.compute_ns)
                if engine.now >= warmup_end:
                    lat.record(engine.now - t0)
                meter.record(engine.now, spec.read_bytes)
                i += 1

        for w in range(workers):
            runtime.spawn(ut_worker(w), core=w % cores, name=f"{app_name}{w}")
        engine.run()
    else:
        def sync_worker(w: int, core):
            i = 0
            core.mark_busy(f"{app_name}{w}")
            try:
                # Same start-up stagger as the uthread driver.
                yield engine.sleep(
                    1 + (w * (spec.compute_ns + 40_000)) // max(1, workers))
                while engine.now < t_end:
                    t0 = engine.now
                    for make in iteration_ops(w, i):
                        ctx = fs.context(core=core, record=False)
                        result = yield from make(ctx)
                        if hasattr(result, "is_async"):
                            yield from settle(fs, result)
                    if spec.compute_ns:
                        yield engine.sleep(spec.compute_ns)
                    if engine.now >= warmup_end:
                        lat.record(engine.now - t0)
                    meter.record(engine.now, spec.read_bytes)
                    i += 1
            finally:
                core.mark_idle()

        procs = [engine.process(sync_worker(w, worker_cores[w]),
                                name=f"{app_name}{w}")
                 for w in range(cores)]
        engine.run()
        for proc in procs:
            if not proc.ok:  # pragma: no cover
                raise proc.value

    window = t_end - warmup_end
    busy = sum(c.busy_ns() - b for c, b in zip(worker_cores, busy0)) \
        if busy0 else window * cores
    return AppResult(
        app=spec.name, kind=kind, cores=cores,
        throughput_ops=meter.ops_per_sec(),
        latency=lat, total_ops=meter.ops,
        cpu_busy_fraction=min(1.0, busy / (cores * window)),
    )


def _write_path(fs, ctx, path: str, nbytes: int):
    ino = yield from fs.lookup(ctx, path)
    result = yield from fs.write(ctx, ino, 0, nbytes)
    return result


def _read_path(fs, ctx, path: str, nbytes: int):
    ino = yield from fs.lookup(ctx, path)
    result = yield from fs.read(ctx, ino, 0, nbytes)
    return result


# ----------------------------------------------------------------------
# Figure 12: web server (L-app) + garbage collector (B-app) colocation
# ----------------------------------------------------------------------
@dataclass
class ColocationResult:
    """Web-server latency timeline under a periodic GC."""

    mode: str
    timeline: Timeline           # (t, request latency us)
    gc_windows: List             # [(start, end)] of GC activity
    b_limit_trace: List          # channel-manager limit changes

    def max_latency_us(self, during_gc: bool) -> float:
        vals = []
        for t, v in self.timeline.points:
            in_gc = any(s <= t < e for s, e in self.gc_windows)
            if in_gc == during_gc:
                vals.append(v)
        return max(vals) if vals else 0.0


def run_webserver_gc(mode: str, duration_us: int = 20_000,
                     request_interval_us: int = 90,
                     html_bytes: int = 64 * KB,
                     gc_bulk_bytes: int = 2 * MB,
                     slo_us: int = 21,
                     b_limit: float = 1.0,
                     seed: int = 7) -> ColocationResult:
    """Reproduce Figure 12's colocation experiment.

    ``mode`` is one of:

    * ``"dma"`` -- the channel manager throttles the GC's DMA channel
      (EasyIO's approach; the B channel is capped near ``b_limit`` GB/s);
    * ``"cpu"`` -- the GC gets fewer CPU cycles (Caladan-style), which
      fails because its data moves via DMA anyway;
    * ``"none"`` -- no throttling.

    The web server issues Poisson-arrival 64 KB reads (L-app); the GC
    periodically copies ``gc_bulk_bytes`` via the filesystem (B-app).
    """
    import random
    if mode not in ("dma", "cpu", "none"):
        raise ValueError(f"unknown throttle mode {mode!r}")
    rng = random.Random(seed)
    # Colocation happens within one socket (one DMA engine), as in the
    # paper's interference study.
    platform = make_platform(single_node=True)
    from repro.core.channel_manager import ChannelManager
    cm = ChannelManager(platform, b_limit=b_limit)
    fs = make_fs("easyio", platform, channel_manager=cm)
    engine = platform.engine

    web_app = cm.register(AppProfile("webserver", kind="L",
                                     slo_ns=slo_us * US))
    gc_app = cm.register(AppProfile("gc", kind="B"))

    html: List[int] = []
    gc_files: List[int] = []

    def setup():
        for i in range(8):
            ino = yield from _prepare_file(fs, f"/html{i}", html_bytes)
            html.append(ino)
        src = yield from _prepare_file(fs, "/gc_src", gc_bulk_bytes)
        gc_files.append(src)
        for g in range(2):
            ctx = fs.context(record=False)
            dst = yield from fs.create(ctx, f"/gc_dst{g}")
            gc_files.append(dst)

    proc = engine.process(setup())
    run_to_completion(engine, proc, "colocation setup")
    if mode == "dma":
        # Start regulation only now: its epoch ticker would otherwise
        # keep the drain-style setup run() from ever returning.
        cm.start_throttling()

    t_start = engine.now
    t_end = t_start + duration_us * US
    timeline = Timeline("webserver-latency")
    # GC activity: bursts in the middle two quarters, like the paper's
    # two GC windows over the 10 s trace.
    q = duration_us * US // 8
    gc_windows = [(t_start + 1 * q, t_start + 3 * q),
                  (t_start + 5 * q, t_start + 7 * q)]

    runtime = Runtime(platform, cores=platform.cores[:4])

    def web_client():
        while engine.now < t_end:
            gap = max(1, int(rng.expovariate(1.0 / (request_interval_us * US))))
            yield Sleep(gap)
            if engine.now >= t_end:
                break
            ino = html[rng.randrange(len(html))]
            t0 = engine.now
            result = yield Syscall(
                lambda ctx, i=ino: _with_app(fs.read(ctx, i, 0, html_bytes),
                                             ctx, web_app))
            latency = engine.now - t0
            web_app.observe(latency)
            timeline.record(engine.now, latency / 1000.0)

    def gc_worker(idx: int):
        src, dst = gc_files[0], gc_files[1 + idx]
        while engine.now < t_end:
            in_gc = any(s <= engine.now < e for s, e in gc_windows)
            if not in_gc:
                yield Sleep(50 * US)
                continue
            # One bulk copy: read the source region, write it back out.
            yield Syscall(lambda ctx: _with_app(
                fs.read(ctx, src, 0, gc_bulk_bytes), ctx, gc_app))
            yield Syscall(lambda ctx: _with_app(
                fs.write(ctx, dst, 0, gc_bulk_bytes), ctx, gc_app))
            if mode == "cpu":
                # CPU throttling: the GC is given far fewer cycles, so
                # it sleeps between copies -- but its DMA traffic is
                # unaffected (the paper's point).
                yield Sleep(120 * US)

    for c in range(3):
        runtime.spawn(web_client(), core=c, name=f"web{c}")
    # The GC keeps a couple of bulk copies in flight (a real collector
    # pipelines its evacuation I/O).
    for g in range(2):
        runtime.spawn(gc_worker(g), core=3, name=f"gc{g}")
    engine.run(until=t_end + 2000 * US)
    cm.stop()
    engine.run()
    return ColocationResult(mode=mode, timeline=timeline,
                            gc_windows=gc_windows,
                            b_limit_trace=list(cm.limit_changes))


def _with_app(op, ctx, app: AppProfile):
    """Tag the context with the issuing app, then run the op."""
    ctx.app = app
    result = yield from op
    return result
