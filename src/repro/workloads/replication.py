"""Replicated-cluster workload: clients writing through the runtime.

Drives a :class:`~repro.net.cluster.Cluster` with closed-loop clients
under a seeded :class:`~repro.net.plan.NetFaultPlan` and reports the
robustness headline numbers: goodput under faults, failover time, and
(optionally) a fully oracle-checked trace.

Each client owns one network endpoint and issues every write as a
fresh **uthread** through the existing runtime middleware: the write
is a :class:`~repro.runtime.Syscall` built by
:meth:`~repro.net.cluster.Cluster.write_op`, so per-op deadlines
propagate through ``OpContext`` exactly like single-node filesystem
ops, and a missed deadline surfaces as
:class:`~repro.fs.nova.DeadlineExceeded` in the client -- counted, not
hung.  One write is in flight per endpoint at a time (the client RPC
protocol matches responses by request id on a per-endpoint inbox).

Determinism: the run is a pure function of ``ReplicationConfig`` --
one seeded RNG paces client gaps, the fault plan injects from its own
seed, and all time is simulated.  Any failing configuration replays
exactly from its seeds.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

from repro.analysis.metrics import LatencySeries
from repro.fs.nova import DeadlineExceeded, FsError
from repro.net import Cluster, ClusterConfig, NetFaultPlan, NetStats
from repro.net.plan import CRASH, PARTITION
from repro.obs import Tracer, TraceChecker, Violation
from repro.runtime import OverloadRejected, Runtime, Syscall
from repro.sim import Engine, WaitTimeout
from repro.workloads.fxmark import US

#: Oracles exercised by replication traces (subset keyed to repl events
#: plus the lease discipline); the full registry also passes, these
#: just name the cluster-specific contract.
CLUSTER_ORACLES = ("cluster-ack-durable", "replica-sn-monotonic",
                   "one-primary-per-lease-epoch")


@dataclass
class ReplicationConfig:
    """One replicated-cluster run."""

    n_nodes: int = 3
    quorum: Optional[int] = None      # None = majority
    n_clients: int = 2
    writes_per_client: int = 20
    io_size: int = 4096
    #: Closed-loop think time between a client's writes.
    gap_ns: int = 200_000
    #: Per-write budget past issue; ``None`` = unbounded writes.
    deadline_us: Optional[int] = None
    seed: int = 42
    # -- network fault plan -------------------------------------------
    p_drop: float = 0.0
    p_dup: float = 0.0
    p_delay: float = 0.0
    max_faults: int = 64
    #: Explicit PartitionFault / NodeCrashFault windows.
    schedule: Sequence[Any] = ()
    # -- observability ------------------------------------------------
    #: Trace the run and replay it through the oracle checker.
    check_oracles: bool = True
    #: Simulated-time cap; the run also stops once all clients finish.
    run_until_us: int = 200_000
    cluster_cfg: Optional[ClusterConfig] = None

    def __post_init__(self):
        if self.n_clients < 1 or self.writes_per_client < 1:
            raise ValueError("need at least one client and one write")


@dataclass
class ReplicationResult:
    """Observed outcome of one replicated run."""

    config: ReplicationConfig
    offered: int
    acked: int
    deadline_missed: int
    failed: int                      # other typed failures (should be 0)
    latency: LatencySeries           # acked writes only
    #: (t, epoch, node, expires) per lease grant to a new holder.
    lease_log: List[Tuple]
    #: Trigger-to-grant delay for each failover (epoch > 1 grant).
    failover_times_ns: List[int]
    #: Oracle verdict over the traced run ([] when clean or untraced).
    violations: List[Violation]
    stats: NetStats
    elapsed_ns: int
    #: True when every client finished inside the run cap.
    drained: bool

    @property
    def goodput(self) -> float:
        """Fraction of offered writes that were quorum-acked."""
        return self.acked / self.offered if self.offered else 0.0

    @property
    def goodput_ops_per_sec(self) -> float:
        if not self.elapsed_ns:
            return 0.0
        return self.acked / (self.elapsed_ns / 1e9)


def _failover_times(lease_log: List[Tuple],
                    fault_trace: List[Tuple]) -> List[int]:
    """Delay from each failover's trigger (the latest crash/partition
    before the grant, else the previous grant's lease start) to the
    new-holder grant."""
    out: List[int] = []
    triggers = sorted(t for t, kind, *_ in fault_trace
                      if kind in (CRASH, PARTITION))
    for i, (t, epoch, _node, _exp) in enumerate(lease_log):
        if epoch <= 1:
            continue
        before = [x for x in triggers if x <= t]
        base = before[-1] if before else lease_log[i - 1][0]
        out.append(t - base)
    return out


def run_replication(cfg: ReplicationConfig) -> ReplicationResult:
    """Execute one replicated-cluster configuration."""
    from repro.workloads.factory import make_platform

    platform = make_platform(single_node=True)
    engine: Engine = platform.engine
    if cfg.check_oracles and engine.tracer is None:
        # Respect a tracer already installed by default_tracing(); the
        # caller then owns the buffer (e.g. to dump it as Perfetto JSON).
        engine.tracer = Tracer(engine)
    cluster = Cluster(engine, n=cfg.n_nodes, quorum=cfg.quorum,
                      cfg=cfg.cluster_cfg)
    plan = NetFaultPlan(seed=cfg.seed, p_drop=cfg.p_drop, p_dup=cfg.p_dup,
                        p_delay=cfg.p_delay, max_faults=cfg.max_faults,
                        schedule=cfg.schedule)
    plan.install(cluster.network, cluster=cluster)
    runtime = Runtime(platform, cores=platform.cores[:1])

    rng = random.Random(cfg.seed)
    lat = LatencySeries("replication")
    counts = {"offered": 0, "acked": 0, "deadline_missed": 0, "failed": 0}
    done = [0]

    def one_write(ep, t0: int):
        try:
            yield Syscall(cluster.write_op(ep, cfg.io_size))
        except DeadlineExceeded:
            counts["deadline_missed"] += 1
            return
        except (OverloadRejected, FsError, WaitTimeout):
            counts["failed"] += 1
            return
        lat.record(engine.now - t0)
        counts["acked"] += 1

    def client(name: str):
        ep = cluster.client(name)
        for i in range(cfg.writes_per_client):
            counts["offered"] += 1
            deadline = (engine.now + cfg.deadline_us * US
                        if cfg.deadline_us is not None else None)
            ut = runtime.spawn(one_write(ep, engine.now),
                               name=f"{name}.w{i}", deadline=deadline)
            yield ut.done
            yield engine.timeout(max(1, round(
                cfg.gap_ns * (0.5 + rng.random()))))
        done[0] += 1

    t0 = engine.now
    for c in range(cfg.n_clients):
        engine.process(client(f"c{c}"), name=f"client-c{c}")

    # The replica ticks keep timers pending forever, so drive the run
    # in slices until the clients drain (or the cap trips).
    cap = t0 + cfg.run_until_us * US
    while done[0] < cfg.n_clients and engine.now < cap:
        engine.run(until=min(cap, engine.now + 1_000 * US))
    elapsed = engine.now - t0

    violations: List[Violation] = []
    if cfg.check_oracles:
        violations = TraceChecker().check(engine.tracer.events)

    return ReplicationResult(
        config=cfg,
        offered=counts["offered"],
        acked=counts["acked"],
        deadline_missed=counts["deadline_missed"],
        failed=counts["failed"],
        latency=lat,
        lease_log=list(cluster.lease_log),
        failover_times_ns=_failover_times(cluster.lease_log, plan.trace),
        violations=violations,
        stats=cluster.stats,
        elapsed_ns=elapsed,
        drained=done[0] == cfg.n_clients,
    )
