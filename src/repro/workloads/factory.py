"""Build platforms and filesystems by name (the §6.1 configurations)."""

from __future__ import annotations

from typing import Optional

from repro.baselines.nova_dma import NovaDmaFS
from repro.baselines.odinfs import OdinfsFS
from repro.core.channel_manager import ChannelManager
from repro.core.easyio import EasyIoFS, NaiveAsyncFS
from repro.fs.nova import NovaFS
from repro.fs.pmimage import PMImage
from repro.hw.params import CostModel
from repro.hw.platform import Platform, PlatformConfig

#: The filesystems of the evaluation (Figure 8-10 series).
FS_KINDS = ("nova", "nova-dma", "odinfs", "easyio", "naive")

#: Display names matching the paper's legends.
FS_LABELS = {
    "nova": "NOVA",
    "nova-dma": "NOVA-DMA",
    "odinfs": "ODINFS",
    "easyio": "EasyIO",
    "naive": "Naive",
}


def make_platform(single_node: bool = False,
                  model: Optional[CostModel] = None) -> Platform:
    """The paper testbed, or the single-NUMA-node §2.2 variant."""
    config = (PlatformConfig.single_node() if single_node
              else PlatformConfig.paper_testbed())
    return Platform(config, model=model)


def make_fs(kind: str, platform: Platform, record: bool = False, **kwargs):
    """Construct and mount the named filesystem on ``platform``."""
    image = PMImage(record=record)
    if kind == "nova":
        fs = NovaFS(platform, image)
    elif kind == "nova-dma":
        fs = NovaDmaFS(platform, image)
    elif kind == "odinfs":
        fs = OdinfsFS(platform, image,
                      delegation_cores=kwargs.pop("delegation_cores", None))
    elif kind == "easyio":
        cm = kwargs.pop("channel_manager", None) or ChannelManager(platform)
        fs = EasyIoFS(platform, image, channel_manager=cm)
    elif kind == "naive":
        cm = kwargs.pop("channel_manager", None) or ChannelManager(platform)
        fs = NaiveAsyncFS(platform, image, channel_manager=cm)
    else:
        raise ValueError(f"unknown filesystem kind {kind!r}; "
                         f"choose from {FS_KINDS}")
    if kwargs:
        raise TypeError(f"unused arguments for {kind}: {sorted(kwargs)}")
    return fs.mount()


def max_workers(kind: str, platform: Platform) -> int:
    """How many worker cores the filesystem leaves available.

    Odinfs reserves 12 cores per NUMA node for delegation threads
    (§6.1), so only the remainder can run application workers.
    """
    total = platform.config.total_cores
    if kind == "odinfs":
        return max(1, total - 12 * platform.config.sockets)
    return total


def uses_uthread_runtime(kind: str) -> bool:
    """Whether the filesystem's clients run inside the Caladan runtime."""
    return kind in ("easyio", "naive")
