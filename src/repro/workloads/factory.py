"""Build platforms and filesystems by name (the §6.1 configurations).

The name -> class mapping is a real registry (:data:`FS_REGISTRY`):
benchmarks, examples, and the crash harness resolve filesystems
through :func:`fs_class` / :func:`make_fs` instead of importing the
variant classes directly, and :func:`register_fs` lets experiment
code add variants without touching this module.
"""

from __future__ import annotations

import inspect
from typing import Dict, Optional, Type

from repro.baselines.nova_dma import NovaDmaFS
from repro.baselines.odinfs import OdinfsFS
from repro.core.easyio import EasyIoFS, NaiveAsyncFS
from repro.fs.nova import NovaFS
from repro.fs.pmimage import PMImage
from repro.hw.params import CostModel
from repro.hw.platform import Platform, PlatformConfig

#: The filesystem registry: evaluation name -> class (Figure 8-10 series).
FS_REGISTRY: Dict[str, Type[NovaFS]] = {
    "nova": NovaFS,
    "nova-dma": NovaDmaFS,
    "odinfs": OdinfsFS,
    "easyio": EasyIoFS,
    "naive": NaiveAsyncFS,
}

#: The filesystems of the evaluation, in presentation order.
FS_KINDS = tuple(FS_REGISTRY)

#: Display names matching the paper's legends.
FS_LABELS = {
    "nova": "NOVA",
    "nova-dma": "NOVA-DMA",
    "odinfs": "ODINFS",
    "easyio": "EasyIO",
    "naive": "Naive",
}


def register_fs(kind: str, cls: Type[NovaFS],
                label: Optional[str] = None) -> Type[NovaFS]:
    """Register a filesystem class under an evaluation name.

    Returns the class, so it can be used as a decorator:
    ``@register_fs("my-variant", label="MyFS")`` is not supported --
    call it as ``register_fs("my-variant", MyFS)``.
    """
    FS_REGISTRY[kind] = cls
    FS_LABELS.setdefault(kind, label or getattr(cls, "name", kind))
    return cls


def fs_class(kind: str) -> Type[NovaFS]:
    """Resolve an evaluation name to its filesystem class."""
    try:
        return FS_REGISTRY[kind]
    except KeyError:
        raise ValueError(f"unknown filesystem kind {kind!r}; "
                         f"choose from {tuple(FS_REGISTRY)}") from None


def make_platform(single_node: bool = False,
                  model: Optional[CostModel] = None) -> Platform:
    """The paper testbed, or the single-NUMA-node §2.2 variant."""
    config = (PlatformConfig.single_node() if single_node
              else PlatformConfig.paper_testbed())
    return Platform(config, model=model)


def make_fs(kind: str, platform: Platform, record: bool = False,
            image: Optional[PMImage] = None, **kwargs):
    """Construct and mount the named filesystem on ``platform``.

    ``kwargs`` are forwarded to the class's constructor when its
    signature accepts them (e.g. ``delegation_cores`` for Odinfs,
    ``channel_manager``/``fault_tolerant`` for EasyIO); anything the
    constructor does not take raises TypeError.
    """
    cls = fs_class(kind)
    if image is None:
        image = PMImage(record=record)
    params = inspect.signature(cls.__init__).parameters
    ctor_kwargs = {name: kwargs.pop(name) for name in list(kwargs)
                   if name in params}
    if kwargs:
        raise TypeError(f"unused arguments for {kind}: {sorted(kwargs)}")
    return cls(platform, image, **ctor_kwargs).mount()


def max_workers(kind: str, platform: Platform) -> int:
    """How many worker cores the filesystem leaves available.

    Odinfs reserves 12 cores per NUMA node for delegation threads
    (§6.1), so only the remainder can run application workers.
    """
    total = platform.config.total_cores
    if kind == "odinfs":
        return max(1, total - 12 * platform.config.sockets)
    return total


def uses_uthread_runtime(kind: str) -> bool:
    """Whether the filesystem's clients run inside the Caladan runtime."""
    return kind in ("easyio", "naive")
