"""Raw hardware microbenchmarks (the §2.2 empirical study, Figs 2-4).

These drivers talk to the platform's memory and DMA engine directly --
no filesystem -- reproducing the test tool the authors built: "issue
read (write) requests from (to) Optane DCPMMs through the DMA engine or
CPU-involved memcpy by tuning the number of CPU cores, I/O sizes, batch
size, and DMA channels", on one NUMA node with 3 DCPMMs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.analysis.metrics import Timeline
from repro.hw.dma import DmaDescriptor
from repro.hw.platform import Platform, PlatformConfig

US = 1000


@dataclass
class BandwidthPoint:
    """One measured configuration."""

    mode: str          # "memcpy" | "dma"
    write: bool
    cores: int
    io_size: int
    batch: int         # descriptors per submission (1 = no batch)
    channels: int
    bandwidth_gbps: float


def measure_copy_bandwidth(mode: str, write: bool, cores: int, io_size: int,
                           batch: int = 1, channels: int = 1,
                           duration_us: int = 800,
                           platform: Optional[Platform] = None) -> BandwidthPoint:
    """Aggregate copy bandwidth for one (mode, cores, size, batch,
    channels) configuration on the single-node platform."""
    if mode not in ("memcpy", "dma"):
        raise ValueError(f"mode must be 'memcpy' or 'dma', got {mode!r}")
    platform = platform or Platform(PlatformConfig.single_node())
    engine = platform.engine
    t_end = engine.now + duration_us * US
    moved = [0]

    if mode == "memcpy":
        def worker(idx: int):
            while engine.now < t_end:
                yield from platform.memory.cpu_copy(io_size, write=write,
                                                    tag=idx)
                moved[0] += io_size
        for c in range(cores):
            engine.process(worker(c), name=f"copy{c}")
    else:
        def worker(idx: int):
            channel = platform.dma.channel(idx % channels)
            while engine.now < t_end:
                descs = [DmaDescriptor(io_size, write=write, tag=idx)
                         for _ in range(batch)]
                yield from channel.submit(descs)
                for desc in descs:
                    yield desc.done
                moved[0] += io_size * batch
        for c in range(cores):
            engine.process(worker(c), name=f"dma{c}")

    t0 = engine.now
    engine.run(until=t_end)
    engine.run()  # let in-flight ops finish so the engine drains
    elapsed = max(engine.now - t0, 1)
    return BandwidthPoint(mode=mode, write=write, cores=cores,
                          io_size=io_size, batch=batch, channels=channels,
                          bandwidth_gbps=moved[0] / elapsed)


@dataclass
class InterferenceResult:
    """Figure 4: foreground 64 KB-read latency under background bulk."""

    bg_mode: str                 # "memcpy" | "dma-ex" | "dma-sh"
    timeline: Timeline           # (t, fg latency us)
    gc_windows: List[Tuple[int, int]]

    def fg_max_us(self, during_gc: bool) -> float:
        vals = [v for t, v in self.timeline.points
                if any(s <= t < e for s, e in self.gc_windows) == during_gc]
        return max(vals) if vals else 0.0

    def fg_mean_us(self, during_gc: bool) -> float:
        vals = [v for t, v in self.timeline.points
                if any(s <= t < e for s, e in self.gc_windows) == during_gc]
        return sum(vals) / len(vals) if vals else 0.0


def measure_interference(bg_mode: str, duration_us: int = 12_000,
                         fg_io: int = 64 * 1024,
                         bg_bulk: int = 2 * 1024 * 1024) -> InterferenceResult:
    """Reproduce Figure 4: a foreground reader vs periodic bulk movement.

    The foreground issues 64 KB DMA reads back to back on channel 0 and
    logs each latency.  The background periodically moves 2 MB (a GC):
    via memcpy, via DMA on its own channel (``dma-ex``), or sharing the
    foreground's channel (``dma-sh`` -- head-of-line blocking).
    """
    if bg_mode not in ("memcpy", "dma-ex", "dma-sh"):
        raise ValueError(f"unknown background mode {bg_mode!r}")
    platform = Platform(PlatformConfig.single_node())
    engine = platform.engine
    t_start = engine.now
    t_end = t_start + duration_us * US
    q = duration_us * US // 8
    gc_windows = [(t_start + 1 * q, t_start + 3 * q),
                  (t_start + 5 * q, t_start + 7 * q)]
    timeline = Timeline(f"fg-latency-{bg_mode}")
    fg_channel = platform.dma.channel(0)
    bg_channel = fg_channel if bg_mode == "dma-sh" else platform.dma.channel(1)

    def foreground():
        while engine.now < t_end:
            t0 = engine.now
            desc = DmaDescriptor(fg_io, write=False, tag="fg")
            yield from fg_channel.submit([desc])
            yield desc.done
            timeline.record(engine.now, (engine.now - t0) / 1000.0)

    def background():
        chunk = 512 * 1024   # the GC pipelines its bulk in large pieces
        while engine.now < t_end:
            if not any(s <= engine.now < e for s, e in gc_windows):
                yield engine.sleep(20 * US)
                continue
            if bg_mode == "memcpy":
                for _ in range(bg_bulk // chunk):
                    yield from platform.memory.cpu_copy(chunk, write=False,
                                                        tag="bg")
                    yield from platform.memory.cpu_copy(chunk, write=True,
                                                        tag="bg")
            else:
                # One read + one write descriptor pair per chunk,
                # submitted together so both directions stay in flight.
                descs = []
                for _ in range(bg_bulk // chunk):
                    descs.append(DmaDescriptor(chunk, write=False, tag="bg"))
                    descs.append(DmaDescriptor(chunk, write=True, tag="bg"))
                for i in range(0, len(descs), 8):
                    yield from bg_channel.submit(descs[i:i + 8])
                for desc in descs:
                    yield desc.done

    engine.process(foreground(), name="fg")
    engine.process(background(), name="bg")
    engine.run(until=t_end)
    engine.run()
    return InterferenceResult(bg_mode=bg_mode, timeline=timeline,
                              gc_windows=gc_windows)
