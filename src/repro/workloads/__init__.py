"""Workloads driving the evaluation.

* :mod:`repro.workloads.factory` -- build platforms and filesystems by
  name, with the paper's default configurations.
* :mod:`repro.workloads.fxmark` -- FxMark-style microbenchmarks
  (private-file read/write sweeps, shared-file DWOM contention) used by
  Figures 1, 8, 9 and 11.
* :mod:`repro.workloads.apps` -- the eight real-world applications of
  Table 1 / Figure 10, plus the Poisson web server + GC colocation of
  Figures 4 and 12.
* :mod:`repro.workloads.overload` -- open-loop Poisson arrivals with
  per-request deadlines, driving the admission-control / watchdog
  robustness experiment.
* :mod:`repro.workloads.replication` -- closed-loop clients writing
  into a replicated cluster under a network fault plan, driving the
  multi-node robustness experiment (goodput, failover time, oracles).
"""

from repro.workloads.factory import FS_KINDS, make_fs, make_platform, max_workers
from repro.workloads.fxmark import (
    FxmarkConfig,
    FxmarkResult,
    measure_single_op,
    run_fxmark,
)
from repro.workloads.overload import OverloadConfig, OverloadResult, run_overload
from repro.workloads.replication import (
    ReplicationConfig,
    ReplicationResult,
    run_replication,
)

__all__ = [
    "FS_KINDS",
    "FxmarkConfig",
    "FxmarkResult",
    "OverloadConfig",
    "OverloadResult",
    "ReplicationConfig",
    "ReplicationResult",
    "make_fs",
    "make_platform",
    "max_workers",
    "measure_single_op",
    "run_fxmark",
    "run_overload",
    "run_replication",
]
