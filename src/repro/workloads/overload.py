"""Open-loop overload workload (robustness experiment).

Unlike the closed-loop FxMark drivers (each worker issues its next op
only after the previous one returns), requests here arrive on an
**open-loop** Poisson process at a configured offered load, independent
of service completions -- the regime where an unprotected runtime's
queues grow without bound and p99 latency diverges.

Each arrival spawns a fresh uthread with an absolute **deadline**
(``deadline_us`` past its arrival) that propagates into the
filesystem's waits (:mod:`repro.fs.nova`) and is judged by the
:class:`~repro.runtime.watchdog.Watchdog`.  The optional
:class:`~repro.runtime.admission.AdmissionController` gates the syscall
boundary; comparing a run with it off against a run with it on is the
whole experiment:

* admission **off**, offered load > capacity: run-queue high-water and
  p99 grow with the duration of the burst;
* admission **on**: backlog stays near the configured bound, completed
  requests keep a bounded p99, and the turned-away remainder fails
  fast (``rejected``) instead of slowly (``deadline_missed``).

Everything is deterministic: one seeded ``random.Random`` drives
arrival gaps and priority assignment, and time is the simulated clock.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional

from repro.analysis.metrics import LatencySeries, OverloadStats
from repro.fs.nova import DeadlineExceeded, FsError
from repro.fs.structures import PAGE_SIZE
from repro.runtime import (
    AdmissionController,
    OverloadRejected,
    Runtime,
    Syscall,
    Watchdog,
)
from repro.sim import WaitTimeout
from repro.workloads.factory import make_fs, make_platform
from repro.workloads.fxmark import US, _op_once, _prepare_file, run_to_completion


@dataclass
class OverloadConfig:
    """One open-loop overload run."""

    kind: str = "easyio"
    op: str = "write"             # "write" | "read"
    io_size: int = 16 * 1024
    cores: int = 2                # worker cores under the runtime
    #: Offered load (request arrivals per second, open loop).
    arrival_rate_ops_per_sec: float = 150_000.0
    duration_us: int = 2000       # arrival window (drain time excluded)
    #: Per-request budget past arrival; ``None`` = unbounded requests.
    deadline_us: Optional[int] = 300
    n_files: int = 8
    file_bytes: int = 1024 * 1024
    seed: int = 42
    single_node: bool = True
    steal: bool = True
    # -- admission control (None policy = no controller installed) ----
    admission_policy: Optional[str] = None   # "reject" | "shed" | "degrade"
    admit_rate_ops_per_sec: Optional[float] = None
    admit_burst: int = 32
    max_inflight: Optional[int] = None
    max_queue_depth: Optional[int] = None
    #: Fraction of requests spawned high-priority (rides through "shed").
    priority_fraction: float = 0.0
    # -- watchdog ------------------------------------------------------
    watchdog: bool = False
    watchdog_grace_factor: int = 3
    watchdog_budget_us: Optional[int] = None  # for deadline-less uthreads

    def __post_init__(self):
        if self.op not in ("write", "read"):
            raise ValueError(f"op must be 'read' or 'write', got {self.op!r}")
        if self.io_size % PAGE_SIZE:
            raise ValueError("io_size must be page-aligned")
        if self.arrival_rate_ops_per_sec <= 0:
            raise ValueError("arrival rate must be > 0")


@dataclass
class OverloadResult:
    """Observed outcome of one run (workload-side view).

    ``stats`` is the runtime's shared counter set -- the mechanism-side
    view (what admission/scheduler/fs/watchdog each counted); the
    integer fields here are what the *requests* observed, so the two
    cross-check each other.
    """

    config: OverloadConfig
    offered: int                  # requests that arrived
    completed: int
    rejected: int                 # OverloadRejected observed
    deadline_missed: int          # DeadlineExceeded observed
    failed: int                   # other typed filesystem failures
    latency: LatencySeries        # completed requests only
    queue_high_water: int         # deepest per-core run queue seen
    inflight_high_water: int      # 0 when no controller installed
    drain_ns: int                 # time to drain backlog after arrivals
    stats: OverloadStats
    hang_reports: List = field(default_factory=list)

    @property
    def goodput(self) -> float:
        """Fraction of offered requests that completed in time."""
        return self.completed / self.offered if self.offered else 0.0

    @property
    def p99_us(self) -> float:
        return self.latency.p99_us()


def run_overload(cfg: OverloadConfig) -> OverloadResult:
    """Execute one open-loop overload configuration."""
    platform = make_platform(single_node=cfg.single_node)
    fs = make_fs(cfg.kind, platform)
    engine = platform.engine
    worker_cores = platform.cores[:cfg.cores]

    files: List[int] = []

    def setup():
        for i in range(cfg.n_files):
            ino = yield from _prepare_file(fs, f"/ov{i}", cfg.file_bytes)
            files.append(ino)
    run_to_completion(engine, engine.process(setup()), "overload setup")

    admission = None
    if cfg.admission_policy is not None:
        admission = AdmissionController(
            engine,
            rate_ops_per_sec=cfg.admit_rate_ops_per_sec,
            burst=cfg.admit_burst,
            max_inflight=cfg.max_inflight,
            max_queue_depth=cfg.max_queue_depth,
            policy=cfg.admission_policy,
        )
    runtime = Runtime(platform, cores=worker_cores, steal=cfg.steal,
                      admission=admission)
    watchdog = None
    if cfg.watchdog:
        budget = (cfg.watchdog_budget_us * US
                  if cfg.watchdog_budget_us is not None else None)
        watchdog = Watchdog(runtime, grace_factor=cfg.watchdog_grace_factor,
                            default_budget_ns=budget)

    rng = random.Random(cfg.seed)
    slots = cfg.file_bytes // cfg.io_size
    lat = LatencySeries(f"{cfg.kind}-overload")
    counts = {"offered": 0, "completed": 0, "rejected": 0,
              "deadline_missed": 0, "failed": 0}

    def request(rid: int, ino: int, off: int, t0: int):
        # ``t0`` is the *arrival* time: latency includes the run-queue
        # delay before first scheduling, which is where open-loop
        # overload actually hurts.
        try:
            yield Syscall(lambda ctx: _op_once(fs, ctx, cfg.op, ino, off,
                                               cfg.io_size))
        except OverloadRejected:
            counts["rejected"] += 1
            return
        except DeadlineExceeded:
            counts["deadline_missed"] += 1
            return
        except (FsError, WaitTimeout):
            counts["failed"] += 1
            return
        lat.record(engine.now - t0)
        counts["completed"] += 1

    t_start = engine.now
    t_close = t_start + cfg.duration_us * US
    rate_per_ns = cfg.arrival_rate_ops_per_sec / 1e9

    def arrivals():
        rid = 0
        while True:
            gap = max(1, round(rng.expovariate(rate_per_ns)))
            yield engine.sleep(gap)
            if engine.now >= t_close:
                return
            counts["offered"] += 1
            deadline = (engine.now + cfg.deadline_us * US
                        if cfg.deadline_us is not None else None)
            priority = 1 if rng.random() < cfg.priority_fraction else 0
            ino = files[rid % cfg.n_files]
            off = ((rid // cfg.n_files) % slots) * cfg.io_size
            runtime.spawn(request(rid, ino, off, engine.now),
                          name=f"req{rid}", deadline=deadline,
                          priority=priority)
            rid += 1

    engine.process(arrivals(), name="arrivals")
    engine.run()
    drain_ns = engine.now - t_close
    if runtime.active_uthreads:
        raise RuntimeError(
            f"{runtime.active_uthreads} requests never finished "
            f"(lost wakeup -- the watchdog reports should say where)")

    return OverloadResult(
        config=cfg,
        offered=counts["offered"],
        completed=counts["completed"],
        rejected=counts["rejected"],
        deadline_missed=counts["deadline_missed"],
        failed=counts["failed"],
        latency=lat,
        queue_high_water=max(s.queue_high_water
                             for s in runtime.schedulers),
        inflight_high_water=(admission.inflight_high_water
                             if admission is not None else 0),
        drain_ns=max(0, drain_ns),
        stats=runtime.overload_stats,
        hang_reports=list(watchdog.reports) if watchdog is not None else [],
    )
