"""Deterministic fault injection for the DMA/PM layer.

A :class:`FaultPlan` is a seeded, replayable description of every
hardware misbehaviour one simulation run will experience: per-descriptor
transfer errors, CHANERR-style channel halts, transient bandwidth
degradation of the slow-memory device, and PM media faults (a page
write that persists garbage).  The same seed always produces the same
injections at the same simulated instants, so fault experiments are
regression-testable artifacts rather than one-off runs.
"""

from repro.faults.plan import (
    BandwidthFault,
    ChannelHaltFault,
    FaultPlan,
    MediaFault,
    TransferErrorFault,
    CHAN_HALT,
    XFER_ERROR,
    check_non_negative,
    check_probability,
    check_windows_disjoint,
)

__all__ = [
    "BandwidthFault",
    "CHAN_HALT",
    "ChannelHaltFault",
    "FaultPlan",
    "MediaFault",
    "TransferErrorFault",
    "XFER_ERROR",
    "check_non_negative",
    "check_probability",
    "check_windows_disjoint",
]
