"""Seeded fault plans: schedule- or probability-driven, fully replayable.

Determinism contract (DESIGN.md §6 extended): given the same seed and
the same workload, a :class:`FaultPlan` injects the same faults at the
same simulated instants, producing an identical event trace and
identical fault/retry counters.  All randomness comes from private
``random.Random`` streams seeded from the plan seed (one stream per
channel plus one for media faults), and every draw happens at a
deterministic point of the simulation (descriptor service, page
persist), so the injection sequence is a pure function of the seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: Fault kinds as they appear in traces and descriptor error fields.
XFER_ERROR = "xfer_error"   # one descriptor fails; the channel continues
CHAN_HALT = "chan_halt"     # CHANERR: the channel halts, ring stranded
BW_DEGRADE = "bw_degrade"   # transient device bandwidth loss
MEDIA = "media"             # a page write persists garbage


# ----------------------------------------------------------------------
# Plan-input validators (shared with repro.net.plan.NetFaultPlan)
# ----------------------------------------------------------------------
def check_probability(name: str, p: float) -> float:
    """``p`` must lie in [0, 1]; returns it for inline use."""
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"{name} must be a probability, got {p}")
    return p


def check_non_negative(name: str, value) -> int:
    """``value`` must be >= 0; returns it for inline use."""
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return value


def check_windows_disjoint(windows, what: str) -> None:
    """Reject overlapping ``(start_ns, duration_ns)`` windows.

    ``windows`` is an iterable of ``(start_ns, duration_ns)`` pairs that
    act on the same underlying resource (a device's bandwidth, one
    partition group, one node's up/down state).  Overlapping windows are
    almost always a plan bug: the first window to end resets the
    resource while the second is still notionally active, so the
    combined effect silently differs from either window alone.  Fails
    with a ``ValueError`` naming both offenders instead.
    """
    spans = sorted((check_non_negative(f"{what} start_ns", s),
                    s + check_non_negative(f"{what} duration_ns", d))
                   for s, d in windows)
    for (s0, e0), (s1, e1) in zip(spans, spans[1:]):
        if s1 < e0:
            raise ValueError(
                f"overlapping {what} windows: [{s0}, {e0}) and "
                f"[{s1}, {e1}) ns")


@dataclass(frozen=True)
class TransferErrorFault:
    """Fail the descriptor with sequence number ``at_sn`` on a channel."""

    channel_id: int
    at_sn: int


@dataclass(frozen=True)
class ChannelHaltFault:
    """Halt the channel while serving descriptor ``at_sn`` (CHANERR)."""

    channel_id: int
    at_sn: int


@dataclass(frozen=True)
class BandwidthFault:
    """Scale device bandwidth by ``factor`` during a time window."""

    start_ns: int
    duration_ns: int
    factor: float
    read: bool = True
    write: bool = True


@dataclass(frozen=True)
class MediaFault:
    """Corrupt the ``at_write``-th content-carrying page persist
    (1-based, counted across the whole image)."""

    at_write: int


class FaultPlan:
    """One run's worth of injected hardware faults.

    Parameters
    ----------
    seed:
        Root seed for every probabilistic decision.
    p_xfer_error / p_chan_halt:
        Per-descriptor probabilities of a transfer error / channel halt.
    p_media:
        Per-page-persist probability of a media fault.
    schedule:
        Explicit :class:`TransferErrorFault` / :class:`ChannelHaltFault`
        / :class:`BandwidthFault` / :class:`MediaFault` instances; these
        always fire (they are not counted against ``max_faults``).
    max_faults:
        Cap on *probabilistic* injections.  Keeps runs finite: once the
        budget is spent the hardware behaves perfectly, so retry loops
        and quarantine probes always converge.
    """

    def __init__(self, seed: int = 0,
                 p_xfer_error: float = 0.0,
                 p_chan_halt: float = 0.0,
                 p_media: float = 0.0,
                 schedule: Sequence[Any] = (),
                 max_faults: int = 32):
        for name, p in (("p_xfer_error", p_xfer_error),
                        ("p_chan_halt", p_chan_halt),
                        ("p_media", p_media)):
            check_probability(name, p)
        check_non_negative("max_faults", max_faults)
        self.seed = seed
        self.p_xfer_error = p_xfer_error
        self.p_chan_halt = p_chan_halt
        self.p_media = p_media
        self.max_faults = max_faults
        self._budget = max_faults
        self._sched_desc: Dict[Tuple[int, int], str] = {}
        self._sched_bw: List[BandwidthFault] = []
        self._sched_media: set = set()
        for f in schedule:
            if isinstance(f, (TransferErrorFault, ChannelHaltFault)):
                check_non_negative("channel_id", f.channel_id)
                if f.at_sn < 1:
                    raise ValueError(
                        f"at_sn must be >= 1 (SNs are 1-based), got {f.at_sn}")
                key = (f.channel_id, f.at_sn)
                if key in self._sched_desc:
                    raise ValueError(
                        f"conflicting scheduled faults for channel "
                        f"{f.channel_id} sn {f.at_sn}")
                self._sched_desc[key] = (XFER_ERROR
                                         if isinstance(f, TransferErrorFault)
                                         else CHAN_HALT)
            elif isinstance(f, BandwidthFault):
                check_non_negative("start_ns", f.start_ns)
                check_non_negative("duration_ns", f.duration_ns)
                if not 0.0 <= f.factor <= 1.0:
                    raise ValueError(
                        f"bandwidth factor must be in [0, 1], got {f.factor}")
                self._sched_bw.append(f)
            elif isinstance(f, MediaFault):
                if f.at_write < 1:
                    raise ValueError(
                        f"at_write must be >= 1 (1-based), got {f.at_write}")
                self._sched_media.add(f.at_write)
            else:
                raise TypeError(f"unknown fault spec: {f!r}")
        # All bandwidth windows scale the same memory device, so they
        # must not overlap (the first to end would restore full
        # bandwidth out from under the second).
        check_windows_disjoint(((f.start_ns, f.duration_ns)
                                for f in self._sched_bw), "bandwidth")
        self._desc_rng: Dict[int, random.Random] = {}
        self._media_rng = random.Random(f"{seed}:media")
        self._page_writes = 0
        self._engine = None
        #: (time, kind, *detail) in injection order -- the determinism
        #: property compares this across runs.
        self.trace: List[Tuple] = []
        #: Injection counts by kind.
        self.injected: Dict[str, int] = {XFER_ERROR: 0, CHAN_HALT: 0,
                                         BW_DEGRADE: 0, MEDIA: 0}

    @property
    def has_media_faults(self) -> bool:
        """Whether this plan can corrupt page persists.

        Line-granularity crash recording refuses such plans: a DMA
        page store's content is journalled at *submission*, so a
        media fault at landing time would diverge the stream from the
        image (the page-granularity sweep covers media faults).
        """
        return bool(self.p_media) or bool(self._sched_media)

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def install(self, platform, image=None) -> "FaultPlan":
        """Attach the plan to a platform (and optionally its PM image).

        Wires every DMA channel's fault hook, schedules the bandwidth
        windows, and -- when ``image`` is given -- arms media-fault
        injection on page persists.
        """
        self._engine = platform.engine
        for ch in platform.dma.channels:
            ch.fault_plan = self
        for f in self._sched_bw:
            platform.engine.process(self._bw_window(platform.memory, f),
                                    name="fault-bw")
        if image is not None:
            image.fault_plan = self
        return self

    def _now(self) -> int:
        return self._engine.now if self._engine is not None else -1

    def _note(self, kind: str, *detail) -> None:
        self.injected[kind] += 1
        self.trace.append((self._now(), kind) + detail)

    def _spend(self) -> bool:
        if self._budget <= 0:
            return False
        self._budget -= 1
        return True

    # ------------------------------------------------------------------
    # DMA descriptor faults (consulted by DmaChannel's service loop)
    # ------------------------------------------------------------------
    def descriptor_fault(self, channel, desc) -> Optional[str]:
        """Decide the fate of one descriptor about to be served.

        Returns ``None`` (serve normally), :data:`XFER_ERROR`, or
        :data:`CHAN_HALT`.  Scheduled faults fire exactly once and take
        precedence over the probabilistic draw.
        """
        key = (channel.channel_id, desc.sn)
        kind = self._sched_desc.pop(key, None)
        if kind is None and (self.p_xfer_error or self.p_chan_halt):
            rng = self._desc_rng.get(channel.channel_id)
            if rng is None:
                rng = self._desc_rng[channel.channel_id] = random.Random(
                    f"{self.seed}:ch{channel.channel_id}")
            u = rng.random()
            if u < self.p_chan_halt:
                kind = CHAN_HALT
            elif u < self.p_chan_halt + self.p_xfer_error:
                kind = XFER_ERROR
            if kind is not None and not self._spend():
                kind = None
        if kind is not None:
            self._note(kind, channel.channel_id, desc.sn)
        return kind

    # ------------------------------------------------------------------
    # PM media faults (consulted by PMImage.write_page)
    # ------------------------------------------------------------------
    def corrupt_page_write(self, page_id: int, data: bytes):
        """Maybe replace a page persist's payload with garbage.

        Only content-carrying writes count (ELIDED payloads have nothing
        to corrupt or checksum).  Returns the data to persist.
        """
        self._page_writes += 1
        hit = self._page_writes in self._sched_media
        if hit:
            self._sched_media.discard(self._page_writes)
        elif self.p_media and self._media_rng.random() < self.p_media:
            hit = self._spend()
        if not hit:
            return data
        self._note(MEDIA, page_id, self._page_writes)
        return self._garbage(page_id, len(data))

    def _garbage(self, page_id: int, nbytes: int) -> bytes:
        rng = random.Random(f"{self.seed}:garbage:{page_id}:{self._page_writes}")
        return rng.randbytes(nbytes)

    # ------------------------------------------------------------------
    # Transient bandwidth degradation
    # ------------------------------------------------------------------
    def _bw_window(self, memory, f: BandwidthFault):
        if f.start_ns > 0:
            yield self._engine.timeout(f.start_ns)
        memory.set_degradation(f.factor if f.read else 1.0,
                               f.factor if f.write else 1.0)
        self._note(BW_DEGRADE, f.factor, f.duration_ns)
        yield self._engine.timeout(f.duration_ns)
        memory.set_degradation(1.0, 1.0)
