"""Testbed assembly: cores + slow memory + DMA engine.

:class:`Platform` is the simulated stand-in for the paper's server
(2x Xeon Gold 6240M, 36 physical cores, 6 Optane DCPMMs, 8 I/OAT
channels per CPU).  The default configuration matches the paper's §6.1
testbed; Figures 2-4 use :meth:`PlatformConfig.single_node`, matching
their one-NUMA-node / 3-DIMM setup.

The slow-memory space is modelled as one unified device (the paper's
main evaluation also spans both NUMA sides as a single PM space).
NUMA placement effects enter the model through the calibrated
bandwidth curves rather than through explicit topology, which is
sufficient for every reproduced figure -- none of them isolates
cross-socket placement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.hw.cpu import Core
from repro.hw.dma import DmaEngine
from repro.hw.memory import SlowMemory
from repro.hw.params import DEFAULT_COST_MODEL, CostModel
from repro.sim import Engine


@dataclass(frozen=True)
class PlatformConfig:
    """Shape of the simulated machine."""

    sockets: int = 2
    cores_per_socket: int = 18
    dimms_per_socket: int = 3
    dma_channels_per_socket: int = 8

    @classmethod
    def paper_testbed(cls) -> "PlatformConfig":
        """The §6.1 evaluation machine (36 cores, 6 DIMMs, 16 channels)."""
        return cls()

    @classmethod
    def single_node(cls) -> "PlatformConfig":
        """One NUMA node with 3 DCPMMs (the §2.2 empirical-study setup)."""
        return cls(sockets=1, cores_per_socket=18, dimms_per_socket=3,
                   dma_channels_per_socket=8)

    @property
    def total_cores(self) -> int:
        return self.sockets * self.cores_per_socket

    @property
    def total_dimms(self) -> int:
        return self.sockets * self.dimms_per_socket

    @property
    def total_dma_channels(self) -> int:
        return self.sockets * self.dma_channels_per_socket


class Platform:
    """One simulated machine: engine, cores, slow memory, DMA engine."""

    def __init__(self, config: Optional[PlatformConfig] = None,
                 model: Optional[CostModel] = None,
                 engine: Optional[Engine] = None):
        self.config = config or PlatformConfig.paper_testbed()
        self.model = model or DEFAULT_COST_MODEL
        self.engine = engine or Engine()
        self.memory = SlowMemory(self.engine, self.model,
                                 dimms=self.config.total_dimms)
        self.dma = DmaEngine(self.engine, self.model, self.memory,
                             num_channels=self.config.total_dma_channels,
                             sockets=self.config.sockets)
        self.cores: List[Core] = [
            Core(self.engine, core_id=i, socket=i // self.config.cores_per_socket)
            for i in range(self.config.total_cores)
        ]

    @property
    def now(self) -> int:
        """Current simulated time (ns)."""
        return self.engine.now

    def run(self, until: Optional[int] = None) -> None:
        """Advance the simulation (see :meth:`repro.sim.Engine.run`)."""
        self.engine.run(until=until)

    def total_busy_ns(self) -> int:
        """Aggregate busy time across all cores."""
        return sum(core.busy_ns() for core in self.cores)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        c = self.config
        return (f"<Platform {c.sockets}x{c.cores_per_socket} cores, "
                f"{c.total_dimms} DIMMs, {c.total_dma_channels} DMA channels>")
