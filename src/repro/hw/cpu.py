"""Simulated CPU cores with exact busy-time accounting.

A :class:`Core` does not execute anything itself -- simulated threads
and schedulers run as engine processes -- but it is the accounting unit
for the paper's headline metric: how many cores (and what fraction of
their cycles) a filesystem burns to reach a given throughput.  Code
that occupies a core brackets its work with :meth:`mark_busy` /
:meth:`mark_idle` (or the :meth:`busy_section` helper), and the core
integrates busy nanoseconds exactly.
"""

from __future__ import annotations

from typing import Optional

from repro.sim import Engine, SimulationError


class Core:
    """One physical core: an accounting domain for CPU consumption."""

    def __init__(self, engine: Engine, core_id: int, socket: int = 0):
        self.engine = engine
        self.core_id = core_id
        self.socket = socket
        self._busy_accum = 0
        self._busy_since: Optional[int] = None
        #: Free-form label of whatever currently occupies the core.
        self.occupant: Optional[str] = None

    # -- state transitions ------------------------------------------------
    @property
    def busy(self) -> bool:
        return self._busy_since is not None

    def mark_busy(self, occupant: Optional[str] = None) -> None:
        """Enter the busy state (idempotent occupant update is an error)."""
        if self._busy_since is not None:
            raise SimulationError(
                f"core {self.core_id} marked busy twice (occupant={self.occupant!r})")
        self._busy_since = self.engine.now
        self.occupant = occupant

    def mark_idle(self) -> None:
        """Leave the busy state, accumulating the elapsed busy span."""
        if self._busy_since is None:
            raise SimulationError(f"core {self.core_id} marked idle while idle")
        self._busy_accum += self.engine.now - self._busy_since
        self._busy_since = None
        self.occupant = None

    def busy_section(self, gen, occupant: Optional[str] = None):
        """Run a sub-generator with the core marked busy throughout.

        Usage: ``result = yield from core.busy_section(op())``.
        """
        self.mark_busy(occupant)
        try:
            result = yield from gen
        finally:
            self.mark_idle()
        return result

    # -- accounting ----------------------------------------------------------
    def busy_ns(self) -> int:
        """Total busy nanoseconds so far (including an open busy span)."""
        open_span = (self.engine.now - self._busy_since
                     if self._busy_since is not None else 0)
        return self._busy_accum + open_span

    def utilization(self, since: int = 0) -> float:
        """Busy fraction over [since, now]."""
        window = self.engine.now - since
        if window <= 0:
            return 0.0
        # Busy time before `since` is not tracked per-window; callers that
        # need windows should snapshot busy_ns() at the window start.
        return min(1.0, self.busy_ns() / window)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"busy({self.occupant})" if self.busy else "idle"
        return f"<Core {self.core_id} {state} busy_ns={self.busy_ns()}>"
