"""Bandwidth-shared slow-memory model.

The central abstraction is :class:`BandwidthPool`, an exact
processor-sharing model of one direction (read or write) of a memory
device.  Concurrent transfers share the device capacity max-min fairly,
subject to

* a per-flow rate cap (a CPU core or a DMA channel can only move bytes
  so fast),
* per-group caps (e.g. the DMA-read class cannot exceed ~42 % of the
  device read peak; the CPU-write class collapses when many cores
  store concurrently), and
* the device total.

Whenever the flow set changes the pool recomputes the allocation,
charges every active flow for the bytes it moved since the last
change, and schedules a wake-up at the earliest projected completion.
This is exact (no chunking error) and costs O(flows) work per change.

:class:`SlowMemory` wraps a read pool and a write pool for one device
(a set of Optane DIMMs) and exposes the transfer API the CPU-copy and
DMA models use.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional

from repro import vector
from repro.hw.params import CostModel
from repro.sim import Engine, Event

#: Group labels used by the stock capacity policies.
CPU_GROUP = "cpu"
DMA_GROUP = "dma"
#: Odinfs-style delegation threads: NUMA-local streaming stores that
#: avoid the many-writer collapse (the whole point of delegation).
DELEGATION_GROUP = "delegation"


class PoolFlow:
    """One in-flight transfer inside a :class:`BandwidthPool`."""

    __slots__ = ("nbytes", "remaining", "cap", "group", "tag",
                 "event", "rate", "started_at")

    def __init__(self, nbytes: int, cap: float, group: str, tag: object,
                 event: Event, now: int):
        self.nbytes = nbytes
        self.remaining = float(nbytes)
        self.cap = cap
        self.group = group
        self.tag = tag
        self.event = event
        self.rate = 0.0
        self.started_at = now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<PoolFlow {self.group}/{self.tag} {self.remaining:.0f}B"
                f" @ {self.rate:.2f}B/ns>")


#: Memo-cache for :func:`_waterfill`.  The allocation is a pure
#: function of its arguments, and steady-state benchmark loops present
#: the same handful of (weights, caps, capacity) shapes thousands of
#: times -- rebalances are ~25% of sweep runtime without this.  Cached
#: rate lists are shared and must never be mutated by callers.
#: Bounded FIFO-evicting (oldest shape out first): long multi-campaign
#: processes cycling through many shapes stay capped at
#: ``_WATERFILL_CACHE_MAX`` entries instead of thrashing on a
#: clear-everything overflow; :func:`clear_waterfill_cache` empties it
#: outright (wired into the stats-reset paths).
_WATERFILL_CACHE: dict = {}
_WATERFILL_CACHE_MAX = 4096

#: Below this entity count the reference waterfill outruns the numpy
#: kernel (array construction dominates); the dispatcher delegates.
VECTOR_MIN_ENTITIES = 16


def clear_waterfill_cache() -> None:
    """Empty the global waterfill memo (stats-reset / test isolation)."""
    _WATERFILL_CACHE.clear()


def _waterfill(demands: List[float], caps: List[float], capacity: float) -> List[float]:
    """Max-min fair allocation of ``capacity`` across entities.

    ``demands`` are fair-share weights (use 1.0 for unweighted),
    ``caps`` are per-entity rate caps.  Returns the allocated rates
    (a cached list -- treat as read-only).
    """
    key = (tuple(demands), tuple(caps), capacity)
    cached = _WATERFILL_CACHE.get(key)
    if cached is not None:
        return cached
    rates = _waterfill_kernel(demands, caps, capacity)
    if len(_WATERFILL_CACHE) >= _WATERFILL_CACHE_MAX:
        # Evict the oldest entry (dict preserves insertion order); the
        # steady-state shapes re-enter at the tail and stay resident.
        _WATERFILL_CACHE.pop(next(iter(_WATERFILL_CACHE)))
    _WATERFILL_CACHE[key] = rates
    return rates


def _waterfill_compute(demands: List[float], caps: List[float],
                       capacity: float) -> List[float]:
    """Reference kernel (pure Python) -- the semantics both modes pin."""
    n = len(caps)
    rates = [0.0] * n
    active = list(range(n))
    remaining = capacity
    # Each iteration freezes at least one entity at its cap, so the
    # loop runs at most n times.
    while active and remaining > 1e-12:
        total_weight = sum(demands[i] for i in active)
        if total_weight <= 0:
            break
        unit = remaining / total_weight
        frozen = [i for i in active if caps[i] - rates[i] <= unit * demands[i] + 1e-12]
        if not frozen:
            for i in active:
                rates[i] += unit * demands[i]
            remaining = 0.0
            break
        for i in frozen:
            remaining -= caps[i] - rates[i]
            rates[i] = caps[i]
            active.remove(i)
    return rates


def _waterfill_compute_np(demands: List[float], caps: List[float],
                          capacity: float) -> List[float]:
    """Vector kernel: bit-identical to :func:`_waterfill_compute`.

    Elementwise work (the freeze test, the proportional fill, the
    frozen-at-cap assignment) runs as whole-array IEEE-754 double ops,
    which are exactly the scalar ops the reference performs per
    element.  The two *reductions* whose rounding depends on operand
    order -- the active-weight total and the frozen-headroom drain --
    are deliberately performed as sequential left-to-right Python sums
    over ascending indices, matching the reference's iteration order,
    so every intermediate double is identical.  See DESIGN.md §15.
    """
    np = vector.numpy()
    n = len(caps)
    d = np.asarray(demands, dtype=np.float64)
    c = np.asarray(caps, dtype=np.float64)
    rates = np.zeros(n, dtype=np.float64)
    active = np.ones(n, dtype=bool)
    remaining = capacity
    while remaining > 1e-12 and active.any():
        # Sequential sum over ascending active indices == reference.
        total_weight = sum(d[active].tolist())
        if total_weight <= 0:
            break
        unit = remaining / total_weight
        headroom = c - rates
        frozen = active & (headroom <= unit * d + 1e-12)
        if not frozen.any():
            rates[active] += unit * d[active]
            remaining = 0.0
            break
        # Drain sequentially in ascending index order == reference.
        for delta in headroom[frozen].tolist():
            remaining -= delta
        rates[frozen] = c[frozen]
        active &= ~frozen
    return rates.tolist()


def _waterfill_dispatch(demands: List[float], caps: List[float],
                        capacity: float) -> List[float]:
    """Vector-mode kernel: numpy above the break-even size, reference
    below it (both are exact; only the constant factor differs)."""
    if len(caps) < VECTOR_MIN_ENTITIES:
        return _waterfill_compute(demands, caps, capacity)
    return _waterfill_compute_np(demands, caps, capacity)


#: The bound waterfill kernel (rebound by :func:`_rebind_kernels`).
_waterfill_kernel = _waterfill_compute
#: Mirrors ``vector.ENABLED`` for the _allocate_rates gather path.
_VECTOR_ON = False


@vector.register
def _rebind_kernels(enabled: bool) -> None:
    global _waterfill_kernel, _VECTOR_ON
    _waterfill_kernel = _waterfill_dispatch if enabled else _waterfill_compute
    _VECTOR_ON = enabled
    # Memoised outputs are equal in both modes by the parity invariant,
    # but A/B timing must not serve one mode's results to the other.
    _WATERFILL_CACHE.clear()


class BandwidthPool:
    """Exact processor-sharing bandwidth pool with hierarchical caps.

    Parameters
    ----------
    engine:
        The simulation engine.
    name:
        For diagnostics ("pm0.write").
    capacity:
        Device total for this direction, bytes/ns.
    group_cap_fn:
        Optional callable ``(group_counts: Dict[str, int]) -> Dict[str, float]``
        returning the cap for each group given how many flows of each
        group are active.  Groups absent from the result are uncapped.
    """

    def __init__(self, engine: Engine, name: str, capacity: float,
                 group_cap_fn: Optional[Callable[[Dict[str, int]], Dict[str, float]]] = None):
        self.engine = engine
        self.name = name
        self.capacity = capacity
        self.group_cap_fn = group_cap_fn
        self._flows: List[PoolFlow] = []
        self._last_update: int = 0
        self._timer_generation: int = 0
        self._wakeup: Optional[Event] = None
        #: Memoised flow-shape -> rate-list (see _allocate_rates).
        self._alloc_cache: dict = {}
        # Lifetime statistics.
        self.bytes_moved: int = 0
        self.transfers_completed: int = 0

    # -- public API ----------------------------------------------------
    @property
    def active_flows(self) -> int:
        """Number of in-flight transfers."""
        return len(self._flows)

    def group_counts(self) -> Dict[str, int]:
        """How many active flows each group has."""
        counts: Dict[str, int] = {}
        for flow in self._flows:
            counts[flow.group] = counts.get(flow.group, 0) + 1
        return counts

    def set_capacity(self, capacity: float) -> None:
        """Change the device capacity mid-run (fault injection).

        Charges every in-flight transfer for progress at the old rates,
        then reallocates under the new capacity -- exact, like every
        other flow-set change.
        """
        if capacity <= 0:
            raise ValueError(f"pool capacity must be positive, got {capacity}")
        self._advance()
        self.capacity = capacity
        self._rebalance()

    def transfer(self, nbytes: int, cap: float, group: str = CPU_GROUP,
                 tag: object = None) -> Event:
        """Start a transfer; the returned event fires when it finishes.

        ``cap`` is the initiator's own rate limit (per-core or
        per-channel), ``group`` selects the capacity class.
        """
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        event = self.engine.event()
        if nbytes == 0:
            event.succeed(0)
            return event
        self._advance()
        self._flows.append(PoolFlow(nbytes, cap, group, tag, event, self.engine.now))
        self._rebalance()
        return event

    def instantaneous_rate(self, group: Optional[str] = None) -> float:
        """Current aggregate allocated rate (optionally one group's)."""
        return sum(f.rate for f in self._flows
                   if group is None or f.group == group)

    # -- internals -------------------------------------------------------
    def _advance(self) -> None:
        """Charge all flows for progress since the last state change."""
        now = self.engine.now
        elapsed = now - self._last_update
        if elapsed > 0:
            for flow in self._flows:
                flow.remaining -= flow.rate * elapsed
        self._last_update = now

    def _rebalance(self) -> None:
        """Recompute rates and schedule the next completion wake-up."""
        self._timer_generation += 1
        # Withdraw the superseded wake-up so stale timers do not pile
        # up in the engine heap (they would fire as generation-checked
        # no-ops, but every flow-set change used to leak one).  When we
        # are *inside* that timer's callback it is already processed
        # and needs no cancellation; the generation check stays as a
        # second line of defence.
        stale = self._wakeup
        if stale is not None:
            self._wakeup = None
            if not stale.processed and not stale.cancelled:
                stale.cancel()
        # Retire flows whose remaining bytes are (numerically) gone.
        finished = [f for f in self._flows if f.remaining <= 1e-6]
        if finished:
            self._flows = [f for f in self._flows if f.remaining > 1e-6]
            for flow in finished:
                self.bytes_moved += flow.nbytes
                self.transfers_completed += 1
                flow.event.succeed(flow.nbytes)
        if not self._flows:
            return
        self._allocate_rates()
        # Schedule a wake-up at the earliest projected completion.
        flows = self._flows
        if len(flows) == 1:
            # Solo flow (the single-worker sweeps): skip the min() scan.
            f = flows[0]
            horizon = f.remaining / f.rate if f.rate > 0 else math.inf
        else:
            horizon = min(f.remaining / f.rate if f.rate > 0 else math.inf
                          for f in flows)
        if horizon is math.inf:
            raise RuntimeError(
                f"bandwidth pool {self.name!r} stalled: zero aggregate rate "
                f"with {len(self._flows)} active flows")
        generation = self._timer_generation
        delay = max(1, math.ceil(horizon))
        wakeup = self.engine.timeout(delay)
        wakeup.add_callback(lambda _e: self._on_timer(generation))
        self._wakeup = wakeup

    def _on_timer(self, generation: int) -> None:
        if generation != self._timer_generation:
            return  # superseded by a later rebalance
        self._advance()
        self._rebalance()

    def _allocate_rates(self) -> None:
        """Hierarchical max-min: groups first (weighted by flow count),
        then flows within each group.

        The allocation is a pure function of the flow-set shape --
        ``(group, cap, tag)`` per flow plus the pool capacity (tags are
        included because capacity policies may count distinct tags,
        e.g. active DMA write channels) -- and benchmark steady state
        cycles through a handful of shapes, so results are memoised
        per pool.
        """
        flows = self._flows
        try:
            key = (self.capacity,
                   tuple((f.group, f.cap, f.tag) for f in flows))
        except TypeError:          # unhashable tag: compute uncached
            key = None
        if key is not None:
            rates = self._alloc_cache.get(key)
            if rates is not None:
                for flow, rate in zip(flows, rates):
                    flow.rate = rate
                return
        if _VECTOR_ON and len(flows) >= VECTOR_MIN_ENTITIES:
            self._allocate_rates_vec(flows, key)
            return
        groups: Dict[str, List[PoolFlow]] = {}
        for flow in flows:
            groups.setdefault(flow.group, []).append(flow)
        counts = {g: len(fl) for g, fl in groups.items()}
        caps = self.group_cap_fn(counts) if self.group_cap_fn else {}
        names = sorted(groups)
        group_caps = [min(caps.get(g, math.inf), sum(f.cap for f in groups[g]))
                      for g in names]
        weights = [float(len(groups[g])) for g in names]
        group_rates = _waterfill(weights, group_caps, self.capacity)
        for gname, grate in zip(names, group_rates):
            members = groups[gname]
            flow_rates = _waterfill([1.0] * len(members),
                                    [f.cap for f in members], grate)
            for flow, rate in zip(members, flow_rates):
                flow.rate = rate
        if key is not None:
            if len(self._alloc_cache) >= _WATERFILL_CACHE_MAX:
                self._alloc_cache.clear()
            self._alloc_cache[key] = [f.rate for f in flows]

    def _allocate_rates_vec(self, flows: List[PoolFlow], key) -> None:
        """Vector gather path for :meth:`_allocate_rates` (many flows).

        Batches the per-flow cap gathering and rate scatter through one
        float64 array instead of per-flow Python attribute walks.  The
        group-cap sums and both waterfill levels run over the *same*
        sequences in the same order as the reference path (fancy
        indexing with ascending member indices preserves append order),
        so every rate is bit-identical.
        """
        np = vector.numpy()
        caps_arr = np.fromiter((f.cap for f in flows),
                               count=len(flows), dtype=np.float64)
        members: Dict[str, List[int]] = {}
        for i, flow in enumerate(flows):
            members.setdefault(flow.group, []).append(i)
        counts = {g: len(ix) for g, ix in members.items()}
        caps = self.group_cap_fn(counts) if self.group_cap_fn else {}
        names = sorted(members)
        member_caps = {g: caps_arr[members[g]].tolist() for g in names}
        group_caps = [min(caps.get(g, math.inf), sum(member_caps[g]))
                      for g in names]
        weights = [float(counts[g]) for g in names]
        group_rates = _waterfill(weights, group_caps, self.capacity)
        rates_out = np.empty(len(flows), dtype=np.float64)
        for gname, grate in zip(names, group_rates):
            mc = member_caps[gname]
            rates_out[members[gname]] = _waterfill([1.0] * len(mc), mc, grate)
        for flow, rate in zip(flows, rates_out.tolist()):
            flow.rate = rate
        if key is not None:
            if len(self._alloc_cache) >= _WATERFILL_CACHE_MAX:
                self._alloc_cache.clear()
            self._alloc_cache[key] = [f.rate for f in flows]

    def reset_stats(self) -> None:
        """Zero the lifetime counters and drop memoised allocations."""
        self.bytes_moved = 0
        self.transfers_completed = 0
        self._alloc_cache.clear()


class SlowMemory:
    """One slow-memory device: a set of Optane DIMMs behind shared pools.

    Exposes the two operations the rest of the system uses:

    * :meth:`cpu_copy` -- a CPU core moving bytes synchronously
      (blocks the calling process for the whole transfer, which is
      exactly the CPU cost the paper wants to eliminate), and
    * :meth:`dma_transfer` -- raw pool access for the DMA engine.
    """

    def __init__(self, engine: Engine, model: CostModel, dimms: int,
                 name: str = "pm"):
        self.engine = engine
        self.model = model
        self.dimms = dimms
        self.name = name
        self.read_pool = BandwidthPool(
            engine, f"{name}.read", model.pm_read_peak(dimms),
            group_cap_fn=self._read_group_caps)
        self.write_pool = BandwidthPool(
            engine, f"{name}.write", model.pm_write_peak(dimms),
            group_cap_fn=self._write_group_caps)
        # Healthy-device capacities; set_degradation() scales from these.
        self._base_read_capacity = self.read_pool.capacity
        self._base_write_capacity = self.write_pool.capacity
        self.degradation = (1.0, 1.0)

    def set_degradation(self, read_factor: float, write_factor: float) -> None:
        """Scale device bandwidth (fault injection: thermal throttling,
        media retries).  Factors are fractions of the healthy capacity;
        (1.0, 1.0) restores full speed."""
        for f in (read_factor, write_factor):
            if not 0.0 < f <= 1.0:
                raise ValueError(f"degradation factor must be in (0, 1], got {f}")
        self.degradation = (read_factor, write_factor)
        self.read_pool.set_capacity(self._base_read_capacity * read_factor)
        self.write_pool.set_capacity(self._base_write_capacity * write_factor)

    # -- capacity policies (the calibrated asymmetries live here) ------
    def _active_write_channels(self) -> int:
        """Distinct DMA channels with an in-flight write (their tag is
        the channel id)."""
        return len({f.tag for f in self.write_pool._flows
                    if f.group == DMA_GROUP})

    def _read_group_caps(self, counts: Dict[str, int]) -> Dict[str, float]:
        return {DMA_GROUP: self.model.dma_read_ceiling(self.dimms)}

    def _write_group_caps(self, counts: Dict[str, int]) -> Dict[str, float]:
        return {
            CPU_GROUP: self.model.cpu_write_capacity(
                self.dimms, counts.get(CPU_GROUP, 0)),
            DMA_GROUP: self.model.dma_write_ceiling(
                self.dimms, self._active_write_channels()),
        }

    # -- transfer API ----------------------------------------------------
    def cpu_copy(self, nbytes: int, write: bool, tag: object = None):
        """Process generator: a CPU core copies ``nbytes`` synchronously.

        The caller (a simulated core/thread) is blocked -- i.e. burning
        CPU -- for the full duration: fixed call overhead, the device
        access latency, then the bandwidth-shared transfer.
        """
        model = self.model
        yield self.engine.sleep(model.cpu_copy_op_overhead)
        if write:
            yield self.engine.sleep(model.pm_write_latency)
            yield self.write_pool.transfer(
                nbytes, model.cpu_copy_write_rate, CPU_GROUP, tag)
        else:
            yield self.engine.sleep(model.pm_read_latency)
            yield self.read_pool.transfer(
                nbytes, model.cpu_copy_read_rate, CPU_GROUP, tag)
        return nbytes

    def dma_transfer(self, nbytes: int, write: bool, channel_rate: float,
                     tag: object = None) -> Event:
        """Start a DMA-class transfer; returns its completion event."""
        pool = self.write_pool if write else self.read_pool
        return pool.transfer(nbytes, channel_rate, DMA_GROUP, tag)

    def delegated_copy(self, nbytes: int, write: bool, tag: object = None):
        """A delegation thread (Odinfs-style) copies ``nbytes``.

        Same CPU burn as :meth:`cpu_copy`, but the sequential NUMA-local
        streaming access pattern sidesteps the many-writer collapse --
        the property Odinfs's delegation design exploits.
        """
        model = self.model
        yield self.engine.sleep(model.cpu_copy_op_overhead)
        if write:
            yield self.engine.sleep(model.pm_write_latency)
            yield self.write_pool.transfer(
                nbytes, model.cpu_copy_write_rate, DELEGATION_GROUP, tag)
        else:
            yield self.engine.sleep(model.pm_read_latency)
            yield self.read_pool.transfer(
                nbytes, model.cpu_copy_read_rate, DELEGATION_GROUP, tag)
        return nbytes

    # -- stats -------------------------------------------------------------
    def bytes_read(self) -> int:
        """Total bytes read from the device so far."""
        return self.read_pool.bytes_moved

    def bytes_written(self) -> int:
        """Total bytes written to the device so far."""
        return self.write_pool.bytes_moved

    def reset_stats(self) -> None:
        """Zero both pools' counters and the global waterfill memo.

        Part of the campaign-boundary reset path: long multi-campaign
        processes call this between runs so byte counters start fresh
        and memo caches cannot accumulate without bound.
        """
        self.read_pool.reset_stats()
        self.write_pool.reset_stats()
        clear_waterfill_cache()
