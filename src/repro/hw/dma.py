"""I/OAT-style on-chip DMA engine.

Each :class:`DmaChannel` owns a bounded hardware descriptor ring served
by one processing engine.  Submitting costs the CPU a descriptor-prep
plus an MMIO doorbell (charged to the *caller*); the engine then pays a
per-descriptor startup overhead -- lower when descriptors stream
back-to-back (batching / pipelining) -- and moves the payload through
the slow-memory bandwidth pools (DMA class, so the calibrated DMA
asymmetries apply).

Completion is claimed exactly as the paper describes (§2.2, §4.2): the
engine bumps the channel's *completion buffer*, a 64-bit value pointing
at the most recently finished descriptor in the ring.  We additionally
expose the wraparound counter (CNT) that EasyIO maintains alongside it,
so ``completion CNT·ADDR`` forms the monotonically increasing sequence
number (SN) EasyIO's orderless file operation relies on.

Channels support CHANCMD-style suspend/resume (the in-flight descriptor
executes to completion; fetching stops), which the channel manager uses
for µs-scale bandwidth throttling.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Sequence

from repro.hw.memory import SlowMemory
from repro.hw.params import CostModel
from repro.sim import Channel as SimChannel
from repro.sim import Engine, Event, Gate


class DmaDescriptor:
    """One DMA work descriptor (a memory-copy command).

    Attributes
    ----------
    nbytes:
        Payload size.
    write:
        True for DRAM->PM (a PM write), False for PM->DRAM (a PM read).
    done:
        Event fired when the engine posts this descriptor's completion.
    sn:
        Channel-local sequence number, assigned at submit time.  The
        descriptor is complete once the channel's completion SN is
        >= this value.
    """

    __slots__ = ("nbytes", "write", "tag", "done", "sn", "pipelined",
                 "submitted_at", "completed_at", "on_complete")

    def __init__(self, nbytes: int, write: bool, tag: object = None,
                 on_complete: Optional[Callable[["DmaDescriptor"], None]] = None):
        if nbytes <= 0:
            raise ValueError(f"descriptor payload must be positive, got {nbytes}")
        self.nbytes = nbytes
        self.write = write
        self.tag = tag
        self.done: Optional[Event] = None
        self.sn: Optional[int] = None
        self.pipelined = False
        self.submitted_at: Optional[int] = None
        self.completed_at: Optional[int] = None
        #: Invoked by the engine when the payload has landed, *before*
        #: the completion buffer is bumped -- the DMA writes its data,
        #: then claims completion.  EasyIO hooks page persistence here.
        self.on_complete = on_complete


class DmaChannel:
    """One DMA channel: descriptor ring + processing engine + completion buffer."""

    def __init__(self, engine: Engine, model: CostModel, memory: SlowMemory,
                 channel_id: int):
        self.engine = engine
        self.model = model
        self.memory = memory
        self.channel_id = channel_id
        self._ring = SimChannel(engine, model.dma_ring_size)
        self._suspended = False
        self._resume_gate = Gate(engine, opened=True)
        self._submitted_total = 0
        self._completed_total = 0
        self._pipeline_next = False
        # (sn, event) waiters resolved when completion SN reaches sn.
        self._sn_waiters: List = []
        self._waiter_seq = 0
        # Observability / throttling inputs.
        self.bytes_moved = 0
        self.descriptors_completed = 0
        #: Called as fn(channel) after every completion-buffer update;
        #: the persistent-memory image hooks this to journal the update.
        self.on_completion: Optional[Callable[["DmaChannel"], None]] = None
        #: Set by the owning DmaEngine; used for engine-capacity sharing.
        self.owner_engine: Optional["DmaEngine"] = None
        self._server = engine.process(self._service_loop(),
                                      name=f"dma-ch{channel_id}")

    # -- software-visible state ----------------------------------------
    @property
    def queue_depth(self) -> int:
        """Descriptors submitted but not yet completed."""
        return self._submitted_total - self._completed_total

    @property
    def completion_sn(self) -> int:
        """Monotonic completion sequence number (CNT·ADDR combined)."""
        return self._completed_total

    @property
    def completion_addr(self) -> int:
        """The raw 64-bit completion buffer: ring slot of the newest
        finished descriptor (wraps around)."""
        return self._completed_total % self.model.dma_ring_size

    @property
    def completion_cnt(self) -> int:
        """Wraparound counter maintained alongside the completion buffer."""
        return self._completed_total // self.model.dma_ring_size

    @property
    def suspended(self) -> bool:
        return self._suspended

    # -- submission -------------------------------------------------------
    def submit(self, descriptors: Sequence[DmaDescriptor]):
        """Process generator: CPU-side submission of one batch.

        Charges the caller descriptor-prep per descriptor plus one
        doorbell, then enqueues into the hardware ring (blocking if the
        ring is full).  Sets each descriptor's ``sn`` and ``done`` event.
        """
        if not descriptors:
            return []
        if len(descriptors) > self.model.dma_batch_max:
            raise ValueError(
                f"batch of {len(descriptors)} exceeds max {self.model.dma_batch_max}")
        prep = self.model.dma_desc_prep_cost * len(descriptors)
        yield self.engine.timeout(prep + self.model.dma_doorbell_cost)
        for i, desc in enumerate(descriptors):
            desc.pipelined = i > 0
            desc.done = self.engine.event()
            desc.submitted_at = self.engine.now
            self._submitted_total += 1
            desc.sn = self._submitted_total
            yield self._ring.put(desc)
        return list(descriptors)

    def try_submit_one(self, desc: DmaDescriptor) -> bool:
        """Non-blocking single-descriptor submit (no CPU cost charged).

        Used where the caller has already accounted for submission cost
        and must not block; returns False if the ring is full.
        """
        if self._ring.full:
            return False
        desc.pipelined = False
        desc.done = self.engine.event()
        desc.submitted_at = self.engine.now
        self._submitted_total += 1
        desc.sn = self._submitted_total
        ev = self._ring.put(desc)
        assert ev.triggered, "ring accepted the descriptor synchronously"
        return True

    # -- completion waiting ------------------------------------------------
    def completion_event(self, sn: int) -> Event:
        """Event firing once the completion SN reaches ``sn``.

        Fires immediately if it already has.  This models software
        polling the (read-only exported) completion buffer: the sim
        event fires at the exact instant the buffer value covers ``sn``.
        """
        ev = self.engine.event()
        if self._completed_total >= sn:
            ev.succeed(self._completed_total)
        else:
            self._waiter_seq += 1
            heapq.heappush(self._sn_waiters, (sn, self._waiter_seq, ev))
        return ev

    def is_complete(self, sn: int) -> bool:
        """Poll: has descriptor ``sn`` finished?"""
        return self._completed_total >= sn

    # -- CHANCMD ------------------------------------------------------------
    def suspend(self) -> None:
        """Stop fetching descriptors (in-flight one runs to completion)."""
        self._suspended = True
        self._resume_gate.close()

    def resume(self) -> None:
        """Resume descriptor fetching."""
        self._suspended = False
        self._resume_gate.open()

    # -- engine ----------------------------------------------------------------
    def _service_loop(self):
        model = self.model
        while True:
            desc = yield self._ring.get()
            if self._suspended:
                yield self._resume_gate.wait()
            pipelined = desc.pipelined or self._pipeline_next
            self._pipeline_next = len(self._ring) > 0
            overhead = (model.dma_desc_overhead_batched if pipelined
                        else model.dma_desc_overhead)
            yield self.engine.timeout(overhead)
            rate = (model.dma_channel_write_rate if desc.write
                    else model.dma_channel_read_rate)
            # The engine's processing capacity is shared by every
            # channel currently serving a descriptor; a channel's rate
            # is capped at its share (snapshotted at descriptor start,
            # which is exact for the <=64 KB split descriptors and a
            # fair approximation for rare bulk ones).
            owner = self.owner_engine
            if owner is not None:
                rate = min(rate, owner.claim_share())
            try:
                yield self.memory.dma_transfer(desc.nbytes, desc.write, rate,
                                               tag=self.channel_id)
            finally:
                if owner is not None:
                    owner.release_share()
            yield self.engine.timeout(model.dma_completion_write_cost)
            if desc.on_complete is not None:
                desc.on_complete(desc)
            self._completed_total += 1
            self.bytes_moved += desc.nbytes
            self.descriptors_completed += 1
            desc.completed_at = self.engine.now
            if self.on_completion is not None:
                self.on_completion(self)
            done = desc.done
            assert done is not None
            done.succeed(desc)
            while self._sn_waiters and self._sn_waiters[0][0] <= self._completed_total:
                _sn, _seq, ev = heapq.heappop(self._sn_waiters)
                ev.succeed(self._completed_total)


class DmaEngine:
    """The per-socket DMA engine: a set of channels over one memory device."""

    def __init__(self, engine: Engine, model: CostModel, memory: SlowMemory,
                 num_channels: Optional[int] = None, sockets: int = 1):
        self.engine = engine
        self.model = model
        self.memory = memory
        self.sockets = sockets
        n = num_channels if num_channels is not None else model.dma_channels_per_socket
        if n < 1:
            raise ValueError(f"need at least one DMA channel, got {n}")
        self.channels = [DmaChannel(engine, model, memory, channel_id=i)
                         for i in range(n)]
        #: Total processing capacity shared by all channels (B/ns).
        self.capacity = model.dma_engine_capacity_per_socket * sockets
        self._serving = 0
        for ch in self.channels:
            ch.owner_engine = self

    # -- engine capacity sharing ----------------------------------------
    def claim_share(self) -> float:
        """A channel starts serving a descriptor: its capacity share."""
        self._serving += 1
        return self.capacity / self._serving

    def release_share(self) -> None:
        self._serving -= 1
        assert self._serving >= 0, "unbalanced engine share accounting"

    @property
    def serving_channels(self) -> int:
        return self._serving

    def __len__(self) -> int:
        return len(self.channels)

    def channel(self, idx: int) -> DmaChannel:
        return self.channels[idx]

    def least_loaded(self, candidates: Optional[Sequence[int]] = None) -> DmaChannel:
        """The candidate channel with the shallowest queue (ties: lowest id)."""
        chans = (self.channels if candidates is None
                 else [self.channels[i] for i in candidates])
        return min(chans, key=lambda c: (c.queue_depth, c.channel_id))

    def total_bytes_moved(self) -> int:
        return sum(c.bytes_moved for c in self.channels)
