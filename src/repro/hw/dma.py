"""I/OAT-style on-chip DMA engine.

Each :class:`DmaChannel` owns a bounded hardware descriptor ring served
by one processing engine.  Submitting costs the CPU a descriptor-prep
plus an MMIO doorbell (charged to the *caller*); the engine then pays a
per-descriptor startup overhead -- lower when descriptors stream
back-to-back (batching / pipelining) -- and moves the payload through
the slow-memory bandwidth pools (DMA class, so the calibrated DMA
asymmetries apply).

Completion is claimed exactly as the paper describes (§2.2, §4.2): the
engine bumps the channel's *completion buffer*, a 64-bit value pointing
at the most recently finished descriptor in the ring.  We additionally
expose the wraparound counter (CNT) that EasyIO maintains alongside it,
so ``completion CNT·ADDR`` forms the monotonically increasing sequence
number (SN) EasyIO's orderless file operation relies on.

Channels support CHANCMD-style suspend/resume (the in-flight descriptor
executes to completion; fetching stops), which the channel manager uses
for µs-scale bandwidth throttling.

Fault semantics (CHANERR-style, driven by an installed
:class:`~repro.faults.FaultPlan`):

* a **transfer error** fails one descriptor -- no data lands, its
  ``status`` becomes ``"error"``, the completion buffer does *not*
  advance for it -- and the channel keeps serving;
* a **channel halt** additionally stops the channel: ``halted`` is set,
  ``error_sn``/``chanerr`` identify the failure, and everything still
  in the ring is stranded until software issues :meth:`reset`, which
  hands the stranded descriptors back (``status == "stranded"``).

Because later completions make the completion SN *jump past* failed
descriptors, every failed/stranded SN is reported through ``on_error``
/ ``on_reset`` *before* any later completion can cover it -- EasyIO
persists these as poisoned SNs so its recovery validity rule stays
sound under failover.

Macro-op aggregation (steady-state fast path)
---------------------------------------------

The classic service path runs one generator process per channel and
pays, per descriptor, the full submit -> ring hand-off -> park/resume
choreography: a put acknowledgement, a ring-getter wake-up, and a
generator resumption for every step of the descriptor's lifetime.  In
steady state (no faults, no tracer, no line-recording image) none of
that choreography is observable -- only the descriptor's *completion
time* and the completion side effects are.  Macro-op mode therefore
collapses the chain into a closed-form callback sequence (overhead
timer -> bandwidth-pool flow -> completion-write timer -> epilogue)
that schedules the *same events at the same nanoseconds* while
skipping the ring hand-off events and all generator machinery.

Legality is latched per channel at each idle->busy transition (see
:meth:`DmaChannel._use_aggregation`): macro-ops require no fault plan,
no tracer, no fidelity probe demanding per-page records, and a
non-halted channel.  While a macro-op chain is draining the mode is
*sticky* (one serving mechanism keeps FIFO completion order); if a
fault plan arrives mid-flight the queued descriptors are expanded back
onto the classic ring at the next descriptor boundary, preserving
order.  ``REPRO_DMA_MACRO_OPS=0`` disables the fast path globally --
the golden-equivalence suite pins both paths byte-exact.
"""

from __future__ import annotations

import heapq
import os
from collections import deque
from typing import Callable, List, Optional, Sequence

from repro.hw.memory import SlowMemory
from repro.hw.params import CostModel
from repro.sim import Channel as SimChannel
from repro.sim import Engine, Event, Gate

#: Process-wide default for macro-op DMA aggregation.  Channels read it
#: at construction; tests override per channel via ``ch.aggregation``.
DMA_MACRO_OPS = os.environ.get("REPRO_DMA_MACRO_OPS", "1") != "0"


class DmaDescriptor:
    """One DMA work descriptor (a memory-copy command).

    Attributes
    ----------
    nbytes:
        Payload size.
    write:
        True for DRAM->PM (a PM write), False for PM->DRAM (a PM read).
    done:
        Event fired when the engine posts this descriptor's completion.
    sn:
        Channel-local sequence number, assigned at submit time.  The
        descriptor is complete once the channel's completion SN is
        >= this value.
    status:
        ``"pending"`` until the engine decides its fate, then ``"ok"``,
        ``"error"`` (transfer error / CHANERR), or ``"stranded"`` (was
        in the ring when the channel halted and got torn down by
        ``reset()``).  ``done`` fires in *every* case -- software
        inspects ``status`` to tell success from failure.
    """

    __slots__ = ("nbytes", "write", "tag", "done", "sn", "pipelined",
                 "submitted_at", "completed_at", "on_complete",
                 "status", "error")

    def __init__(self, nbytes: int, write: bool, tag: object = None,
                 on_complete: Optional[Callable[["DmaDescriptor"], None]] = None):
        if nbytes <= 0:
            raise ValueError(f"descriptor payload must be positive, got {nbytes}")
        self.nbytes = nbytes
        self.write = write
        self.tag = tag
        self.done: Optional[Event] = None
        self.sn: Optional[int] = None
        self.pipelined = False
        self.submitted_at: Optional[int] = None
        self.completed_at: Optional[int] = None
        #: Invoked by the engine when the payload has landed, *before*
        #: the completion buffer is bumped -- the DMA writes its data,
        #: then claims completion.  EasyIO hooks page persistence here.
        self.on_complete = on_complete
        self.status = "pending"
        #: Fault kind when status is "error" (see repro.faults).
        self.error: Optional[str] = None

    @property
    def failed(self) -> bool:
        """Did this descriptor fail (error or stranded)?"""
        return self.status in ("error", "stranded")


class DmaChannel:
    """One DMA channel: descriptor ring + processing engine + completion buffer."""

    def __init__(self, engine: Engine, model: CostModel, memory: SlowMemory,
                 channel_id: int):
        self.engine = engine
        self.model = model
        self.memory = memory
        self.channel_id = channel_id
        self._ring = SimChannel(engine, model.dma_ring_size)
        self._suspended = False
        self._resume_gate = Gate(engine, opened=True)
        self._submitted_total = 0
        self._completion_sn = 0
        self._queued = 0
        self._pipeline_next = False
        # (sn, event) waiters resolved when completion SN reaches sn.
        self._sn_waiters: List = []
        self._waiter_seq = 0
        # Observability / throttling inputs.
        self.bytes_moved = 0
        self.descriptors_completed = 0
        # -- fault state (CHANERR semantics) ---------------------------
        self._halted = False
        self._halt_gate = Gate(engine, opened=True)
        #: SN of the descriptor whose failure halted the channel.
        self.error_sn: Optional[int] = None
        #: CHANERR code (a repro.faults kind) while halted.
        self.chanerr: Optional[str] = None
        #: Every SN that failed or was stranded on this channel
        #: (volatile mirror; EasyIO persists them via on_error/on_reset).
        self.error_sns: set = set()
        self.errors = 0
        self.halts = 0
        self.resets = 0
        #: Installed FaultPlan (or None for perfect hardware); a
        #: property so installing a plan mid-flight expands any queued
        #: macro-op descriptors back onto the classic ring.
        self._fault_plan = None
        # -- macro-op aggregation state --------------------------------
        #: Master switch for the aggregated fast path on this channel.
        self.aggregation = DMA_MACRO_OPS
        #: Returns True when something outside the channel (a
        #: line-recording image, say) needs per-descriptor fidelity and
        #: macro-ops must not engage.  Wired by the filesystem layer.
        self.fidelity_probe: Optional[Callable[[], bool]] = None
        #: Descriptors accepted by the aggregated path (observability).
        self.descriptors_aggregated = 0
        self._agg_fifo: deque = deque()
        self._agg_putters: deque = deque()  # (event, desc) on full ring
        self._agg_active = False
        self._agg_expand = False
        #: The one descriptor the macro-op chain is serving (the chain
        #: is strictly sequential per channel, so the stage callbacks
        #: are pre-bound once here instead of closing over each desc).
        self._agg_current: Optional[DmaDescriptor] = None
        self._agg_resume_cb = self._agg_resume
        self._agg_serve_cb = self._agg_serve
        self._agg_transfer_cb = self._agg_transfer
        self._agg_landed_cb = self._agg_landed
        self._agg_finish_cb = self._agg_finish
        #: Called as fn(channel, (sn, ...)) the instant SNs fail --
        #: strictly before any later completion can cover them.
        self.on_error: Optional[Callable] = None
        #: Called as fn(channel) when the channel halts (the CHANERR
        #: interrupt); the channel manager hooks its recovery path here.
        self.on_halt: Optional[Callable] = None
        #: Called as fn(channel, (sn, ...)) from reset() with the
        #: stranded SNs, before service resumes.
        self.on_reset: Optional[Callable] = None
        #: Called as fn(channel) after every completion-buffer update;
        #: the persistent-memory image hooks this to journal the update.
        self.on_completion: Optional[Callable[["DmaChannel"], None]] = None
        #: Set by the owning DmaEngine; used for engine-capacity sharing.
        self.owner_engine: Optional["DmaEngine"] = None
        #: Trace track name (repro.obs): one row per channel.
        self._track = f"ch{channel_id}"
        self._server = engine.process(self._service_loop(),
                                      name=f"dma-ch{channel_id}")

    # -- software-visible state ----------------------------------------
    @property
    def queue_depth(self) -> int:
        """Descriptors submitted but not yet completed, failed, or
        stranded."""
        return self._queued

    @property
    def completion_sn(self) -> int:
        """Monotonic completion sequence number (CNT·ADDR combined).

        Under faults this *jumps past* failed descriptors (their SNs
        are reported through ``on_error``/``on_reset`` first); with
        perfect hardware it advances by exactly one per completion.
        """
        return self._completion_sn

    @property
    def completion_addr(self) -> int:
        """The raw 64-bit completion buffer: ring slot of the newest
        finished descriptor (wraps around)."""
        return self._completion_sn % self.model.dma_ring_size

    @property
    def completion_cnt(self) -> int:
        """Wraparound counter maintained alongside the completion buffer."""
        return self._completion_sn // self.model.dma_ring_size

    @property
    def suspended(self) -> bool:
        return self._suspended

    @property
    def halted(self) -> bool:
        """Has a CHANERR halted this channel (pending reset())?"""
        return self._halted

    @property
    def fault_plan(self):
        """Installed FaultPlan (or None for perfect hardware)."""
        return self._fault_plan

    @fault_plan.setter
    def fault_plan(self, plan) -> None:
        self._fault_plan = plan
        if plan is not None and (self._agg_active or self._agg_fifo):
            # Mid-flight install: per-descriptor fault checks need the
            # classic path, so queued macro-op descriptors expand back
            # onto the ring at the next descriptor boundary (the one in
            # flight completes fault-free, as classic hardware would
            # finish its fetched descriptor).
            self._agg_expand = True

    @property
    def macro_ops_active(self) -> bool:
        """Is the aggregated fast path currently draining descriptors?"""
        return self._agg_active

    # -- submission -------------------------------------------------------
    def submit(self, descriptors: Sequence[DmaDescriptor]):
        """Process generator: CPU-side submission of one batch.

        Charges the caller descriptor-prep per descriptor plus one
        doorbell, then enqueues into the hardware ring (blocking if the
        ring is full).  Sets each descriptor's ``sn`` and ``done`` event.
        """
        if not descriptors:
            return []
        if len(descriptors) > self.model.dma_batch_max:
            raise ValueError(
                f"batch of {len(descriptors)} exceeds max {self.model.dma_batch_max}")
        prep = self.model.dma_desc_prep_cost * len(descriptors)
        yield self.engine.sleep(prep + self.model.dma_doorbell_cost)
        if self._use_aggregation():
            yield from self._submit_aggregated(descriptors)
            return list(descriptors)
        tr = self.engine.tracer
        for i, desc in enumerate(descriptors):
            desc.pipelined = i > 0
            desc.done = self.engine.event()
            desc.submitted_at = self.engine.now
            self._submitted_total += 1
            desc.sn = self._submitted_total
            self._queued += 1
            if tr is not None:
                tr.point("dma_submit", track=self._track, sn=desc.sn,
                         nbytes=desc.nbytes, write=desc.write)
            yield self._ring.put(desc)
        return list(descriptors)

    def submit_all(self, descriptors: Sequence[DmaDescriptor]):
        """Process generator: submit an arbitrary-length descriptor list.

        The backend-neutral submission API (used by the ``repro.io``
        copy backends): chunks the list into ring submissions of at
        most ``dma_batch_max`` descriptors, charging the caller per
        batch exactly as :meth:`submit` does.
        """
        step = self.model.dma_batch_max
        for i in range(0, len(descriptors), step):
            yield from self.submit(descriptors[i:i + step])
        return list(descriptors)

    def try_submit_one(self, desc: DmaDescriptor) -> bool:
        """Non-blocking single-descriptor submit (no CPU cost charged).

        Used where the caller has already accounted for submission cost
        and must not block; returns False if the ring is full.
        """
        if self._use_aggregation():
            if len(self._agg_fifo) >= self.model.dma_ring_size:
                return False
            desc.pipelined = False
            self._accept_aggregated(desc)
            self._agg_fifo.append(desc)
            if not self._agg_active:
                self._agg_active = True
                self._agg_next()
            return True
        if self._ring.full:
            return False
        desc.pipelined = False
        desc.done = self.engine.event()
        desc.submitted_at = self.engine.now
        self._submitted_total += 1
        desc.sn = self._submitted_total
        self._queued += 1
        tr = self.engine.tracer
        if tr is not None:
            tr.point("dma_submit", track=self._track, sn=desc.sn,
                     nbytes=desc.nbytes, write=desc.write)
        ev = self._ring.put(desc)
        assert ev.triggered, "ring accepted the descriptor synchronously"
        return True

    # -- completion waiting ------------------------------------------------
    def completion_event(self, sn: int) -> Event:
        """Event firing once the completion SN reaches ``sn``.

        Fires immediately if it already has.  This models software
        polling the (read-only exported) completion buffer: the sim
        event fires at the exact instant the buffer value covers ``sn``.
        """
        ev = self.engine.event()
        if self._completion_sn >= sn:
            ev.succeed(self._completion_sn)
        else:
            self._waiter_seq += 1
            heapq.heappush(self._sn_waiters, (sn, self._waiter_seq, ev))
        return ev

    def is_complete(self, sn: int) -> bool:
        """Poll: has the completion buffer covered ``sn``?

        Under faults a covered SN is only a *successful* completion if
        it is not in ``error_sns`` (recovery applies the same rule via
        the persisted poisoned-SN set).
        """
        return self._completion_sn >= sn

    # -- CHANCMD ------------------------------------------------------------
    def suspend(self) -> None:
        """Stop fetching descriptors (in-flight one runs to completion)."""
        self._suspended = True
        self._resume_gate.close()
        tr = self.engine.tracer
        if tr is not None:
            tr.point("chancmd_suspend", track=self._track)

    def resume(self) -> None:
        """Resume descriptor fetching."""
        self._suspended = False
        self._resume_gate.open()
        tr = self.engine.tracer
        if tr is not None:
            tr.point("chancmd_resume", track=self._track)

    # -- CHANERR reset ------------------------------------------------------
    def reset(self) -> List[DmaDescriptor]:
        """Software CHANERR handling: tear down and restart the channel.

        Drains the ring (unblocking any submitter stuck on a full
        ring), marks every drained descriptor ``"stranded"`` and fires
        its ``done`` event, reports the stranded SNs through
        ``on_reset`` *before* service can resume (so software persists
        them as poisoned before any later completion covers them),
        clears the halt, and returns the stranded descriptors.
        """
        if not self._halted:
            return []
        stranded = self._ring.drain()
        self._queued -= len(stranded)
        burned = tuple(d.sn for d in stranded)
        self.error_sns.update(burned)
        for d in stranded:
            d.status = "stranded"
            d.done.succeed(d)
        tr = self.engine.tracer
        if tr is not None:
            tr.point("dma_reset", track=self._track, sns=burned)
        if self.on_reset is not None and burned:
            self.on_reset(self, burned)
        self._halted = False
        self.error_sn = None
        self.chanerr = None
        self.resets += 1
        self._halt_gate.open()
        return stranded

    # -- macro-op aggregation (steady-state fast path) ---------------------
    def _use_aggregation(self) -> bool:
        """Decide the serving mechanism for newly submitted descriptors.

        Evaluated at each submission instant.  While a macro-op chain
        is draining the answer is sticky-True (FIFO completion order
        needs one serving mechanism); while classic descriptors are in
        flight it is sticky-False for the same reason.  From idle, the
        fast path engages only when nothing observable distinguishes it
        from the classic choreography: no fault plan (per-descriptor
        fault checks), no tracer (per-descriptor points), no fidelity
        probe demanding per-page records, and a non-halted channel.
        """
        if self._agg_active or self._agg_fifo:
            return True
        if self._queued:
            return False
        if (not self.aggregation or self._fault_plan is not None
                or self._halted or self.engine.tracer is not None):
            return False
        probe = self.fidelity_probe
        return probe is None or not probe()

    def _accept_aggregated(self, desc: DmaDescriptor) -> None:
        """Stamp one descriptor exactly as the classic submit path does."""
        desc.done = self.engine.event()
        desc.submitted_at = self.engine.now
        self._submitted_total += 1
        desc.sn = self._submitted_total
        self._queued += 1
        self.descriptors_aggregated += 1
        tr = self.engine.tracer
        if tr is not None:  # tracer attached mid-chain (sticky mode)
            tr.point("dma_submit", track=self._track, sn=desc.sn,
                     nbytes=desc.nbytes, write=desc.write)

    def _submit_aggregated(self, descriptors: Sequence[DmaDescriptor]):
        """Aggregated-mode tail of :meth:`submit` (after the CPU charge).

        Descriptors enter the macro-op FIFO synchronously -- no put
        acknowledgement, no ring-getter wake-up -- but the ring bound
        still back-pressures: past ``dma_ring_size`` queued descriptors
        the submitter blocks until the chain frees a slot, exactly when
        a full hardware ring would have blocked it.
        """
        for i, desc in enumerate(descriptors):
            desc.pipelined = i > 0
            self._accept_aggregated(desc)
            if len(self._agg_fifo) >= self.model.dma_ring_size:
                ev = self.engine.event()
                self._agg_putters.append((ev, desc))
                yield ev
            else:
                self._agg_fifo.append(desc)
                if not self._agg_active:
                    self._agg_active = True
                    self._agg_next()

    def _agg_next(self) -> None:
        """Fetch the next queued descriptor into the macro-op chain.

        Mirrors one iteration of the classic service loop's fetch step:
        pop in FIFO order, admit the oldest blocked submitter into the
        freed ring slot, park on the resume gate while suspended.
        """
        if self._agg_expand:
            self._agg_expand_now()
            return
        fifo = self._agg_fifo
        if not fifo:
            self._agg_active = False
            return
        desc = fifo.popleft()
        putters = self._agg_putters
        while putters:
            ev, queued = putters.popleft()
            if ev.cancelled:
                continue
            fifo.append(queued)
            ev.succeed()
            break
        self._agg_current = desc
        # One same-nanosecond dispatch hop before serving: the classic
        # loop resumes from ``yield ring.get()`` one dispatch after the
        # hand-off, and only *then* inspects suspend state and ring
        # occupancy.  Descriptors submitted in the intervening dispatch
        # (same ns) must count toward the pipelining decision in both
        # paths, so the fast path keeps this hop.
        self.engine.sleep(0).add_callback(self._agg_resume_cb)

    def _agg_resume(self, _ev=None) -> None:
        """Post-fetch dispatch point: park while suspended, then serve."""
        if self._suspended:
            self._resume_gate.wait().add_callback(self._agg_serve_cb)
            return
        self._agg_serve()

    def _agg_serve(self, _ev=None) -> None:
        """Charge the per-descriptor engine overhead (classic timing)."""
        model = self.model
        desc = self._agg_current
        pipelined = desc.pipelined or self._pipeline_next
        self._pipeline_next = len(self._agg_fifo) > 0
        overhead = (model.dma_desc_overhead_batched if pipelined
                    else model.dma_desc_overhead)
        self.engine.sleep(overhead).add_callback(self._agg_transfer_cb)

    def _agg_transfer(self, _ev=None) -> None:
        """Enter the bandwidth pool at the instant classic would."""
        model = self.model
        desc = self._agg_current
        rate = (model.dma_channel_write_rate if desc.write
                else model.dma_channel_read_rate)
        owner = self.owner_engine
        if owner is not None:
            rate = min(rate, owner.claim_share())
        self.memory.dma_transfer(desc.nbytes, desc.write, rate,
                                 tag=self.channel_id).add_callback(
            self._agg_landed_cb)

    def _agg_landed(self, _ev=None) -> None:
        """Payload landed: release the engine share, write completion."""
        owner = self.owner_engine
        if owner is not None:
            owner.release_share()
        self.engine.sleep(self.model.dma_completion_write_cost).add_callback(
            self._agg_finish_cb)

    def _agg_finish(self, _ev=None) -> None:
        """Completion epilogue: identical side effects, identical order,
        to the classic service loop's completion block."""
        desc = self._agg_current
        if desc.on_complete is not None:
            desc.on_complete(desc)
        self._completion_sn = desc.sn
        self._queued -= 1
        self.bytes_moved += desc.nbytes
        self.descriptors_completed += 1
        desc.status = "ok"
        desc.completed_at = self.engine.now
        tr = self.engine.tracer
        if tr is not None:
            tr.point("dma_complete", track=self._track, sn=desc.sn)
        if self.on_completion is not None:
            self.on_completion(self)
        desc.done.succeed(desc)
        while self._sn_waiters and self._sn_waiters[0][0] <= self._completion_sn:
            _sn, _seq, ev = heapq.heappop(self._sn_waiters)
            ev.succeed(self._completion_sn)
        self._agg_next()

    def _agg_expand_now(self) -> None:
        """Expand queued macro-op descriptors back onto the classic ring.

        Runs at a descriptor boundary after a fault plan arrived
        mid-flight: hands the FIFO to the (still parked) service loop
        in order -- the first descriptor wakes the ring getter exactly
        like :meth:`~repro.sim.sync.Channel.put` would -- and re-queues
        any blocked submitters as classic ring putters.
        """
        self._agg_expand = False
        self._agg_active = False
        ring = self._ring
        fifo = self._agg_fifo
        while fifo:
            desc = fifo.popleft()
            while ring._getters and ring._getters[0].cancelled:
                ring._getters.popleft()
            if ring._getters:
                ring._getters.popleft().succeed(desc)
            else:
                ring._items.append(desc)
        while self._agg_putters:
            ev, desc = self._agg_putters.popleft()
            if ev.cancelled:
                continue
            ring._putters.append((ev, desc))

    # -- engine ----------------------------------------------------------------
    def _service_loop(self):
        model = self.model
        while True:
            desc = yield self._ring.get()
            if self._suspended:
                yield self._resume_gate.wait()
            if self._halted:
                yield self._halt_gate.wait()
            pipelined = desc.pipelined or self._pipeline_next
            self._pipeline_next = len(self._ring) > 0
            overhead = (model.dma_desc_overhead_batched if pipelined
                        else model.dma_desc_overhead)
            yield self.engine.sleep(overhead)
            fault = (self.fault_plan.descriptor_fault(self, desc)
                     if self.fault_plan is not None else None)
            if fault is not None:
                yield self.engine.sleep(model.dma_error_latency)
                self._fail_descriptor(desc, fault)
                if self._halted:
                    yield self._halt_gate.wait()
                continue
            rate = (model.dma_channel_write_rate if desc.write
                    else model.dma_channel_read_rate)
            # The engine's processing capacity is shared by every
            # channel currently serving a descriptor; a channel's rate
            # is capped at its share (snapshotted at descriptor start,
            # which is exact for the <=64 KB split descriptors and a
            # fair approximation for rare bulk ones).
            owner = self.owner_engine
            if owner is not None:
                rate = min(rate, owner.claim_share())
            try:
                yield self.memory.dma_transfer(desc.nbytes, desc.write, rate,
                                               tag=self.channel_id)
            finally:
                if owner is not None:
                    owner.release_share()
            yield self.engine.sleep(model.dma_completion_write_cost)
            if desc.on_complete is not None:
                desc.on_complete(desc)
            # Jump to this descriptor's SN: identical to +1 in FIFO
            # operation, and skips past failed SNs (already poisoned
            # via on_error/on_reset) after a fault.
            self._completion_sn = desc.sn
            self._queued -= 1
            self.bytes_moved += desc.nbytes
            self.descriptors_completed += 1
            desc.status = "ok"
            desc.completed_at = self.engine.now
            tr = self.engine.tracer
            if tr is not None:
                tr.point("dma_complete", track=self._track, sn=desc.sn)
            if self.on_completion is not None:
                self.on_completion(self)
            done = desc.done
            assert done is not None
            done.succeed(desc)
            while self._sn_waiters and self._sn_waiters[0][0] <= self._completion_sn:
                _sn, _seq, ev = heapq.heappop(self._sn_waiters)
                ev.succeed(self._completion_sn)

    def _fail_descriptor(self, desc: DmaDescriptor, fault: str) -> None:
        """Engine-side error handling for one faulted descriptor.

        No data lands and the completion buffer does not advance; the
        SN is reported as poisoned *before* the done event fires, so
        software (and, via on_error, the persistent image) knows about
        the failure before any later completion can cover the SN.
        """
        desc.status = "error"
        desc.error = fault
        self._queued -= 1
        self.errors += 1
        self.error_sns.add(desc.sn)
        halting = fault == "chan_halt"
        tr = self.engine.tracer
        if tr is not None:
            tr.point("dma_fault", track=self._track, sn=desc.sn,
                     fault=fault, halting=halting)
        if halting:
            self._halted = True
            self._halt_gate.close()
            self.error_sn = desc.sn
            self.chanerr = fault
            self.halts += 1
        if self.on_error is not None:
            self.on_error(self, (desc.sn,))
        desc.done.succeed(desc)
        if halting and self.on_halt is not None:
            self.on_halt(self)


class DmaEngine:
    """The per-socket DMA engine: a set of channels over one memory device."""

    def __init__(self, engine: Engine, model: CostModel, memory: SlowMemory,
                 num_channels: Optional[int] = None, sockets: int = 1):
        self.engine = engine
        self.model = model
        self.memory = memory
        self.sockets = sockets
        n = num_channels if num_channels is not None else model.dma_channels_per_socket
        if n < 1:
            raise ValueError(f"need at least one DMA channel, got {n}")
        self.channels = [DmaChannel(engine, model, memory, channel_id=i)
                         for i in range(n)]
        #: Total processing capacity shared by all channels (B/ns).
        self.capacity = model.dma_engine_capacity_per_socket * sockets
        self._serving = 0
        for ch in self.channels:
            ch.owner_engine = self

    # -- engine capacity sharing ----------------------------------------
    def claim_share(self) -> float:
        """A channel starts serving a descriptor: its capacity share."""
        self._serving += 1
        return self.capacity / self._serving

    def release_share(self) -> None:
        self._serving -= 1
        assert self._serving >= 0, "unbalanced engine share accounting"

    @property
    def serving_channels(self) -> int:
        return self._serving

    def __len__(self) -> int:
        return len(self.channels)

    def channel(self, idx: int) -> DmaChannel:
        return self.channels[idx]

    def least_loaded(self, candidates: Optional[Sequence[int]] = None) -> DmaChannel:
        """The candidate channel with the shallowest queue (ties: lowest id)."""
        chans = (self.channels if candidates is None
                 else [self.channels[i] for i in candidates])
        return min(chans, key=lambda c: (c.queue_depth, c.channel_id))

    def total_bytes_moved(self) -> int:
        return sum(c.bytes_moved for c in self.channels)
