"""Calibrated cost model for the simulated testbed.

Every latency/bandwidth constant used by the hardware models is defined
here, in one place, so the calibration against the paper's measured
behaviour (Figures 1-4) is auditable and tweakable per experiment.

Units
-----
* time: nanoseconds (the simulator clock unit)
* sizes: bytes
* rates: bytes per nanosecond -- numerically identical to GB/s
  (1 GB/s = 1e9 B / 1e9 ns = 1 B/ns), which keeps the constants
  readable.

Calibration sources (paper section / figure):

* Optane DCPMM device peaks: §6.1 -- 37.6 GB/s read, 13.2 GB/s write
  over 6 DIMMs, i.e. ~6.27 / ~2.2 GB/s per DIMM.  Figures 2-4 run on a
  single NUMA node with 3 DIMMs.
* memcpy write bandwidth collapses beyond a few concurrent writers
  (Fig 2 observation ④, and [27, 76]): modelled by
  :meth:`CostModel.cpu_write_efficiency`.
* One DMA channel saturates the node's write bandwidth with one core
  (Fig 2 observation ①); DMA reads peak ~63 % below memcpy reads
  (observation ②): per-channel caps + the DMA read ceiling fraction.
* Multi-channel writes degrade monotonically for >=16 KB I/O and peak
  around 4 channels for 4 KB I/O (Fig 3): per-descriptor engine
  overhead + :meth:`CostModel.dma_write_channel_penalty`.
* NOVA latency breakdown (Fig 1): syscall/indexing/metadata constants
  chosen so memcpy is ~63 % of a 64 KB write and ~95 % of a 64 KB read.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict


@dataclass
class CostModel:
    """All hardware and software cost constants for one simulation.

    Instances are immutable by convention; use :meth:`evolve` to derive
    a tweaked copy for sensitivity experiments.
    """

    # ---- Optane DCPMM (per DIMM) ------------------------------------
    pm_read_bw_per_dimm: float = 6.27     # GB/s == B/ns
    pm_write_bw_per_dimm: float = 2.2
    pm_read_latency: int = 350            # ns, first-access latency
    pm_write_latency: int = 100           # ns, store reaches the WPQ

    # ---- CPU-driven copies (memcpy / non-temporal stores) -----------
    cpu_copy_read_rate: float = 4.0       # per-core PM->DRAM copy rate
    cpu_copy_write_rate: float = 5.5      # per-core DRAM->PM copy rate
    cpu_copy_op_overhead: int = 200       # ns, fixed per memcpy call
    # CPU-write aggregate bandwidth: approaches the device peak
    # asymptotically as writers are added (peak * n / (n + ramp)), then
    # collapses past a DIMM-scaled knee (XPBuffer contention, Fig 2 ④).
    cpu_write_ramp: float = 1.5
    cpu_write_collapse_knee_per_dimm: float = 2.5
    cpu_write_collapse_slope: float = 0.10
    cpu_write_collapse_floor: float = 0.30

    # ---- DRAM (only used as a sanity ceiling; rarely binding) -------
    dram_bw_total: float = 80.0
    dram_latency: int = 85

    # ---- On-chip DMA engine (I/OAT-like) -----------------------------
    dma_channels_per_socket: int = 8
    dma_ring_size: int = 128              # descriptors per hardware queue
    dma_desc_prep_cost: int = 150         # ns of CPU time per descriptor
    dma_doorbell_cost: int = 100          # ns of CPU time per MMIO submit
    dma_batch_max: int = 32               # max descriptors per submit
    # Engine-side fixed cost to start one descriptor.  Batched
    # (pipelined back-to-back) descriptors amortise fetch/decode.
    dma_desc_overhead: int = 1100         # ns, isolated descriptor
    dma_desc_overhead_batched: int = 500  # ns, descriptor inside a batch
    dma_channel_read_rate: float = 6.5    # per-channel cap
    dma_channel_write_rate: float = 7.5
    # DMA reads cannot reach the device read peak (Fig 2 ②): the DMA
    # read class is capped at this fraction of the device read peak.
    dma_read_ceiling_fraction: float = 0.42
    # Multi-channel write interleave penalty (Fig 3): coefficient of
    # the channels-per-DIMM contention term in dma_write_ceiling().
    dma_write_channel_penalty: float = 0.25
    # Engine-wide processing capacity: all channels of one socket's
    # engine share it, so a bulk descriptor starves colocated channels
    # ("the DMA engine consumes device bandwidth disproportionately",
    # Fig 4) -- the root cause the channel manager throttles around.
    dma_engine_capacity_per_socket: float = 6.5
    dma_completion_write_cost: int = 80   # ns to post the completion value
    # CHANCMD suspend/resume cost (§4.4: "74 ns").
    dma_chancmd_cost: int = 74
    # Engine-side latency to detect a failed descriptor and raise the
    # error status / CHANERR interrupt (fault-injection experiments).
    dma_error_latency: int = 400

    # ---- OS / filesystem software costs ------------------------------
    syscall_cost: int = 600               # ns, entry+exit incl. VFS
    vfs_lookup_cost: int = 120            # ns, fd -> inode
    index_lookup_cost: int = 45           # ns per page radix lookup
    index_insert_cost: int = 45           # ns per page mapping install
    block_alloc_cost: int = 110           # ns per allocation call
    block_alloc_page_cost: int = 25       # ns per page within the call
    log_append_cost: int = 450            # ns build+persist one log entry
    log_commit_cost: int = 350            # ns atomic tail update + fence
    journal_cost: int = 900               # ns lightweight journal txn
    timestamp_update_cost: int = 60       # ns access/modify time touch
    lock_cost: int = 40                   # ns uncontended lock/unlock pair
    # Contended acquire: cacheline bouncing + handoff, scaled by the
    # number of waiters racing for the same lock (drives the Fig 11
    # decline as DWOM adds writers).
    lock_contended_cost: int = 400

    # ---- Userspace runtime (Caladan-like) -----------------------------
    uthread_switch_cost: int = 140        # ns register save/restore
    uthread_spawn_cost: int = 400         # ns
    completion_poll_cost: int = 60        # ns scan exported buffers once
    work_steal_cost: int = 900            # ns cross-core steal
    kernel_wakeup_cost: int = 2000        # ns kernel-thread block/unblock

    # ---- Odinfs-style delegation --------------------------------------
    delegation_dispatch_cost: int = 750   # ns enqueue to delegation ring
    delegation_chunk: int = 32 * 1024     # bytes per delegated sub-request

    def evolve(self, **changes) -> "CostModel":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)

    @classmethod
    def dsa(cls) -> "CostModel":
        """A Sapphire-Rapids-class DSA instead of I/OAT (§5, the
        paper's future work).

        Calibrated from the public DSA characterisation [48]: shared
        virtual memory removes the pinning/prep cost, descriptor
        processing is several times cheaper (so small I/O offloads
        pay off), read throughput is no longer crippled, and the
        engine itself is faster.  The paper predicts these traits
        "further expand EasyIO's benefit" -- the
        ``benchmarks/test_ext_dsa.py`` experiment checks that our
        model agrees.
        """
        return cls(
            dma_desc_prep_cost=60,          # SVM: no pinning, direct VAs
            dma_doorbell_cost=60,           # ENQCMD
            dma_desc_overhead=450,
            dma_desc_overhead_batched=180,
            dma_channel_read_rate=8.0,
            dma_channel_write_rate=9.0,
            dma_read_ceiling_fraction=0.80,  # reads near device peak
            dma_engine_capacity_per_socket=9.0,
        )

    # ---- derived quantities -------------------------------------------
    def pm_read_peak(self, dimms: int) -> float:
        """Aggregate device read bandwidth for ``dimms`` DIMMs."""
        return self.pm_read_bw_per_dimm * dimms

    def pm_write_peak(self, dimms: int) -> float:
        """Aggregate device write bandwidth for ``dimms`` DIMMs."""
        return self.pm_write_bw_per_dimm * dimms

    def cpu_write_capacity(self, dimms: int, writers: int) -> float:
        """Aggregate CPU-write bandwidth cap for ``writers`` cores.

        Rises asymptotically toward the device peak (a single writer
        cannot fill every DIMM's write-combining buffers), then loses
        aggregate bandwidth once many cores store concurrently
        (Fig 2 observation ④; also [27, 76]).
        """
        if writers <= 0:
            return self.pm_write_peak(dimms)
        ramp = writers / (writers + self.cpu_write_ramp)
        knee = self.cpu_write_collapse_knee_per_dimm * dimms
        collapse = 1.0
        if writers > knee:
            collapse = max(self.cpu_write_collapse_floor,
                           1.0 - self.cpu_write_collapse_slope * (writers - knee))
        return self.pm_write_peak(dimms) * ramp * collapse

    def dma_write_ceiling(self, dimms: int, active_channels: int) -> float:
        """DMA-write class bandwidth cap for a given active channel count.

        The interleave penalty scales with channels *per DIMM*: a few
        channels striped over many DIMMs are free, but several channels
        hammering the same DIMMs thrash their write-combining buffers
        (Fig 3's monotone decline on the 3-DIMM node).
        """
        if active_channels <= 0:
            return self.pm_write_peak(dimms)
        contention = active_channels / dimms
        penalty = 1.0 / (1.0 + self.dma_write_channel_penalty
                         * max(0.0, contention - 1.0 / 3.0))
        return self.pm_write_peak(dimms) * penalty

    def dma_read_ceiling(self, dimms: int) -> float:
        """DMA-read class bandwidth cap (well below the device peak)."""
        return self.pm_read_peak(dimms) * self.dma_read_ceiling_fraction

    def describe(self) -> Dict[str, float]:
        """Flat dict of every constant (for experiment logs)."""
        return {k: getattr(self, k) for k in self.__dataclass_fields__}


#: Shared default instance; experiments that do not tweak constants use it.
DEFAULT_COST_MODEL = CostModel()
