"""Simulated hardware: slow memory, on-chip DMA engine, CPU cores.

This package is the substitute for the paper's testbed (2x Xeon Gold
6240M + 6 Optane DCPMMs + I/OAT).  The cost model lives in
:mod:`repro.hw.params`; :mod:`repro.hw.memory` models bandwidth-shared
slow memory, :mod:`repro.hw.dma` the I/OAT-style on-chip DMA engine,
:mod:`repro.hw.cpu` cores with busy-time accounting, and
:mod:`repro.hw.platform` assembles a full machine.
"""

from repro.hw.params import CostModel, DEFAULT_COST_MODEL
from repro.hw.memory import BandwidthPool, SlowMemory
from repro.hw.cpu import Core
from repro.hw.dma import DmaChannel, DmaDescriptor, DmaEngine
from repro.hw.platform import Platform, PlatformConfig

__all__ = [
    "BandwidthPool",
    "Core",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "DmaChannel",
    "DmaDescriptor",
    "DmaEngine",
    "Platform",
    "PlatformConfig",
    "SlowMemory",
]
