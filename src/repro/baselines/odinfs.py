"""Odinfs [76]: NUMA-aware delegation of data movement.

Odinfs reserves physical cores to run background *delegation threads*;
an application thread hands each data-movement request to them (split
into chunks, spread across threads) and waits.  Large I/Os are thus
parallelised across cores -- lower latency for bulk transfers -- at
the price of permanently burning the reserved cores.

The paper's configuration (§6.1): 12 reserved cores per NUMA node, so
at most 12 worker threads remain usable in a 16-core experiment; its
throughput curves flatten once workers run out (Figure 9/10).

The application thread *sleeps* while delegation threads copy -- that
looks similar to EasyIO's offload, but the interface is synchronous:
the thread cannot run other work, so the saved cycles only help
whole-machine utilisation, not the application's own throughput.
"""

from __future__ import annotations

from typing import List, Optional

from repro.fs.nova import NovaFS, OpContext, OpResult
from repro.fs.pmimage import PMImage
from repro.fs.structures import PAGE_SIZE, MemInode
from repro.hw.cpu import Core
from repro.hw.platform import Platform
from repro.sim import Store


class _DelegationRequest:
    __slots__ = ("nbytes", "write", "done", "tag")

    def __init__(self, engine, nbytes: int, write: bool, tag):
        self.nbytes = nbytes
        self.write = write
        self.tag = tag
        self.done = engine.event()


class _DelegationThread:
    """One background thread pinned to a reserved core."""

    def __init__(self, fs: "OdinfsFS", core: Core):
        self.fs = fs
        self.core = core
        self.queue = Store(fs.engine)
        self.bytes_moved = 0
        fs.engine.process(self._loop(), name=f"odinfs-dg{core.core_id}")

    def _loop(self):
        while True:
            req = yield self.queue.get()
            self.core.mark_busy("odinfs-delegation")
            try:
                yield from self.fs.memory.delegated_copy(
                    req.nbytes, write=req.write, tag=req.tag)
            finally:
                self.core.mark_idle()
            self.bytes_moved += req.nbytes
            req.done.succeed()


class OdinfsFS(NovaFS):
    """NOVA-format filesystem with Odinfs-style delegated data movement."""

    name = "Odinfs"

    def __init__(self, platform: Platform, image: Optional[PMImage] = None,
                 delegation_cores: Optional[List[Core]] = None):
        super().__init__(platform, image)
        if delegation_cores is None:
            # Paper default: 12 reserved cores per NUMA node, taken from
            # the top of the core range so workers use the bottom.
            reserve = 12 * platform.config.sockets
            delegation_cores = platform.cores[-reserve:]
        if not delegation_cores:
            raise ValueError("Odinfs needs at least one delegation core")
        self.delegation_cores = delegation_cores
        self.threads = [_DelegationThread(self, core)
                        for core in delegation_cores]
        self._rr = 0
        self.requests_delegated = 0

    @property
    def reserved_cores(self) -> int:
        return len(self.delegation_cores)

    # ------------------------------------------------------------------
    # Delegated copy: split, fan out round-robin, wait for all chunks
    # ------------------------------------------------------------------
    def _delegate(self, ctx: OpContext, nbytes: int, write: bool, tag):
        chunk = self.model.delegation_chunk
        sizes = [chunk] * (nbytes // chunk)
        if nbytes % chunk:
            sizes.append(nbytes % chunk)
        events = []
        for size in sizes:
            # Dispatch costs the app thread a ring enqueue per chunk.
            yield from ctx.charge("memcpy", self.model.delegation_dispatch_cost)
            thread = self.threads[self._rr % len(self.threads)]
            self._rr += 1
            req = _DelegationRequest(self.engine, size, write, tag)
            thread.queue.put(req)
            events.append(req.done)
            self.requests_delegated += 1
        # The app thread sleeps until every chunk lands (synchronous
        # interface; the kernel wakeup is not free).
        t0 = self.engine.now
        yield from ctx.idle_wait(self.engine.all_of(events))
        yield from ctx.charge("syscall", self.model.kernel_wakeup_cost)
        if ctx.record:
            ctx.breakdown["wait"] += self.engine.now - t0

    # ------------------------------------------------------------------
    # Data paths
    # ------------------------------------------------------------------
    def _write_locked(self, ctx: OpContext, m: MemInode, offset: int,
                      nbytes: int, payload: Optional[bytes]):
        try:
            yield from self._charge_lock_contention(ctx)
            prep = yield from self._prepare_cow(ctx, m, offset, nbytes, payload)
            yield from self._delegate(ctx, nbytes, write=True, tag=("w", m.ino))
            self._persist_pages(prep)
            yield from self._commit_write(ctx, m, prep, sns=())
        finally:
            m.lock.release_write()
        return OpResult(value=nbytes, ctx=ctx)

    def _read_extents(self, ctx: OpContext, m: MemInode, offset: int,
                      nbytes: int, runs, want_data: bool):
        try:
            total = sum(len(pages) * PAGE_SIZE for _off, pages in runs if pages)
            if total:
                yield from self._delegate(ctx, total, write=False,
                                          tag=("r", m.ino))
            yield from ctx.charge("metadata", self.model.timestamp_update_cost)
            value = (self._collect_data(m, offset, nbytes)
                     if want_data else nbytes)
        finally:
            m.lock.release_read()
        return OpResult(value=value, ctx=ctx)
