"""Odinfs [76]: NUMA-aware delegation of data movement.

Odinfs reserves physical cores to run background *delegation threads*;
an application thread hands each data-movement request to them (split
into chunks, spread across threads) and waits.  Large I/Os are thus
parallelised across cores -- lower latency for bulk transfers -- at
the price of permanently burning the reserved cores.

The paper's configuration (§6.1): 12 reserved cores per NUMA node, so
at most 12 worker threads remain usable in a 16-core experiment; its
throughput curves flatten once workers run out (Figure 9/10).

The application thread *sleeps* while delegation threads copy -- that
looks similar to EasyIO's offload, but the interface is synchronous:
the thread cannot run other work, so the saved cycles only help
whole-machine utilisation, not the application's own throughput.

As a pipeline composition: the strictly ordered Sync{Write,Read}
pipelines over :class:`~repro.io.backends.DelegationBackend` with
park-and-wake completion.  The backend owns the delegation threads,
so the pipeline is built eagerly at construction time (the threads'
processes must exist before the simulation starts).
"""

from __future__ import annotations

from typing import List, Optional

from repro.fs.nova import NovaFS
from repro.fs.pmimage import PMImage
from repro.hw.cpu import Core
from repro.hw.platform import Platform


class OdinfsFS(NovaFS):
    """NOVA-format filesystem with Odinfs-style delegated data movement."""

    name = "Odinfs"

    def __init__(self, platform: Platform, image: Optional[PMImage] = None,
                 delegation_cores: Optional[List[Core]] = None,
                 elide_payloads: bool = False):
        super().__init__(platform, image, elide_payloads=elide_payloads)
        if delegation_cores is None:
            # Paper default: 12 reserved cores per NUMA node, taken from
            # the top of the core range so workers use the bottom.
            reserve = 12 * platform.config.sockets
            delegation_cores = platform.cores[-reserve:]
        if not delegation_cores:
            raise ValueError("Odinfs needs at least one delegation core")
        self.delegation_cores = delegation_cores
        self._io = self._build_pipeline()

    @property
    def reserved_cores(self) -> int:
        return len(self.delegation_cores)

    @property
    def _backend(self):
        return self._io.write.backend

    @property
    def threads(self):
        """The backend's delegation threads (one per reserved core)."""
        return self._backend.threads

    @property
    def requests_delegated(self) -> int:
        return self._backend.requests_delegated

    def _build_pipeline(self):
        from repro.io import (
            DelegationBackend,
            IoPipeline,
            IoPlanner,
            ParkAndWakeCompletion,
            SyncReadPipeline,
            SyncWritePipeline,
        )
        planner = IoPlanner(self)
        backend = DelegationBackend(self.engine, self.model, self.memory,
                                    self.delegation_cores,
                                    self._make_persister(),
                                    ParkAndWakeCompletion(self.model))
        return IoPipeline(write=SyncWritePipeline(self, planner, backend),
                          read=SyncReadPipeline(self, planner, backend),
                          planner=planner)
