"""Comparison filesystems from the paper's evaluation (§6.1).

* :class:`~repro.fs.nova.NovaFS` (imported from :mod:`repro.fs`) --
  plain synchronous NOVA.
* :class:`~repro.baselines.nova_dma.NovaDmaFS` -- the authors'
  reimplementation of Fastmove [69]: synchronous DMA offload across
  all channels.
* :class:`~repro.baselines.odinfs.OdinfsFS` -- Odinfs [76]: data
  movement delegated to reserved background threads that parallelise
  large I/Os.
"""

from repro.baselines.nova_dma import NovaDmaFS
from repro.baselines.odinfs import OdinfsFS

__all__ = ["NovaDmaFS", "OdinfsFS"]
