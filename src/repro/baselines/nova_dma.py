"""NOVA-DMA: synchronous DMA offload (the Fastmove [69] stand-in).

The paper could not run Fastmove directly, so it evaluates NOVA-DMA:
NOVA with the memcpys in the read/write paths replaced by DMA-offloaded
copies.  Crucially the interface stays *synchronous* -- the CPU core
busy-polls the completion buffer until the copy lands, so no cycles are
harvested; the only benefits are the engine's copy throughput and the
write-efficiency of a single channel.

NOVA-DMA spreads requests across **all** channels (the paper calls
this out as the reason its write throughput collapses under high
concurrency -- the §2.2 multi-channel penalty bites).

As a pipeline composition: the same strictly ordered
Sync{Write,Read}Pipeline as NOVA, with the copy backend swapped for
:class:`~repro.io.backends.DmaPollBackend` (busy-poll completion).
"""

from __future__ import annotations

from typing import Optional

from repro.fs.nova import NovaFS
from repro.fs.pmimage import PMImage
from repro.hw.platform import Platform


class NovaDmaFS(NovaFS):
    """NOVA with synchronous DMA-offloaded data movement."""

    name = "NOVA-DMA"

    #: Below this size the DMA engine loses to memcpy, so like Fastmove
    #: we keep small copies on the CPU.
    OFFLOAD_THRESHOLD = 4096

    def __init__(self, platform: Platform, image: Optional[PMImage] = None,
                 elide_payloads: bool = False):
        super().__init__(platform, image, elide_payloads=elide_payloads)
        self.dma_writes = 0
        self.dma_reads = 0
        self.memcpy_ops = 0

    def _build_pipeline(self):
        from repro.io import (
            BusyPollCompletion,
            DmaPollBackend,
            IoPipeline,
            IoPlanner,
            OpCounters,
            SyncReadPipeline,
            SyncWritePipeline,
        )
        planner = IoPlanner(self)
        backend = DmaPollBackend(self.platform.dma, self.model, self.memory,
                                 self._make_persister(),
                                 BusyPollCompletion(), OpCounters(self),
                                 offload_threshold=self.OFFLOAD_THRESHOLD)
        return IoPipeline(write=SyncWritePipeline(self, planner, backend),
                          read=SyncReadPipeline(self, planner, backend),
                          planner=planner)
