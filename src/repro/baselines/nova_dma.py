"""NOVA-DMA: synchronous DMA offload (the Fastmove [69] stand-in).

The paper could not run Fastmove directly, so it evaluates NOVA-DMA:
NOVA with the memcpys in the read/write paths replaced by DMA-offloaded
copies.  Crucially the interface stays *synchronous* -- the CPU core
busy-polls the completion buffer until the copy lands, so no cycles are
harvested; the only benefits are the engine's copy throughput and the
write-efficiency of a single channel.

NOVA-DMA spreads requests across **all** channels (the paper calls
this out as the reason its write throughput collapses under high
concurrency -- the §2.2 multi-channel penalty bites).
"""

from __future__ import annotations

from typing import List, Optional

from repro.fs.nova import NovaFS, OpContext, OpResult
from repro.fs.pmimage import PMImage
from repro.fs.structures import PAGE_SIZE, MemInode
from repro.hw.dma import DmaDescriptor
from repro.hw.platform import Platform


class NovaDmaFS(NovaFS):
    """NOVA with synchronous DMA-offloaded data movement."""

    name = "NOVA-DMA"

    #: Below this size the DMA engine loses to memcpy, so like Fastmove
    #: we keep small copies on the CPU.
    OFFLOAD_THRESHOLD = 4096

    def __init__(self, platform: Platform, image: Optional[PMImage] = None):
        super().__init__(platform, image)
        self.dma_writes = 0
        self.dma_reads = 0
        self.memcpy_ops = 0

    def _pick_channel(self):
        """Least-loaded across *all* channels (no traffic separation)."""
        return self.platform.dma.least_loaded()

    def _busy_wait(self, ctx: OpContext, descs: List[DmaDescriptor]):
        """Poll the completion buffer; the core burns CPU throughout."""
        for desc in descs:
            if not desc.done.triggered:
                t0 = self.engine.now
                yield desc.done
                elapsed = self.engine.now - t0
                if ctx.record:
                    ctx.breakdown["memcpy"] += elapsed
                ctx.cpu_ns += elapsed

    # ------------------------------------------------------------------
    # Write path: submit, busy-poll, then commit (strictly ordered)
    # ------------------------------------------------------------------
    def _write_locked(self, ctx: OpContext, m: MemInode, offset: int,
                      nbytes: int, payload: Optional[bytes]):
        try:
            yield from self._charge_lock_contention(ctx)
            prep = yield from self._prepare_cow(ctx, m, offset, nbytes, payload)
            if nbytes <= self.OFFLOAD_THRESHOLD:
                self.memcpy_ops += 1
                for run_bytes in prep.run_sizes:
                    yield from ctx.timed_cpu(
                        "memcpy", self.memory.cpu_copy(run_bytes, write=True,
                                                       tag=("w", m.ino)))
                self._persist_pages(prep)
            else:
                self.dma_writes += 1
                channel = self._pick_channel()
                descs = [DmaDescriptor(run_bytes, write=True, tag=("w", m.ino))
                         for run_bytes in prep.run_sizes]
                for i in range(0, len(descs), self.model.dma_batch_max):
                    yield from ctx.timed_cpu(
                        "memcpy",
                        channel.submit(descs[i:i + self.model.dma_batch_max]))
                yield from self._busy_wait(ctx, descs)
                self._persist_pages(prep)
            yield from self._commit_write(ctx, m, prep, sns=())
        finally:
            m.lock.release_write()
        return OpResult(value=nbytes, ctx=ctx)

    # ------------------------------------------------------------------
    # Read path: DMA for every extent above the threshold
    # ------------------------------------------------------------------
    def _read_extents(self, ctx: OpContext, m: MemInode, offset: int,
                      nbytes: int, runs, want_data: bool):
        try:
            for _off, pages in runs:
                if not pages:
                    continue
                run_bytes = len(pages) * PAGE_SIZE
                if run_bytes <= self.OFFLOAD_THRESHOLD:
                    self.memcpy_ops += 1
                    yield from ctx.timed_cpu(
                        "memcpy", self.memory.cpu_copy(run_bytes, write=False,
                                                       tag=("r", m.ino)))
                else:
                    self.dma_reads += 1
                    channel = self._pick_channel()
                    desc = DmaDescriptor(run_bytes, write=False,
                                         tag=("r", m.ino))
                    yield from ctx.timed_cpu("memcpy", channel.submit([desc]))
                    yield from self._busy_wait(ctx, [desc])
            yield from ctx.charge("metadata", self.model.timestamp_update_cost)
            value = (self._collect_data(m, offset, nbytes)
                     if want_data else nbytes)
        finally:
            m.lock.release_read()
        return OpResult(value=value, ctx=ctx)
