"""NOVA-like log-structured persistent-memory filesystem.

This is the synchronous baseline the paper modifies (§5): per-inode
metadata logs with an atomic tail-pointer commit, copy-on-write data
pages, a lightweight journal for multi-inode operations (rename), and
DAX-style direct data movement (no page cache).

Every operation is a simulation coroutine (``yield from fs.write(...)``)
that charges calibrated CPU costs phase by phase, so the Figure 1
latency breakdown (metadata / memcpy / indexing / syscall & VFS) falls
out of instrumentation rather than estimation.

Data movement is delegated to the unified I/O pipeline
(:mod:`repro.io`): each variant -- NOVA, NOVA-DMA, Odinfs, EasyIO --
overrides only :meth:`NovaFS._build_pipeline` to compose a planner, a
copy backend, a completion strategy, and middleware stages.  The
metadata formats and namespace operations are shared -- mirroring the
paper's claim that EasyIO needs <50 changed lines in NOVA.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.fs.alloc import PageAllocator
from repro.fs.pmimage import ELIDED, PMImage
from repro.fs.structures import (
    PAGE_SIZE,
    DentryEntry,
    FileKind,
    Inode,
    MemInode,
    PageMapping,
    RenameTxn,
    SetAttrEntry,
    WriteEntry,
)
from repro.hw.params import CostModel
from repro.hw.platform import Platform
from repro.sim import Event, RWLock, WaitTimeout

ROOT_INO = 0


class FsError(Exception):
    """Filesystem-level error (ENOENT, EEXIST, ...)."""


class DeadlineExceeded(FsError):
    """The operation's deadline passed before it could finish.

    Raised only at clean abort points: before any data movement has
    been submitted, or while waiting on a lock/completion -- never in
    the middle of a metadata commit, so filesystem state stays legal.
    """


class OpContext:
    """Per-operation accounting context.

    Tracks the latency breakdown by phase (Figure 1's categories) and
    the CPU time the operation consumed -- which differs from its
    latency exactly when data movement is offloaded (the EasyIO-CPU
    series in Figure 8).
    """

    PHASES = ("metadata", "memcpy", "indexing", "syscall", "wait")

    __slots__ = ("platform", "engine", "core", "record", "_breakdown",
                 "cpu_ns", "started_at", "app", "lock_racing", "deadline",
                 "force_sync", "op_id", "_tracer")

    def __init__(self, platform: Platform, core=None, record: bool = True,
                 deadline: Optional[int] = None):
        self.platform = platform
        self.engine = platform.engine
        self.core = core
        self.record = record
        #: Structured-tracing hookup (repro.obs): the engine's tracer
        #: and a per-operation id tying this op's events together
        #: across tracks.  Both None when tracing is off.
        tr = platform.engine.tracer
        self._tracer = tr
        self.op_id = tr.next_op_id() if tr is not None else None
        # The per-phase dict is built lazily: throughput runs create one
        # context per op with record=False and never look at it.
        self._breakdown: Optional[Dict[str, int]] = None
        self.cpu_ns = 0
        self.started_at = self.engine.now
        #: The issuing application's profile (QoS class), if any.
        self.app = None
        #: Waiters racing for the file lock at acquire time (set by
        #: _acquire_file_lock, consumed by _charge_lock_contention).
        self.lock_racing = 0
        #: Absolute simulated-time deadline (ns); None = unbounded.
        self.deadline = deadline
        #: Overload policy: force the synchronous (memcpy) data path.
        self.force_sync = False

    @property
    def breakdown(self) -> Dict[str, int]:
        """Per-phase CPU accounting (Figure 1's categories)."""
        bd = self._breakdown
        if bd is None:
            bd = self._breakdown = {p: 0 for p in self.PHASES}
        return bd

    def remaining(self) -> Optional[int]:
        """Nanoseconds of budget left, or None when unbounded."""
        if self.deadline is None:
            return None
        return self.deadline - self.engine.now

    # -- tracing (no-ops costing one None check when tracing is off) --
    def trace_begin(self, name: str, **args) -> None:
        """Open a span on this op's track."""
        tr = self._tracer
        if tr is not None:
            tr.begin(name, track=f"op{self.op_id}", op=self.op_id, **args)

    def trace_end(self, name: str) -> None:
        """Close this op's innermost span of ``name``."""
        tr = self._tracer
        if tr is not None:
            tr.end(name, track=f"op{self.op_id}", op=self.op_id)

    def trace_point(self, name: str, track: str = "fs", **args) -> None:
        """Emit an instantaneous event attributed to this op."""
        tr = self._tracer
        if tr is not None:
            tr.point(name, track=track, op=self.op_id, **args)

    def _trace_abort(self, what: str) -> None:
        tr = self._tracer
        if tr is not None:
            tr.point("deadline_abort", track="fs", op=self.op_id, what=what)

    def check_deadline(self, what: str = "operation") -> None:
        """Raise :class:`DeadlineExceeded` if the deadline has passed."""
        if self.deadline is not None and self.engine.now >= self.deadline:
            self._trace_abort(what)
            raise DeadlineExceeded(
                f"{what}: deadline {self.deadline} passed "
                f"(now={self.engine.now})")

    def timed_wait(self, event: Event, what: str = "wait"):
        """Wait on ``event``, bounded by the context deadline.

        The elapsed time is charged to the "wait" phase as spinning CPU
        (like the level-2 wait).  On expiry raises
        :class:`DeadlineExceeded`; the shared ``event`` is only
        *detached from*, never cancelled, so other waiters still see it
        fire.
        """
        t0 = self.engine.now
        try:
            if self.deadline is None or event.triggered:
                value = yield event
                return value
            rem = self.deadline - self.engine.now
            if rem <= 0:
                self._trace_abort(what)
                raise DeadlineExceeded(
                    f"{what}: no budget left before wait")
            timer = self.engine.timeout(rem)
            fired = yield self.engine.any_of([event, timer])
            if event in fired:
                if not timer.processed:
                    timer.cancel()
                return fired[event]
            self._trace_abort(what)
            raise DeadlineExceeded(
                f"{what}: deadline exceeded after "
                f"{self.engine.now - t0} ns wait")
        finally:
            waited = self.engine.now - t0
            if waited:
                if self.record:
                    self.breakdown["wait"] += waited
                self.cpu_ns += waited

    def charge(self, phase: str, ns: int) -> Event:
        """Burn ``ns`` of CPU time attributed to ``phase``.

        Returns the event to ``yield`` -- a pooled sleep, or the
        engine's already-done no-op event when ``ns <= 0``.  The
        accounting is applied eagerly (the totals are only read once
        the operation has finished, so the order is unobservable) --
        this keeps ``charge`` a plain call instead of a sub-generator
        on the hottest path in the simulator.
        """
        if ns <= 0:
            return self.engine.done
        if self.record:
            self.breakdown[phase] += ns
        self.cpu_ns += ns
        return self.engine.sleep(ns)

    def timed_cpu(self, phase: str, gen):
        """Run a sub-generator whose elapsed time is CPU time (memcpy)."""
        t0 = self.engine.now
        result = yield from gen
        elapsed = self.engine.now - t0
        if self.record:
            self.breakdown[phase] += elapsed
        self.cpu_ns += elapsed
        return result

    def idle_wait(self, event: Event):
        """Wait on an event without consuming CPU (kernel sleep)."""
        if self.core is not None and self.core.busy:
            self.core.mark_idle()
            try:
                value = yield event
            finally:
                self.core.mark_busy()
        else:
            value = yield event
        return value

    @property
    def latency(self) -> int:
        """Nanoseconds since the operation started."""
        return self.engine.now - self.started_at


@dataclass
class OpResult:
    """What a filesystem operation returns.

    ``pending`` is None for synchronous filesystems; EasyIO returns the
    event that fires when the offloaded data movement completes, plus
    the SNs the caller can poll in the exported completion buffers.
    """

    value: Any = None
    pending: Optional[Event] = None
    sns: Tuple[Tuple[int, int], ...] = ()
    ctx: Optional[OpContext] = None
    #: Second-syscall factory (``make(ctx) -> coroutine``) the runtime
    #: must run once ``pending`` fires -- only the Naive ablation uses
    #: this (its metadata commit is a separate syscall, §6.4).
    continuation: Optional[Any] = None

    @property
    def is_async(self) -> bool:
        return self.pending is not None and not self.pending.triggered


class NovaFS:
    """The synchronous NOVA baseline (CPU memcpy data path)."""

    name = "NOVA"

    def __init__(self, platform: Platform, image: Optional[PMImage] = None,
                 elide_payloads: bool = False):
        self.platform = platform
        self.engine = platform.engine
        self.model: CostModel = platform.model
        self.memory = platform.memory
        self.image = image if image is not None else PMImage()
        #: Payload-elision mode: the data plane moves (and charges for)
        #: the same bytes at the same instants, but no page contents are
        #: stored -- for pure-performance sweeps only.  Incompatible
        #: with recording images, fault plans, and writes that carry a
        #: real payload (all guarded).
        self.elide_payloads = elide_payloads
        if elide_payloads and self.image.recording:
            raise ValueError(
                "payload elision cannot be combined with a recording "
                "image: crash replay needs real page contents")
        self.allocator = PageAllocator(self.image)
        # Line-recording images journal per-descriptor completion-buffer
        # stores, so DMA macro-op aggregation must stand down while one
        # is active: bind this filesystem's image as every channel's
        # fidelity probe (like on_completion, the newest filesystem on
        # a shared platform wins).
        image = self.image
        for _ch in platform.dma.channels:
            _ch.fidelity_probe = (
                lambda _img=image: _img.linestream is not None)
        self._mem: Dict[int, MemInode] = {}
        self.ops_completed = 0
        self._mounted = False
        # The I/O pipeline composition; variants that must spawn
        # processes at construction time (Odinfs) build it eagerly at
        # the end of their own __init__, everyone else on first use.
        self._io = None

    def _make_persister(self):
        """The page persister matching this filesystem's mode."""
        # Imported here: repro.io imports OpResult from this module.
        from repro.io import ElidingPagePersister, PagePersister
        if self.elide_payloads:
            if self.image.fault_plan is not None:
                raise ValueError(
                    "payload elision cannot be combined with a fault "
                    "plan: media-fault verification reads pages back")
            persister = ElidingPagePersister(self.image)
        else:
            persister = PagePersister(self.image)
        persister.engine = self.engine
        return persister

    # ------------------------------------------------------------------
    # Mount / volatile state
    # ------------------------------------------------------------------
    def mount(self) -> "NovaFS":
        """Create (or adopt) the root directory and go live."""
        if ROOT_INO not in self.image.inodes:
            root = Inode(ROOT_INO, FileKind.DIR, links=2, ctime=self.engine.now)
            self.image.put_inode(ROOT_INO, root)
            self.image.next_ino = max(self.image.next_ino, 1)
        self._mem[ROOT_INO] = self._fresh_mem(ROOT_INO, FileKind.DIR, links=2)
        self._mounted = True
        return self

    def _fresh_mem(self, ino: int, kind: FileKind, links: int = 1) -> MemInode:
        m = MemInode(ino=ino, kind=kind, links=links)
        m.lock = RWLock(self.engine, name=f"ino{ino}")
        return m

    def minode(self, ino: int) -> MemInode:
        """Volatile inode state; raises if the inode does not exist."""
        m = self._mem.get(ino)
        if m is None:
            raise FsError(f"no such inode: {ino}")
        return m

    def context(self, core=None, record: bool = True,
                deadline: Optional[int] = None) -> OpContext:
        """Create the accounting context for one operation."""
        return OpContext(self.platform, core=core, record=record,
                         deadline=deadline)

    # ------------------------------------------------------------------
    # Path resolution
    # ------------------------------------------------------------------
    @staticmethod
    def _split(path: str) -> List[str]:
        parts = [p for p in path.split("/") if p]
        if not parts:
            raise FsError(f"invalid path: {path!r}")
        return parts

    def _resolve_dir(self, ctx: OpContext, parts: List[str]) -> MemInode:
        """Walk all but the last component; returns the parent directory."""
        cur = self.minode(ROOT_INO)
        for name in parts[:-1]:
            yield ctx.charge("syscall", self.model.vfs_lookup_cost)
            child = cur.dentries.get(name)
            if child is None:
                raise FsError(f"no such directory: {name!r}")
            cur = self.minode(child)
            if cur.kind is not FileKind.DIR:
                raise FsError(f"not a directory: {name!r}")
        return cur

    def lookup(self, ctx: OpContext, path: str):
        """Resolve a path to an inode number (coroutine)."""
        parts = self._split(path)
        parent = yield from self._resolve_dir(ctx, parts)
        yield ctx.charge("syscall", self.model.vfs_lookup_cost)
        ino = parent.dentries.get(parts[-1])
        if ino is None:
            raise FsError(f"no such file: {path!r}")
        return ino

    # ------------------------------------------------------------------
    # Namespace operations
    # ------------------------------------------------------------------
    def create(self, ctx: OpContext, path: str, kind: FileKind = FileKind.FILE):
        """Create a file (or directory); returns its inode number."""
        yield ctx.charge("syscall", self.model.syscall_cost)
        parts = self._split(path)
        parent = yield from self._resolve_dir(ctx, parts)
        name = parts[-1]
        yield from ctx.idle_wait(parent.lock.acquire_write())
        try:
            yield ctx.charge("syscall", self.model.lock_cost)
            if name in parent.dentries:
                raise FsError(f"already exists: {path!r}")
            ino = self.image.alloc_ino()
            links = 2 if kind is FileKind.DIR else 1
            yield ctx.charge("metadata", self.model.log_append_cost)
            self.image.put_inode(ino, Inode(ino, kind, links, self.engine.now))
            yield from self._append_commit(
                ctx, parent,
                DentryEntry(name, ino, kind, valid=True, mtime=self.engine.now))
            parent.dentries[name] = ino
            parent.mtime = self.engine.now
            self._mem[ino] = self._fresh_mem(ino, kind, links)
        finally:
            parent.lock.release_write()
        self.ops_completed += 1
        return ino

    def mkdir(self, ctx: OpContext, path: str):
        """Create a directory; returns its inode number."""
        ino = yield from self.create(ctx, path, kind=FileKind.DIR)
        return ino

    def unlink(self, ctx: OpContext, path: str):
        """Remove a name; frees the inode when its link count drops to 0."""
        yield ctx.charge("syscall", self.model.syscall_cost)
        parts = self._split(path)
        parent = yield from self._resolve_dir(ctx, parts)
        name = parts[-1]
        yield from ctx.idle_wait(parent.lock.acquire_write())
        try:
            yield ctx.charge("syscall", self.model.lock_cost)
            ino = parent.dentries.get(name)
            if ino is None:
                raise FsError(f"no such file: {path!r}")
            target = self.minode(ino)
            yield from self._append_commit(
                ctx, parent,
                DentryEntry(name, ino, target.kind, valid=False,
                            mtime=self.engine.now))
            del parent.dentries[name]
            parent.mtime = self.engine.now
            target.links -= 1
            if target.links <= 0 or (target.kind is FileKind.DIR
                                     and target.links <= 1):
                yield from self._drop_inode(ctx, target)
            else:
                yield ctx.charge("metadata", self.model.log_append_cost)
                self.image.put_inode(ino, Inode(ino, target.kind, target.links,
                                                self.engine.now))
        finally:
            parent.lock.release_write()
        self.ops_completed += 1

    def link(self, ctx: OpContext, existing: str, new: str):
        """Hard-link ``existing`` at ``new``."""
        yield ctx.charge("syscall", self.model.syscall_cost)
        ino = yield from self.lookup(ctx, existing)
        target = self.minode(ino)
        if target.kind is FileKind.DIR:
            raise FsError("cannot hard-link a directory")
        parts = self._split(new)
        parent = yield from self._resolve_dir(ctx, parts)
        name = parts[-1]
        yield from ctx.idle_wait(parent.lock.acquire_write())
        try:
            if name in parent.dentries:
                raise FsError(f"already exists: {new!r}")
            yield from self._append_commit(
                ctx, parent,
                DentryEntry(name, ino, target.kind, valid=True,
                            mtime=self.engine.now))
            parent.dentries[name] = ino
            target.links += 1
            yield ctx.charge("metadata", self.model.log_append_cost)
            self.image.put_inode(ino, Inode(ino, target.kind, target.links,
                                            self.engine.now))
        finally:
            parent.lock.release_write()
        self.ops_completed += 1

    def rename(self, ctx: OpContext, old: str, new: str):
        """Atomically move ``old`` to ``new`` (journaled, NOVA-style)."""
        yield ctx.charge("syscall", self.model.syscall_cost)
        old_parts, new_parts = self._split(old), self._split(new)
        src_dir = yield from self._resolve_dir(ctx, old_parts)
        dst_dir = yield from self._resolve_dir(ctx, new_parts)
        src_name, dst_name = old_parts[-1], new_parts[-1]
        # Lock in inode order to avoid ABBA deadlocks.
        inos = sorted({src_dir.ino, dst_dir.ino})
        first, second = inos[0], inos[-1]
        yield from ctx.idle_wait(self.minode(first).lock.acquire_write())
        if second != first:
            yield from ctx.idle_wait(self.minode(second).lock.acquire_write())
        try:
            ino = src_dir.dentries.get(src_name)
            if ino is None:
                raise FsError(f"no such file: {old!r}")
            target = self.minode(ino)
            yield ctx.charge("metadata", self.model.journal_cost)
            self.image.journal_begin(RenameTxn(src_dir.ino, src_name,
                                               dst_dir.ino, dst_name,
                                               ino, target.kind))
            replaced = dst_dir.dentries.get(dst_name)
            yield from self._append_commit(
                ctx, dst_dir,
                DentryEntry(dst_name, ino, target.kind, valid=True,
                            mtime=self.engine.now))
            dst_dir.dentries[dst_name] = ino
            yield from self._append_commit(
                ctx, src_dir,
                DentryEntry(src_name, ino, target.kind, valid=False,
                            mtime=self.engine.now))
            del src_dir.dentries[src_name]
            self.image.journal_end()
            if replaced is not None and replaced != ino:
                victim = self.minode(replaced)
                victim.links -= 1
                if victim.links <= 0:
                    yield from self._drop_inode(ctx, victim)
        finally:
            if second != first:
                self.minode(second).lock.release_write()
            self.minode(first).lock.release_write()
        self.ops_completed += 1

    def stat(self, ctx: OpContext, path: str):
        """Return ``(ino, kind, size, mtime, links)``."""
        yield ctx.charge("syscall", self.model.syscall_cost)
        ino = yield from self.lookup(ctx, path)
        m = self.minode(ino)
        yield ctx.charge("metadata", self.model.timestamp_update_cost)
        return (m.ino, m.kind, m.size, m.mtime, m.links)

    def truncate(self, ctx: OpContext, ino: int, size: int):
        """Set the file size, dropping whole pages beyond it."""
        yield ctx.charge("syscall", self.model.syscall_cost)
        m = self.minode(ino)
        yield from ctx.idle_wait(m.lock.acquire_write())
        try:
            yield from self._wait_level2(ctx, m)
            yield from self._append_commit(
                ctx, m, SetAttrEntry(size=size, mtime=self.engine.now))
            first_dead = (size + PAGE_SIZE - 1) // PAGE_SIZE
            dead = [off for off in m.index if off >= first_dead]
            freed = [m.index.pop(off).page_id for off in dead]
            m.bump_layout_epoch()
            self.allocator.free(freed)
            m.size = size
            m.mtime = self.engine.now
        finally:
            m.lock.release_write()
        self.ops_completed += 1

    def _drop_inode(self, ctx: OpContext, m: MemInode):
        yield ctx.charge("metadata", self.model.log_append_cost)
        self.allocator.free([pm.page_id for pm in m.index.values()])
        self.image.drop_inode(m.ino)
        self._mem.pop(m.ino, None)

    def _append_commit(self, ctx: OpContext, m: MemInode, entry) :
        """Append one log entry and commit the tail (the durability point)."""
        yield ctx.charge("metadata", self.model.log_append_cost)
        idx = self.image.append_log(m.ino, entry)
        yield ctx.charge("metadata", self.model.log_commit_cost)
        self.image.commit_log_tail(m.ino, idx + 1)
        return idx

    # ------------------------------------------------------------------
    # Data path: write
    # ------------------------------------------------------------------
    def write(self, ctx: OpContext, ino: int, offset: int, nbytes: int,
              payload: Optional[bytes] = None):
        """Write ``nbytes`` at ``offset``; returns an :class:`OpResult`.

        ``payload`` may be omitted for performance runs (page contents
        are then elided); when given it must be exactly ``nbytes`` long
        and read-back verification works end to end.
        """
        if payload is not None and len(payload) != nbytes:
            raise FsError(f"payload length {len(payload)} != nbytes {nbytes}")
        if payload is not None and self.elide_payloads:
            raise FsError(
                "this filesystem elides payloads: a real payload would be "
                "silently dropped (mount without elide_payloads to keep data)")
        if nbytes < 0 or offset < 0:
            raise FsError("negative offset/size")
        ctx.trace_begin("write", ino=ino, offset=offset, nbytes=nbytes)
        try:
            # One event for both entry costs: nothing observable happens
            # between the syscall and VFS-lookup charges, so merging them
            # halves the hot path's entry events.
            yield ctx.charge(
                "syscall",
                self.model.syscall_cost + self.model.vfs_lookup_cost)
            m = self.minode(ino)
            if m.kind is not FileKind.FILE:
                raise FsError(f"not a regular file: inode {ino}")
            if nbytes == 0:
                return OpResult(value=0, ctx=ctx)
            yield from self._acquire_file_lock(ctx, m, write=True)
            result = yield from self._write_locked(ctx, m, offset, nbytes,
                                                   payload)
        finally:
            ctx.trace_end("write")
        self._trace_write_ack(ctx, result, ino)
        self.ops_completed += 1
        return result

    def _trace_write_ack(self, ctx: OpContext, result: "OpResult",
                         ino: int) -> None:
        """Emit ``write_ack`` at the instant the write's durability
        contract is met: at return for synchronous results, when the
        pending data movement fires for asynchronous ones."""
        tr = ctx._tracer
        if tr is None:
            return
        if result.is_async:
            op = ctx.op_id
            result.pending.add_callback(
                lambda _e: tr.point("write_ack", track="fs", op=op, ino=ino))
        else:
            tr.point("write_ack", track="fs", op=ctx.op_id, ino=ino)

    def append(self, ctx: OpContext, ino: int, nbytes: int,
               payload: Optional[bytes] = None):
        """Write at end-of-file (offset resolved under the lock is not
        needed for the single-writer workloads we model)."""
        m = self.minode(ino)
        result = yield from self.write(ctx, m.ino, m.size, nbytes, payload)
        return result

    def _write_locked(self, ctx: OpContext, m: MemInode, offset: int,
                      nbytes: int, payload: Optional[bytes]):
        """Delegate to the variant's write pipeline (see repro.io)."""
        result = yield from self.io.write.run(ctx, m, offset, nbytes, payload)
        return result

    def _old_page_content(self, m: MemInode, off: int) -> bytes:
        mapping = m.index.get(off)
        if mapping is None:
            return bytes(PAGE_SIZE)
        data = self.image.pages.get(mapping.page_id)
        if data is ELIDED or data is None:
            return bytes(PAGE_SIZE)
        return data

    def _commit_write(self, ctx: OpContext, m: MemInode, prep,
                      sns: Tuple[Tuple[int, int], ...],
                      free_on: Optional[Event] = None):
        """Append + commit the WriteEntry and update volatile state.

        ``prep`` is the :class:`repro.io.plan.CowPrep` the pipeline's
        planner produced for this write.

        ``free_on``: for asynchronous writes, the replaced CoW pages may
        only be recycled once the DMA has landed -- recovery falls back
        to them if it must discard the new mapping (§4.2).  Passing the
        pending completion event defers the free accordingly.
        """
        entry = WriteEntry(pgoff=prep.pgoff, page_ids=tuple(prep.page_ids),
                           size_after=prep.size_after, mtime=self.engine.now,
                           sns=sns)
        idx = yield from self._append_commit(ctx, m, entry)
        ctx.trace_point("write_commit", ino=m.ino, log_idx=idx,
                        pids=list(prep.page_ids), sns=list(sns))
        yield ctx.charge("indexing",
                              self.model.index_insert_cost * len(prep.page_ids))
        for i, pid in enumerate(prep.page_ids):
            m.index[prep.pgoff + i] = PageMapping(pid, sns)
        m.bump_layout_epoch()
        m.size = prep.size_after
        m.mtime = entry.mtime
        if free_on is None or free_on.processed:
            self.allocator.free(prep.old_pages)
        else:
            old = prep.old_pages
            free_on.add_callback(lambda _e: self.allocator.free(old))
        return entry, idx

    # ------------------------------------------------------------------
    # Data path: read
    # ------------------------------------------------------------------
    def read(self, ctx: OpContext, ino: int, offset: int, nbytes: int,
             want_data: bool = False):
        """Read up to ``nbytes`` at ``offset``; returns an :class:`OpResult`
        whose value is the byte count (or the bytes, if ``want_data``)."""
        if nbytes < 0 or offset < 0:
            raise FsError("negative offset/size")
        ctx.trace_begin("read", ino=ino, offset=offset, nbytes=nbytes)
        try:
            # One event for both entry costs: nothing observable happens
            # between the syscall and VFS-lookup charges, so merging them
            # halves the hot path's entry events.
            yield ctx.charge(
                "syscall",
                self.model.syscall_cost + self.model.vfs_lookup_cost)
            m = self.minode(ino)
            if m.kind is not FileKind.FILE:
                raise FsError(f"not a regular file: inode {ino}")
            yield from self._acquire_file_lock(ctx, m, write=False)
            token = self.allocator.reader_enter()
            try:
                result = yield from self._read_locked(ctx, m, offset, nbytes,
                                                      want_data)
            except BaseException:
                self.allocator.reader_exit(token)
                raise
        finally:
            ctx.trace_end("read")
        # An asynchronous read's source pages stay pinned until the DMA
        # drains; only then may CoW-replaced pages be recycled.
        if result.is_async:
            result.pending.add_callback(
                lambda _e: self.allocator.reader_exit(token))
        else:
            self.allocator.reader_exit(token)
        self.ops_completed += 1
        return result

    def _read_locked(self, ctx: OpContext, m: MemInode, offset: int,
                     nbytes: int, want_data: bool):
        try:
            # Level-2 conflict check (no-op for synchronous filesystems):
            # an earlier write whose DMA is still in flight blocks us.
            # Under a deadline it can raise DeadlineExceeded.
            yield from self._wait_level2(ctx, m)
            nbytes = max(0, min(nbytes, m.size - offset))
            if nbytes == 0:
                m.lock.release_read()
                return OpResult(value=b"" if want_data else 0, ctx=ctx)
            pgoff = offset // PAGE_SIZE
            last = (offset + nbytes - 1) // PAGE_SIZE
            npages = last - pgoff + 1
            yield ctx.charge("indexing",
                                  self.model.index_lookup_cost * npages)
            # The charge stays per-page (the simulated radix walk); only
            # the host-side recomputation is memoised.
            runs = m.cached_runs(pgoff, npages)
        except BaseException:
            # The zero-byte branch returns right after releasing, so
            # reaching here means the read lock is still held.
            m.lock.release_read()
            raise
        result = yield from self._read_extents(ctx, m, offset, nbytes, runs,
                                               want_data)
        return result

    def _read_extents(self, ctx: OpContext, m: MemInode, offset: int,
                      nbytes: int, runs, want_data: bool):
        """Delegate to the variant's read pipeline (see repro.io)."""
        result = yield from self.io.read.run(ctx, m, offset, nbytes, runs,
                                             want_data)
        return result

    def _collect_data(self, m: MemInode, offset: int, nbytes: int) -> bytes:
        """Materialise the read's bytes from the current page contents."""
        out = bytearray()
        pos = offset
        end = offset + nbytes
        while pos < end:
            off = pos // PAGE_SIZE
            in_page = pos - off * PAGE_SIZE
            take = min(PAGE_SIZE - in_page, end - pos)
            page = self._old_page_content(m, off)
            out += page[in_page:in_page + take]
            pos += take
        return bytes(out)

    def _acquire_file_lock(self, ctx: OpContext, m: MemInode, write: bool):
        """Take the level-1 file lock, charging contention costs.

        A contended acquire pays for the handoff plus cacheline
        bouncing proportional to the number of racing waiters -- the
        effect that makes DWOM throughput decline as writers are added.
        """
        t0 = self.engine.now
        timeout = ctx.remaining()
        if timeout is not None and timeout <= 0:
            ctx._trace_abort(f"file lock ino{m.ino}")
            raise DeadlineExceeded(
                f"file lock ino{m.ino}: no budget left before acquire")
        event = (m.lock.acquire_write(timeout=timeout) if write
                 else m.lock.acquire_read(timeout=timeout))
        racing = m.lock.queued
        try:
            yield from ctx.idle_wait(event)
        except WaitTimeout as exc:
            ctx._trace_abort(f"file lock ino{m.ino}")
            raise DeadlineExceeded(f"file lock ino{m.ino}: {exc}") from exc
        yield ctx.charge("syscall", self.model.lock_cost)
        contended = (self.engine.now > t0) or racing
        ctx.lock_racing = max(1, racing) if contended else 0

    def _charge_lock_contention(self, ctx: OpContext):
        """Pay the contended-handoff cost on the holder's critical path
        (first touches of the bounced metadata cachelines)."""
        if ctx.lock_racing:
            yield ctx.charge(
                "syscall", self.model.lock_contended_cost * ctx.lock_racing)
            ctx.lock_racing = 0

    # ------------------------------------------------------------------
    # The I/O pipeline composition (see repro.io)
    # ------------------------------------------------------------------
    @property
    def io(self):
        """This variant's :class:`~repro.io.pipeline.IoPipeline`."""
        if self._io is None:
            self._io = self._build_pipeline()
        return self._io

    def _build_pipeline(self):
        """Compose the variant's data path.  NOVA: synchronous CPU
        memcpy for both directions (the paper's baseline)."""
        # Imported here: repro.io imports OpResult from this module.
        from repro.io import (
            IoPipeline,
            IoPlanner,
            MemcpyBackend,
            SyncReadPipeline,
            SyncWritePipeline,
        )
        planner = IoPlanner(self)
        backend = MemcpyBackend(self.memory, self._make_persister())
        return IoPipeline(write=SyncWritePipeline(self, planner, backend),
                          read=SyncReadPipeline(self, planner, backend),
                          planner=planner)

    # ------------------------------------------------------------------
    # Hooks EasyIO overrides
    # ------------------------------------------------------------------
    def _wait_level2(self, ctx: OpContext, m: MemInode):
        """Level-2 lock check; synchronous filesystems never have
        pending data movement, so this is a no-op for them."""
        return
        yield  # pragma: no cover - makes this a generator

    # ------------------------------------------------------------------
    # Counter hygiene (reuse across runs)
    # ------------------------------------------------------------------
    #: Per-variant operation counters (bumped through the OpCounters
    #: middleware stage); reset together with ops_completed.
    OP_COUNTER_NAMES = ("dma_writes", "dma_reads", "memcpy_reads",
                        "memcpy_writes", "memcpy_ops")

    def reset_op_counters(self) -> None:
        """Zero ``ops_completed`` and every per-variant op counter this
        filesystem carries (``dma_writes``, ``memcpy_ops``, ...)."""
        self.ops_completed = 0
        for name in self.OP_COUNTER_NAMES:
            if hasattr(self, name):
                setattr(self, name, 0)

    # ------------------------------------------------------------------
    # Convenience (drive an op to completion on a throwaway context)
    # ------------------------------------------------------------------
    def run_op(self, op_gen):
        """Run one op generator to completion outside any workload.

        Only valid while the engine is not running; used by tests and
        examples for setup/verification.
        """
        proc = self.engine.process(op_gen)
        self.engine.run()
        if not proc.ok:
            raise proc.value
        return proc.value
