"""Post-crash recovery: rebuild volatile state from a PM image.

Recovery follows NOVA's protocol (§4.2 of the paper, §5's "supplement
the recovery logic"):

1. **Tail scan** -- only the committed prefix of each inode log (up to
   the persisted tail pointer) is replayed; appended-but-uncommitted
   entries are discarded.
2. **SN validation (EasyIO)** -- a committed :class:`WriteEntry` whose
   DMA descriptors did not finish before the crash (its SN exceeds the
   channel's persistent completion-buffer value) is discarded, together
   with everything after it.  Two-level locking guarantees invalid
   entries form a log suffix, but we verify defensively.
3. **Journal replay** -- an open rename transaction is rolled forward
   if its destination dentry committed, otherwise rolled back.
4. **Orphan scan** -- inodes with no surviving dentry are dropped.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Set, Tuple

from repro.fs.pmimage import PMImage
from repro.fs.structures import (
    PAGE_SIZE,
    DentryEntry,
    FileKind,
    PageMapping,
    SetAttrEntry,
    TornEntry,
    TornRecord,
    WriteEntry,
)

SnValidator = Callable[[Tuple[Tuple[int, int], ...]], bool]


class TornLogEntryError(Exception):
    """Metadata corruption: a torn log entry inside a committed prefix.

    NOVA log entries carry no per-entry checksum; the append/commit
    fence is the only thing guaranteeing a committed entry is whole.
    The line-granularity crash model can plant
    :class:`~repro.fs.structures.TornEntry` sentinels where that fence
    was violated -- recovery cannot parse such an entry and must fail
    loudly rather than replay garbage.  (Torn entries *beyond* the
    committed tail are simply never read: the tail scan discards them.)
    """


def completion_buffer_validator(image: PMImage) -> SnValidator:
    """The EasyIO validity rule: every (channel, sn) must be covered by
    the channel's persistent completion buffer -- and must not be in
    the channel's persistent error-SN log.

    The second clause is the fault-tolerance extension: the completion
    buffer is a high-water mark, so after an error the hardware's next
    successful completion *jumps past* the failed SN.  The error
    handler persists failed/stranded SNs before that can happen, so a
    covered-but-poisoned SN means "the descriptor never moved its
    data" and the entry must be discarded.
    """

    def valid(sns: Tuple[Tuple[int, int], ...]) -> bool:
        for ch, sn in sns:
            if image.completion_buffers.get(ch, 0) < sn:
                return False
            if sn in image.channel_error_sns.get(ch, ()):
                return False
        return True

    return valid


def recover(fs, sn_validator: Optional[SnValidator] = None):
    """Rebuild ``fs``'s volatile state from its PM image.

    ``fs`` must be a freshly constructed (unmounted) filesystem over
    the post-crash image.  Pass
    ``completion_buffer_validator(fs.image)`` for EasyIO-format images;
    synchronous images need no validator (their entries carry no SNs).

    Returns the mounted filesystem.
    """
    image = fs.image
    fs.mount()
    discarded_entries = 0

    # Pass 1: rebuild every inode from its committed log prefix.
    for ino, inode in sorted(image.inodes.items()):
        m = fs._mem.get(ino) or fs._fresh_mem(ino, inode.kind, inode.links)
        m.kind, m.links = inode.kind, inode.links
        fs._mem[ino] = m
        for entry in image.committed_log(ino):
            if isinstance(entry, TornEntry):
                raise TornLogEntryError(
                    f"inode {ino}: torn {entry.of} "
                    f"({entry.lines}/{entry.total} lines) inside the "
                    f"committed log prefix")
            if isinstance(entry, WriteEntry):
                if entry.sns and sn_validator is not None \
                        and not sn_validator(entry.sns):
                    # Unfinished DMA: discard this and all later entries.
                    discarded_entries += 1
                    break
                for i, pid in enumerate(entry.page_ids):
                    m.index[entry.pgoff + i] = PageMapping(pid, entry.sns)
                m.bump_layout_epoch()
                m.size = entry.size_after
                m.mtime = entry.mtime
            elif isinstance(entry, SetAttrEntry):
                m.size = entry.size
                m.mtime = entry.mtime
                first_dead = (entry.size + PAGE_SIZE - 1) // PAGE_SIZE
                for off in [o for o in m.index if o >= first_dead]:
                    del m.index[off]
                m.bump_layout_epoch()
            elif isinstance(entry, DentryEntry):
                if entry.valid:
                    m.dentries[entry.name] = entry.ino
                else:
                    m.dentries.pop(entry.name, None)
                m.mtime = entry.mtime

    # Pass 2: roll the rename journal forward or back.
    for txn in list(image.journal):
        if isinstance(txn, TornRecord):
            # Journal records are checksummed (NOVA's lite journal):
            # a torn record is detectably invalid -- retire it and
            # roll back (the dentries it guards were never touched,
            # or the per-inode logs already carry them).
            image.journal_end()
            continue
        dst = fs._mem.get(txn.dst_dir)
        src = fs._mem.get(txn.src_dir)
        if dst is None or src is None:
            continue
        if dst.dentries.get(txn.dst_name) == txn.ino:
            # Destination committed: roll forward (drop the source name).
            if src.dentries.get(txn.src_name) == txn.ino:
                del src.dentries[txn.src_name]
        # else: destination never committed -- nothing to undo, the
        # source dentry is still intact (roll back is a no-op).
        image.journal_end()

    # Pass 3: orphan scan -- drop inodes unreachable from any directory.
    reachable: Set[int] = {0}
    stack = [0]
    while stack:
        cur = fs._mem.get(stack.pop())
        if cur is None:
            continue
        for child in cur.dentries.values():
            if child not in reachable:
                reachable.add(child)
                if child in fs._mem and fs._mem[child].kind is FileKind.DIR:
                    stack.append(child)
    for ino in [i for i in fs._mem if i not in reachable]:
        image.drop_inode(ino)
        del fs._mem[ino]

    # Rebuild the allocator's view: every page referenced by a live
    # index is in use; everything else the image holds goes back on the
    # free list (the free list itself is volatile in NOVA).
    live = {pm.page_id for m in fs._mem.values() for pm in m.index.values()}
    for pid in sorted(p for p in image.pages if p not in live):
        fs.allocator._free.append(pid)

    fs.recovered_discarded_entries = discarded_entries
    return fs


def snapshot_namespace(fs) -> Dict[str, Tuple]:
    """Flatten a filesystem into {path: (kind, size, content-digest)}.

    Used by the crash-consistency checker to compare a recovered
    filesystem against the set of legal post-crash states.
    """
    out: Dict[str, Tuple] = {}

    def walk(ino: int, prefix: str):
        m = fs._mem[ino]
        for name, child_ino in sorted(m.dentries.items()):
            child = fs._mem.get(child_ino)
            if child is None:
                continue
            path = f"{prefix}/{name}"
            if child.kind is FileKind.DIR:
                out[path] = ("dir", 0, None)
                walk(child_ino, path)
            else:
                digest = tuple(sorted(
                    (off, pm.page_id) for off, pm in child.index.items()))
                out[path] = ("file", child.size, digest)

    walk(0, "")
    return out
