"""The persistent-memory image: all durable state, in persist order.

Everything a filesystem must find again after a power failure lives in
a :class:`PMImage`: data pages, per-inode logs and their committed tail
pointers, inode records, the multi-inode journal, and -- the EasyIO
twist (§4.2) -- the DMA channels' completion buffers, which EasyIO
places in a predefined persistent region.

Crash-consistency testing needs the *persist order* of mutations, so
every durable store goes through a mutation method that (optionally)
appends a :class:`MutationRecord` to the image's journal.  A simulated
power failure at crash point *k* is then "replay the first *k* records
into a fresh image": exactly CrashMonkey's black-box model, with the
8-byte-atomic granularity NOVA's commit protocol assumes.

Recording is off by default; performance experiments pay nothing for it.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Set, Tuple


@dataclass(frozen=True)
class MutationRecord:
    """One durable store, in persist order.

    ``op`` names the mutation method; ``args`` are immutable values
    sufficient to replay it.
    """

    op: str
    args: Tuple[Any, ...]


#: Marker stored for page writes whose payload was elided (performance
#: runs that do not verify data content).
ELIDED = object()


class PMImage:
    """All persistent state of one filesystem instance.

    The mutable containers are only ever touched through the mutation
    methods below, so the journal (when enabled) is a complete,
    replayable persist-order history.
    """

    def __init__(self, record: bool = False):
        self.pages: Dict[int, Any] = {}                 # page_id -> bytes|ELIDED
        self.inodes: Dict[int, Any] = {}                # ino -> Inode (frozen)
        self.logs: Dict[int, List[Any]] = {}            # ino -> log entries
        self.log_tails: Dict[int, int] = {}             # ino -> committed entries
        self.journal: List[Any] = []                    # lightweight txn journal
        self.completion_buffers: Dict[int, int] = {}    # channel -> completion SN
        # Persistent channel-error-SN log: SNs that failed or were
        # stranded, per channel.  A completion buffer is a high-water
        # mark, so under faults it can *cover* an SN whose descriptor
        # never moved data; recovery must treat such SNs as invalid.
        self.channel_error_sns: Dict[int, Set[int]] = {}
        self.next_ino: int = 1
        self.next_page: int = 0
        self.recording = record
        self.mutations: List[MutationRecord] = []
        #: Installed FaultPlan (media-fault injection); None = perfect PM.
        self.fault_plan = None
        #: Cache-line persistence journal (repro.crash.linestream);
        #: None = mutation-granularity recording only.
        self.linestream = None

    def enable_line_recording(self):
        """Also journal every store at cache-line granularity.

        Must be enabled on a fresh recording image (before the first
        mutation): the line stream and the mutation journal describe
        the same history, from the first store on.
        """
        if not self.recording:
            raise RuntimeError("line recording requires record=True")
        if self.mutations:
            raise RuntimeError(
                "enable_line_recording() must precede the first mutation")
        from repro.crash.linestream import LineStream
        self.linestream = LineStream()
        return self.linestream

    def pages_fence(self) -> None:
        """Order a CPU page-store train (clwb+sfence, persister-issued)."""
        if self.linestream is not None:
            self.linestream.pages_fence()

    # ------------------------------------------------------------------
    # Mutation methods -- every durable store goes through one of these.
    # ------------------------------------------------------------------
    def _record(self, op: str, *args: Any) -> None:
        if self.recording:
            self.mutations.append(MutationRecord(op, args))

    def write_page(self, page_id: int, data: Any) -> None:
        """Persist one data page (bytes, or ELIDED for elided payloads).

        With a fault plan installed, a content-carrying write may
        persist garbage instead (a media fault); what actually landed
        -- garbage included -- is what gets journalled, so crash replay
        sees the corrupted state exactly as recovery would.
        """
        if self.fault_plan is not None and data is not ELIDED:
            data = self.fault_plan.corrupt_page_write(page_id, data)
        self.pages[page_id] = data
        self._record("write_page", page_id, data)
        if self.linestream is not None:
            self.linestream.page_write(page_id, data)

    def drop_page(self, page_id: int) -> None:
        """Return a page to free space.

        Freeing is purely a (volatile) allocator notion: persistent
        memory does not erase the bytes, and recovery may legitimately
        fall back to an old CoW page after discarding an unfinished
        write's mapping.  Content only disappears when the page is
        reallocated and overwritten by a later :meth:`write_page`.
        """
        # Intentionally neither erases nor journals anything.

    def put_inode(self, ino: int, inode: Any) -> None:
        """Persist an inode record (create or in-place field update)."""
        self.inodes[ino] = inode
        self._record("put_inode", ino, inode)
        if self.linestream is not None:
            self.linestream.inode_put(ino, inode)

    def drop_inode(self, ino: int) -> None:
        self.inodes.pop(ino, None)
        self.logs.pop(ino, None)
        self.log_tails.pop(ino, None)
        self._record("drop_inode", ino)
        if self.linestream is not None:
            self.linestream.inode_drop(ino)

    def append_log(self, ino: int, entry: Any) -> int:
        """Write a log entry *past the committed tail* (not yet valid).

        Returns the entry's index.  The entry only becomes durable state
        once :meth:`commit_log_tail` moves the tail past it -- that
        split is exactly NOVA's two-step append+commit.
        """
        log = self.logs.setdefault(ino, [])
        log.append(entry)
        self._record("append_log", ino, entry)
        if self.linestream is not None:
            self.linestream.log_append(ino, entry)
        return len(log) - 1

    def commit_log_tail(self, ino: int, tail: int) -> None:
        """The atomic 8-byte tail update: NOVA's commit point."""
        self.log_tails[ino] = tail
        self._record("commit_log_tail", ino, tail)
        if self.linestream is not None:
            self.linestream.log_commit(ino, tail)

    def journal_begin(self, txn: Any) -> None:
        """Persist a journal record for a multi-inode transaction."""
        self.journal.append(txn)
        self._record("journal_begin", txn)
        if self.linestream is not None:
            self.linestream.journal_begin(txn)

    def journal_end(self) -> None:
        """Retire the journal record (transaction fully applied)."""
        if self.journal:
            self.journal.pop()
        self._record("journal_end")
        if self.linestream is not None:
            self.linestream.journal_retire()

    def update_completion_buffer(self, channel_id: int, sn: int) -> None:
        """The DMA engine persists a channel's completion buffer value.

        EasyIO places completion buffers in a persistent region (§4.2);
        this is the store that makes a finished DMA visible to recovery.
        """
        self.completion_buffers[channel_id] = sn
        self._record("update_completion_buffer", channel_id, sn)
        if self.linestream is not None:
            self.linestream.completion_update(channel_id, sn)

    def record_channel_errors(self, channel_id: int,
                              sns: Tuple[int, ...]) -> None:
        """Persist poisoned SNs: descriptors that failed or were
        stranded on ``channel_id``.

        EasyIO's error handler calls this *before* the channel can
        complete any later descriptor, so at every crash point a
        covered-but-failed SN is already poisoned -- the invariant the
        recovery validator relies on.
        """
        self.channel_error_sns.setdefault(channel_id, set()).update(sns)
        self._record("record_channel_errors", channel_id, tuple(sorted(sns)))
        if self.linestream is not None:
            self.linestream.error_log(channel_id, tuple(sorted(sns)))

    def amend_log_sns(self, ino: int, index: int,
                      sns: Tuple[Tuple[int, int], ...]) -> None:
        """Rewrite a committed WriteEntry's SN field in place (failover).

        After re-submitting a write's failed descriptors on a healthy
        channel, EasyIO records the new (channel, sn) pairs so the
        recovery validator judges the entry by descriptors that can
        actually complete.  Modeled as a small in-place atomic update
        (the SN field is one cacheline, persisted with a single flush).
        """
        entry = self.logs[ino][index]
        self.logs[ino][index] = replace(entry, sns=tuple(sns))
        self._record("amend_log_sns", ino, index, tuple(sns))
        if self.linestream is not None:
            self.linestream.sn_amend(ino, index, tuple(sns))

    # ------------------------------------------------------------------
    # Allocation counters (volatile in NOVA, rebuilt on recovery; we
    # journal them so replayed images can keep allocating).
    # ------------------------------------------------------------------
    def alloc_ino(self) -> int:
        ino = self.next_ino
        self.next_ino += 1
        self._record("alloc_ino", ino)
        if self.linestream is not None:
            self.linestream.alloc_ino(ino)
        return ino

    def alloc_page_ids(self, count: int) -> List[int]:
        ids = list(range(self.next_page, self.next_page + count))
        self.next_page += count
        self._record("alloc_page_ids", self.next_page)
        if self.linestream is not None:
            self.linestream.alloc_pages(self.next_page)
        return ids

    # ------------------------------------------------------------------
    # Crash replay
    # ------------------------------------------------------------------
    def crash_points(self) -> int:
        """Number of distinct crash points (0 .. len(mutations))."""
        return len(self.mutations)

    def replay(self, upto: int) -> "PMImage":
        """Build the post-crash image from the first ``upto`` mutations."""
        if not self.recording:
            raise RuntimeError("replay() requires an image created with record=True")
        img = PMImage(record=False)
        for rec in self.mutations[:upto]:
            img.apply(rec)
        return img

    def apply(self, rec: MutationRecord) -> None:
        """Apply one replayed mutation record."""
        op, args = rec.op, rec.args
        if op == "write_page":
            self.pages[args[0]] = args[1]
        elif op == "put_inode":
            self.inodes[args[0]] = args[1]
        elif op == "drop_inode":
            self.inodes.pop(args[0], None)
            self.logs.pop(args[0], None)
            self.log_tails.pop(args[0], None)
        elif op == "append_log":
            self.logs.setdefault(args[0], []).append(args[1])
        elif op == "commit_log_tail":
            self.log_tails[args[0]] = args[1]
        elif op == "journal_begin":
            self.journal.append(args[0])
        elif op == "journal_end":
            if self.journal:
                self.journal.pop()
        elif op == "update_completion_buffer":
            self.completion_buffers[args[0]] = args[1]
        elif op == "record_channel_errors":
            self.channel_error_sns.setdefault(args[0], set()).update(args[1])
        elif op == "amend_log_sns":
            entry = self.logs[args[0]][args[1]]
            self.logs[args[0]][args[1]] = replace(entry, sns=tuple(args[2]))
        elif op == "alloc_ino":
            self.next_ino = max(self.next_ino, args[0] + 1)
        elif op == "alloc_page_ids":
            self.next_page = max(self.next_page, args[0])
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown mutation op {op!r}")

    # ------------------------------------------------------------------
    # Media-fault detection (checksum hook)
    # ------------------------------------------------------------------
    @staticmethod
    def checksum(data: bytes) -> int:
        """Page content checksum (CRC32) for media-fault detection."""
        return zlib.crc32(data) & 0xFFFFFFFF

    def verify_page(self, page_id: int, expected: int) -> bool:
        """Read back a persisted page and compare its checksum.

        ELIDED/absent pages verify trivially (nothing to check).
        """
        data = self.pages.get(page_id)
        if data is None or data is ELIDED:
            return True
        return self.checksum(data) == expected

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    def committed_log(self, ino: int) -> List[Any]:
        """The committed prefix of an inode's log."""
        tail = self.log_tails.get(ino, 0)
        return self.logs.get(ino, [])[:tail]

    def page_bytes(self) -> int:
        """Rough count of live data pages."""
        return len(self.pages)
