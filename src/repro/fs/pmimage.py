"""The persistent-memory image: all durable state, in persist order.

Everything a filesystem must find again after a power failure lives in
a :class:`PMImage`: data pages, per-inode logs and their committed tail
pointers, inode records, the multi-inode journal, and -- the EasyIO
twist (§4.2) -- the DMA channels' completion buffers, which EasyIO
places in a predefined persistent region.

Crash-consistency testing needs the *persist order* of mutations, so
every durable store goes through a mutation method that (optionally)
appends a :class:`MutationRecord` to the image's journal.  A simulated
power failure at crash point *k* is then "replay the first *k* records
into a fresh image": exactly CrashMonkey's black-box model, with the
8-byte-atomic granularity NOVA's commit protocol assumes.

Recording is off by default; performance experiments pay nothing for it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple


@dataclass(frozen=True)
class MutationRecord:
    """One durable store, in persist order.

    ``op`` names the mutation method; ``args`` are immutable values
    sufficient to replay it.
    """

    op: str
    args: Tuple[Any, ...]


#: Marker stored for page writes whose payload was elided (performance
#: runs that do not verify data content).
ELIDED = object()


class PMImage:
    """All persistent state of one filesystem instance.

    The mutable containers are only ever touched through the mutation
    methods below, so the journal (when enabled) is a complete,
    replayable persist-order history.
    """

    def __init__(self, record: bool = False):
        self.pages: Dict[int, Any] = {}                 # page_id -> bytes|ELIDED
        self.inodes: Dict[int, Any] = {}                # ino -> Inode (frozen)
        self.logs: Dict[int, List[Any]] = {}            # ino -> log entries
        self.log_tails: Dict[int, int] = {}             # ino -> committed entries
        self.journal: List[Any] = []                    # lightweight txn journal
        self.completion_buffers: Dict[int, int] = {}    # channel -> completion SN
        self.next_ino: int = 1
        self.next_page: int = 0
        self.recording = record
        self.mutations: List[MutationRecord] = []

    # ------------------------------------------------------------------
    # Mutation methods -- every durable store goes through one of these.
    # ------------------------------------------------------------------
    def _record(self, op: str, *args: Any) -> None:
        if self.recording:
            self.mutations.append(MutationRecord(op, args))

    def write_page(self, page_id: int, data: Any) -> None:
        """Persist one data page (bytes, or ELIDED for elided payloads)."""
        self.pages[page_id] = data
        self._record("write_page", page_id, data)

    def drop_page(self, page_id: int) -> None:
        """Return a page to free space.

        Freeing is purely a (volatile) allocator notion: persistent
        memory does not erase the bytes, and recovery may legitimately
        fall back to an old CoW page after discarding an unfinished
        write's mapping.  Content only disappears when the page is
        reallocated and overwritten by a later :meth:`write_page`.
        """
        # Intentionally neither erases nor journals anything.

    def put_inode(self, ino: int, inode: Any) -> None:
        """Persist an inode record (create or in-place field update)."""
        self.inodes[ino] = inode
        self._record("put_inode", ino, inode)

    def drop_inode(self, ino: int) -> None:
        self.inodes.pop(ino, None)
        self.logs.pop(ino, None)
        self.log_tails.pop(ino, None)
        self._record("drop_inode", ino)

    def append_log(self, ino: int, entry: Any) -> int:
        """Write a log entry *past the committed tail* (not yet valid).

        Returns the entry's index.  The entry only becomes durable state
        once :meth:`commit_log_tail` moves the tail past it -- that
        split is exactly NOVA's two-step append+commit.
        """
        log = self.logs.setdefault(ino, [])
        log.append(entry)
        self._record("append_log", ino, entry)
        return len(log) - 1

    def commit_log_tail(self, ino: int, tail: int) -> None:
        """The atomic 8-byte tail update: NOVA's commit point."""
        self.log_tails[ino] = tail
        self._record("commit_log_tail", ino, tail)

    def journal_begin(self, txn: Any) -> None:
        """Persist a journal record for a multi-inode transaction."""
        self.journal.append(txn)
        self._record("journal_begin", txn)

    def journal_end(self) -> None:
        """Retire the journal record (transaction fully applied)."""
        if self.journal:
            self.journal.pop()
        self._record("journal_end")

    def update_completion_buffer(self, channel_id: int, sn: int) -> None:
        """The DMA engine persists a channel's completion buffer value.

        EasyIO places completion buffers in a persistent region (§4.2);
        this is the store that makes a finished DMA visible to recovery.
        """
        self.completion_buffers[channel_id] = sn
        self._record("update_completion_buffer", channel_id, sn)

    # ------------------------------------------------------------------
    # Allocation counters (volatile in NOVA, rebuilt on recovery; we
    # journal them so replayed images can keep allocating).
    # ------------------------------------------------------------------
    def alloc_ino(self) -> int:
        ino = self.next_ino
        self.next_ino += 1
        self._record("alloc_ino", ino)
        return ino

    def alloc_page_ids(self, count: int) -> List[int]:
        ids = list(range(self.next_page, self.next_page + count))
        self.next_page += count
        self._record("alloc_page_ids", self.next_page)
        return ids

    # ------------------------------------------------------------------
    # Crash replay
    # ------------------------------------------------------------------
    def crash_points(self) -> int:
        """Number of distinct crash points (0 .. len(mutations))."""
        return len(self.mutations)

    def replay(self, upto: int) -> "PMImage":
        """Build the post-crash image from the first ``upto`` mutations."""
        if not self.recording:
            raise RuntimeError("replay() requires an image created with record=True")
        img = PMImage(record=False)
        for rec in self.mutations[:upto]:
            img.apply(rec)
        return img

    def apply(self, rec: MutationRecord) -> None:
        """Apply one replayed mutation record."""
        op, args = rec.op, rec.args
        if op == "write_page":
            self.pages[args[0]] = args[1]
        elif op == "put_inode":
            self.inodes[args[0]] = args[1]
        elif op == "drop_inode":
            self.inodes.pop(args[0], None)
            self.logs.pop(args[0], None)
            self.log_tails.pop(args[0], None)
        elif op == "append_log":
            self.logs.setdefault(args[0], []).append(args[1])
        elif op == "commit_log_tail":
            self.log_tails[args[0]] = args[1]
        elif op == "journal_begin":
            self.journal.append(args[0])
        elif op == "journal_end":
            if self.journal:
                self.journal.pop()
        elif op == "update_completion_buffer":
            self.completion_buffers[args[0]] = args[1]
        elif op == "alloc_ino":
            self.next_ino = max(self.next_ino, args[0] + 1)
        elif op == "alloc_page_ids":
            self.next_page = max(self.next_page, args[0])
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown mutation op {op!r}")

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    def committed_log(self, ino: int) -> List[Any]:
        """The committed prefix of an inode's log."""
        tail = self.log_tails.get(ino, 0)
        return self.logs.get(ino, [])[:tail]

    def page_bytes(self) -> int:
        """Rough count of live data pages."""
        return len(self.pages)
