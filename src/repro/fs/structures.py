"""Persistent metadata structures (NOVA-style) and their volatile mirrors.

Persistent records are frozen dataclasses: once appended to a
:class:`~repro.fs.pmimage.PMImage` log they are immutable, so crash
replay cannot observe half-updated entries (NOVA's 8-byte-atomic
tail commit is the only mutation that validates them).

The EasyIO modification (§5) appears here as the ``sns`` field of
:class:`WriteEntry`: the sequence numbers of the DMA descriptors that
carry the entry's data pages.  A recovered entry is valid only if every
one of those SNs is covered by the corresponding channel's persistent
completion buffer.  Synchronous filesystems leave ``sns`` empty.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

PAGE_SIZE = 4096
PAGE_SHIFT = 12

#: Per-inode read-plan memo entries kept before the cache is reset
#: (rotating-offset benchmarks revisit a small set of ranges; an
#: unbounded cache would leak on adversarial access patterns).
_RUNS_CACHE_MAX = 1024


class FileKind(enum.Enum):
    """Inode type."""

    FILE = "file"
    DIR = "dir"


@dataclass(frozen=True)
class Inode:
    """Persistent inode record."""

    ino: int
    kind: FileKind
    links: int
    ctime: int


@dataclass(frozen=True)
class WriteEntry:
    """A committed file write: the block-mapping update for a CoW write.

    Attributes
    ----------
    pgoff:
        First file page covered.
    page_ids:
        The newly written physical pages, one per covered file page.
    size_after:
        File size after this write (NOVA log entries carry the size).
    sns:
        ``((channel_id, sn), ...)`` for the DMA descriptors moving this
        entry's data -- EasyIO's extra SN field.  Empty for CPU copies.
    """

    pgoff: int
    page_ids: Tuple[int, ...]
    size_after: int
    mtime: int
    sns: Tuple[Tuple[int, int], ...] = ()

    @property
    def num_pages(self) -> int:
        return len(self.page_ids)


@dataclass(frozen=True)
class SetAttrEntry:
    """Size/time attribute update (truncate and friends)."""

    size: int
    mtime: int


@dataclass(frozen=True)
class DentryEntry:
    """Directory log entry: add (valid=True) or remove a name."""

    name: str
    ino: int
    kind: FileKind
    valid: bool
    mtime: int


@dataclass(frozen=True)
class RenameTxn:
    """Journal record for the multi-inode rename transaction."""

    src_dir: int
    src_name: str
    dst_dir: int
    dst_name: str
    ino: int
    kind: FileKind


@dataclass(frozen=True)
class TornEntry:
    """A partially persisted log entry (cache-line crash model).

    Line-granularity crash replay plants one of these where a
    multi-line log append was interrupted mid-entry.  NOVA log entries
    carry no checksum: the only thing protecting them is the ordering
    fence between the append and the 8-byte tail commit.  A TornEntry
    *inside the committed prefix* therefore means that fence was
    violated -- recovery treats it as metadata corruption.  Beyond the
    committed tail it is harmless (the tail scan never reads it).
    """

    of: str          # entry type that was torn (e.g. "WriteEntry")
    lines: int       # cache lines that landed
    total: int       # cache lines the full entry spans


@dataclass(frozen=True)
class TornRecord:
    """A partially persisted journal record (cache-line crash model).

    Unlike log entries, journal records carry commit/checksum semantics
    (NOVA's lite journal validates records before replaying them), so a
    torn record is *detectably* invalid: recovery must silently retire
    it and roll the transaction back.
    """

    of: str
    lines: int
    total: int


@dataclass(slots=True)
class PageMapping:
    """Volatile block-mapping slot: one file page -> physical page.

    ``sns`` mirrors the owning :class:`WriteEntry`; EasyIO's two-level
    locking consults it to decide whether the page's data has landed.
    (``slots=True``: benchmarks create one per written page, millions
    per sweep.)
    """

    page_id: int
    sns: Tuple[Tuple[int, int], ...] = ()


@dataclass
class MemInode:
    """Volatile in-DRAM inode state, rebuilt from the log on recovery.

    Holds what NOVA keeps in DRAM: the page index (radix tree), current
    size/mtime, the dentry map for directories -- plus EasyIO's
    bookkeeping: ``pending_sns``, the SNs of the most recent write whose
    DMA may still be in flight (the level-2 lock state, §4.3).
    """

    ino: int
    kind: FileKind
    links: int = 1
    size: int = 0
    mtime: int = 0
    index: Dict[int, PageMapping] = field(default_factory=dict)
    dentries: Dict[str, int] = field(default_factory=dict)
    pending_sns: Tuple[Tuple[int, int], ...] = ()
    # Fault-tolerant EasyIO: the event that fires once the most recent
    # write's data has fully landed (retries/failover/degradation
    # included).  The level-2 check waits on this instead of the raw
    # completion buffer, because a halted channel's completion may
    # never arrive.  None when no supervision is active.
    pending_done: Optional[object] = None
    # Assigned lazily by the filesystem (a sim Lock needs the engine).
    lock: Optional[object] = None
    #: Bumped on every block-mapping change (write commit, truncate,
    #: recovery rebuild); read-plan memo entries from older epochs are
    #: dead.  Purely a performance device -- never persisted.
    layout_epoch: int = 0
    #: (pgoff, npages) -> cached extent-run list for ``layout_epoch``.
    _runs_cache: Dict[Tuple[int, int], list] = field(
        default_factory=dict, repr=False)

    def bump_layout_epoch(self) -> None:
        """Invalidate cached read plans after a block-mapping change."""
        self.layout_epoch += 1
        self._runs_cache.clear()

    def extent_runs(self, pgoff: int, npages: int):
        """Yield ``(pgoff, [page_ids...])`` runs of physically
        consecutive pages over the requested file range.

        NOVA issues one memcpy (EasyIO: one DMA descriptor) per
        physically contiguous run.  The walk itself lives in
        :func:`repro.io.plan.extent_runs` (the shared I/O planner).
        """
        # Imported here: repro.io pulls in modules that import this one.
        from repro.io.plan import extent_runs
        yield from extent_runs(self.index, pgoff, npages)

    def cached_runs(self, pgoff: int, npages: int) -> List[tuple]:
        """Memoised :meth:`extent_runs`, valid for this layout epoch.

        The returned list (and its nested page lists) is shared between
        calls: the read pipelines only iterate it.  Rotating-offset
        benchmarks revisit the same (offset, length) ranges millions of
        times against an unchanged mapping, so this removes the radix
        walk from the read hot path.
        """
        key = (pgoff, npages)
        runs = self._runs_cache.get(key)
        if runs is None:
            if len(self._runs_cache) >= _RUNS_CACHE_MAX:
                self._runs_cache.clear()
            runs = list(self.extent_runs(pgoff, npages))
            self._runs_cache[key] = runs
        return runs
