"""Data-page allocator with read-safe deferred frees.

NOVA allocates CoW pages from per-CPU free lists and defers freeing
replaced pages until no reader can still be walking the old mapping
(epoch-based reclamation).  EasyIO's two-level locking leans on the
same guarantee: a read whose DMA is still in flight must never observe
its source pages recycled (§4.3).

:class:`PageAllocator` reproduces that contract: :meth:`free` parks the
pages until every read that was in flight at free time has drained
(:meth:`reader_enter` / :meth:`reader_exit` bracket reads).  Allocation
itself is O(1) from a recycled-page list, falling back to fresh page
ids from the image.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Set, Tuple

from repro.fs.pmimage import PMImage


class PageAllocator:
    """Allocate/free 4 KB data pages over a :class:`PMImage`."""

    def __init__(self, image: PMImage):
        self.image = image
        self._free: Deque[int] = deque()
        self._active_reads: Set[int] = set()
        self._read_token_seq = 0
        # Parked frees: (pages, set of read tokens that must drain first).
        self._deferred: List[Tuple[List[int], Set[int]]] = []
        self.pages_allocated = 0
        self.pages_freed = 0

    # -- allocation ---------------------------------------------------
    def allocate(self, count: int) -> List[int]:
        """Return ``count`` fresh or recycled page ids."""
        if count < 0:
            raise ValueError(f"negative page count: {count}")
        self.pages_allocated += count
        ids: List[int] = []
        while self._free and len(ids) < count:
            ids.append(self._free.popleft())
        if len(ids) < count:
            ids.extend(self.image.alloc_page_ids(count - len(ids)))
        return ids

    # -- reader epochs ---------------------------------------------------
    def reader_enter(self) -> int:
        """Register an in-flight read; returns a token for reader_exit."""
        self._read_token_seq += 1
        token = self._read_token_seq
        self._active_reads.add(token)
        return token

    def reader_exit(self, token: int) -> None:
        """Drain an in-flight read, releasing any frees it was blocking."""
        self._active_reads.discard(token)
        if not self._deferred:
            return
        still_parked = []
        for pages, blockers in self._deferred:
            blockers.discard(token)
            if blockers:
                still_parked.append((pages, blockers))
            else:
                self._release(pages)
        self._deferred = still_parked

    # -- freeing ------------------------------------------------------------
    def free(self, pages: List[int]) -> None:
        """Free pages, deferring until current in-flight reads drain."""
        if not pages:
            return
        self.pages_freed += len(pages)
        if self._active_reads:
            self._deferred.append((list(pages), set(self._active_reads)))
        else:
            self._release(list(pages))

    def _release(self, pages: List[int]) -> None:
        for page_id in pages:
            self.image.drop_page(page_id)
            self._free.append(page_id)

    # -- introspection --------------------------------------------------------
    @property
    def deferred_pages(self) -> int:
        """Pages parked behind in-flight reads."""
        return sum(len(pages) for pages, _b in self._deferred)

    @property
    def free_pages(self) -> int:
        return len(self._free)
