"""NOVA-like persistent-memory filesystem substrate.

The filesystem family reproduced here follows NOVA [74]: per-inode
metadata logs, copy-on-write data pages, an atomic log-tail commit as
the durability point, and a lightweight journal for multi-inode
operations.  All persistent state lives in a :class:`~repro.fs.pmimage.PMImage`,
whose mutation journal gives the CrashMonkey harness exact
persist-order crash points.

Concrete filesystems:

* :class:`repro.fs.nova.NovaFS` -- the synchronous baseline (CPU memcpy).
* :class:`repro.baselines.nova_dma.NovaDmaFS` -- synchronous DMA offload.
* :class:`repro.baselines.odinfs.OdinfsFS` -- delegation-based data movement.
* :class:`repro.core.easyio.EasyIoFS` -- the paper's contribution.
"""

from repro.fs.pmimage import PMImage, MutationRecord
from repro.fs.structures import (
    DentryEntry,
    Inode,
    SetAttrEntry,
    WriteEntry,
    FileKind,
)
from repro.fs.alloc import PageAllocator
from repro.fs.nova import DeadlineExceeded, FsError, NovaFS, OpResult
from repro.fs.recovery import recover

__all__ = [
    "DeadlineExceeded",
    "DentryEntry",
    "FileKind",
    "FsError",
    "Inode",
    "MutationRecord",
    "NovaFS",
    "OpResult",
    "PMImage",
    "PageAllocator",
    "SetAttrEntry",
    "WriteEntry",
    "recover",
]
