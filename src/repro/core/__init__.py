"""EasyIO: schedulable asynchronous I/O for slow-memory filesystems.

This package is the paper's primary contribution:

* :mod:`repro.core.easyio` -- the EasyIO filesystem (applied to NOVA,
  §5): DMA-offloaded data movement, orderless file operation (§4.2),
  two-level locking (§4.3), and the Naive ablation variant (§6.4).
* :mod:`repro.core.channel_manager` -- the traffic-aware channel
  manager (§4.4): L-/B-app channel separation, epoch-based bandwidth
  throttling via CHANCMD, bulk-I/O splitting, selective offloading and
  read admission control (Listings 1-2).
"""

from repro.core.channel_manager import AppProfile, ChannelManager
from repro.core.easyio import EasyIoFS, NaiveAsyncFS

__all__ = [
    "AppProfile",
    "ChannelManager",
    "EasyIoFS",
    "NaiveAsyncFS",
]
