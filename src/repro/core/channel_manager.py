"""The traffic-aware channel manager (§4.4).

Responsibilities, exactly as the paper assigns them:

* **Channel separation** -- latency-critical applications (L-apps)
  spread their DMA requests over up to four channels (the §2.2 sweet
  spot); all bandwidth-oriented applications (B-apps) share one
  channel, so their bulk traffic cannot head-of-line-block L-apps.
* **Bandwidth regulation (Listing 1)** -- every epoch the manager
  compares each L-app's observed latency against its SLO; a violation
  throttles the B-app bandwidth limit down by ``delta``, ample slack
  throttles it up.  The limit is enforced at sub-epoch granularity by
  suspending/resuming the B channel through CHANCMD (74 ns).
* **Bulk splitting** -- B-app I/Os are split into 64 KB descriptors so
  a suspension never wastes a large in-flight transfer.
* **Selective offloading** -- I/O at or below 4 KB goes through plain
  memcpy (the DMA engine loses there, and sub-µs completions leave no
  cycles to harvest).
* **Read admission control (Listing 2)** -- a read is offloaded only
  if it is larger than 4 KB and some L-channel has queue depth < 2;
  otherwise it is shunted to memcpy for aggregate read bandwidth.
* **Channel health (fault tolerance)** -- the manager tracks per-channel
  consecutive errors, handles CHANERR interrupts (detect -> reset ->
  quarantine), probes quarantined channels with a small descriptor and
  readmits them on success, and routes traffic around unhealthy
  channels.  When *no* healthy channel remains, selection returns None
  and the filesystem gracefully degrades to the memcpy path -- the
  system stays live at reduced CPU-efficiency instead of wedging.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.metrics import FaultStats
from repro.hw.dma import DmaChannel, DmaDescriptor
from repro.hw.platform import Platform


@dataclass
class AppProfile:
    """One application's QoS contract and its observed behaviour.

    ``kind`` is ``"L"`` (latency-critical, optional ``slo_ns``) or
    ``"B"`` (bandwidth-oriented).  The workload reports request
    latencies via :meth:`observe`; the manager reads the EWMA.
    """

    name: str
    kind: str = "L"
    slo_ns: Optional[int] = None
    ewma_alpha: float = 0.2
    latency_ewma: float = field(default=0.0, init=False)
    samples: int = field(default=0, init=False)

    def __post_init__(self):
        if self.kind not in ("L", "B"):
            raise ValueError(f"app kind must be 'L' or 'B', got {self.kind!r}")

    def observe(self, latency_ns: int) -> None:
        """Feed one request latency into the EWMA."""
        if self.samples == 0:
            self.latency_ewma = float(latency_ns)
        else:
            a = self.ewma_alpha
            self.latency_ewma = a * latency_ns + (1 - a) * self.latency_ewma
        self.samples += 1

    @property
    def slo_slack(self) -> Optional[float]:
        """(target - latency) / target, the Listing-1 headroom metric."""
        if self.slo_ns is None or self.samples == 0:
            return None
        return (self.slo_ns - self.latency_ewma) / self.slo_ns


@dataclass
class ChannelHealth:
    """Per-channel health record the manager maintains."""

    consecutive_errors: int = 0
    total_errors: int = 0
    quarantined: bool = False


class ChannelManager:
    """Mediates between applications and DMA channels."""

    #: Listing 2's queue-depth admission bound.
    READ_QDEPTH_LIMIT = 2

    def __init__(self, platform: Platform,
                 l_channel_ids: Optional[List[int]] = None,
                 b_channel_id: Optional[int] = None,
                 offload_threshold: int = 4096,
                 split_bytes: int = 64 * 1024,
                 epoch_ns: int = 20_000,
                 subticks: int = 8,
                 delta: float = 0.25,
                 slack_threshold: float = 0.2,
                 b_limit: float = 2.0,
                 b_limit_min: float = 0.25,
                 b_limit_max: float = 12.0,
                 throttling: bool = False,
                 quarantine_threshold: int = 3,
                 probe_interval_ns: int = 50_000,
                 reset_delay_ns: int = 5_000):
        if split_bytes <= 0:
            raise ValueError(
                f"split_bytes must be positive, got {split_bytes}")
        if offload_threshold < 0:
            raise ValueError(
                f"offload_threshold must be >= 0, got {offload_threshold}")
        if epoch_ns <= 0:
            raise ValueError(f"epoch_ns must be positive, got {epoch_ns}")
        if quarantine_threshold < 1:
            raise ValueError(f"quarantine_threshold must be >= 1, "
                             f"got {quarantine_threshold}")
        if probe_interval_ns <= 0 or reset_delay_ns < 0:
            raise ValueError("probe_interval_ns must be positive and "
                             "reset_delay_ns non-negative")
        self.platform = platform
        self.engine = platform.engine
        self.model = platform.model
        dma = platform.dma
        n = len(dma)
        if l_channel_ids is None:
            l_channel_ids = list(range(min(4, max(1, n - 1))))
        if b_channel_id is None:
            b_channel_id = n - 1
        if b_channel_id in l_channel_ids and n > 1:
            raise ValueError("B channel must be disjoint from L channels")
        self.l_channels: List[DmaChannel] = [dma.channel(i) for i in l_channel_ids]
        self.b_channel: DmaChannel = dma.channel(b_channel_id)
        self.offload_threshold = offload_threshold
        self.split_bytes = split_bytes
        self.epoch_ns = epoch_ns
        self.subticks = max(1, subticks)
        self.delta = delta
        self.slack_threshold = slack_threshold
        self.b_limit = b_limit              # GB/s == bytes/ns
        self.b_limit_min = b_limit_min
        self.b_limit_max = b_limit_max
        self.apps: List[AppProfile] = []
        self.throttle_events = 0            # suspensions issued
        self.limit_changes: List = []       # (t, new_limit) trace
        self._stopped = False
        self._throttling = throttling
        # -- fault tolerance -------------------------------------------
        self.quarantine_threshold = quarantine_threshold
        self.probe_interval_ns = probe_interval_ns
        self.reset_delay_ns = reset_delay_ns
        self.fault_stats = FaultStats()
        self._managed: List[DmaChannel] = list(self.l_channels)
        if self.b_channel not in self._managed:
            self._managed.append(self.b_channel)
        self._health: Dict[int, ChannelHealth] = {
            ch.channel_id: ChannelHealth() for ch in self._managed}
        for ch in self._managed:
            ch.on_halt = self._on_halt
        if throttling:
            self.engine.process(self._regulation_loop(), name="channel-manager")

    # ------------------------------------------------------------------
    # Registration / reporting
    # ------------------------------------------------------------------
    def register(self, app: AppProfile) -> AppProfile:
        self.apps.append(app)
        return app

    # ------------------------------------------------------------------
    # Channel health (fault tolerance)
    # ------------------------------------------------------------------
    def healthy(self, ch: DmaChannel) -> bool:
        """Is the channel usable for new traffic right now?"""
        if ch.halted:
            return False
        health = self._health.get(ch.channel_id)
        return health is None or not health.quarantined

    def note_error(self, ch: DmaChannel) -> None:
        """A descriptor on ``ch`` failed (soft transfer error).

        Crossing the consecutive-error threshold quarantines the
        channel and starts its probe/readmit loop.
        """
        self.fault_stats.transfer_errors += 1
        health = self._health.get(ch.channel_id)
        if health is None:
            return
        health.consecutive_errors += 1
        health.total_errors += 1
        if (health.consecutive_errors >= self.quarantine_threshold
                and not health.quarantined):
            self._quarantine(ch, health)

    def note_success(self, ch: DmaChannel) -> None:
        """A descriptor on ``ch`` completed: clear its error streak."""
        health = self._health.get(ch.channel_id)
        if health is not None:
            health.consecutive_errors = 0

    def _quarantine(self, ch: DmaChannel, health: ChannelHealth) -> None:
        health.quarantined = True
        self.fault_stats.quarantines += 1
        tr = self.engine.tracer
        if tr is not None:
            tr.point("cm_quarantine", track="cm", ch=ch.channel_id)
        self.engine.process(self._probe_loop(ch),
                            name=f"cm-probe-ch{ch.channel_id}")

    def _on_halt(self, ch: DmaChannel) -> None:
        """CHANERR interrupt: schedule detection + reset + quarantine."""
        self.fault_stats.channel_halts += 1
        health = self._health.get(ch.channel_id)
        if health is not None:
            health.consecutive_errors += 1
            health.total_errors += 1
        self.engine.process(self._recover_channel(ch),
                            name=f"cm-reset-ch{ch.channel_id}")

    def _recover_channel(self, ch: DmaChannel):
        """Software CHANERR handling: read the error, reset the ring.

        The stranded descriptors' done events fire with status
        "stranded"; their owning writes' supervisors resubmit them
        elsewhere.  The channel goes into quarantine until a probe
        succeeds.
        """
        if self.reset_delay_ns:
            yield self.engine.timeout(self.reset_delay_ns)
        if self._stopped or not ch.halted:
            return
        ch.reset()
        self.fault_stats.channel_resets += 1
        health = self._health.get(ch.channel_id)
        if health is not None and not health.quarantined:
            self._quarantine(ch, health)

    def _probe_loop(self, ch: DmaChannel):
        """Periodically probe a quarantined channel; readmit on success."""
        health = self._health[ch.channel_id]
        while not self._stopped:
            yield self.engine.timeout(self.probe_interval_ns)
            if self._stopped:
                return
            if ch.halted:
                continue  # reset still pending
            probe = DmaDescriptor(4096, write=True,
                                  tag=("probe", ch.channel_id))
            if not ch.try_submit_one(probe):
                continue  # ring full; try again next interval
            yield probe.done
            if probe.status == "ok":
                health.quarantined = False
                health.consecutive_errors = 0
                self.fault_stats.readmissions += 1
                tr = self.engine.tracer
                if tr is not None:
                    tr.point("cm_readmit", track="cm", ch=ch.channel_id)
                return
            health.total_errors += 1

    # ------------------------------------------------------------------
    # Channel selection policies
    # ------------------------------------------------------------------
    def write_channel(self, app: Optional[AppProfile]) -> Optional[DmaChannel]:
        """Channel for a write: B-apps share one, L-apps spread over <=4.

        Only healthy channels are eligible; a B-app whose channel is
        out borrows a healthy L channel (and vice versa) rather than
        wedging.  Returns None when no healthy channel exists -- the
        caller degrades to memcpy.
        """
        healthy_l = [c for c in self.l_channels if self.healthy(c)]
        b_ok = self.healthy(self.b_channel)
        if app is not None and app.kind == "B":
            if b_ok:
                return self.b_channel
            return (min(healthy_l, key=lambda c: (c.queue_depth, c.channel_id))
                    if healthy_l else None)
        if healthy_l:
            return min(healthy_l, key=lambda c: (c.queue_depth, c.channel_id))
        return self.b_channel if b_ok else None

    def admit_read(self, nbytes: int,
                   app: Optional[AppProfile] = None) -> Optional[DmaChannel]:
        """Listing 2: offload a read only when it is worth it.

        Returns the channel to use, or None meaning "use memcpy".
        Unhealthy channels are never admitted (the memcpy path is the
        natural fallback for reads).
        """
        if nbytes <= self.offload_threshold:
            return None
        if app is not None and app.kind == "B":
            return self.b_channel if self.healthy(self.b_channel) else None
        for ch in self.l_channels:
            if self.healthy(ch) and ch.queue_depth < self.READ_QDEPTH_LIMIT:
                return ch
        return None

    def retry_channel(self, app: Optional[AppProfile],
                      failed: DmaChannel,
                      soft: bool) -> Optional[DmaChannel]:
        """Where to resubmit a failed descriptor.

        A soft transfer error retries on the same channel while it
        remains healthy; a halt/strand (or an unhealthy channel) fails
        over to the least-loaded healthy channel.  Returns None when no
        healthy channel exists (degrade to memcpy).
        """
        if soft and self.healthy(failed):
            return failed
        pool = [c for c in self._managed
                if c is not failed and self.healthy(c)]
        if pool:
            return min(pool, key=lambda c: (c.queue_depth, c.channel_id))
        return failed if self.healthy(failed) else None

    def should_offload_write(self, nbytes: int) -> bool:
        """Selective offloading: memcpy for small I/O."""
        return nbytes > self.offload_threshold

    def split(self, app: Optional[AppProfile], nbytes: int) -> List[int]:
        """Descriptor sizes for one transfer (B-apps split to 64 KB)."""
        if app is None or app.kind != "B" or nbytes <= self.split_bytes:
            return [nbytes]
        sizes = [self.split_bytes] * (nbytes // self.split_bytes)
        rem = nbytes % self.split_bytes
        if rem:
            sizes.append(rem)
        return sizes

    # ------------------------------------------------------------------
    # Bandwidth regulation (Listing 1 + CHANCMD enforcement)
    # ------------------------------------------------------------------
    def start_throttling(self) -> None:
        if not self._throttling:
            self._throttling = True
            self.engine.process(self._regulation_loop(), name="channel-manager")

    def _trace_limit(self) -> None:
        tr = self.engine.tracer
        if tr is not None:
            tr.point("cm_limit", track="cm", limit=self.b_limit)

    def stop(self) -> None:
        """Shut the regulation loop down (lets the engine drain)."""
        self._stopped = True
        if self.b_channel.suspended:
            self.b_channel.resume()

    def _regulation_loop(self):
        """Token-bucket enforcement + Listing 1's per-epoch adjustment.

        The bucket carries a *deficit*: a 64 KB chunk that overshoots a
        small budget keeps the channel suspended across epochs until the
        allowance catches up, so effective B-app bandwidth can be
        regulated well below one chunk per epoch.
        """
        tick = max(1, self.epoch_ns // self.subticks)
        allowance = 0.0
        last_bytes = self.b_channel.bytes_moved
        ticks = 0
        while not self._stopped:
            yield self.engine.timeout(tick)
            if self._stopped:
                return
            allowance += self.b_limit * tick
            burst = self.b_limit * self.epoch_ns
            if allowance > burst:
                allowance = burst
            moved = self.b_channel.bytes_moved - last_bytes
            last_bytes = self.b_channel.bytes_moved
            allowance -= moved
            if allowance < 0 and not self.b_channel.suspended:
                # CHANCMD suspend: 74 ns, paid by the manager.
                yield self.engine.timeout(self.model.dma_chancmd_cost)
                # Re-check after the in-flight CHANCMD: stop() may have
                # fired meanwhile, and suspending now would leave the B
                # channel suspended forever (nobody resumes it again).
                if self._stopped:
                    return
                self.b_channel.suspend()
                self.throttle_events += 1
            elif allowance >= 0 and self.b_channel.suspended:
                yield self.engine.timeout(self.model.dma_chancmd_cost)
                if self._stopped:
                    return
                self.b_channel.resume()
            ticks += 1
            if ticks % self.subticks:
                continue
            # Epoch boundary: Listing 1's throttling decision.
            slacks = [a.slo_slack for a in self.apps
                      if a.kind == "L" and a.slo_slack is not None]
            if not slacks:
                continue
            min_slack = min(slacks)
            if min_slack < 0:
                self.b_limit = max(self.b_limit_min,
                                   self.b_limit - self.delta)
                self.limit_changes.append((self.engine.now, self.b_limit))
                self._trace_limit()
            elif min_slack > self.slack_threshold:
                self.b_limit = min(self.b_limit_max,
                                   self.b_limit + self.delta)
                self.limit_changes.append((self.engine.now, self.b_limit))
                self._trace_limit()
