"""EasyIO applied to NOVA (§4-§5): the asynchronous slow-memory filesystem.

What changes relative to the synchronous :class:`~repro.fs.nova.NovaFS`
mirrors the paper's <50-line NOVA patch:

* the read/write data paths go through the channel manager and the
  on-chip DMA engine instead of memcpy (with selective offloading);
* write log entries carry the SN of their DMA descriptors, letting the
  metadata commit proceed *in parallel* with the data copy
  (**orderless file operation**, §4.2);
* the file lock is released as soon as the metadata commit lands, and
  a **two-level lock** (§4.3) -- the level-2 check compares the last
  committed mapping's SN against the channel's completion buffer --
  regulates write-write/read conflicts while read-write conflicts
  proceed immediately (CoW protects in-flight readers);
* recovery discards committed entries whose SNs the persistent
  completion buffers do not cover (wired via
  :func:`repro.fs.recovery.completion_buffer_validator`).

Fault tolerance (active when a :class:`~repro.faults.FaultPlan` is
installed, or forced via ``fault_tolerant=True``): every offloaded
operation gets a *supervisor* process that watches its descriptors.
Failed descriptors are retried with bounded exponential backoff
(sim-time); descriptors lost to a channel halt fail over to a healthy
channel; when no healthy channel remains the supervisor degrades to
the memcpy path.  SN-safety: failed/stranded SNs are persisted as
poisoned *before* any later completion can cover them (the hardware
reports them through ``on_error``/``on_reset`` first), and after a
failover the committed log entry's SN field is amended to the new
(channel, sn) pairs -- so the recovery validator stays sound at every
crash point inside the retry/failover window.

:class:`NaiveAsyncFS` is the §6.4 ablation: asynchronous DMA offload
*without* orderless operation or two-level locking -- data and metadata
strictly ordered into two syscalls, the file lock held across the gap.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.analysis.metrics import OverloadStats
from repro.core.channel_manager import AppProfile, ChannelManager
from repro.fs.nova import NovaFS, OpContext, OpResult
from repro.fs.pmimage import ELIDED, PMImage
from repro.fs.structures import PAGE_SIZE, MemInode
from repro.hw.dma import DmaChannel, DmaDescriptor
from repro.hw.platform import Platform


class _DmaJob:
    """One descriptor's worth of an offloaded operation, retryable.

    ``final`` is None while unresolved, the achieved ``(channel, sn)``
    pair once its data landed via DMA, or ``()`` when the job was
    degraded to the memcpy path (contributing no SN).
    """

    __slots__ = ("desc", "channel", "nbytes", "write", "pids", "contents",
                 "final")

    def __init__(self, desc: DmaDescriptor, channel: DmaChannel,
                 write: bool, pids=None, contents=None):
        self.desc = desc
        self.channel = channel
        self.nbytes = desc.nbytes
        self.write = write
        self.pids = pids
        self.contents = contents
        self.final = None


class EasyIoFS(NovaFS):
    """NOVA + EasyIO: asynchronous read()/write() with orderless
    metadata, two-level locking, and fault-tolerant offload."""

    name = "EasyIO"

    #: Bounded exponential backoff for descriptor retries (sim-time).
    DMA_RETRY_MAX = 4
    DMA_RETRY_BASE_NS = 2_000
    DMA_RETRY_CAP_NS = 64_000
    #: Give up on a page after this many checksum-verify rewrites.
    MEDIA_REWRITE_MAX = 8
    #: Below this much remaining deadline budget the async path is not
    #: worth the completion-wait risk: stay on the memcpy path.
    DEADLINE_MIN_ASYNC_NS = 10_000

    def __init__(self, platform: Platform, image: Optional[PMImage] = None,
                 channel_manager: Optional[ChannelManager] = None,
                 fault_tolerant: Optional[bool] = None,
                 overload_stats: Optional[OverloadStats] = None):
        super().__init__(platform, image)
        self.cm = channel_manager or ChannelManager(platform)
        #: Overload/deadline counters, shareable with the runtime's
        #: admission controller and watchdog.
        self.overload_stats = overload_stats or OverloadStats()
        self.dma_writes = 0
        self.dma_reads = 0
        self.memcpy_reads = 0
        self.memcpy_writes = 0
        #: None = auto: supervise offloaded ops iff a fault plan is
        #: installed on the hardware or the image.  True/False forces.
        self.fault_tolerant = fault_tolerant
        self._ft_seen = False
        # EasyIO places completion buffers in a persistent region
        # (§4.2): every completion-buffer update is a durable store.
        # Failed/stranded SNs are likewise persisted (poisoned) the
        # instant the hardware reports them -- before any later
        # completion can cover them.
        for ch in platform.dma.channels:
            ch.on_completion = self._persist_completion
            ch.on_error = self._persist_channel_errors
            ch.on_reset = self._persist_channel_errors

    @property
    def fault_stats(self):
        """Shared fault/retry/degradation counters (see FaultStats)."""
        return self.cm.fault_stats

    def _persist_completion(self, channel: DmaChannel) -> None:
        self.image.update_completion_buffer(channel.channel_id,
                                            channel.completion_sn)

    def _persist_channel_errors(self, channel: DmaChannel, sns) -> None:
        self.image.record_channel_errors(channel.channel_id, tuple(sns))

    def _supervised(self) -> bool:
        """Should offloaded ops run under a fault supervisor?"""
        if self.fault_tolerant is not None:
            return self.fault_tolerant
        if self._ft_seen:
            return True
        if (self.image.fault_plan is not None
                or any(ch.fault_plan is not None
                       for ch in self.platform.dma.channels)):
            self._ft_seen = True
            return True
        return False

    # ------------------------------------------------------------------
    # Two-level locking (§4.3)
    # ------------------------------------------------------------------
    def _wait_level2(self, ctx: OpContext, m: MemInode):
        """Level-2 check: block until the previous write's DMA lands.

        Runs with the level-1 lock held; safe because completion is
        hardware-driven and always makes progress (no deadlock).  The
        wait spins inside the syscall, so it costs CPU -- which is why
        high-contention workloads cap EasyIO's benefit (§6.6).

        Under fault supervision the wait targets the supervisor's
        all-data-landed event instead of the raw completion buffer: a
        halted channel's completion may never arrive, but the
        supervisor always resolves (retry, failover, or memcpy).

        With a context deadline the wait is bounded: it raises
        :class:`DeadlineExceeded` (detaching from, never cancelling,
        the shared completion event) once the budget runs out.
        """
        done = m.pending_done
        if done is not None and not done.triggered:
            yield from ctx.timed_wait(done, what=f"level-2 wait ino{m.ino}")
            return
        for chid, sn in m.pending_sns:
            ch = self.platform.dma.channel(chid)
            if not ch.is_complete(sn):
                yield from ctx.timed_wait(
                    ch.completion_event(sn),
                    what=f"level-2 completion ch{chid}/sn{sn}")

    # ------------------------------------------------------------------
    # Write path: orderless file operation (§4.2)
    # ------------------------------------------------------------------
    def _write_locked(self, ctx: OpContext, m: MemInode, offset: int,
                      nbytes: int, payload: Optional[bytes]):
        try:
            # Write-write conflict: an unfinished earlier write blocks us.
            yield from self._wait_level2(ctx, m)
            yield from self._charge_lock_contention(ctx)
            # Clean abort point: nothing allocated or submitted yet.
            ctx.check_deadline(f"write ino{m.ino} pre-submit")
            prep = yield from self._prepare_cow(ctx, m, offset, nbytes, payload)
            offload = self.cm.should_offload_write(nbytes)
            if offload and self._budget_forces_sync(ctx):
                self.overload_stats.degraded_to_sync += 1
                offload = False
            channel = self.cm.write_channel(ctx.app) if offload else None
            if channel is None:
                # Selective offloading keeps small I/O on the CPU; a
                # missing channel means graceful degradation (no
                # healthy channel left) -- same path, plus accounting.
                if offload:
                    self.fault_stats.degraded_writes += 1
                    self.fault_stats.degraded_bytes += nbytes
                self.memcpy_writes += 1
                for run_bytes in prep.run_sizes:
                    yield from ctx.timed_cpu(
                        "memcpy", self.memory.cpu_copy(run_bytes, write=True,
                                                       tag=("w", m.ino)))
                self._persist_pages(prep)
                yield from self._commit_write(ctx, m, prep, sns=())
                m.pending_sns = ()
                m.pending_done = None
                return OpResult(value=nbytes, ctx=ctx)
            self.dma_writes += 1
            jobs = yield from self._submit_write_dma(ctx, m, prep, channel)
            sns = tuple((j.channel.channel_id, j.desc.sn) for j in jobs)
            if self._supervised():
                pending = self.engine.event()
                _entry, log_idx = yield from self._commit_write(
                    ctx, m, prep, sns=sns, free_on=pending)
                self.engine.process(
                    self._supervise_write(ctx.app, m, jobs, sns, log_idx,
                                          pending, deadline=ctx.deadline),
                    name=f"supervise-w-ino{m.ino}")
                m.pending_done = pending
            else:
                pending = self._pending_event([j.desc for j in jobs])
                # Orderless: the metadata commit (with embedded SNs)
                # runs while the DMA engine moves the data.  The
                # replaced pages are recycled only once it has landed.
                yield from self._commit_write(ctx, m, prep, sns=sns,
                                              free_on=pending)
                m.pending_done = None
            m.pending_sns = sns
            return OpResult(value=nbytes, pending=pending, sns=sns, ctx=ctx)
        finally:
            # Early release: the syscall both locked and unlocked the
            # file -- no lock is ever held across a scheduling point.
            m.lock.release_write()

    def _submit_write_dma(self, ctx: OpContext, m: MemInode, prep,
                          channel: Optional[DmaChannel] = None):
        """Build one descriptor per contiguous page run (B-apps: split
        to 64 KB), batch-submit, and hook page persistence.

        Returns the submitted :class:`_DmaJob` list (one per
        descriptor, carrying the pages needed for retries).
        """
        app = ctx.app
        if channel is None:
            channel = self.cm.write_channel(app)
        jobs: List[_DmaJob] = []
        for pids, contents in _contiguous_runs(prep.page_ids, prep.contents):
            run_bytes = len(pids) * PAGE_SIZE
            for chunk in self.cm.split(app, run_bytes):
                take = chunk // PAGE_SIZE
                chunk_pids, pids = pids[:take], pids[take:]
                chunk_contents, contents = contents[:take], contents[take:]
                desc = DmaDescriptor(chunk, write=True, tag=("w", m.ino))
                desc.on_complete = self._page_persister(chunk_pids, chunk_contents)
                jobs.append(_DmaJob(desc, channel, write=True,
                                    pids=chunk_pids, contents=chunk_contents))
        # The submission cost is the CPU's remaining share of the data
        # movement, so it lands in the memcpy bucket.
        descs = [j.desc for j in jobs]
        for i in range(0, len(descs), self.model.dma_batch_max):
            batch = descs[i:i + self.model.dma_batch_max]
            yield from ctx.timed_cpu("memcpy", channel.submit(batch))
        return jobs

    def _page_persister(self, pids, contents):
        def persist(_desc):
            self._persist_contents(pids, contents)
        return persist

    def _persist_contents(self, pids, contents) -> None:
        """Persist pages, detecting media faults via the checksum hook.

        A mismatching read-back is rewritten immediately; crash-sound
        because the completion buffer (or log amendment) that validates
        the data is only persisted after this returns -- a crash
        between garbage and rewrite leaves the entry invalid.
        """
        image = self.image
        guard = image.fault_plan is not None
        for pid, content in zip(pids, contents):
            image.write_page(pid, content)
            if not guard or content is ELIDED:
                continue
            expected = image.checksum(content)
            rewrites = 0
            while not image.verify_page(pid, expected):
                self.fault_stats.media_faults_detected += 1
                rewrites += 1
                if rewrites > self.MEDIA_REWRITE_MAX:
                    raise RuntimeError(
                        f"page {pid}: media faults persist after "
                        f"{rewrites - 1} rewrites")
                image.write_page(pid, content)

    def _persist_pages(self, prep) -> None:
        """Memcpy-path persistence (also the degraded path) -- with the
        same media-fault detection as the DMA persister."""
        self._persist_contents(prep.page_ids, prep.contents)

    def _pending_event(self, descs: List[DmaDescriptor]):
        if len(descs) == 1:
            return descs[0].done
        return self.engine.all_of([d.done for d in descs])

    def _budget_forces_sync(self, ctx: OpContext) -> bool:
        """Overload policy: run the data path synchronously when the
        scheduler demanded it or the deadline budget is too thin."""
        if ctx.force_sync:
            return True
        rem = ctx.remaining()
        return rem is not None and rem < self.DEADLINE_MIN_ASYNC_NS

    # ------------------------------------------------------------------
    # Fault supervision: retry / failover / graceful degradation
    # ------------------------------------------------------------------
    def _supervise_write(self, app: Optional[AppProfile], m: MemInode,
                         jobs: List[_DmaJob],
                         orig_sns: Tuple[Tuple[int, int], ...],
                         log_idx: int, outer,
                         deadline: Optional[int] = None):
        """Drive one write's descriptors to resolution, then settle the
        log entry.

        Terminates because each round either resolves every job or
        consumes a retry budget, and the degradation fallback (memcpy)
        always succeeds.  Once all data has landed, the committed log
        entry's SN field is amended iff any descriptor moved (failover
        or degradation), so recovery judges the entry by SNs that are
        actually achievable.  Only then does ``outer`` fire -- which
        releases level-2 waiters and recycles the replaced CoW pages.

        ``deadline`` bounds the retry/backoff loop: once it passes, the
        supervisor stops gambling on retries and degrades immediately.
        """
        yield from self._resolve_jobs(app, m.ino, jobs, deadline=deadline)
        final_sns = tuple(j.final for j in jobs if j.final)
        if final_sns != orig_sns:
            self.image.amend_log_sns(m.ino, log_idx, final_sns)
            if m.pending_sns == orig_sns:
                m.pending_sns = final_sns
        outer.succeed(None)

    def _supervise_read(self, app: Optional[AppProfile], ino: int,
                        jobs: List[_DmaJob], outer,
                        deadline: Optional[int] = None):
        """Drive one read's descriptors to resolution (reads carry no
        SNs, so no log settlement is needed)."""
        yield from self._resolve_jobs(app, ino, jobs, deadline=deadline)
        outer.succeed(None)

    def _resolve_jobs(self, app: Optional[AppProfile], ino: int,
                      jobs: List[_DmaJob], deadline: Optional[int] = None):
        stats = self.fault_stats
        attempt = 0
        while True:
            waits = [j.desc.done for j in jobs
                     if j.final is None and not j.desc.done.triggered]
            if waits:
                yield self.engine.all_of(waits)
            bad: List[_DmaJob] = []
            for j in jobs:
                if j.final is not None:
                    continue
                if j.desc.status == "ok":
                    j.final = (j.channel.channel_id, j.desc.sn)
                    self.cm.note_success(j.channel)
                else:
                    bad.append(j)
            if not bad:
                return
            attempt += 1
            for j in bad:
                if j.desc.status == "error" and j.desc.error == "xfer_error":
                    # Soft error: feed the health tracker.  Halts and
                    # strands are already accounted via on_halt.
                    self.cm.note_error(j.channel)
            past_deadline = (deadline is not None
                             and self.engine.now >= deadline)
            if attempt > self.DMA_RETRY_MAX or past_deadline:
                # Out of retry budget -- or out of time: a missed
                # deadline cancels the remaining retry/backoff rounds
                # and settles the data via memcpy right now.
                if past_deadline and attempt <= self.DMA_RETRY_MAX:
                    self.overload_stats.cancelled += len(bad)
                for j in bad:
                    yield from self._degrade_job(j, ino)
                continue
            backoff = min(self.DMA_RETRY_BASE_NS * (2 ** (attempt - 1)),
                          self.DMA_RETRY_CAP_NS)
            if deadline is not None:
                backoff = min(backoff, max(0, deadline - self.engine.now))
            yield self.engine.timeout(backoff)
            for j in bad:
                soft = (j.desc.status == "error"
                        and j.desc.error == "xfer_error")
                target = self.cm.retry_channel(app, j.channel, soft)
                if target is None:
                    yield from self._degrade_job(j, ino)
                    continue
                stats.retries += 1
                if target is not j.channel:
                    stats.failovers += 1
                redo = DmaDescriptor(j.nbytes, write=j.write, tag=j.desc.tag)
                if j.write:
                    redo.on_complete = self._page_persister(j.pids, j.contents)
                j.desc = redo
                j.channel = target
                yield from target.submit([redo])

    def _degrade_job(self, j: _DmaJob, ino: int):
        """Graceful degradation: move one job's bytes via memcpy."""
        stats = self.fault_stats
        if j.write:
            stats.degraded_writes += 1
        else:
            stats.degraded_reads += 1
        stats.degraded_bytes += j.nbytes
        yield from self.memory.cpu_copy(j.nbytes, write=j.write,
                                        tag=("degrade", ino))
        if j.write:
            self._persist_contents(j.pids, j.contents)
        j.final = ()

    # ------------------------------------------------------------------
    # Read path: DMA + memcpy with admission control (Listing 2)
    # ------------------------------------------------------------------
    def _read_extents(self, ctx: OpContext, m: MemInode, offset: int,
                      nbytes: int, runs, want_data: bool):
        jobs: List[_DmaJob] = []
        try:
            force_sync = self._budget_forces_sync(ctx)
            if force_sync and any(pages for _off, pages in runs):
                self.overload_stats.degraded_to_sync += 1
            for _off, pages in runs:
                if not pages:
                    continue
                run_bytes = len(pages) * PAGE_SIZE
                channel = (None if force_sync
                           else self.cm.admit_read(run_bytes, ctx.app))
                if channel is None:
                    self.memcpy_reads += 1
                    yield from ctx.timed_cpu(
                        "memcpy", self.memory.cpu_copy(run_bytes, write=False,
                                                       tag=("r", m.ino)))
                else:
                    self.dma_reads += 1
                    # B-apps' bulk reads are split to 64 KB like their
                    # writes, so a channel suspension never wastes a
                    # large in-flight transfer (§4.4).
                    descs = [DmaDescriptor(chunk, write=False,
                                           tag=("r", m.ino))
                             for chunk in self.cm.split(ctx.app, run_bytes)]
                    for i in range(0, len(descs), self.model.dma_batch_max):
                        yield from ctx.timed_cpu(
                            "memcpy",
                            channel.submit(descs[i:i + self.model.dma_batch_max]))
                    jobs.extend(_DmaJob(d, channel, write=False)
                                for d in descs)
            # Reads only touch timestamps; commit and unlock immediately
            # -- later writes may start while our DMA is in flight (CoW
            # plus deferred page recycling keep the data stable).
            yield from ctx.charge("metadata", self.model.timestamp_update_cost)
            value = (self._collect_data(m, offset, nbytes)
                     if want_data else nbytes)
        finally:
            m.lock.release_read()
        pending = None
        if jobs:
            if self._supervised():
                pending = self.engine.event()
                self.engine.process(
                    self._supervise_read(ctx.app, m.ino, jobs, pending,
                                         deadline=ctx.deadline),
                    name=f"supervise-r-ino{m.ino}")
            else:
                pending = self._pending_event([j.desc for j in jobs])
        return OpResult(value=value, pending=pending, ctx=ctx)


class NaiveAsyncFS(EasyIoFS):
    """The §6.4 ablation: asynchronous offload, strictly ordered.

    Data and metadata updates are split into two syscalls: the first
    submits the DMA and *keeps the file locked*; once the completion
    arrives, the runtime issues the second syscall, which commits the
    metadata and only then unlocks.  Intermediate scheduling between
    the two prolongs the critical section (Figure 11) and -- without
    the care the paper describes -- risks deadlock (§3).
    """

    name = "Naive"

    def _write_locked(self, ctx: OpContext, m: MemInode, offset: int,
                      nbytes: int, payload: Optional[bytes]):
        yield from self._charge_lock_contention(ctx)
        prep = yield from self._prepare_cow(ctx, m, offset, nbytes, payload)
        if not self.cm.should_offload_write(nbytes):
            try:
                self.memcpy_writes += 1
                for run_bytes in prep.run_sizes:
                    yield from ctx.timed_cpu(
                        "memcpy", self.memory.cpu_copy(run_bytes, write=True,
                                                       tag=("w", m.ino)))
                self._persist_pages(prep)
                yield from self._commit_write(ctx, m, prep, sns=())
            finally:
                m.lock.release_write()
            return OpResult(value=nbytes, ctx=ctx)
        self.dma_writes += 1
        jobs = yield from self._submit_write_dma(ctx, m, prep)
        pending = self._pending_event([j.desc for j in jobs])

        def commit_syscall(ctx2: OpContext):
            # Second interaction with the filesystem (§3): metadata
            # commit once the data I/O has finished.
            yield from ctx2.charge("syscall", self.model.syscall_cost)
            try:
                yield from self._commit_write(ctx2, m, prep, sns=())
            finally:
                m.lock.release_write()
            return nbytes

        # NOTE: the level-1 lock stays held across the asynchronous gap.
        return OpResult(value=nbytes, pending=pending, ctx=ctx,
                        continuation=commit_syscall)


def _contiguous_runs(page_ids, contents) -> List[Tuple[list, list]]:
    """Group (page_ids, contents) into physically contiguous runs."""
    runs: List[Tuple[list, list]] = []
    cur_ids: list = []
    cur_contents: list = []
    for pid, content in zip(page_ids, contents):
        if cur_ids and pid != cur_ids[-1] + 1:
            runs.append((cur_ids, cur_contents))
            cur_ids, cur_contents = [], []
        cur_ids.append(pid)
        cur_contents.append(content)
    if cur_ids:
        runs.append((cur_ids, cur_contents))
    return runs
