"""EasyIO applied to NOVA (§4-§5): the asynchronous slow-memory filesystem.

What changes relative to the synchronous :class:`~repro.fs.nova.NovaFS`
mirrors the paper's <50-line NOVA patch:

* the read/write data paths go through the channel manager and the
  on-chip DMA engine instead of memcpy (with selective offloading);
* write log entries carry the SN of their DMA descriptors, letting the
  metadata commit proceed *in parallel* with the data copy
  (**orderless file operation**, §4.2);
* the file lock is released as soon as the metadata commit lands, and
  a **two-level lock** (§4.3) -- the level-2 check compares the last
  committed mapping's SN against the channel's completion buffer --
  regulates write-write/read conflicts while read-write conflicts
  proceed immediately (CoW protects in-flight readers);
* recovery discards committed entries whose SNs the persistent
  completion buffers do not cover (wired via
  :func:`repro.fs.recovery.completion_buffer_validator`).

:class:`NaiveAsyncFS` is the §6.4 ablation: asynchronous DMA offload
*without* orderless operation or two-level locking -- data and metadata
strictly ordered into two syscalls, the file lock held across the gap.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.channel_manager import AppProfile, ChannelManager
from repro.fs.nova import NovaFS, OpContext, OpResult
from repro.fs.pmimage import PMImage
from repro.fs.structures import PAGE_SIZE, MemInode
from repro.hw.dma import DmaChannel, DmaDescriptor
from repro.hw.platform import Platform


class EasyIoFS(NovaFS):
    """NOVA + EasyIO: asynchronous read()/write() with orderless
    metadata and two-level locking."""

    name = "EasyIO"

    def __init__(self, platform: Platform, image: Optional[PMImage] = None,
                 channel_manager: Optional[ChannelManager] = None):
        super().__init__(platform, image)
        self.cm = channel_manager or ChannelManager(platform)
        self.dma_writes = 0
        self.dma_reads = 0
        self.memcpy_reads = 0
        self.memcpy_writes = 0
        # EasyIO places completion buffers in a persistent region
        # (§4.2): every completion-buffer update is a durable store.
        for ch in platform.dma.channels:
            ch.on_completion = self._persist_completion

    def _persist_completion(self, channel: DmaChannel) -> None:
        self.image.update_completion_buffer(channel.channel_id,
                                            channel.completion_sn)

    # ------------------------------------------------------------------
    # Two-level locking (§4.3)
    # ------------------------------------------------------------------
    def _wait_level2(self, ctx: OpContext, m: MemInode):
        """Level-2 check: block until the previous write's DMA lands.

        Runs with the level-1 lock held; safe because completion is
        hardware-driven and always makes progress (no deadlock).  The
        wait spins inside the syscall, so it costs CPU -- which is why
        high-contention workloads cap EasyIO's benefit (§6.6).
        """
        for chid, sn in m.pending_sns:
            ch = self.platform.dma.channel(chid)
            if not ch.is_complete(sn):
                t0 = self.engine.now
                yield ch.completion_event(sn)
                waited = self.engine.now - t0
                if ctx.record:
                    ctx.breakdown["wait"] += waited
                ctx.cpu_ns += waited

    # ------------------------------------------------------------------
    # Write path: orderless file operation (§4.2)
    # ------------------------------------------------------------------
    def _write_locked(self, ctx: OpContext, m: MemInode, offset: int,
                      nbytes: int, payload: Optional[bytes]):
        try:
            # Write-write conflict: an unfinished earlier write blocks us.
            yield from self._wait_level2(ctx, m)
            yield from self._charge_lock_contention(ctx)
            prep = yield from self._prepare_cow(ctx, m, offset, nbytes, payload)
            if not self.cm.should_offload_write(nbytes):
                # Selective offloading: small I/O stays on the CPU.
                self.memcpy_writes += 1
                for run_bytes in prep.run_sizes:
                    yield from ctx.timed_cpu(
                        "memcpy", self.memory.cpu_copy(run_bytes, write=True,
                                                       tag=("w", m.ino)))
                self._persist_pages(prep)
                yield from self._commit_write(ctx, m, prep, sns=())
                m.pending_sns = ()
                return OpResult(value=nbytes, ctx=ctx)
            self.dma_writes += 1
            descs, channel = yield from self._submit_write_dma(ctx, m, prep)
            sns = tuple((channel.channel_id, d.sn) for d in descs)
            pending = self._pending_event(descs)
            # Orderless: the metadata commit (with embedded SNs) runs
            # while the DMA engine moves the data.  The replaced pages
            # are recycled only once the data has landed.
            yield from self._commit_write(ctx, m, prep, sns=sns,
                                          free_on=pending)
            m.pending_sns = sns
            return OpResult(value=nbytes, pending=pending, sns=sns, ctx=ctx)
        finally:
            # Early release: the syscall both locked and unlocked the
            # file -- no lock is ever held across a scheduling point.
            m.lock.release_write()

    def _submit_write_dma(self, ctx: OpContext, m: MemInode, prep):
        """Build one descriptor per contiguous page run (B-apps: split
        to 64 KB), batch-submit, and hook page persistence."""
        app = ctx.app
        channel = self.cm.write_channel(app)
        descs: List[DmaDescriptor] = []
        for pids, contents in _contiguous_runs(prep.page_ids, prep.contents):
            run_bytes = len(pids) * PAGE_SIZE
            for chunk in self.cm.split(app, run_bytes):
                take = chunk // PAGE_SIZE
                chunk_pids, pids = pids[:take], pids[take:]
                chunk_contents, contents = contents[:take], contents[take:]
                desc = DmaDescriptor(chunk, write=True, tag=("w", m.ino))
                desc.on_complete = self._page_persister(chunk_pids, chunk_contents)
                descs.append(desc)
        # The submission cost is the CPU's remaining share of the data
        # movement, so it lands in the memcpy bucket.
        for i in range(0, len(descs), self.model.dma_batch_max):
            batch = descs[i:i + self.model.dma_batch_max]
            yield from ctx.timed_cpu("memcpy", channel.submit(batch))
        return descs, channel

    def _page_persister(self, pids, contents):
        def persist(_desc):
            for pid, content in zip(pids, contents):
                self.image.write_page(pid, content)
        return persist

    def _pending_event(self, descs: List[DmaDescriptor]):
        if len(descs) == 1:
            return descs[0].done
        return self.engine.all_of([d.done for d in descs])

    # ------------------------------------------------------------------
    # Read path: DMA + memcpy with admission control (Listing 2)
    # ------------------------------------------------------------------
    def _read_extents(self, ctx: OpContext, m: MemInode, offset: int,
                      nbytes: int, runs, want_data: bool):
        pending_descs: List[DmaDescriptor] = []
        try:
            for _off, pages in runs:
                if not pages:
                    continue
                run_bytes = len(pages) * PAGE_SIZE
                channel = self.cm.admit_read(run_bytes, ctx.app)
                if channel is None:
                    self.memcpy_reads += 1
                    yield from ctx.timed_cpu(
                        "memcpy", self.memory.cpu_copy(run_bytes, write=False,
                                                       tag=("r", m.ino)))
                else:
                    self.dma_reads += 1
                    # B-apps' bulk reads are split to 64 KB like their
                    # writes, so a channel suspension never wastes a
                    # large in-flight transfer (§4.4).
                    descs = [DmaDescriptor(chunk, write=False,
                                           tag=("r", m.ino))
                             for chunk in self.cm.split(ctx.app, run_bytes)]
                    for i in range(0, len(descs), self.model.dma_batch_max):
                        yield from ctx.timed_cpu(
                            "memcpy",
                            channel.submit(descs[i:i + self.model.dma_batch_max]))
                    pending_descs.extend(descs)
            # Reads only touch timestamps; commit and unlock immediately
            # -- later writes may start while our DMA is in flight (CoW
            # plus deferred page recycling keep the data stable).
            yield from ctx.charge("metadata", self.model.timestamp_update_cost)
            value = (self._collect_data(m, offset, nbytes)
                     if want_data else nbytes)
        finally:
            m.lock.release_read()
        pending = self._pending_event(pending_descs) if pending_descs else None
        return OpResult(value=value, pending=pending, ctx=ctx)


class NaiveAsyncFS(EasyIoFS):
    """The §6.4 ablation: asynchronous offload, strictly ordered.

    Data and metadata updates are split into two syscalls: the first
    submits the DMA and *keeps the file locked*; once the completion
    arrives, the runtime issues the second syscall, which commits the
    metadata and only then unlocks.  Intermediate scheduling between
    the two prolongs the critical section (Figure 11) and -- without
    the care the paper describes -- risks deadlock (§3).
    """

    name = "Naive"

    def _write_locked(self, ctx: OpContext, m: MemInode, offset: int,
                      nbytes: int, payload: Optional[bytes]):
        yield from self._charge_lock_contention(ctx)
        prep = yield from self._prepare_cow(ctx, m, offset, nbytes, payload)
        if not self.cm.should_offload_write(nbytes):
            try:
                self.memcpy_writes += 1
                for run_bytes in prep.run_sizes:
                    yield from ctx.timed_cpu(
                        "memcpy", self.memory.cpu_copy(run_bytes, write=True,
                                                       tag=("w", m.ino)))
                self._persist_pages(prep)
                yield from self._commit_write(ctx, m, prep, sns=())
            finally:
                m.lock.release_write()
            return OpResult(value=nbytes, ctx=ctx)
        self.dma_writes += 1
        descs, _channel = yield from self._submit_write_dma(ctx, m, prep)
        pending = self._pending_event(descs)

        def commit_syscall(ctx2: OpContext):
            # Second interaction with the filesystem (§3): metadata
            # commit once the data I/O has finished.
            yield from ctx2.charge("syscall", self.model.syscall_cost)
            try:
                yield from self._commit_write(ctx2, m, prep, sns=())
            finally:
                m.lock.release_write()
            return nbytes

        # NOTE: the level-1 lock stays held across the asynchronous gap.
        return OpResult(value=nbytes, pending=pending, ctx=ctx,
                        continuation=commit_syscall)


def _contiguous_runs(page_ids, contents) -> List[Tuple[list, list]]:
    """Group (page_ids, contents) into physically contiguous runs."""
    runs: List[Tuple[list, list]] = []
    cur_ids: list = []
    cur_contents: list = []
    for pid, content in zip(page_ids, contents):
        if cur_ids and pid != cur_ids[-1] + 1:
            runs.append((cur_ids, cur_contents))
            cur_ids, cur_contents = [], []
        cur_ids.append(pid)
        cur_contents.append(content)
    if cur_ids:
        runs.append((cur_ids, cur_contents))
    return runs
