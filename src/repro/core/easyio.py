"""EasyIO applied to NOVA (§4-§5): the asynchronous slow-memory filesystem.

What changes relative to the synchronous :class:`~repro.fs.nova.NovaFS`
mirrors the paper's <50-line NOVA patch:

* the read/write data paths go through the channel manager and the
  on-chip DMA engine instead of memcpy (with selective offloading);
* write log entries carry the SN of their DMA descriptors, letting the
  metadata commit proceed *in parallel* with the data copy
  (**orderless file operation**, §4.2);
* the file lock is released as soon as the metadata commit lands, and
  a **two-level lock** (§4.3) -- the level-2 check compares the last
  committed mapping's SN against the channel's completion buffer --
  regulates write-write/read conflicts while read-write conflicts
  proceed immediately (CoW protects in-flight readers);
* recovery discards committed entries whose SNs the persistent
  completion buffers do not cover (wired via
  :func:`repro.fs.recovery.completion_buffer_validator`).

Fault tolerance (active when a :class:`~repro.faults.FaultPlan` is
installed, or forced via ``fault_tolerant=True``): every offloaded
operation gets a *supervisor* process
(:class:`~repro.io.supervision.FaultSupervisor`) that watches its
descriptors -- retry with bounded backoff, failover to a healthy
channel, graceful degradation to memcpy.  SN-safety: failed/stranded
SNs are persisted as poisoned *before* any later completion can cover
them (the hardware reports them through ``on_error``/``on_reset``
first), and after a failover the committed log entry's SN field is
amended to the new (channel, sn) pairs -- so the recovery validator
stays sound at every crash point inside the retry/failover window.

As a pipeline composition (see :mod:`repro.io`): EasyIO is the
:class:`~repro.io.pipeline.OrderlessWritePipeline` and
:class:`~repro.io.pipeline.AsyncReadPipeline` over
:class:`~repro.io.backends.DmaAsyncBackend`, with batched-pending
completion, a level-2 gate, deadline/admission middleware, and fault
supervision.

:class:`NaiveAsyncFS` is the §6.4 ablation: asynchronous DMA offload
*without* orderless operation or two-level locking -- data and metadata
strictly ordered into two syscalls, the file lock held across the gap
(:class:`~repro.io.pipeline.OrderedAsyncWritePipeline`).
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.metrics import OverloadStats
from repro.core.channel_manager import ChannelManager
from repro.fs.nova import NovaFS, OpContext
from repro.fs.pmimage import PMImage
from repro.fs.structures import MemInode
from repro.hw.dma import DmaChannel
from repro.hw.platform import Platform
from repro.io import (
    AdmissionControl,
    AsyncReadPipeline,
    BatchedPendingCompletion,
    DeadlineGate,
    DmaAsyncBackend,
    FaultSupervisor,
    IoPipeline,
    IoPlanner,
    Level2Gate,
    MemcpyBackend,
    OpCounters,
    OrderedAsyncWritePipeline,
    OrderlessWritePipeline,
    SupervisionPolicy,
    VerifyingPagePersister,
)


class EasyIoFS(NovaFS):
    """NOVA + EasyIO: asynchronous read()/write() with orderless
    metadata, two-level locking, and fault-tolerant offload."""

    name = "EasyIO"

    #: Bounded exponential backoff for descriptor retries (sim-time);
    #: mirrored from the fault supervisor for API stability.
    DMA_RETRY_MAX = FaultSupervisor.DMA_RETRY_MAX
    DMA_RETRY_BASE_NS = FaultSupervisor.DMA_RETRY_BASE_NS
    DMA_RETRY_CAP_NS = FaultSupervisor.DMA_RETRY_CAP_NS
    #: Give up on a page after this many checksum-verify rewrites.
    MEDIA_REWRITE_MAX = VerifyingPagePersister.MEDIA_REWRITE_MAX
    #: Below this much remaining deadline budget the async path is not
    #: worth the completion-wait risk: stay on the memcpy path.
    DEADLINE_MIN_ASYNC_NS = 10_000

    def __init__(self, platform: Platform, image: Optional[PMImage] = None,
                 channel_manager: Optional[ChannelManager] = None,
                 fault_tolerant: Optional[bool] = None,
                 overload_stats: Optional[OverloadStats] = None,
                 elide_payloads: bool = False):
        super().__init__(platform, image, elide_payloads=elide_payloads)
        self.cm = channel_manager or ChannelManager(platform)
        #: Overload/deadline counters, shareable with the runtime's
        #: admission controller and watchdog.
        self.overload_stats = overload_stats or OverloadStats()
        self.dma_writes = 0
        self.dma_reads = 0
        self.memcpy_reads = 0
        self.memcpy_writes = 0
        #: None = auto: supervise offloaded ops iff a fault plan is
        #: installed on the hardware or the image.  True/False forces.
        self.fault_tolerant = fault_tolerant
        # EasyIO places completion buffers in a persistent region
        # (§4.2): every completion-buffer update is a durable store.
        # Failed/stranded SNs are likewise persisted (poisoned) the
        # instant the hardware reports them -- before any later
        # completion can cover them.
        for ch in platform.dma.channels:
            ch.on_completion = self._persist_completion
            ch.on_error = self._persist_channel_errors
            ch.on_reset = self._persist_channel_errors
        self._io = self._build_pipeline()

    @property
    def fault_stats(self):
        """Shared fault/retry/degradation counters (see FaultStats)."""
        return self.cm.fault_stats

    def _persist_completion(self, channel: DmaChannel) -> None:
        self.image.update_completion_buffer(channel.channel_id,
                                            channel.completion_sn)

    def _persist_channel_errors(self, channel: DmaChannel, sns) -> None:
        self.image.record_channel_errors(channel.channel_id, tuple(sns))

    # ------------------------------------------------------------------
    # Two-level locking (§4.3)
    # ------------------------------------------------------------------
    def _wait_level2(self, ctx: OpContext, m: MemInode):
        """Level-2 check: block until the previous write's DMA lands
        (see :class:`~repro.io.middleware.Level2Gate` for semantics)."""
        yield from self.io.level2.wait(ctx, m)

    # ------------------------------------------------------------------
    # Pipeline composition (§4.2-§4.4 as declarative policy)
    # ------------------------------------------------------------------
    def _build_pipeline(self) -> IoPipeline:
        planner = IoPlanner(self)
        if self.elide_payloads:
            # Performance sweeps: no contents stored, no checksum
            # read-back (_make_persister already rejects fault plans).
            persister = self._make_persister()
        else:
            persister = VerifyingPagePersister(
                self.image, self.fault_stats,
                rewrite_max=self.MEDIA_REWRITE_MAX)
            persister.engine = self.engine
        backend = DmaAsyncBackend(self.cm, self.memory, persister,
                                  OpCounters(self))
        fallback = MemcpyBackend(self.memory, persister)
        completion = BatchedPendingCompletion(self.engine)
        supervisor = FaultSupervisor(self.engine, self.cm, self.image,
                                     self.memory, persister,
                                     self.overload_stats)
        level2 = Level2Gate(self)
        admission = AdmissionControl(self.overload_stats,
                                     self.DEADLINE_MIN_ASYNC_NS)
        supervision = SupervisionPolicy(self, supervisor)
        stats = OpCounters(self)
        return IoPipeline(
            write=OrderlessWritePipeline(self, planner, level2,
                                         DeadlineGate(), admission, backend,
                                         fallback, completion, supervision,
                                         stats),
            read=AsyncReadPipeline(self, planner, admission, backend,
                                   completion, supervision),
            planner=planner, level2=level2)


class NaiveAsyncFS(EasyIoFS):
    """The §6.4 ablation: asynchronous offload, strictly ordered.

    Data and metadata updates are split into two syscalls: the first
    submits the DMA and *keeps the file locked*; once the completion
    arrives, the runtime issues the second syscall, which commits the
    metadata and only then unlocks.  Intermediate scheduling between
    the two prolongs the critical section (Figure 11) and -- without
    the care the paper describes -- risks deadlock (§3).
    """

    name = "Naive"

    def _build_pipeline(self) -> IoPipeline:
        base = super()._build_pipeline()
        w = base.write
        return IoPipeline(
            write=OrderedAsyncWritePipeline(self, w.planner, w.backend,
                                            w.fallback, w.completion,
                                            w.stats),
            read=base.read,
            planner=base.planner, level2=base.level2)


#: Planted persistence bugs for crash-model validation.  Each mutant
#: breaks one fence/ordering rule the line-granularity crash model is
#: supposed to catch and the page-granularity model cannot (or need
#: not) see:
#:
#: * ``skip_append_fence``     -- drop the sfence between a WriteEntry
#:   log append and its tail commit: the commit can land while the
#:   entry is torn.  Invisible to the mutation journal (the journal
#:   records logical stores, not fences), so the page sweep passes.
#: * ``reorder_amend_persist`` -- persist a failover's SN amendment
#:   *before* the degraded memcpy'd pages land: a crash in between
#:   leaves a validated entry pointing at absent data.
CRASH_MUTANTS = ("skip_append_fence", "reorder_amend_persist")


def install_crash_mutant(fs, mutant: str) -> None:
    """Plant one of :data:`CRASH_MUTANTS` into a live filesystem.

    Test-only: used by the crash harness to validate that the
    line-granularity sweep detects known fence/ordering bugs.
    """
    if mutant == "skip_append_fence":
        stream = fs.image.linestream
        if stream is None:
            raise RuntimeError(
                "skip_append_fence needs a line-recording image")
        stream.skipped_fences.add("append:WriteEntry")
    elif mutant == "reorder_amend_persist":
        fs.io.write.supervision.supervisor.mutant_reorder_amend = True
    else:
        raise ValueError(f"unknown crash mutant {mutant!r}; "
                         f"choose from {CRASH_MUTANTS}")
