"""Black-box crash-consistency testing in the style of CrashMonkey [59].

The paper's Table 2 runs four workloads covering the error-prone
syscalls (create, write, link, rename, delete) and injects 1000 crash
points into each, then checks that recovery lands in a legal state.

Methodology here (equivalent to CrashMonkey's record/replay model):

1. Run the workload on a *recording* PM image; every durable store is
   journalled in persist order.  Ops are serialized, and the oracle
   snapshots the expected logical state after each op, together with
   the op's [first, last] mutation indices.
2. A crash at point *k* is "replay the first *k* mutations into a
   fresh image" -- exactly a power failure between two 8-byte-atomic
   persists.  Recover the filesystem from it (EasyIO recovery validates
   write SNs against the persistent completion buffers).
3. The recovered state (names, sizes, *and file contents*) must equal
   the oracle state after op *i* for some i between "ops fully durable
   by k" and "ops started by k" -- i.e. each op must be atomic and
   ops must become durable in order.

This directly exercises EasyIO's dangerous window: metadata committed
before the DMA'd data landed.  Recovery must discard such entries (the
SN rule), or the content check fails.
"""

from __future__ import annotations

import hashlib
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.fs.recovery import completion_buffer_validator, recover
from repro.fs.structures import FileKind
from repro.hw.platform import Platform, PlatformConfig
from repro.obs import TraceChecker, default_tracing
from repro.workloads.factory import make_fs

Snapshot = Dict[str, Tuple]


def _content_hash(fs, m) -> str:
    """Digest of a file's logical content (from its page index)."""
    hasher = hashlib.sha1()
    hasher.update(str(m.size).encode())
    data = fs._collect_data(m, 0, m.size)
    hasher.update(data)
    return hasher.hexdigest()


def snapshot_with_content(fs) -> Snapshot:
    """{path: ("dir"|"file", size, content-digest)} for the whole tree."""
    out: Snapshot = {}

    def walk(ino: int, prefix: str):
        m = fs._mem.get(ino)
        if m is None:
            return
        for name, child_ino in sorted(m.dentries.items()):
            child = fs._mem.get(child_ino)
            if child is None:
                continue
            path = f"{prefix}/{name}"
            if child.kind is FileKind.DIR:
                out[path] = ("dir", 0, None)
                walk(child_ino, path)
            else:
                out[path] = ("file", child.size, _content_hash(fs, child))

    walk(0, "")
    return out


def _settle(fs, result):
    """Wait out an async op and run its deferred commit syscall, if any
    (the Naive ablation commits metadata in a second syscall)."""
    if result.is_async:
        yield result.pending
    continuation = getattr(result, "continuation", None)
    if continuation is not None:
        ctx = fs.context(record=False)
        yield from continuation(ctx)


def _payload(tag: int, nbytes: int) -> bytes:
    """Deterministic, tag-distinguishable file content."""
    unit = (f"{tag:08x}".encode() * ((nbytes // 8) + 1))[:nbytes]
    return unit


# ----------------------------------------------------------------------
# The four Table-2 workloads
# ----------------------------------------------------------------------
def _wl_create_delete(fs, iterations: int):
    """create, write, remove on regular files."""
    for i in range(iterations):
        ctx = fs.context(record=False)
        ino = yield from fs.create(ctx, f"/cd{i}")
        yield ("op",)
        result = yield from fs.write(fs.context(record=False), ino, 0,
                                     12288, _payload(i, 12288))
        yield from _settle(fs, result)
        yield ("op",)
        if i >= 2:
            yield from fs.unlink(fs.context(record=False), f"/cd{i - 2}")
            yield ("op",)


def _wl_generic_056(fs, iterations: int):
    """create, write, link on regular files."""
    for i in range(iterations):
        ino = yield from fs.create(fs.context(record=False), f"/a{i}")
        yield ("op",)
        result = yield from fs.write(fs.context(record=False), ino, 0,
                                     8192, _payload(i, 8192))
        yield from _settle(fs, result)
        yield ("op",)
        yield from fs.link(fs.context(record=False), f"/a{i}", f"/b{i}")
        yield ("op",)


def _wl_generic_090(fs, iterations: int):
    """write, append, link on regular files."""
    ino = yield from fs.create(fs.context(record=False), "/g090")
    yield ("op",)
    for i in range(iterations):
        result = yield from fs.write(fs.context(record=False), ino,
                                     0, 8192, _payload(i, 8192))
        yield from _settle(fs, result)
        yield ("op",)
        result = yield from fs.append(fs.context(record=False), ino,
                                      4096, _payload(i ^ 0xFF, 4096))
        yield from _settle(fs, result)
        yield ("op",)
        if i % 4 == 0:
            yield from fs.link(fs.context(record=False), "/g090", f"/l{i}")
            yield ("op",)


def _wl_generic_322(fs, iterations: int):
    """create, write, rename on regular files."""
    for i in range(iterations):
        ino = yield from fs.create(fs.context(record=False), f"/t{i}")
        yield ("op",)
        result = yield from fs.write(fs.context(record=False), ino, 0,
                                     16384, _payload(i, 16384))
        yield from _settle(fs, result)
        yield ("op",)
        yield from fs.rename(fs.context(record=False), f"/t{i}", f"/r{i}")
        yield ("op",)


#: Table 2's workloads: name -> (description, driver, iterations).
CRASH_WORKLOADS: Dict[str, Tuple[str, Callable, int]] = {
    "create_delete": ("create, write, remove on regular files",
                      _wl_create_delete, 90),
    "generic_056": ("create, write, link on regular files",
                    _wl_generic_056, 90),
    "generic_090": ("write, append, link on regular files",
                    _wl_generic_090, 100),
    "generic_322": ("create, write, rename on regular files",
                    _wl_generic_322, 80),
}


@dataclass
class CrashReport:
    """Outcome of one workload's crash sweep."""

    workload: str
    kind: str
    total_crash_points: int
    passed: int
    failures: List[Tuple[int, str]] = field(default_factory=list)

    @property
    def all_passed(self) -> bool:
        return self.passed == self.total_crash_points


def _record_workload(kind: str, driver: Callable, iterations: int,
                     fault_plan: Optional[Callable] = None,
                     trace_oracles: bool = False):
    """Run the workload once, recording mutations and the op oracle.

    ``fault_plan`` is a zero-argument factory returning a fresh
    :class:`~repro.faults.FaultPlan`; when given, the plan is installed
    on the recording platform so crash points land inside the
    retry/failover/degradation windows too.

    With ``trace_oracles`` the recording run is traced (repro.obs) and
    the stream is replayed through the full invariant-oracle set; any
    violation raises before a single crash point is examined -- so
    crash legality is checked against the *execution*, not only the
    recovered image.
    """
    tracers: list = []
    scope = default_tracing(collect=tracers) if trace_oracles \
        else nullcontext()
    with scope:
        platform = Platform(PlatformConfig.single_node())
        fs = make_fs(kind, platform, record=True)
    image = fs.image
    if fault_plan is not None:
        fault_plan().install(platform, image=image)
    # oracle[i] = (start_idx, end_idx, snapshot after op i)
    oracle: List[Tuple[int, int, Snapshot]] = []

    def runner():
        start = len(image.mutations)
        gen = driver(fs, iterations)
        while True:
            try:
                marker = yield from _drive_until_marker(gen)
            except StopIteration:
                break
            if marker is None:
                break
            end = len(image.mutations)
            oracle.append((start, end, snapshot_with_content(fs)))
            start = end

    def _drive_until_marker(gen):
        """Advance the workload generator to its next ("op",) marker."""
        while True:
            try:
                item = next(gen)
            except StopIteration:
                return None
            if isinstance(item, tuple) and item and item[0] == "op":
                return item
            # Any other yield is a simulation event: wait for it.
            yield item

    proc = platform.engine.process(runner())
    platform.engine.run()
    if proc.is_alive:
        raise RuntimeError(f"crash workload stalled (deadlock?) on {kind}")
    if not proc.ok:
        raise proc.value
    if trace_oracles:
        checker = TraceChecker()
        problems = [v for tr in tracers for v in checker.check(tr.events)]
        if problems:
            raise AssertionError(
                f"{kind}/{len(problems)} trace-invariant violation(s) "
                "during crash-test recording:\n"
                + "\n".join(f"  {v}" for v in problems))
    return image, oracle


def run_crash_test(kind: str, workload: str, crash_points: int = 1000,
                   fault_plan: Optional[Callable] = None,
                   trace_oracles: bool = False) -> CrashReport:
    """Inject ``crash_points`` crashes into one workload and check
    every recovery (the Table 2 experiment).

    With a ``fault_plan`` factory the recording run also suffers DMA
    faults, so the sweep covers crash points inside EasyIO's retry and
    failover windows (half-retried writes, amended-but-unlanded SNs);
    recovery must still land in a legal state at every point.
    ``trace_oracles`` additionally replays the recording run's trace
    through the invariant oracles (see :func:`_record_workload`).
    """
    desc, driver, iterations = CRASH_WORKLOADS[workload]
    image, oracle = _record_workload(kind, driver, iterations, fault_plan,
                                     trace_oracles=trace_oracles)
    total = image.crash_points()
    if total < 2:
        raise RuntimeError(f"workload {workload} produced no mutations")
    # Spread the requested crash points evenly over the mutation log.
    n = min(crash_points, total + 1)
    points = sorted({round(j * total / (n - 1)) for j in range(n)}) \
        if n > 1 else [total]

    report = CrashReport(workload=workload, kind=kind,
                         total_crash_points=len(points), passed=0)
    validator_needed = kind in ("easyio", "naive")
    empty_snapshot: Snapshot = {}
    for k in points:
        img = image.replay(k)
        platform = Platform(PlatformConfig.single_node())
        fs2 = make_fs_on_image(kind, platform, img)
        validator = (completion_buffer_validator(img)
                     if validator_needed else None)
        recover(fs2, validator)
        snap = snapshot_with_content(fs2)
        durable = sum(1 for (_s, e, _sn) in oracle if e <= k)
        started = sum(1 for (s, _e, _sn) in oracle if s <= k)
        candidates = [empty_snapshot if i == 0 else oracle[i - 1][2]
                      for i in range(durable, started + 1)]
        if any(snap == c for c in candidates):
            report.passed += 1
        else:
            report.failures.append(
                (k, f"recovered state matches none of ops "
                    f"[{durable}, {started}]"))
    return report


def make_fs_on_image(kind: str, platform: Platform, image):
    """Construct (without mounting) the named filesystem over ``image``."""
    from repro.workloads.factory import fs_class

    return fs_class(kind)(platform, image)
