"""Black-box crash-consistency testing in the style of CrashMonkey [59].

The paper's Table 2 runs four workloads covering the error-prone
syscalls (create, write, link, rename, delete) and injects 1000 crash
points into each, then checks that recovery lands in a legal state.

Methodology here (equivalent to CrashMonkey's record/replay model):

1. Run the workload on a *recording* PM image; every durable store is
   journalled in persist order.  Ops are serialized, and the oracle
   snapshots the expected logical state after each op, together with
   the op's [first, last] mutation indices.
2. A crash at point *k* is "replay the first *k* mutations into a
   fresh image" -- exactly a power failure between two 8-byte-atomic
   persists.  Recover the filesystem from it (EasyIO recovery validates
   write SNs against the persistent completion buffers).
3. The recovered state (names, sizes, *and file contents*) must equal
   the oracle state after op *i* for some i between "ops fully durable
   by k" and "ops started by k" -- i.e. each op must be atomic and
   ops must become durable in order.

This directly exercises EasyIO's dangerous window: metadata committed
before the DMA'd data landed.  Recovery must discard such entries (the
SN rule), or the content check fails.
"""

from __future__ import annotations

import hashlib
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import (Callable, Dict, List, NamedTuple, Optional, Sequence,
                    Tuple)

from repro.fs.pmimage import PMImage
from repro.fs.recovery import (TornLogEntryError,
                               completion_buffer_validator, recover)
from repro.fs.structures import FileKind, TornRecord
from repro.hw.platform import Platform, PlatformConfig
from repro.obs import TraceChecker, default_tracing
from repro.workloads.factory import make_fs

Snapshot = Dict[str, Tuple]


def _content_hash(fs, m) -> str:
    """Digest of a file's logical content (from its page index)."""
    hasher = hashlib.sha1()
    hasher.update(str(m.size).encode())
    data = fs._collect_data(m, 0, m.size)
    hasher.update(data)
    return hasher.hexdigest()


def snapshot_with_content(fs, digest_cache: Optional[dict] = None) -> Snapshot:
    """{path: ("dir"|"file", size, content-digest)} for the whole tree.

    ``digest_cache`` memoises digests as ``{ino: (size, layout_epoch,
    digest)}``.  Within one call a fresh cache always applies (hard
    links resolve to one inode, whose content cannot change mid-walk).
    Passing a persistent dict across snapshots of the *same live fs* is
    sound when (a) inode numbers are never reused (``PMImage.next_ino``
    is monotonic), and (b) every content change bumps the inode's
    ``layout_epoch`` (write commit, truncate, recovery rebuild) -- the
    recording runner relies on this, but must not pass one when media
    faults are in play (they corrupt page bytes without touching the
    mapping).
    """
    out: Snapshot = {}
    cache = {} if digest_cache is None else digest_cache

    def digest(ino: int, m) -> str:
        key = (m.size, m.layout_epoch)
        hit = cache.get(ino)
        if hit is not None and hit[0] == key:
            return hit[1]
        value = _content_hash(fs, m)
        cache[ino] = (key, value)
        return value

    def walk(ino: int, prefix: str):
        m = fs._mem.get(ino)
        if m is None:
            return
        for name, child_ino in sorted(m.dentries.items()):
            child = fs._mem.get(child_ino)
            if child is None:
                continue
            path = f"{prefix}/{name}"
            if child.kind is FileKind.DIR:
                out[path] = ("dir", 0, None)
                walk(child_ino, path)
            else:
                out[path] = ("file", child.size, digest(child_ino, child))

    walk(0, "")
    return out


def _settle(fs, result):
    """Wait out an async op and run its deferred commit syscall, if any
    (the Naive ablation commits metadata in a second syscall)."""
    if result.is_async:
        yield result.pending
    continuation = getattr(result, "continuation", None)
    if continuation is not None:
        ctx = fs.context(record=False)
        yield from continuation(ctx)


def _payload(tag: int, nbytes: int) -> bytes:
    """Deterministic, tag-distinguishable file content."""
    unit = (f"{tag:08x}".encode() * ((nbytes // 8) + 1))[:nbytes]
    return unit


# ----------------------------------------------------------------------
# The four Table-2 workloads
# ----------------------------------------------------------------------
def _wl_create_delete(fs, iterations: int):
    """create, write, remove on regular files."""
    for i in range(iterations):
        ctx = fs.context(record=False)
        ino = yield from fs.create(ctx, f"/cd{i}")
        yield ("op",)
        result = yield from fs.write(fs.context(record=False), ino, 0,
                                     12288, _payload(i, 12288))
        yield from _settle(fs, result)
        yield ("op",)
        if i >= 2:
            yield from fs.unlink(fs.context(record=False), f"/cd{i - 2}")
            yield ("op",)


def _wl_generic_056(fs, iterations: int):
    """create, write, link on regular files."""
    for i in range(iterations):
        ino = yield from fs.create(fs.context(record=False), f"/a{i}")
        yield ("op",)
        result = yield from fs.write(fs.context(record=False), ino, 0,
                                     8192, _payload(i, 8192))
        yield from _settle(fs, result)
        yield ("op",)
        yield from fs.link(fs.context(record=False), f"/a{i}", f"/b{i}")
        yield ("op",)


def _wl_generic_090(fs, iterations: int):
    """write, append, link on regular files."""
    ino = yield from fs.create(fs.context(record=False), "/g090")
    yield ("op",)
    for i in range(iterations):
        result = yield from fs.write(fs.context(record=False), ino,
                                     0, 8192, _payload(i, 8192))
        yield from _settle(fs, result)
        yield ("op",)
        result = yield from fs.append(fs.context(record=False), ino,
                                      4096, _payload(i ^ 0xFF, 4096))
        yield from _settle(fs, result)
        yield ("op",)
        if i % 4 == 0:
            yield from fs.link(fs.context(record=False), "/g090", f"/l{i}")
            yield ("op",)


def _wl_generic_322(fs, iterations: int):
    """create, write, rename on regular files."""
    for i in range(iterations):
        ino = yield from fs.create(fs.context(record=False), f"/t{i}")
        yield ("op",)
        result = yield from fs.write(fs.context(record=False), ino, 0,
                                     16384, _payload(i, 16384))
        yield from _settle(fs, result)
        yield ("op",)
        yield from fs.rename(fs.context(record=False), f"/t{i}", f"/r{i}")
        yield ("op",)


#: Table 2's workloads: name -> (description, driver, iterations).
CRASH_WORKLOADS: Dict[str, Tuple[str, Callable, int]] = {
    "create_delete": ("create, write, remove on regular files",
                      _wl_create_delete, 90),
    "generic_056": ("create, write, link on regular files",
                    _wl_generic_056, 90),
    "generic_090": ("write, append, link on regular files",
                    _wl_generic_090, 100),
    "generic_322": ("create, write, rename on regular files",
                    _wl_generic_322, 80),
}


class CrashFailure(NamedTuple):
    """One failed crash point: which check tripped, and where.

    Tuple-compatible with the old ``(point, message)`` failures;
    ``check`` names the violated oracle (``ordering`` / ``content`` /
    ``atomicity`` for state legality, ``torn-entry`` / ``torn-journal``
    / ``sn-pages`` / ``no-resurrect`` for the mechanism oracles) and
    ``plan`` the crash-plan class in line-granularity mode, so a
    failure can be replayed from the report alone.
    """

    point: int
    check: str
    detail: str
    plan: Optional[str] = None


@dataclass
class CrashReport:
    """Outcome of one workload's crash sweep."""

    workload: str
    kind: str
    total_crash_points: int
    passed: int
    failures: List[CrashFailure] = field(default_factory=list)
    #: ``"page"`` (mutation-prefix sweep) or ``"line"`` (crash plans).
    granularity: str = "page"
    #: Line mode: the raw 2^lines crash states the plan set stands in
    #: for (how much the mechanism pruning collapsed).
    raw_states: int = 0
    #: Line mode: replayed plans per plan class.
    plan_classes: Dict[str, int] = field(default_factory=dict)

    @property
    def all_passed(self) -> bool:
        return self.passed == self.total_crash_points


def _classify_state_failure(snap: Snapshot,
                            oracle: Sequence[Tuple[int, int, Snapshot]],
                            lo: int, hi: int):
    """Name the way a recovered state is illegal.

    * ``ordering``  -- it *is* a post-op state, just not one in the
      legal [lo, hi] window (an acked op vanished, or a later op became
      durable before an earlier one);
    * ``content``   -- names and sizes match a legal state but file
      contents differ (the dangerous window: metadata without data);
    * ``atomicity`` -- it matches no post-op state at all (a partially
      applied operation leaked through recovery).
    """
    for j in range(len(oracle) + 1):
        cand = {} if j == 0 else oracle[j - 1][2]
        if snap == cand:
            return ("ordering",
                    f"recovered state equals the post-op-{j} state, "
                    f"outside the legal window [{lo}, {hi}]")
    for i in range(lo, hi + 1):
        cand = {} if i == 0 else oracle[i - 1][2]
        if set(cand) == set(snap) \
                and all(cand[p][:2] == snap[p][:2] for p in cand):
            return ("content",
                    f"names/sizes match the post-op-{i} state but file "
                    f"contents differ")
    return ("atomicity",
            f"recovered state matches no oracle state in [{lo}, {hi}] "
            f"(partially applied operation)")


def _check_state(snap: Snapshot,
                 oracle: Sequence[Tuple[int, int, Snapshot]],
                 lo: int, hi: int):
    """None if ``snap`` is a legal post-crash state, else a classified
    ``(check, detail)`` pair."""
    for i in range(lo, hi + 1):
        cand = {} if i == 0 else oracle[i - 1][2]
        if snap == cand:
            return None
    return _classify_state_failure(snap, oracle, lo, hi)


def _mechanism_checks(fs2, img, validator):
    """The mechanism oracles: recovery must have *reacted* to each
    mechanism's torn/reordered shapes, not merely produced some legal
    namespace.  Returns None, or a ``(check, detail)`` failure.

    * ``torn-journal``  -- a torn (checksum-invalid) journal record
      must be retired during recovery, never left in place;
    * ``sn-pages``      -- a surviving page mapping must point at a
      page the image actually holds (an SN slot persisting before its
      pages landed must have invalidated the entry);
    * ``no-resurrect``  -- a surviving mapping's SNs must satisfy the
      completion-buffer rule: an amended SN set can never make data
      valid that the buffers do not cover.
    """
    for txn in img.journal:
        if isinstance(txn, TornRecord):
            return ("torn-journal",
                    f"recovery left a torn {txn.of} journal record "
                    f"({txn.lines}/{txn.total} lines) unretired")
    for ino, m in fs2._mem.items():
        for off, pm in m.index.items():
            if pm.page_id not in img.pages:
                return ("sn-pages",
                        f"inode {ino} pgoff {off}: surviving mapping "
                        f"references page {pm.page_id} absent from the "
                        f"image (metadata persisted before data)")
            if pm.sns and validator is not None and not validator(pm.sns):
                return ("no-resurrect",
                        f"inode {ino} pgoff {off}: surviving mapping's "
                        f"SNs {pm.sns} fail the completion-buffer rule")
    return None


def _record_workload(kind: str, driver: Callable, iterations: int,
                     fault_plan: Optional[Callable] = None,
                     trace_oracles: bool = False, *,
                     lines: bool = False, mutant: Optional[str] = None):
    """Run the workload once, recording mutations and the op oracle.

    ``fault_plan`` is a zero-argument factory returning a fresh
    :class:`~repro.faults.FaultPlan`; when given, the plan is installed
    on the recording platform so crash points land inside the
    retry/failover/degradation windows too.

    With ``trace_oracles`` the recording run is traced (repro.obs) and
    the stream is replayed through the full invariant-oracle set; any
    violation raises before a single crash point is examined -- so
    crash legality is checked against the *execution*, not only the
    recovered image.

    ``lines`` additionally records the cache-line persistence journal
    (``image.linestream``), with per-op stream bounds on
    ``stream.op_bounds``.  ``mutant`` plants a known persistence bug
    (see :data:`repro.core.easyio.CRASH_MUTANTS`) -- mutants require
    line recording, so callers enable it for page sweeps on mutants
    too (the sweep itself still only reads the mutation journal).
    """
    tracers: list = []
    scope = default_tracing(collect=tracers) if trace_oracles \
        else nullcontext()
    stream = None
    with scope:
        platform = Platform(PlatformConfig.single_node())
        if lines:
            image = PMImage(record=True)
            stream = image.enable_line_recording()
            stream.tracer = platform.engine.tracer
            fs = make_fs(kind, platform, image=image)
        else:
            fs = make_fs(kind, platform, record=True)
    image = fs.image
    media_faulty = False
    if fault_plan is not None:
        plan = fault_plan()
        if lines and plan.has_media_faults:
            raise ValueError(
                "line-granularity recording cannot model media faults "
                "(DMA payloads are journalled at submission); use the "
                "page-granularity sweep for media-fault plans")
        media_faulty = plan.has_media_faults
        plan.install(platform, image=image)
    if mutant is not None:
        from repro.core.easyio import install_crash_mutant
        install_crash_mutant(fs, mutant)
    # Per-op snapshots of a live, growing tree re-hash mostly unchanged
    # files; the epoch-keyed digest cache collapses those re-hashes.
    # Media faults rewrite page bytes behind the mapping's back, so
    # such plans fall back to per-snapshot caching (see
    # snapshot_with_content's soundness contract).
    digest_cache: Optional[dict] = None if media_faulty else {}
    # oracle[i] = (start_idx, end_idx, snapshot after op i)
    oracle: List[Tuple[int, int, Snapshot]] = []

    def runner():
        start = len(image.mutations)
        sstart = stream.position() if stream is not None else 0
        gen = driver(fs, iterations)
        while True:
            try:
                marker = yield from _drive_until_marker(gen)
            except StopIteration:
                break
            if marker is None:
                break
            end = len(image.mutations)
            oracle.append((start, end,
                           snapshot_with_content(fs, digest_cache)))
            start = end
            if stream is not None:
                send = stream.position()
                stream.op_bounds.append((sstart, send))
                sstart = send

    def _drive_until_marker(gen):
        """Advance the workload generator to its next ("op",) marker."""
        while True:
            try:
                item = next(gen)
            except StopIteration:
                return None
            if isinstance(item, tuple) and item and item[0] == "op":
                return item
            # Any other yield is a simulation event: wait for it.
            yield item

    proc = platform.engine.process(runner())
    platform.engine.run()
    if proc.is_alive:
        raise RuntimeError(f"crash workload stalled (deadlock?) on {kind}")
    if not proc.ok:
        raise proc.value
    if trace_oracles:
        checker = TraceChecker()
        problems = [v for tr in tracers for v in checker.check(tr.events)]
        if problems:
            raise AssertionError(
                f"{kind}/{len(problems)} trace-invariant violation(s) "
                "during crash-test recording:\n"
                + "\n".join(f"  {v}" for v in problems))
    return image, oracle


def run_crash_test(kind: str, workload: str, crash_points: int = 1000,
                   fault_plan: Optional[Callable] = None,
                   trace_oracles: bool = False,
                   granularity: str = "page",
                   per_signature: Optional[int] = 3,
                   plan_budget: Optional[int] = None,
                   plan_seed: int = 0,
                   mutant: Optional[str] = None) -> CrashReport:
    """Inject crashes into one workload and check every recovery
    (the Table 2 experiment).

    ``granularity="page"`` is the classic CrashMonkey sweep: ``crash_
    points`` positions spread over the mutation journal, each replayed
    as a whole-mutation prefix.  ``granularity="line"`` replays the
    :class:`~repro.crash.plans.CrashPlanner`'s mechanism-pruned crash
    plans instead -- cache-line subsets of the in-flight stores at
    every fence epoch -- and additionally runs the mechanism oracles
    (torn journal records retired, no metadata-before-data mappings,
    no SN-amend resurrection) on every recovered state.

    With a ``fault_plan`` factory the recording run also suffers DMA
    faults, so the sweep covers crash points inside EasyIO's retry and
    failover windows (half-retried writes, amended-but-unlanded SNs);
    recovery must still land in a legal state at every point.
    ``trace_oracles`` additionally replays the recording run's trace
    through the invariant oracles (see :func:`_record_workload`).

    ``mutant`` plants a known persistence bug in the recording run
    (validation that the line sweep catches what the page sweep
    cannot); mutants need line recording even for page-granularity
    sweeps.  ``per_signature``/``plan_budget``/``plan_seed`` tune the
    line planner (see :class:`~repro.crash.plans.CrashPlanner`).
    """
    if granularity not in ("page", "line"):
        raise ValueError(f"unknown granularity {granularity!r}")
    desc, driver, iterations = CRASH_WORKLOADS[workload]
    lines = granularity == "line" or mutant is not None
    image, oracle = _record_workload(kind, driver, iterations, fault_plan,
                                     trace_oracles=trace_oracles,
                                     lines=lines, mutant=mutant)
    validator_needed = kind in ("easyio", "naive")
    if granularity == "line":
        return _line_sweep(kind, workload, image, oracle, validator_needed,
                           per_signature=per_signature, budget=plan_budget,
                           seed=plan_seed)
    total = image.crash_points()
    if total < 2:
        raise RuntimeError(f"workload {workload} produced no mutations")
    # Spread the requested crash points evenly over the mutation log.
    n = min(crash_points, total + 1)
    points = sorted({round(j * total / (n - 1)) for j in range(n)}) \
        if n > 1 else [total]

    report = CrashReport(workload=workload, kind=kind,
                         total_crash_points=len(points), passed=0)
    for k in points:
        img = image.replay(k)
        platform = Platform(PlatformConfig.single_node())
        fs2 = make_fs_on_image(kind, platform, img)
        validator = (completion_buffer_validator(img)
                     if validator_needed else None)
        recover(fs2, validator)
        snap = snapshot_with_content(fs2)
        durable = sum(1 for (_s, e, _sn) in oracle if e <= k)
        started = sum(1 for (s, _e, _sn) in oracle if s <= k)
        fail = _check_state(snap, oracle, durable, started)
        if fail is None:
            report.passed += 1
        else:
            report.failures.append(CrashFailure(k, fail[0], fail[1]))
    return report


def _line_sweep(kind: str, workload: str, image, oracle, validator_needed,
                per_signature, budget, seed) -> CrashReport:
    """Replay every pruned crash plan and check recovery against the
    state oracle *and* the mechanism oracles."""
    from repro.crash.linestream import replay_plan
    from repro.crash.plans import CrashPlanner

    stream = image.linestream
    planner = CrashPlanner(stream, per_signature=per_signature,
                           budget=budget, seed=seed)
    plans = planner.plans()
    report = CrashReport(workload=workload, kind=kind,
                         total_crash_points=len(plans), passed=0,
                         granularity="line",
                         raw_states=planner.raw_states,
                         plan_classes=dict(planner.plan_classes))
    for plan in plans:
        img = replay_plan(stream, plan)
        platform = Platform(PlatformConfig.single_node())
        fs2 = make_fs_on_image(kind, platform, img)
        validator = (completion_buffer_validator(img)
                     if validator_needed else None)
        try:
            recover(fs2, validator)
        except TornLogEntryError as exc:
            report.failures.append(
                CrashFailure(plan.point, "torn-entry", str(exc), plan.cls))
            continue
        fail = _mechanism_checks(fs2, img, validator)
        if fail is None:
            snap = snapshot_with_content(fs2)
            fail = _check_state(snap, oracle, plan.lo, plan.hi)
        if fail is None:
            report.passed += 1
        else:
            report.failures.append(
                CrashFailure(plan.point, fail[0], fail[1], plan.cls))
    return report


def make_fs_on_image(kind: str, platform: Platform, image):
    """Construct (without mounting) the named filesystem over ``image``."""
    from repro.workloads.factory import fs_class

    return fs_class(kind)(platform, image)
