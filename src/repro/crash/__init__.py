"""Crash-consistency testing (CrashMonkey-style, §6.5 / Table 2),
extended with a cache-line-granularity crash model and mechanism-aware
crash-state pruning (Silhouette-style)."""

from repro.crash.crashmonkey import (
    CRASH_WORKLOADS,
    CrashFailure,
    CrashReport,
    run_crash_test,
)
from repro.crash.linestream import LineStream, replay_full, replay_plan
from repro.crash.plans import CrashPlan, CrashPlanner

__all__ = [
    "CRASH_WORKLOADS",
    "CrashFailure",
    "CrashPlan",
    "CrashPlanner",
    "CrashReport",
    "LineStream",
    "replay_full",
    "replay_plan",
    "run_crash_test",
]
