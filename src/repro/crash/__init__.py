"""Crash-consistency testing (CrashMonkey-style, §6.5 / Table 2)."""

from repro.crash.crashmonkey import (
    CRASH_WORKLOADS,
    CrashReport,
    run_crash_test,
)

__all__ = ["CRASH_WORKLOADS", "CrashReport", "run_crash_test"]
