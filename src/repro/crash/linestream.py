"""Cache-line-granularity persistence model (Silhouette-style).

The mutation journal in :class:`~repro.fs.pmimage.PMImage` records
*what* became durable, in program order -- that is CrashMonkey's model,
and it cannot represent the states a real power failure can produce:
stores sitting in CPU caches (or DMA transfers still in flight) may
land in *any subset*, constrained only by the flush/fence points the
code actually executed.  This module records exactly that missing
information.

A line-recording image journals, alongside every mutation, a stream of

* :class:`LineStore` records -- one logical durable store, decomposed
  into 64-byte cache lines (``nlines``), tagged with the *mechanism*
  that issued it (log append, tail commit, journal record, SN slot,
  page data, ...), and
* :class:`FenceRec` records -- the explicit ordering points: a global
  ``sfence`` after a ``clwb`` train (scope ``None``), or a DMA
  completion fence that covers one channel's descriptors up to an SN
  (scope ``(channel_id, sn)``).

Durability semantics (the in-flight-store analysis consumed by
:class:`~repro.crash.plans.CrashPlanner`):

* a CPU store (``dep is None``) is guaranteed durable once a later
  *global* fence was issued; until then it is **in flight** and a crash
  may drop any subset of its cache lines;
* a DMA page store (``dep = (channel, sn)``) is announced when the
  descriptor is submitted and is guaranteed durable only once a
  completion fence for that channel covers its SN -- a global sfence
  does *not* flush a DMA engine's in-flight data.  Announced stores of
  descriptors that failed or were stranded are *cancelled*: their data
  never moved, at any crash point;
* completion-buffer stores are issued by the DMA engine inside the
  ADR/eADR power-fail domain: durable the instant they are issued
  (``immediate``), never part of a crash plan -- this is the hardware
  property EasyIO's recovery rule (§4.2) relies on;
* allocation counters are volatile-in-NOVA bookkeeping journalled only
  so replayed images can keep allocating; they are applied at every
  crash point (``bookkeeping``).

Replaying a :class:`~repro.crash.plans.CrashPlan` (a point in the
stream plus a chosen subset of the in-flight stores, some of them
partially applied) produces a fresh :class:`PMImage` -- the post-crash
state handed to recovery.  Partially applied multi-line log/journal
records become :class:`~repro.fs.structures.TornEntry` /
:class:`~repro.fs.structures.TornRecord` sentinels.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from repro import vector
from repro.fs.pmimage import PMImage
from repro.fs.structures import TornEntry, TornRecord

#: Persist granularity: one CPU cache line.
CACHE_LINE = 64

# -- the mechanism catalog ---------------------------------------------
#: mechanism -> behaviour class.
#:
#: * ``atomic``      -- an 8-byte-atomic slot: all-or-nothing;
#: * ``record``      -- a multi-line metadata record (log/journal
#:                      entry): droppable or *torn* (a line prefix);
#: * ``data``        -- bulk page data: any subset of lines may land;
#: * ``immediate``   -- durable at issue (ADR domain): never in flight;
#: * ``bookkeeping`` -- modeling-only counters: applied at every point.
#:
#: To add a mechanism: emit its stores through a LineStream helper with
#: a new name, register the class here, give it an apply rule in
#: ``_apply_store``/``_apply_partial``, and (if recovery must react to
#: its torn/dropped shapes) extend the mechanism checks in
#: ``crashmonkey._mechanism_checks``.  DESIGN.md §13 walks through it.
MECHANISMS: Dict[str, str] = {
    "page-data": "data",
    "log-append": "record",
    "log-commit": "atomic",
    "inode": "atomic",
    "inode-drop": "atomic",
    "journal-entry": "record",
    "journal-retire": "atomic",
    "completion-buffer": "immediate",
    "error-log": "atomic",
    "SN-slot": "atomic",
    "alloc-ino": "bookkeeping",
    "alloc-page": "bookkeeping",
}


class LineStore:
    """One logical durable store, decomposed into 64B cache lines.

    ``seq`` is the record's index in the stream; ``obj`` the applied
    object's key (e.g. ``("page", pid)``); ``payload`` whatever the
    apply rule needs; ``dep`` the ``(channel, sn)`` a DMA-written store
    waits on (None for CPU stores).
    """

    __slots__ = ("seq", "mech", "klass", "obj", "nlines", "payload", "dep")

    def __init__(self, seq: int, mech: str, obj: Tuple, payload: Any,
                 nlines: int = 1, dep: Optional[Tuple[int, int]] = None):
        self.seq = seq
        self.mech = mech
        self.klass = MECHANISMS[mech]
        self.obj = obj
        self.nlines = nlines
        self.payload = payload
        self.dep = dep

    @property
    def immediate(self) -> bool:
        """Durable the instant it is issued (never part of a plan)."""
        return self.klass in ("immediate", "bookkeeping")

    def line_slices(self) -> List[Tuple[int, bytes]]:
        """The store's exact 64B tiling: ``[(line_idx, bytes), ...]``.

        Only meaningful for ``data`` stores (their payload is the raw
        byte content); the slices partition the payload, every slice
        except possibly the last is exactly :data:`CACHE_LINE` bytes.
        """
        data = self.payload
        return [(i, data[i * CACHE_LINE:(i + 1) * CACHE_LINE])
                for i in range(self.nlines)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        dep = f" dep={self.dep}" if self.dep else ""
        return (f"<store#{self.seq} {self.mech} {self.obj} "
                f"x{self.nlines}{dep}>")


class FenceRec:
    """An ordering point: global sfence, or a DMA completion fence.

    ``scope=None`` orders every CPU store issued so far (clwb+sfence);
    ``scope=(channel, sn)`` marks that the channel's descriptors up to
    ``sn`` have fully landed (the hardware's completion ordering: data
    is in the PM power-fail domain before the completion is raised).
    """

    __slots__ = ("seq", "label", "scope")

    def __init__(self, seq: int, label: str,
                 scope: Optional[Tuple[int, int]] = None):
        self.seq = seq
        self.label = label
        self.scope = scope

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        scope = f" {self.scope}" if self.scope else ""
        return f"<fence#{self.seq} {self.label}{scope}>"


def _entry_lines(entry: Any) -> int:
    """Cache lines a log/journal record spans.

    NOVA entries are one or two cache lines: the fixed fields fit in
    one, variable parts (a dentry's name bytes, a write entry's page-id
    array) spill into a second.  What matters for the crash model is
    only whether the record *can* tear (nlines > 1).
    """
    page_ids = getattr(entry, "page_ids", None)
    if page_ids is not None:
        return 1 + max(1, (len(page_ids) * 8 + CACHE_LINE - 1) // CACHE_LINE)
    name = getattr(entry, "name", None)
    if name is not None:
        return 1 + max(1, (len(name) + CACHE_LINE - 1) // CACHE_LINE)
    return 1


class LineStream:
    """The cache-line persistence journal of one recording image.

    Emission helpers are called from the image's mutation methods (and
    from the DMA backend at descriptor submission); each encodes the
    store+fence policy of its mechanism, so the stream is a faithful
    flush/fence trace of the protocol the filesystem actually ran.
    """

    def __init__(self):
        self.records: List[Any] = []              # LineStore | FenceRec
        #: Columnar durability index (vector mode), rebuilt lazily when
        #: the stream has grown since it was last derived.
        self._vec_index: Optional["_StreamIndex"] = None
        #: Per-op [start, end) stream positions, appended by the crash
        #: harness runner (ack boundaries for the legality range).
        self.op_bounds: List[Tuple[int, int]] = []
        #: Seqs of announced DMA stores whose descriptor failed or was
        #: stranded: their data never moved, at any crash point.
        self.cancelled: Set[int] = set()
        #: Test-only mutant knob: fence labels to silently drop (see
        #: repro.core.easyio.install_crash_mutant).
        self.skipped_fences: Set[str] = set()
        self.fences_skipped = 0
        #: Optional tracer: every fence also emits a ``line_fence``
        #: trace point, so the stream can be cross-checked against the
        #: write_commit/pages_persist events of the same run.
        self.tracer = None
        self._announced: Dict[int, int] = {}      # pid -> announced seq
        self._by_dep: Dict[Tuple[int, int], List[int]] = {}
        self._cpu_pages_dirty = False

    def position(self) -> int:
        """Current stream position (= seq of the next record)."""
        return len(self.records)

    # -- raw emission --------------------------------------------------
    def store(self, mech: str, obj: Tuple, payload: Any, nlines: int = 1,
              dep: Optional[Tuple[int, int]] = None) -> LineStore:
        rec = LineStore(len(self.records), mech, obj, payload,
                        nlines=nlines, dep=dep)
        self.records.append(rec)
        return rec

    def fence(self, label: str,
              scope: Optional[Tuple[int, int]] = None) -> Optional[FenceRec]:
        if label in self.skipped_fences:
            self.fences_skipped += 1
            return None
        rec = FenceRec(len(self.records), label, scope)
        self.records.append(rec)
        if self.tracer is not None:
            self.tracer.point("line_fence", track="pm", label=label)
        return rec

    # -- mechanism helpers (called by PMImage / the DMA backend) -------
    def announce_dma_pages(self, channel_id: int, sn: int,
                           pids: Iterable[int],
                           contents: Iterable[bytes]) -> None:
        """A submitted write descriptor's pages: in flight from now,
        durable only once a completion fence covers ``sn``."""
        for pid, content in zip(pids, contents):
            rec = self.store("page-data", ("page", pid), content,
                             nlines=_page_lines(content),
                             dep=(channel_id, sn))
            self._announced[pid] = rec.seq
            self._by_dep.setdefault((channel_id, sn), []).append(rec.seq)

    def cancel_sns(self, channel_id: int, sns: Iterable[int]) -> None:
        """Failed/stranded descriptors: their announced data never
        moved -- at any crash point, not just from the failure on
        (a failed transfer lands nothing)."""
        for sn in sns:
            for seq in self._by_dep.pop((channel_id, sn), ()):
                self.cancelled.add(seq)

    def page_write(self, pid: int, data: Any) -> None:
        """A page landed via :meth:`PMImage.write_page`.

        DMA completions re-land pages that were already announced at
        submission: those are deduplicated against the announced store
        (same pid, same content, not cancelled).  Everything else is a
        CPU store train (memcpy path, degradation, media rewrite),
        fenced by the persister's :meth:`pages_fence`.
        """
        seq = self._announced.get(pid)
        if seq is not None:
            rec = self.records[seq]
            if rec.payload == data and seq not in self.cancelled:
                del self._announced[pid]
                return
            del self._announced[pid]
        self.store("page-data", ("page", pid), data,
                   nlines=_page_lines(data))
        self._cpu_pages_dirty = True

    def pages_fence(self) -> None:
        """clwb+sfence after a CPU page-store train (no-op if the
        persist batch landed purely via deduplicated DMA stores)."""
        if self._cpu_pages_dirty:
            self._cpu_pages_dirty = False
            self.fence("pages")

    def log_append(self, ino: int, entry: Any) -> None:
        self.store("log-append", ("log", ino), (ino, entry),
                   nlines=_entry_lines(entry))
        self.fence(f"append:{type(entry).__name__}")

    def log_commit(self, ino: int, tail: int) -> None:
        self.store("log-commit", ("tail", ino), (ino, tail))
        self.fence("commit")

    def inode_put(self, ino: int, inode: Any) -> None:
        self.store("inode", ("inode", ino), (ino, inode))
        self.fence("inode")

    def inode_drop(self, ino: int) -> None:
        self.store("inode-drop", ("inode", ino), ino)
        self.fence("inode")

    def journal_begin(self, txn: Any) -> None:
        self.store("journal-entry", ("journal",), txn, nlines=2)
        self.fence("journal")

    def journal_retire(self) -> None:
        self.store("journal-retire", ("journal",), None)
        self.fence("journal-retire")

    def completion_update(self, channel_id: int, sn: int) -> None:
        # The completion fence *precedes* the buffer store: by the time
        # the completion value is observable, the covered data is in
        # the power-fail domain.  The store itself is in the ADR domain
        # (immediate): EasyIO's recovery rule is sound only because a
        # persisted completion value can never run ahead of its data.
        self.fence(f"dma-ch{channel_id}", scope=(channel_id, sn))
        self.store("completion-buffer", ("cbuf", channel_id),
                   (channel_id, sn))

    def error_log(self, channel_id: int, sns: Tuple[int, ...]) -> None:
        self.cancel_sns(channel_id, sns)
        self.store("error-log", ("errlog", channel_id), (channel_id, sns))
        self.fence("error")

    def sn_amend(self, ino: int, index: int,
                 sns: Tuple[Tuple[int, int], ...]) -> None:
        self.store("SN-slot", ("amend", ino, index), (ino, index, sns))
        self.fence("amend")

    def alloc_ino(self, ino: int) -> None:
        self.store("alloc-ino", ("alloc-ino",), ino)

    def alloc_pages(self, next_page: int) -> None:
        self.store("alloc-page", ("alloc-page",), next_page)


def _page_lines(data: Any) -> int:
    return max(1, (len(data) + CACHE_LINE - 1) // CACHE_LINE)


# ----------------------------------------------------------------------
# Durability analysis
# ----------------------------------------------------------------------
class _StreamIndex:
    """Columnar durability view of one stream prefix (vector mode).

    ``covered_at[i]`` is the seq of the *first* fence that guarantees
    store ``i`` durable (its own seq for immediate/bookkeeping stores,
    ``n`` if no fence in the stream ever covers it); fences and other
    non-store positions keep the ``n`` sentinel with ``store_mask``
    False.  Cancellation is *not* baked in -- whether a store is
    covered by a fence is independent of which other stores were
    cancelled, so the cancelled mask is applied at query time and the
    index stays valid as ``cancel_sns`` arrives.  Built in one O(n)
    pass; every ``base_durable``/``replay_plan`` query after that is a
    slice-and-compare over the columns.
    """

    __slots__ = ("n", "store_mask", "covered_at", "page_pid")

    def __init__(self, records: List[Any]):
        np = vector.numpy()
        n = len(records)
        self.n = n
        self.store_mask = np.zeros(n, dtype=bool)
        self.covered_at = np.full(n, n, dtype=np.int64)
        #: Page id for full page-data stores (-1 elsewhere), for the
        #: last-writer-wins replay dedup.
        self.page_pid = np.full(n, -1, dtype=np.int64)
        pending_cpu: List[int] = []
        pending_dma: Dict[int, List[Tuple[int, int]]] = {}
        for i, rec in enumerate(records):
            if isinstance(rec, LineStore):
                self.store_mask[i] = True
                if rec.mech == "page-data":
                    self.page_pid[i] = rec.obj[1]
                if rec.immediate:
                    self.covered_at[i] = i
                elif rec.dep is None:
                    pending_cpu.append(i)
                else:
                    ch, sn = rec.dep
                    pending_dma.setdefault(ch, []).append((sn, i))
            elif rec.scope is None:
                for seq in pending_cpu:
                    self.covered_at[seq] = i
                pending_cpu.clear()
            else:
                ch, covered = rec.scope
                keep = []
                for sn, seq in pending_dma.get(ch, ()):
                    if sn <= covered:
                        self.covered_at[seq] = i
                    else:
                        keep.append((sn, seq))
                if ch in pending_dma:
                    pending_dma[ch] = keep


def _stream_index(stream: LineStream) -> _StreamIndex:
    idx = stream._vec_index
    if idx is None or idx.n != len(stream.records):
        idx = _StreamIndex(stream.records)
        stream._vec_index = idx
    return idx


def _durable_mask(stream: LineStream, point: int):
    """Bool column over ``records[:point]``: guaranteed-durable stores."""
    np = vector.numpy()
    idx = _stream_index(stream)
    mask = idx.store_mask[:point] & (idx.covered_at[:point] < point)
    if stream.cancelled:
        dead = [s for s in stream.cancelled if s < point]
        if dead:
            mask[np.asarray(dead, dtype=np.int64)] = False
    return mask


def _base_durable_ref(stream: LineStream, point: int) -> Set[int]:
    durable: Set[int] = set()
    pending_cpu: List[int] = []
    pending_dma: Dict[int, List[Tuple[int, int]]] = {}
    cancelled = stream.cancelled
    for rec in stream.records[:point]:
        if isinstance(rec, LineStore):
            if rec.seq in cancelled:
                continue
            if rec.immediate:
                durable.add(rec.seq)
            elif rec.dep is None:
                pending_cpu.append(rec.seq)
            else:
                ch, sn = rec.dep
                pending_dma.setdefault(ch, []).append((sn, rec.seq))
        else:
            if rec.scope is None:
                durable.update(pending_cpu)
                pending_cpu.clear()
            else:
                ch, covered = rec.scope
                keep = []
                for sn, seq in pending_dma.get(ch, ()):
                    if sn <= covered:
                        durable.add(seq)
                    else:
                        keep.append((sn, seq))
                if keep or ch in pending_dma:
                    pending_dma[ch] = keep
    return durable


def _base_durable_np(stream: LineStream, point: int) -> Set[int]:
    np = vector.numpy()
    return set(np.nonzero(_durable_mask(stream, point))[0].tolist())


def base_durable(stream: LineStream, point: int) -> Set[int]:
    """Seqs of stores *guaranteed* durable at stream position ``point``.

    CPU stores need a later global fence; DMA stores need a completion
    fence covering their SN; immediate/bookkeeping stores are durable
    at issue; cancelled stores are never durable.
    """
    return _base_durable_kernel(stream, point)


def _in_flight_ref(stream: LineStream, point: int) -> List[LineStore]:
    durable = _base_durable_ref(stream, point)
    cancelled = stream.cancelled
    return [rec for rec in stream.records[:point]
            if isinstance(rec, LineStore)
            and rec.seq not in durable and rec.seq not in cancelled
            and not rec.immediate]


def _in_flight_np(stream: LineStream, point: int) -> List[LineStore]:
    # Immediate stores carry covered_at == own seq (< point), so the
    # not-yet-covered test excludes them along with the durable ones.
    np = vector.numpy()
    idx = _stream_index(stream)
    mask = idx.store_mask[:point] & (idx.covered_at[:point] >= point)
    if stream.cancelled:
        dead = [s for s in stream.cancelled if s < point]
        if dead:
            mask[np.asarray(dead, dtype=np.int64)] = False
    records = stream.records
    return [records[i] for i in np.nonzero(mask)[0].tolist()]


def in_flight(stream: LineStream, point: int) -> List[LineStore]:
    """The stores a crash at ``point`` may drop (or partially apply),
    in issue order."""
    return _in_flight_kernel(stream, point)


# ----------------------------------------------------------------------
# Plan replay: stream -> post-crash PMImage
# ----------------------------------------------------------------------
def _replay_plan_ref(stream: LineStream, plan) -> PMImage:
    img = PMImage(record=False)
    apply_full = _base_durable_ref(stream, plan.point) | set(plan.applied)
    partials = dict(plan.partials)
    for rec in stream.records[:plan.point]:
        if not isinstance(rec, LineStore):
            continue
        lines = partials.get(rec.seq)
        if lines is not None:
            _apply_partial(img, rec, lines)
        elif rec.seq in apply_full:
            _apply_store(img, rec)
    return img


def _replay_plan_np(stream: LineStream, plan) -> PMImage:
    """Columnar replay: identical image, touching only relevant records.

    The visit set (durable ∪ plan.applied ∪ partial seqs) comes from
    array compares over the cached index instead of re-walking fences
    per plan; full page-data applies are deduplicated last-writer-wins
    per page (a full apply is a plain assignment, so only the final one
    is observable) -- except for pages also targeted by a partial,
    whose merge-over-current-content semantics depend on every earlier
    apply.  Records are applied in ascending seq order, so every
    mechanism's effect sequence matches the reference walk exactly.
    """
    np = vector.numpy()
    img = PMImage(record=False)
    point = plan.point
    idx = _stream_index(stream)
    visit = _durable_mask(stream, point)
    if plan.applied:
        chosen = np.fromiter(plan.applied, dtype=np.int64,
                             count=len(plan.applied))
        visit[chosen[chosen < point]] = True
    partials = dict(plan.partials)
    if partials:
        torn = np.fromiter(partials.keys(), dtype=np.int64,
                           count=len(partials))
        visit[torn[torn < point]] = True
    order = np.nonzero(visit)[0]
    records = stream.records
    skip: Set[int] = set()
    page_pos = order[idx.page_pid[order] >= 0]
    if len(page_pos) > 1:
        partial_pids = {int(idx.page_pid[s]) for s in partials
                        if 0 <= s < point and idx.page_pid[s] >= 0}
        last_full: Dict[int, int] = {}
        for i, pid in zip(page_pos.tolist(),
                          idx.page_pid[page_pos].tolist()):
            if i in partials or pid in partial_pids:
                continue
            prev = last_full.get(pid)
            if prev is not None:
                skip.add(prev)
            last_full[pid] = i
    for i in order.tolist():
        if i in skip:
            continue
        rec = records[i]
        lines = partials.get(i)
        if lines is not None:
            _apply_partial(img, rec, lines)
        else:
            _apply_store(img, rec)
    return img


def replay_plan(stream: LineStream, plan) -> PMImage:
    """Materialise one crash plan into a fresh (non-recording) image.

    Applies, in stream order: every store guaranteed durable at the
    plan's point, plus the plan's chosen in-flight subset (fully or as
    a partial line set).
    """
    return _replay_plan_kernel(stream, plan)


#: Kernels bound by :func:`_rebind_kernels`.
_base_durable_kernel = _base_durable_ref
_in_flight_kernel = _in_flight_ref
_replay_plan_kernel = _replay_plan_ref


@vector.register
def _rebind_kernels(enabled: bool) -> None:
    global _base_durable_kernel, _in_flight_kernel, _replay_plan_kernel
    _base_durable_kernel = _base_durable_np if enabled else _base_durable_ref
    _in_flight_kernel = _in_flight_np if enabled else _in_flight_ref
    _replay_plan_kernel = _replay_plan_np if enabled else _replay_plan_ref


def replay_full(stream: LineStream) -> PMImage:
    """End-of-stream, everything-landed replay (the no-crash image).

    Must equal ``image.replay(len(image.mutations))`` -- the
    equivalence invariant tying the line model to the mutation journal
    (tests/test_linestream.py pins it).
    """
    from types import SimpleNamespace
    end = stream.position()
    return replay_plan(stream, SimpleNamespace(
        point=end,
        applied=frozenset(s.seq for s in in_flight(stream, end)),
        partials={}))


def _apply_store(img: PMImage, rec: LineStore) -> None:
    mech, payload = rec.mech, rec.payload
    if mech == "page-data":
        img.pages[rec.obj[1]] = payload
    elif mech == "log-append":
        ino, entry = payload
        img.logs.setdefault(ino, []).append(entry)
    elif mech == "log-commit":
        ino, tail = payload
        img.log_tails[ino] = tail
    elif mech == "inode":
        ino, inode = payload
        img.inodes[ino] = inode
    elif mech == "inode-drop":
        img.inodes.pop(payload, None)
        img.logs.pop(payload, None)
        img.log_tails.pop(payload, None)
    elif mech == "journal-entry":
        img.journal.append(payload)
    elif mech == "journal-retire":
        if img.journal:
            img.journal.pop()
    elif mech == "completion-buffer":
        ch, sn = payload
        img.completion_buffers[ch] = sn
    elif mech == "error-log":
        ch, sns = payload
        img.channel_error_sns.setdefault(ch, set()).update(sns)
    elif mech == "SN-slot":
        ino, index, sns = payload
        log = img.logs.get(ino, ())
        if index < len(log):
            from dataclasses import replace
            log[index] = replace(log[index], sns=tuple(sns))
    elif mech == "alloc-ino":
        img.next_ino = max(img.next_ino, payload + 1)
    elif mech == "alloc-page":
        img.next_page = max(img.next_page, payload)
    else:  # pragma: no cover - defensive
        raise ValueError(f"unknown mechanism {rec.mech!r}")


def _apply_partial(img: PMImage, rec: LineStore,
                   lines: Tuple[int, ...]) -> None:
    """Apply only ``lines`` of a multi-line store.

    ``data`` stores merge the chosen 64B slices over whatever the page
    currently holds (zeros if nothing); ``record`` stores become torn
    sentinels in place of the real entry.
    """
    if rec.klass == "data":
        pid = rec.obj[1]
        payload = rec.payload
        base = img.pages.get(pid)
        if not isinstance(base, (bytes, bytearray)) \
                or len(base) != len(payload):
            base = b"\x00" * len(payload)
        out = bytearray(base)
        for i in lines:
            out[i * CACHE_LINE:(i + 1) * CACHE_LINE] = \
                payload[i * CACHE_LINE:(i + 1) * CACHE_LINE]
        img.pages[pid] = bytes(out)
    elif rec.mech == "log-append":
        ino, entry = rec.payload
        img.logs.setdefault(ino, []).append(
            TornEntry(of=type(entry).__name__, lines=len(lines),
                      total=rec.nlines))
    elif rec.mech == "journal-entry":
        img.journal.append(
            TornRecord(of=type(rec.payload).__name__, lines=len(lines),
                       total=rec.nlines))
    else:  # pragma: no cover - planner only tears data/record stores
        raise ValueError(f"mechanism {rec.mech!r} cannot tear")
