"""Mechanism-aware crash-plan generation over a line stream.

Brute-force line-granularity crash testing is hopeless: every
in-flight store contributes ``2^lines`` subsets per crash position.
But almost all of those states are equivalent *to recovery*: an
8-byte-atomic tail commit either landed or it didn't; a torn log entry
is torn however many of its middle lines are missing; page data only
matters as "complete", "absent", or "representative partial shapes"
(prefix / suffix / hole).  This is Silhouette's mechanism reasoning:
enumerate one representative per equivalence class instead of every
raw subset.

:class:`CrashPlanner` walks the stream once, and at every *interesting*
position (just before each fence, just before each immediate store,
and end-of-stream) emits :class:`CrashPlan` candidates from the
in-flight set:

* ``intact`` / ``flushed`` -- none / all of the in-flight stores land;
* ``solo:<mech>`` / ``drop:<mech>`` -- exactly one lands / exactly one
  is dropped (the single-store reordering cases);
* ``torn[-solo]:<mech>`` -- a multi-line ``record`` store lands a line
  prefix (with the rest of the in-flight set landed / dropped);
* ``head/prefix/suffix/hole:<mech>`` -- representative partial shapes
  of a multi-line ``data`` store, rest of the in-flight set landed.

Plans are deduplicated by resulting applied-state (two positions whose
durable+chosen sets produce the same image and the same legality range
are one plan), then sampled per *signature* -- the epoch's mechanism
context -- so a long workload's thousands of identical-looking epochs
collapse to a few representatives each.  ``raw_states`` counts the
2^lines subsets the emitted plans stand in for.

All sampling is driven by a seeded ``random.Random``: the same stream
and seed produce the identical plan list (tests pin this).
"""

from __future__ import annotations

import random
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro import vector
from repro.crash.linestream import FenceRec, LineStore, LineStream

_MIX = 0x9E3779B97F4A7C15
_MASK = (1 << 64) - 1

#: Mirrors ``vector.ENABLED``; when set, the planner gathers its dedup
#: mix values from a precomputed uint64 column (wraparound multiply ==
#: ``& _MASK``) instead of hashing seqs one at a time.
_VEC_ON = False


@vector.register
def _rebind_kernels(enabled: bool) -> None:
    global _VEC_ON
    _VEC_ON = enabled


def _mix(seq: int) -> int:
    return ((seq + 1) * _MIX) & _MASK


@dataclass(frozen=True)
class CrashPlan:
    """One representative crash state: a stream position plus the
    chosen subset of in-flight stores.

    ``applied`` are fully landed in-flight seqs; ``partials`` maps a
    seq to the line indices that landed.  ``lo``/``hi`` bound the legal
    oracle states at this point (ops acked / ops started).
    """

    point: int
    cls: str
    applied: frozenset
    partials: Tuple[Tuple[int, Tuple[int, ...]], ...]
    lo: int
    hi: int
    signature: str = field(compare=False, default="")


class CrashPlanner:
    """Enumerate representative crash plans for one recorded stream.

    Parameters
    ----------
    stream:
        The recording image's :class:`LineStream`.
    op_bounds:
        Per-op ``[start, end)`` stream positions (defaults to
        ``stream.op_bounds``); ``lo`` at a point counts ops whose end
        (the ack boundary) lies at or before it, ``hi`` ops that
        started.  An op acked by the crash point must survive recovery
        under *every* plan -- that is the paper's ack-implies-durable
        contract, and it is strictly stronger than the page model's
        "all mutations present" notion of durable.
    per_signature:
        Plans kept per (epoch-context, in-flight-shape, class)
        signature; ``None`` keeps every deduplicated plan (exhaustive
        mode, for the mutant-detection tests).
    budget:
        Hard cap on emitted plans (at least one per signature is
        retained); ``None`` = no cap.
    seed:
        Drives every sampling decision.
    """

    def __init__(self, stream: LineStream,
                 op_bounds: Optional[Sequence[Tuple[int, int]]] = None,
                 per_signature: Optional[int] = 3,
                 budget: Optional[int] = None,
                 seed: int = 0):
        self.stream = stream
        bounds = list(op_bounds if op_bounds is not None
                      else stream.op_bounds)
        self._ends = [e for (_s, e) in bounds]
        self._starts = [s for (s, _e) in bounds]
        self.per_signature = per_signature
        self.budget = budget
        self.seed = seed
        #: Raw 2^lines crash states the interesting positions span
        #: (what brute-force line enumeration would have to replay).
        self.raw_states = 0
        #: Interesting positions examined.
        self.positions = 0
        #: Final plan count per class (filled by :meth:`plans`).
        self.plan_classes: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def plans(self) -> List[CrashPlan]:
        """Generate, deduplicate, and sample the plan set."""
        deduped: Dict[Tuple, CrashPlan] = {}
        self.raw_states = 0
        self.positions = 0

        durable_hash = 0      # order-free content hash of the durable set
        n_durable = 0
        pending_cpu: List[LineStore] = []
        pending_dma: Dict[int, List[LineStore]] = {}
        cancelled = self.stream.cancelled
        records = self.stream.records
        np = vector.numpy() if _VEC_ON else None
        # Column of _mix(seq) for every stream position: the uint64
        # wraparound multiply is exactly the `& _MASK` reduction.  The
        # column is materialised back to a Python list once -- visit()
        # runs on small in-flight sets where per-call ndarray fancy
        # indexing costs more than plain list lookups.
        mix_col = ((np.arange(1, len(records) + 1, dtype=np.uint64)
                    * np.uint64(_MIX)).tolist()
                   if np is not None and records else None)

        def make_durable(recs: List[LineStore]) -> None:
            nonlocal durable_hash, n_durable
            for r in recs:
                durable_hash = (durable_hash + _mix(r.seq)) & _MASK
                n_durable += 1

        def inflight() -> List[LineStore]:
            out = list(pending_cpu)
            for lst in pending_dma.values():
                out.extend(lst)
            out.sort(key=lambda r: r.seq)
            return out

        def visit(point: int, context: str) -> None:
            flight = inflight()
            self.positions += 1
            self.raw_states += _raw_states(flight)
            lo = bisect_right(self._ends, point)
            hi = bisect_right(self._starts, point)
            seqs = [r.seq for r in flight]
            if mix_col is not None:
                mixes = [mix_col[s] for s in seqs]
            else:
                mixes = [_mix(s) for s in seqs]
            mix_of = dict(zip(seqs, mixes))
            total = sum(mixes)
            flight_sig = ",".join(sorted(f"{r.mech}{'+' if r.dep else ''}"
                                         for r in flight))
            for cls, applied, partials, mixsum in \
                    _candidates_hashed(flight, mix_of, total):
                key = ((durable_hash + mixsum) & _MASK,
                       n_durable + len(applied), partials, lo, hi)
                if key in deduped:
                    continue
                deduped[key] = CrashPlan(point=point, cls=cls,
                                         applied=applied,
                                         partials=partials, lo=lo, hi=hi,
                                         signature=f"{context}|{cls}|"
                                                   f"{flight_sig}")

        for idx, rec in enumerate(records):
            if isinstance(rec, FenceRec):
                visit(idx, rec.label)
                if rec.scope is None:
                    make_durable(pending_cpu)
                    pending_cpu.clear()
                else:
                    ch, covered = rec.scope
                    lst = pending_dma.get(ch, [])
                    done = [r for r in lst if r.dep[1] <= covered]
                    pending_dma[ch] = [r for r in lst
                                       if r.dep[1] > covered]
                    make_durable(done)
            else:
                if rec.seq in cancelled:
                    continue
                if rec.immediate:
                    visit(idx, f"pre:{rec.mech}")
                    make_durable([rec])
                elif rec.dep is None:
                    pending_cpu.append(rec)
                else:
                    pending_dma.setdefault(rec.dep[0], []).append(rec)
        visit(len(records), "end")

        chosen = self._sample(list(deduped.values()))
        self.plan_classes = {}
        for p in chosen:
            self.plan_classes[p.cls] = self.plan_classes.get(p.cls, 0) + 1
        return chosen

    # ------------------------------------------------------------------
    def _sample(self, plans: List[CrashPlan]) -> List[CrashPlan]:
        """Per-signature sampling + the global budget, seeded."""
        if self.per_signature is None and self.budget is None:
            return plans
        rng = random.Random(self.seed)
        groups: Dict[str, List[CrashPlan]] = {}
        for p in plans:
            groups.setdefault(p.signature, []).append(p)
        kept: List[CrashPlan] = []
        k = self.per_signature
        for sig in sorted(groups):
            grp = sorted(groups[sig], key=lambda p: (p.point, p.cls))
            if k is not None and len(grp) > k:
                # Always keep the first and last occurrence (epoch
                # boundaries see the extreme op-progress ranges),
                # sample the middle.
                middle = grp[1:-1]
                grp = sorted(
                    [grp[0], grp[-1]] + rng.sample(middle,
                                                   min(k - 2, len(middle))),
                    key=lambda p: (p.point, p.cls)) if k >= 2 \
                    else [grp[0]]
            kept.extend(grp)
        if self.budget is not None and len(kept) > self.budget:
            by_sig: Dict[str, List[CrashPlan]] = {}
            for p in kept:
                by_sig.setdefault(p.signature, []).append(p)
            while sum(len(v) for v in by_sig.values()) > self.budget:
                sig = max(sorted(by_sig), key=lambda s: len(by_sig[s]))
                if len(by_sig[sig]) <= 1:
                    break
                by_sig[sig].pop(rng.randrange(1, len(by_sig[sig])))
            kept = [p for sig in sorted(by_sig) for p in by_sig[sig]]
        kept.sort(key=lambda p: (p.point, p.cls))
        return kept


def _raw_states(flight: List[LineStore]) -> int:
    """The 2^lines subset count this position's plans collapse."""
    raw = 1
    for r in flight:
        raw *= 2 if r.klass == "atomic" else (1 << r.nlines)
    return raw if flight else 0


def _candidates_hashed(flight: List[LineStore], mix_of: Dict[int, int],
                       total: int):
    """Yield ``(cls, applied, partials, mixsum)`` representatives for
    one in-flight set (see the module docstring for the class catalog).

    ``mixsum`` is ``sum(_mix(s) for s in applied)`` computed
    algebraically from the flight total -- a drop/torn candidate's sum
    is the total minus the dropped store's own mix, an exact integer
    identity (subtracting an addend, no modular reduction involved).
    """
    iset = frozenset(r.seq for r in flight)
    none: Tuple = ()
    yield "intact", frozenset(), none, 0
    if not flight:
        return
    yield "flushed", iset, none, total
    for r in flight:
        m = mix_of[r.seq]
        rest_sum = total - m
        yield f"solo:{r.mech}", frozenset({r.seq}), none, m
        if len(flight) > 1:
            yield f"drop:{r.mech}", iset - {r.seq}, none, rest_sum
        if r.klass == "record" and r.nlines > 1:
            head = tuple(range(max(1, r.nlines // 2)))
            torn = ((r.seq, head),)
            yield f"torn:{r.mech}", iset - {r.seq}, torn, rest_sum
            yield f"torn-solo:{r.mech}", frozenset(), torn, 0
        elif r.klass == "data" and r.nlines > 1:
            n = r.nlines
            rest = iset - {r.seq}
            for shape, lines in (
                    ("head", (0,)),
                    ("prefix", tuple(range(n // 2))),
                    ("suffix", tuple(range(n // 2, n))),
                    ("hole", tuple(i for i in range(n) if i != n // 2))):
                yield f"{shape}:{r.mech}", rest, ((r.seq, lines),), rest_sum


def _candidates(flight: List[LineStore]):
    """Hash-free view of :func:`_candidates_hashed` (kept as the plain
    enumeration API)."""
    mix_of = {r.seq: _mix(r.seq) for r in flight}
    total = sum(mix_of.values())
    for cls, applied, partials, _mixsum in \
            _candidates_hashed(flight, mix_of, total):
        yield cls, applied, partials
