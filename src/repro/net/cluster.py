"""Cluster assembly: replicas, lease service, and the client protocol.

A :class:`Cluster` wires ``n`` :class:`~repro.net.replica.ReplicaNode`
processes, one :class:`LeaseService`, and any number of clients onto a
shared :class:`~repro.net.network.Network` -- all driven by one
simulation :class:`~repro.sim.engine.Engine`, so a full multi-node run
(workload, topology, fault plan) replays bit-for-bit from its seeds.

The lease service is the failover arbiter: it grants the cluster lease
to at most one holder at a time and mints a fresh **epoch** per new
holder, so "at most one primary per lease epoch" holds by construction
at the service -- the :mod:`repro.obs.oracles` check then verifies the
*replicas* respected it (no ships or acks from a non-holder).  The
service is just another network endpoint: a partitioned primary cannot
renew, its lease lapses, and the majority side elects.

Clients speak an RPC-over-UDP protocol: send ``ClientWrite``, wait for
``ClientResp`` with exponential-backoff retries (clamped to the
operation deadline), and follow ``not_primary`` redirect hints.
Retries give at-least-once semantics -- a retried write may occupy two
SNs; the record token carries the request id so duplicates are
attributable.  :meth:`Cluster.write_op` adapts a replicated write to
the runtime's ``Syscall`` interface so cluster clients run as ordinary
uthreads under the existing admission/deadline middleware.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.faults.plan import check_non_negative
from repro.net.network import Endpoint, Network, NetStats
from repro.net.replica import (
    NOT_PRIMARY,
    READONLY,
    ClientRead,
    ClientResp,
    ClientWrite,
    LeaseReply,
    LeaseRequest,
    ReplicaNode,
)
from repro.sim import Engine, WaitTimeout

#: The lease service's well-known endpoint id.
LEASE_NODE = "lease"


@dataclass(frozen=True)
class ClusterConfig:
    """Timing/shape knobs for a replicated cluster (all times in ns).

    The defaults are sized so that, over the default 2 us links, a
    write quorum-commits in tens of microseconds and a failover
    completes within a few milliseconds -- comfortably inside
    :attr:`failover_budget_ns`.
    """

    #: Replica main-loop wakeup period.
    tick_ns: int = 20_000
    #: Durable-append latency model: base + nbytes / bytes_per_ns.
    persist_base_ns: int = 1_500
    persist_bytes_per_ns: int = 16
    #: Ship cadence and go-back-N retransmission bounds.
    ship_interval_ns: int = 60_000
    ship_batch: int = 64
    retransmit_cap_ns: int = 1_000_000
    #: Lease term and the holder's renewal period.
    lease_ns: int = 1_200_000
    renew_every_ns: int = 300_000
    #: Silence window before a backup suspects the primary; node i
    #: waits i extra stagger periods so elections do not collide.
    failover_timeout_ns: int = 900_000
    failover_stagger_ns: int = 150_000
    #: Quorum lost for this long -> primary degrades to read-only.
    readonly_after_ns: int = 600_000
    #: Per-election-round deadline and retry backoff bounds.
    election_timeout_ns: int = 300_000
    election_backoff_base_ns: int = 100_000
    election_backoff_cap_ns: int = 800_000
    #: Client RPC retransmission bounds.
    client_rto_base_ns: int = 250_000
    client_rto_cap_ns: int = 2_000_000

    def __post_init__(self):
        for name in ("tick_ns", "persist_base_ns", "persist_bytes_per_ns",
                     "ship_interval_ns", "ship_batch", "retransmit_cap_ns",
                     "lease_ns", "renew_every_ns", "failover_timeout_ns",
                     "failover_stagger_ns", "readonly_after_ns",
                     "election_timeout_ns", "election_backoff_base_ns",
                     "election_backoff_cap_ns", "client_rto_base_ns",
                     "client_rto_cap_ns"):
            check_non_negative(name, getattr(self, name))
        if self.renew_every_ns >= self.lease_ns:
            raise ValueError("renew_every_ns must be < lease_ns or the "
                             "lease lapses between renewals")


class LeaseService:
    """Single arbiter granting the cluster lease, one epoch per holder.

    Grant rules: the current holder may renew (same epoch, extended
    expiry) while its lease is live; anyone may take a *lapsed* lease,
    which mints ``epoch + 1``.  A live lease held by someone else is
    refused with the holder's identity.  Every grant to a *new* holder
    appends to :attr:`Cluster.lease_log` and emits a ``lease_grant``
    trace point -- the at-most-one-primary oracle's ground truth.
    """

    def __init__(self, cluster: "Cluster"):
        self.cluster = cluster
        self.engine = cluster.engine
        self.cfg = cluster.cfg
        self.endpoint = cluster.network.register(LEASE_NODE)
        self.holder: Optional[Any] = None
        self.epoch = 0
        self.expires = 0
        self.proc = self.engine.process(self._main(), name="lease-service")

    def _main(self):
        cfg = self.cfg
        while True:
            src, msg = yield self.endpoint.inbox.get()
            if not isinstance(msg, LeaseRequest):
                continue
            now = self.engine.now
            if self.holder == msg.node and now < self.expires:
                self.expires = now + cfg.lease_ns           # renewal
                granted = True
            elif now >= self.expires:
                self.epoch += 1                             # new holder
                self.holder = msg.node
                self.expires = now + cfg.lease_ns
                granted = True
                if self.epoch > 1:
                    self.cluster.stats.failovers += 1
                self.cluster.lease_log.append(
                    (now, self.epoch, msg.node, self.expires))
                tr = self.engine.tracer
                if tr is not None:
                    tr.point("lease_grant", track="lease", epoch=self.epoch,
                             node=str(msg.node), expires=self.expires)
            else:
                granted = False
            self.endpoint.send(src, LeaseReply(
                granted and self.holder == msg.node,
                self.epoch, self.expires, self.holder))


class Cluster:
    """``n`` replicas + lease service + clients on one faulty network."""

    def __init__(self, engine: Engine, n: int = 3,
                 quorum: Optional[int] = None,
                 cfg: Optional[ClusterConfig] = None,
                 stats: Optional[NetStats] = None):
        if n < 1:
            raise ValueError(f"cluster size must be >= 1, got {n}")
        self.engine = engine
        self.cfg = cfg if cfg is not None else ClusterConfig()
        self.stats = stats if stats is not None else NetStats()
        self.quorum = (n // 2 + 1) if quorum is None else quorum
        if not 1 <= self.quorum <= n:
            raise ValueError(
                f"quorum must be in [1, {n}], got {self.quorum}")
        self.network = Network(engine, stats=self.stats)
        self.node_ids: Tuple[int, ...] = tuple(range(n))
        self.nodes: Dict[int, ReplicaNode] = {}
        for nid in self.node_ids:
            self.nodes[nid] = ReplicaNode(self, nid)
        self.lease = LeaseService(self)
        #: (t, epoch, node, expires) per new-holder grant.
        self.lease_log: List[Tuple] = []
        #: (t, node, epoch) per completed failover (primary took over).
        self.primary_log: List[Tuple] = []
        self._req_seq = itertools.count(1)

    # -- fault-plan hooks --------------------------------------------
    def crash(self, node_id) -> None:
        self.nodes[node_id].crash()

    def restart(self, node_id) -> None:
        self.nodes[node_id].restart()

    # -- replica-side helpers ----------------------------------------
    def send_lease_request(self, node: ReplicaNode) -> None:
        node.endpoint.send(LEASE_NODE, LeaseRequest(node.node_id))

    def note_primary(self, node_id, epoch: int) -> None:
        self.primary_log.append((self.engine.now, node_id, epoch))

    @property
    def primary(self) -> Optional[ReplicaNode]:
        """The live primary, if any (for tests and demos)."""
        from repro.net.replica import PRIMARY
        for node in self.nodes.values():
            if node.role == PRIMARY and not node.down \
                    and self.engine.now < node.lease_expires:
                return node
        return None

    @property
    def failover_budget_ns(self) -> int:
        """Worst-case primary-loss to new-primary-elected window:
        lease lapse + slowest stagger + a few election rounds."""
        cfg = self.cfg
        return (cfg.lease_ns + cfg.failover_timeout_ns
                + len(self.node_ids) * cfg.failover_stagger_ns
                + 4 * cfg.election_timeout_ns)

    # -- client protocol ---------------------------------------------
    def client(self, name: str) -> Endpoint:
        """Register a client endpoint (id ``client:<name>``)."""
        return self.network.register(f"client:{name}")

    def client_write(self, ep: Endpoint, nbytes: int,
                     deadline_ns: Optional[int] = None):
        """Generator: one replicated write; returns the committed SN.

        Retries with exponential backoff across targets until acked or
        the absolute ``deadline_ns`` passes, then raises
        :class:`~repro.fs.nova.DeadlineExceeded`.  Never hangs: every
        wait is bounded by the RTO or the remaining deadline.
        """
        from repro.fs.nova import DeadlineExceeded
        cfg = self.cfg
        req_id = (ep.node_id, next(self._req_seq))
        target = self._guess_primary()
        rto = cfg.client_rto_base_ns
        while True:
            now = self.engine.now
            if deadline_ns is not None and now >= deadline_ns:
                raise DeadlineExceeded(
                    f"replicated write {req_id} missed its deadline "
                    f"({deadline_ns} ns)")
            ep.send(target, ClientWrite(req_id, nbytes,
                                        deadline=deadline_ns),
                    nbytes=nbytes)
            resp = yield from self._await_resp(ep, req_id, rto, deadline_ns)
            if resp is not None and resp.ok:
                return resp.sn
            self.stats.client_retries += 1
            if resp is not None and resp.reason == NOT_PRIMARY \
                    and resp.hint is not None and resp.hint != target:
                target = resp.hint       # redirect: retry immediately
                continue
            # Timeout, readonly, or a hintless refusal: back off, then
            # try the next replica in rotation.
            pause = rto if deadline_ns is None \
                else min(rto, max(1, deadline_ns - self.engine.now))
            yield self.engine.timeout(pause)
            rto = min(rto * 2, cfg.client_rto_cap_ns)
            target = (target + 1) % len(self.node_ids) \
                if isinstance(target, int) else 0

    def client_read(self, ep: Endpoint,
                    deadline_ns: Optional[int] = None):
        """Generator: read the committed SN high-water from the primary."""
        from repro.fs.nova import DeadlineExceeded
        cfg = self.cfg
        req_id = (ep.node_id, next(self._req_seq))
        target = self._guess_primary()
        rto = cfg.client_rto_base_ns
        while True:
            now = self.engine.now
            if deadline_ns is not None and now >= deadline_ns:
                raise DeadlineExceeded(
                    f"replicated read {req_id} missed its deadline")
            ep.send(target, ClientRead(req_id))
            resp = yield from self._await_resp(ep, req_id, rto, deadline_ns)
            if resp is not None and resp.ok:
                return resp.sn
            self.stats.client_retries += 1
            if resp is not None and resp.reason == NOT_PRIMARY \
                    and resp.hint is not None and resp.hint != target:
                target = resp.hint
                continue
            pause = rto if deadline_ns is None \
                else min(rto, max(1, deadline_ns - self.engine.now))
            yield self.engine.timeout(pause)
            rto = min(rto * 2, cfg.client_rto_cap_ns)
            target = (target + 1) % len(self.node_ids) \
                if isinstance(target, int) else 0

    def _guess_primary(self):
        if self.primary_log:
            return self.primary_log[-1][1]
        return self.node_ids[0]

    def _await_resp(self, ep: Endpoint, req_id,
                    rto: int, deadline_ns: Optional[int]):
        """Wait up to ``rto`` (clamped by the deadline) for *this*
        request's response, draining stale ones; None on timeout."""
        wait_until = self.engine.now + rto
        if deadline_ns is not None:
            wait_until = min(wait_until, deadline_ns)
        while True:
            remaining = wait_until - self.engine.now
            if remaining <= 0:
                return None
            try:
                _src, resp = yield ep.inbox.get(timeout=remaining)
            except WaitTimeout:
                return None
            if isinstance(resp, ClientResp) and resp.req_id == req_id:
                return resp
            # Stale response from an earlier attempt: keep draining.

    # -- runtime integration -----------------------------------------
    def write_op(self, ep: Endpoint, nbytes: int):
        """Adapt a replicated write to the ``Syscall`` op interface, so
        cluster clients run as uthreads under the existing runtime
        middleware (admission control, per-op deadlines)."""
        def op(ctx):
            return self.client_write(ep, nbytes, deadline_ns=ctx.deadline)
        return op
