"""Seeded network fault plans: replayable message/link/node failures.

The determinism contract mirrors :class:`repro.faults.plan.FaultPlan`:
given the same seed and the same traffic, a :class:`NetFaultPlan`
injects the same faults at the same simulated instants.  Message-level
randomness (drop/duplicate/delay) comes from one private
``random.Random`` stream per directed link, consulted once per send in
send order, so the injection sequence is a pure function of the seed
and the (deterministic) traffic.

Scheduled faults are explicit windows:

* :class:`PartitionFault` cuts every link between ``group`` and the
  rest of the cluster for ``duration_ns`` (the heal is implicit at the
  window's end) -- ``partition``/``heal`` trace points mark both edges;
* :class:`NodeCrashFault` takes a node down at ``at_ns`` and restarts
  it ``down_ns`` later (``down_ns=None`` = never), via the cluster's
  crash/restart hooks -- durable state survives, volatile state and
  queued messages do not.

Input validation is shared with the hardware fault plan
(:func:`~repro.faults.plan.check_probability` and friends): negative
durations, overlapping windows on the same group/node, and
out-of-range rates all fail fast with ``ValueError`` instead of deep
inside a sweep.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.faults.plan import (
    check_non_negative,
    check_probability,
    check_windows_disjoint,
)

#: Fault kinds as they appear in the plan's injection trace.
DROP = "net_drop"
DUP = "net_dup"
DELAY = "net_delay"
PARTITION = "partition"
HEAL = "heal"
CRASH = "node_crash"
RESTART = "node_restart"


@dataclass(frozen=True)
class PartitionFault:
    """Cut every link between ``group`` and the rest for a window."""

    start_ns: int
    duration_ns: int
    group: Tuple[Any, ...]

    def __post_init__(self):
        check_non_negative("start_ns", self.start_ns)
        check_non_negative("duration_ns", self.duration_ns)
        if not self.group:
            raise ValueError("partition group must name at least one node")


@dataclass(frozen=True)
class NodeCrashFault:
    """Crash ``node`` at ``at_ns``; restart after ``down_ns`` (None =
    never)."""

    node: Any
    at_ns: int
    down_ns: Optional[int] = None

    def __post_init__(self):
        check_non_negative("at_ns", self.at_ns)
        if self.down_ns is not None:
            check_non_negative("down_ns", self.down_ns)


class NetFaultPlan:
    """One run's worth of injected network faults.

    Parameters
    ----------
    seed:
        Root seed for every probabilistic decision.
    p_drop / p_dup:
        Per-message probabilities of a drop / a duplicate delivery.
    p_delay / delay_ns:
        Per-message probability of an extra delay, drawn uniformly in
        ``[1, delay_ns]`` from the link's stream.
    schedule:
        Explicit :class:`PartitionFault` / :class:`NodeCrashFault`
        windows; these always fire (not counted against ``max_faults``).
    max_faults:
        Cap on probabilistic injections, so retry/retransmit loops
        always converge once the budget is spent.
    """

    def __init__(self, seed: int = 0,
                 p_drop: float = 0.0,
                 p_dup: float = 0.0,
                 p_delay: float = 0.0,
                 delay_ns: int = 50_000,
                 schedule: Sequence[Any] = (),
                 max_faults: int = 64):
        for name, p in (("p_drop", p_drop), ("p_dup", p_dup),
                        ("p_delay", p_delay)):
            check_probability(name, p)
        check_non_negative("max_faults", max_faults)
        if delay_ns < 1:
            raise ValueError(f"delay_ns must be >= 1, got {delay_ns}")
        self.seed = seed
        self.p_drop = p_drop
        self.p_dup = p_dup
        self.p_delay = p_delay
        self.delay_ns = delay_ns
        self.max_faults = max_faults
        self._budget = max_faults
        self._partitions: List[PartitionFault] = []
        self._crashes: List[NodeCrashFault] = []
        for f in schedule:
            if isinstance(f, PartitionFault):
                self._partitions.append(f)
            elif isinstance(f, NodeCrashFault):
                self._crashes.append(f)
            else:
                raise TypeError(f"unknown net fault spec: {f!r}")
        # Overlap rules: windows isolating the same group, and
        # crash windows of the same node, must be disjoint.
        by_group: Dict[Tuple, List] = {}
        for f in self._partitions:
            by_group.setdefault(tuple(sorted(map(str, f.group))),
                                []).append((f.start_ns, f.duration_ns))
        for group, windows in by_group.items():
            check_windows_disjoint(windows, f"partition({'|'.join(group)})")
        by_node: Dict[Any, List] = {}
        for f in self._crashes:
            down = f.down_ns if f.down_ns is not None else 0
            by_node.setdefault(f.node, []).append((f.at_ns, down))
        for node, windows in by_node.items():
            check_windows_disjoint(windows, f"crash(node {node})")
        self._link_rng: Dict[Tuple[Any, Any], random.Random] = {}
        self._engine = None
        self._network = None
        #: (time, kind, *detail) in injection order -- the determinism
        #: property compares this across runs.
        self.trace: List[Tuple] = []
        #: Injection counts by kind.
        self.injected: Dict[str, int] = {DROP: 0, DUP: 0, DELAY: 0,
                                         PARTITION: 0, CRASH: 0}

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def install(self, network, cluster=None) -> "NetFaultPlan":
        """Attach to a network (and optionally the cluster above it).

        Hooks per-message fate decisions and spawns one driver process
        per scheduled partition/crash window.  ``cluster`` (anything
        with ``crash(node)`` / ``restart(node)``) is required when the
        schedule contains :class:`NodeCrashFault` entries.
        """
        self._engine = engine = network.engine
        self._network = network
        network.fault_plan = self
        for f in self._partitions:
            engine.process(self._partition_window(f), name="net-partition")
        for f in self._crashes:
            if cluster is None:
                raise ValueError(
                    "NodeCrashFault in schedule but no cluster given")
            engine.process(self._crash_window(cluster, f), name="net-crash")
        return self

    def _now(self) -> int:
        return self._engine.now if self._engine is not None else -1

    def _note(self, kind: str, *detail) -> None:
        self.injected[kind] += 1
        self.trace.append((self._now(), kind) + detail)

    def _spend(self) -> bool:
        if self._budget <= 0:
            return False
        self._budget -= 1
        return True

    def _trace_point(self, name: str, **args) -> None:
        tr = self._engine.tracer if self._engine is not None else None
        if tr is not None:
            tr.point(name, track="net", **args)

    # ------------------------------------------------------------------
    # Per-message fate (consulted by Network.send)
    # ------------------------------------------------------------------
    def message_fate(self, src, dst) -> Sequence[int]:
        """Extra-delay list for one send: ``[]`` drops the message,
        one entry per delivery otherwise (two = a duplicate)."""
        if not (self.p_drop or self.p_dup or self.p_delay):
            return (0,)
        key = (src, dst)
        rng = self._link_rng.get(key)
        if rng is None:
            rng = self._link_rng[key] = random.Random(
                f"{self.seed}:link:{src}->{dst}")
        u = rng.random()
        if u < self.p_drop:
            if self._spend():
                self._note(DROP, src, dst)
                return ()
            return (0,)
        if u < self.p_drop + self.p_dup:
            if self._spend():
                self._note(DUP, src, dst)
                return (0, rng.randint(1, self.delay_ns))
            return (0,)
        if u < self.p_drop + self.p_dup + self.p_delay:
            if self._spend():
                extra = rng.randint(1, self.delay_ns)
                self._note(DELAY, src, dst, extra)
                return (extra,)
            return (0,)
        return (0,)

    # ------------------------------------------------------------------
    # Scheduled windows
    # ------------------------------------------------------------------
    def _cross_pairs(self, group) -> List[Tuple[Any, Any]]:
        inside = set(group)
        return [(a, b) for a in inside
                for b in self._network.endpoints
                if b not in inside]

    def _partition_window(self, f: PartitionFault):
        if f.start_ns > 0:
            yield self._engine.timeout(f.start_ns)
        pairs = self._cross_pairs(f.group)
        for a, b in pairs:
            self._network.cut(a, b)
        self._note(PARTITION, tuple(f.group), f.duration_ns)
        self._trace_point("partition", group=list(map(str, f.group)),
                          duration_ns=f.duration_ns)
        yield self._engine.timeout(f.duration_ns)
        for a, b in pairs:
            self._network.heal(a, b)
        self.trace.append((self._now(), HEAL, tuple(f.group)))
        self._trace_point("heal", group=list(map(str, f.group)))

    def _crash_window(self, cluster, f: NodeCrashFault):
        if f.at_ns > 0:
            yield self._engine.timeout(f.at_ns)
        cluster.crash(f.node)
        self._note(CRASH, f.node, f.down_ns)
        self._trace_point("node_crash", node=str(f.node))
        if f.down_ns is None:
            return
        yield self._engine.timeout(f.down_ns)
        cluster.restart(f.node)
        self.trace.append((self._now(), RESTART, f.node))
        self._trace_point("node_restart", node=str(f.node))
