"""A deterministic message-passing network over the simulation engine.

The :class:`Network` connects named endpoints in a full mesh.  Each
directed link has a propagation latency and a serialization bandwidth;
a message sent at ``t`` is delivered at ``t + latency + nbytes /
bytes_per_ns`` (plus any fault-injected extra delay).  Delivery runs
entirely on the shared :class:`~repro.sim.engine.Engine`, so a cluster
simulation is a pure function of (workload, topology, fault-plan seed)
-- every partition scenario replays exactly.

Unreliability is injected, never emergent: an attached
:class:`~repro.net.plan.NetFaultPlan` decides, per message, whether it
is dropped, duplicated, or delayed (seeded per-link RNG streams), and
drives partition/heal and node crash/restart schedules.  Without a
plan the network is perfectly reliable, FIFO per link.

Partitions are modelled as a set of *cut* unordered node pairs: a
message is dropped if its link is cut at send time or at delivery time
(a partition that starts mid-flight kills in-flight traffic, like a
yanked cable).  A message to or from a *down* endpoint is likewise
dropped -- the sender gets no error either way, exactly like UDP; all
reliability lives in the protocols above (:mod:`repro.net.replica`).
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.sim import Engine, Store

#: Fixed per-message overhead (headers) charged to serialization.
HEADER_BYTES = 64


class NetStats:
    """Counters for the network and the replication layer above it.

    Network-level: ``sent``/``delivered``/``duplicated``/``delayed``
    and the drop taxonomy (``dropped_fault`` by the fault plan,
    ``dropped_partition`` by a cut link, ``dropped_down`` at a down
    endpoint).  Replication-level: ``retransmits``, ``truncations``,
    ``failovers`` (lease epochs granted beyond the first),
    ``readonly_rejects`` and ``client_retries``.  Like the other shared
    stats objects, ``reset()`` must zero every field (pinned by
    ``tests/test_stats_reset.py``).
    """

    __slots__ = ("sent", "delivered", "dropped_fault", "dropped_partition",
                 "dropped_down", "duplicated", "delayed", "bytes_sent",
                 "retransmits", "truncations", "failovers",
                 "readonly_rejects", "client_retries")

    def __init__(self):
        self.reset()

    def as_dict(self) -> dict:
        return {name: getattr(self, name) for name in self.__slots__}

    def reset(self) -> None:
        for name in self.__slots__:
            setattr(self, name, 0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v}" for k, v in self.as_dict().items()
                          if v)
        return f"<NetStats {inner}>"


class Endpoint:
    """One node's attachment point: an inbox plus an up/down flag.

    Messages land in ``inbox`` (a FIFO :class:`~repro.sim.sync.Store`);
    the owner consumes them with ``inbox.get(timeout=...)``.  While
    ``up`` is False the network drops inbound traffic and refuses
    outbound sends, and :meth:`clear` empties the inbox -- volatile
    state does not survive a crash.
    """

    __slots__ = ("network", "node_id", "inbox", "up")

    def __init__(self, network: "Network", node_id):
        self.network = network
        self.node_id = node_id
        self.inbox: Store = Store(network.engine)
        self.up = True

    def send(self, dst, msg, nbytes: int = 0) -> None:
        """Fire-and-forget send; ``nbytes`` is the payload size used
        for serialization delay (headers are charged on top)."""
        self.network.send(self.node_id, dst, msg, nbytes)

    def clear(self) -> None:
        """Discard everything queued in the inbox."""
        while self.inbox.try_get() is not None:
            pass


class Network:
    """Full-mesh simulated network with per-link latency/bandwidth.

    ``latency_ns`` and ``bytes_per_ns`` are the defaults for every
    directed link; :meth:`set_link` overrides a single pair (both
    directions).  ``fault_plan`` may be attached at construction or
    later via :meth:`~repro.net.plan.NetFaultPlan.install`.
    """

    def __init__(self, engine: Engine, latency_ns: int = 2_000,
                 bytes_per_ns: float = 10.0,
                 stats: Optional[NetStats] = None):
        if latency_ns < 0:
            raise ValueError(f"latency_ns must be >= 0, got {latency_ns}")
        if bytes_per_ns <= 0:
            raise ValueError(f"bytes_per_ns must be > 0, got {bytes_per_ns}")
        self.engine = engine
        self.latency_ns = latency_ns
        self.bytes_per_ns = bytes_per_ns
        self.stats = stats if stats is not None else NetStats()
        self.fault_plan = None
        self.endpoints: Dict[Any, Endpoint] = {}
        self._links: Dict[frozenset, Tuple[int, float]] = {}
        #: Unordered node pairs currently cut by a partition.
        self._cut: set = set()

    # -- topology ----------------------------------------------------
    def register(self, node_id) -> Endpoint:
        """Attach a node; returns its endpoint."""
        if node_id in self.endpoints:
            raise ValueError(f"node {node_id!r} already registered")
        ep = Endpoint(self, node_id)
        self.endpoints[node_id] = ep
        return ep

    def endpoint(self, node_id) -> Endpoint:
        return self.endpoints[node_id]

    def set_link(self, a, b, latency_ns: Optional[int] = None,
                 bytes_per_ns: Optional[float] = None) -> None:
        """Override latency/bandwidth for the (a, b) pair, both ways."""
        key = frozenset((a, b))
        cur = self._links.get(key, (self.latency_ns, self.bytes_per_ns))
        self._links[key] = (
            cur[0] if latency_ns is None else latency_ns,
            cur[1] if bytes_per_ns is None else bytes_per_ns)

    def link_params(self, a, b) -> Tuple[int, float]:
        return self._links.get(frozenset((a, b)),
                               (self.latency_ns, self.bytes_per_ns))

    # -- partitions (driven by NetFaultPlan) -------------------------
    def cut(self, a, b) -> None:
        """Sever the (a, b) link until :meth:`heal`."""
        self._cut.add(frozenset((a, b)))

    def heal(self, a, b) -> None:
        self._cut.discard(frozenset((a, b)))

    def is_cut(self, a, b) -> bool:
        return frozenset((a, b)) in self._cut

    # -- data plane --------------------------------------------------
    def send(self, src, dst, msg, nbytes: int = 0) -> None:
        """Deliver ``msg`` to ``dst`` after link latency + serialization.

        Consults the fault plan for the message's fate: a list of extra
        delays, one delivery per entry (empty = dropped, two = the
        message and a duplicate).  Silent on every drop -- senders see
        UDP semantics.
        """
        stats = self.stats
        stats.sent += 1
        stats.bytes_sent += nbytes + HEADER_BYTES
        ep = self.endpoints.get(src)
        if ep is None or not ep.up:
            stats.dropped_down += 1
            return
        if dst not in self.endpoints:
            raise ValueError(f"unknown destination {dst!r}")
        if self.is_cut(src, dst):
            stats.dropped_partition += 1
            return
        plan = self.fault_plan
        if plan is not None:
            fates = plan.message_fate(src, dst)
            if not fates:
                stats.dropped_fault += 1
                return
            if len(fates) > 1:
                stats.duplicated += len(fates) - 1
            if any(fates):
                stats.delayed += 1
        else:
            fates = (0,)
        latency, bw = self.link_params(src, dst)
        base = latency + round((nbytes + HEADER_BYTES) / bw)
        for extra in fates:
            ev = self.engine.timeout(base + extra)
            ev.add_callback(
                lambda _e, s=src, d=dst, m=msg: self._deliver(s, d, m))

    def _deliver(self, src, dst, msg) -> None:
        if self.is_cut(src, dst):
            self.stats.dropped_partition += 1
            return
        ep = self.endpoints[dst]
        if not ep.up:
            self.stats.dropped_down += 1
            return
        self.stats.delivered += 1
        ep.inbox.put((src, msg))
