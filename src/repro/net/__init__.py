"""Multi-node EasyIO: replicated log shipping over a simulated network.

Layers (DESIGN.md §12):

* :mod:`repro.net.network` -- a deterministic full-mesh message
  network with per-link latency/bandwidth, UDP delivery semantics,
  and partition/crash hooks;
* :mod:`repro.net.plan` -- seeded, replayable network fault plans
  (message drop/duplicate/delay, link partitions, node crashes),
  sharing input validation with :mod:`repro.faults`;
* :mod:`repro.net.replica` -- primary/backup log shipping that
  transplants the single-node SN/commit discipline across nodes:
  SN-ordered apply, quorum acks, truncate-on-divergence catch-up;
* :mod:`repro.net.cluster` -- cluster assembly, the lease service
  (one epoch per primary), and the retrying client protocol.
"""

from repro.net.cluster import Cluster, ClusterConfig, LeaseService, LEASE_NODE
from repro.net.network import Endpoint, HEADER_BYTES, Network, NetStats
from repro.net.plan import (
    NetFaultPlan,
    NodeCrashFault,
    PartitionFault,
)
from repro.net.replica import (
    BACKUP,
    CANDIDATE,
    PRIMARY,
    ClientResp,
    ClientWrite,
    LogRecord,
    ReplicaNode,
    Ship,
    ShipAck,
)

__all__ = [
    "BACKUP",
    "CANDIDATE",
    "ClientResp",
    "ClientWrite",
    "Cluster",
    "ClusterConfig",
    "Endpoint",
    "HEADER_BYTES",
    "LEASE_NODE",
    "LeaseService",
    "LogRecord",
    "NetFaultPlan",
    "NetStats",
    "Network",
    "NodeCrashFault",
    "PRIMARY",
    "PartitionFault",
    "ReplicaNode",
    "Ship",
    "ShipAck",
]
