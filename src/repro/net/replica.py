"""Replicated log shipping: one node of the EasyIO cluster service.

The replication discipline transplants EasyIO's SN/commit machinery
across the network (DESIGN.md §12):

* the **primary** assigns each client write a strictly-increasing SN
  (the cluster-wide analogue of a DMA descriptor SN), persists the
  record locally (a slow-memory append with a simulated persist
  latency), and **ships committed SN ranges** to every backup;
* a **backup applies strictly in SN order**: each ``Ship`` carries the
  ``(prev_sn, prev_epoch)`` of the record preceding the shipped range,
  and the backup accepts only when its own log matches -- otherwise it
  nacks with its durable high-water and the primary walks back
  (cumulative-ack go-back-N, the network analogue of the completion
  buffer's "SNs below N all landed");
* the client is **acked only after a quorum** of replicas (primary
  included) has durably applied the record's SN;
* records are tagged with the **lease epoch** that created them.  After
  a failover the new primary's ships expose epoch mismatches in a
  divergent suffix (records a dead primary appended but never got
  quorum-acked); the backup *truncates* back to the match point --
  the cluster-level analogue of single-node SN amendment -- and
  re-applies the new primary's records.

Retransmission uses bounded exponential backoff per peer, clamped by
the earliest outstanding client deadline (the same budget discipline
as :class:`~repro.io.supervision.FaultSupervisor` retries).

Everything a node considers *durable* -- the record log and the
highest lease epoch seen -- survives a crash; match vectors, pending
client acks, and queued messages do not (see
:meth:`ReplicaNode.crash`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.sim import Gate, WaitTimeout

#: Node roles.
BACKUP = "backup"
CANDIDATE = "candidate"
PRIMARY = "primary"

#: ClientResp reasons.
OK = "ok"
NOT_PRIMARY = "not_primary"
READONLY = "readonly"


@dataclass(frozen=True)
class LogRecord:
    """One replicated write: SN + the lease epoch that minted it."""

    sn: int
    epoch: int
    nbytes: int
    #: Opaque client token (client id, request id) -- makes divergent
    #: records distinguishable in dumps and tests.
    token: Tuple = ()


# ----------------------------------------------------------------------
# Typed messages
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ClientWrite:
    req_id: Tuple
    nbytes: int
    deadline: Optional[int] = None


@dataclass(frozen=True)
class ClientRead:
    req_id: Tuple


@dataclass(frozen=True)
class ClientResp:
    req_id: Tuple
    ok: bool
    sn: Optional[int] = None
    reason: str = OK
    #: Best-known primary, for NOT_PRIMARY redirects.
    hint: Optional[Any] = None


@dataclass(frozen=True)
class Ship:
    """A committed-SN-range shipment (empty = heartbeat)."""

    epoch: int
    prev_sn: int
    prev_epoch: int
    records: Tuple[LogRecord, ...]
    commit_sn: int

    @property
    def nbytes(self) -> int:
        return sum(r.nbytes for r in self.records)


@dataclass(frozen=True)
class ShipAck:
    """Cumulative ack: every SN <= ``applied_sn`` is durable here."""

    epoch: int
    node: Any
    applied_sn: int
    ok: bool = True


@dataclass(frozen=True)
class Probe:
    """Election: how up-to-date is your durable log?"""


@dataclass(frozen=True)
class ProbeReply:
    node: Any
    applied_sn: int
    #: Epoch of the last log record (0 for an empty log) -- elections
    #: compare ``(tail_epoch, applied_sn)`` lexicographically, exactly
    #: Raft's up-to-date check, so a divergent never-acked suffix can
    #: never outrank a quorum-acked one of a newer epoch.
    tail_epoch: int
    epoch_seen: int


@dataclass(frozen=True)
class LeaseRequest:
    node: Any


@dataclass(frozen=True)
class LeaseReply:
    granted: bool
    epoch: int
    expires_at: int
    holder: Any


@dataclass
class PendingWrite:
    """A client write the primary has persisted but not yet quorum-acked."""

    src: Any
    req_id: Tuple
    deadline: Optional[int] = None


class ReplicaNode:
    """One replica: a single main process handling messages + timers.

    The node runs exactly one engine process (:meth:`_main`): it blocks
    on its inbox with a ``tick_ns`` timeout, handles one message at a
    time (persist delays serialise applies, like a real device queue),
    and runs its role's timer work on every wakeup.  All role changes
    happen inside this one process, so there are no intra-node races.
    """

    def __init__(self, cluster, node_id: int):
        self.cluster = cluster
        self.cfg = cluster.cfg
        self.engine = cluster.engine
        self.node_id = node_id
        self.stats = cluster.stats
        self.endpoint = cluster.network.register(node_id)
        # -- durable state (survives crash) --
        self.log: List[LogRecord] = []
        self.epoch_seen = 0
        # -- volatile state --
        self.role = BACKUP
        self.down = False
        self._boot_id = 0
        self.commit_sn = 0
        self.known_primary: Optional[Any] = None
        # Stagger: node i considers failover i windows later, so
        # elections do not collide; node 0 bootstraps immediately.
        self.last_primary_contact = -self.cfg.failover_timeout_ns
        # Primary-term state.
        self.my_epoch = 0
        self.lease_expires = 0
        self.readonly = False
        self.pending: Dict[int, PendingWrite] = {}
        self._acked: Dict[int, int] = {}
        self._last_ack_t: Dict[int, int] = {}
        self._sent_hi: Dict[int, int] = {}
        self._backoff: Dict[int, int] = {}
        self._next_ship: Dict[int, int] = {}
        self._next_renew = 0
        self._last_quorum_t = 0
        # Election state.
        self._el_phase: Optional[str] = None
        self._el_deadline = 0
        self._el_replies: Dict[int, ProbeReply] = {}
        self._el_backoff = self.cfg.election_backoff_base_ns
        self._el_next = 0
        self._restart_gate = Gate(self.engine)
        self.proc = self.engine.process(self._main(),
                                        name=f"replica-{node_id}")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def applied_sn(self) -> int:
        """Durable high-water: every SN <= this is applied here."""
        return len(self.log)

    def _epoch_at(self, sn: int) -> int:
        return self.log[sn - 1].epoch if sn >= 1 else 0

    @property
    def peers(self) -> Tuple[int, ...]:
        return tuple(n for n in self.cluster.node_ids if n != self.node_id)

    def _trace_point(self, name: str, **args) -> None:
        tr = self.engine.tracer
        if tr is not None:
            tr.point(name, track=f"node{self.node_id}", **args)

    # ------------------------------------------------------------------
    # Crash / restart (called by the cluster, synchronously)
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Lose volatile state; the log and epoch_seen survive."""
        self.down = True
        self._boot_id += 1
        self.endpoint.up = False
        self.endpoint.clear()
        self.pending.clear()
        self.role = BACKUP
        self.readonly = False
        self._el_phase = None
        self.known_primary = None

    def restart(self) -> None:
        self.down = False
        self.endpoint.up = True
        # Fresh failover clock: give any live primary a full window to
        # make contact before this node tries to elect itself.
        self.last_primary_contact = self.engine.now
        self._el_backoff = self.cfg.election_backoff_base_ns
        self._restart_gate.pulse()

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def _main(self):
        cfg = self.cfg
        while True:
            if self.down:
                yield self._restart_gate.wait()
                continue
            msg = None
            try:
                got = yield self.endpoint.inbox.get(timeout=cfg.tick_ns)
                msg = got
            except WaitTimeout:
                pass
            if self.down:
                continue
            if msg is not None:
                src, payload = msg
                yield from self._handle(src, payload)
            if not self.down:
                self._tick()

    def _persist(self, nbytes: int):
        """Simulated durable append latency; returns False if a crash
        interrupted the persist (the append must be discarded)."""
        boot = self._boot_id
        delay = self.cfg.persist_base_ns + round(
            nbytes / self.cfg.persist_bytes_per_ns)
        yield self.engine.timeout(delay)
        return boot == self._boot_id and not self.down

    # ------------------------------------------------------------------
    # Message dispatch
    # ------------------------------------------------------------------
    def _handle(self, src, msg):
        if isinstance(msg, Ship):
            yield from self._on_ship(src, msg)
        elif isinstance(msg, ShipAck):
            self._on_ship_ack(src, msg)
        elif isinstance(msg, ClientWrite):
            yield from self._on_client_write(src, msg)
        elif isinstance(msg, ClientRead):
            self._on_client_read(src, msg)
        elif isinstance(msg, Probe):
            self.endpoint.send(src, ProbeReply(
                self.node_id, self.applied_sn,
                self._epoch_at(self.applied_sn), self.epoch_seen))
        elif isinstance(msg, ProbeReply):
            self._on_probe_reply(msg)
        elif isinstance(msg, LeaseReply):
            yield from self._on_lease_reply(msg)
        # Unknown messages are dropped silently (future-proofing).

    # ------------------------------------------------------------------
    # Backup: SN-ordered apply with divergence truncation
    # ------------------------------------------------------------------
    def _truncate(self, to_sn: int) -> None:
        del self.log[to_sn:]
        self.stats.truncations += 1
        self._trace_point("repl_truncate", at=self.applied_sn,
                          epoch=self.epoch_seen)

    def _ack_ship(self, src, ok: bool = True) -> None:
        self.endpoint.send(src, ShipAck(self.epoch_seen, self.node_id,
                                        self.applied_sn, ok=ok))

    def _on_ship(self, src, ship: Ship):
        if ship.epoch < self.epoch_seen:
            # Stale primary: tell it about the newer epoch so it steps
            # down instead of shipping forever.
            self._ack_ship(src, ok=False)
            return
        if ship.epoch > self.epoch_seen:
            self.epoch_seen = ship.epoch
        if self.role != BACKUP:
            # A primary with a valid (>=) epoch exists: fall in line.
            self._step_down("saw ship from a newer primary")
        self.known_primary = src
        self.last_primary_contact = self.engine.now
        # Consistency check on the record preceding the shipped range.
        if ship.prev_sn > self.applied_sn:
            self._ack_ship(src)          # gap: nack with our high-water
            return
        if ship.prev_sn >= 1 \
                and self._epoch_at(ship.prev_sn) != ship.prev_epoch:
            self._truncate(ship.prev_sn - 1)
            self._ack_ship(src)
            return
        ok = yield from self._integrate(ship.records)
        if ok:
            self.commit_sn = max(self.commit_sn,
                                 min(ship.commit_sn, self.applied_sn))
            self._ack_ship(src)

    def _integrate(self, records: Tuple[LogRecord, ...]):
        """Truncate any divergent overlap, persist, append in SN order.

        Returns False when a crash interrupted the persist.
        """
        fresh: List[LogRecord] = []
        for r in records:
            if r.sn <= self.applied_sn:
                if self._epoch_at(r.sn) != r.epoch:
                    # Divergent suffix from a dead primary's epoch:
                    # truncate, then take the new primary's records.
                    self._truncate(r.sn - 1)
                    fresh.append(r)
            elif r.sn == self.applied_sn + len(fresh) + 1:
                fresh.append(r)
            else:
                break                    # out-of-order tail: drop it
        if not fresh:
            return True
        ok = yield from self._persist(sum(r.nbytes for r in fresh))
        if not ok:
            return False
        self.log.extend(fresh)
        self._trace_point("repl_apply", sn=self.applied_sn,
                          epoch=self.epoch_seen, n=len(fresh))
        return True

    # ------------------------------------------------------------------
    # Primary: append, ship, commit, ack
    # ------------------------------------------------------------------
    def _is_primary_now(self) -> bool:
        if self.role != PRIMARY:
            return False
        if self.engine.now >= self.lease_expires:
            self._step_down("lease expired")
            return False
        return True

    def _on_client_write(self, src, msg: ClientWrite):
        if not self._is_primary_now():
            self.endpoint.send(src, ClientResp(
                msg.req_id, False, reason=NOT_PRIMARY,
                hint=self.known_primary))
            return
        if self.readonly:
            self.stats.readonly_rejects += 1
            self.endpoint.send(src, ClientResp(
                msg.req_id, False, reason=READONLY))
            return
        epoch = self.my_epoch
        record = LogRecord(self.applied_sn + 1, epoch, msg.nbytes,
                           token=(str(src), msg.req_id))
        ok = yield from self._persist(record.nbytes)
        if not ok or self.role != PRIMARY or self.my_epoch != epoch:
            return                       # crashed or deposed mid-persist
        self.log.append(record)
        self._trace_point("repl_apply", sn=self.applied_sn,
                          epoch=self.epoch_seen, n=1)
        self.pending[record.sn] = PendingWrite(src, msg.req_id,
                                               msg.deadline)
        # Ship eagerly: every peer is due now.
        now = self.engine.now
        for p in self.peers:
            self._next_ship[p] = min(self._next_ship.get(p, now), now)
        self._recompute_commit()

    def _on_client_read(self, src, msg: ClientRead) -> None:
        # Reads are served from the committed prefix; a read-only
        # primary (quorum lost) still serves them -- that is the
        # graceful-degradation contract.
        if self.role == PRIMARY and self.engine.now < self.lease_expires:
            self.endpoint.send(src, ClientResp(msg.req_id, True,
                                               sn=self.commit_sn))
        else:
            self.endpoint.send(src, ClientResp(
                msg.req_id, False, reason=NOT_PRIMARY,
                hint=self.known_primary))

    def _on_ship_ack(self, src, ack: ShipAck) -> None:
        if self.role != PRIMARY:
            return
        if not ack.ok and ack.epoch > self.my_epoch:
            self.epoch_seen = max(self.epoch_seen, ack.epoch)
            self._step_down("deposed by newer epoch")
            return
        if ack.epoch != self.my_epoch:
            return                       # stale ack from an old term
        prev = self._acked.get(src, 0)
        self._acked[src] = ack.applied_sn
        self._last_ack_t[src] = self.engine.now
        if ack.applied_sn != prev:
            # Progress (or a truncation walk-back): keep the pipeline
            # hot instead of waiting out the backoff.
            self._backoff[src] = self.cfg.ship_interval_ns
            self._next_ship[src] = self.engine.now
        self._recompute_commit()

    def _recompute_commit(self) -> None:
        votes = sorted([self.applied_sn]
                       + [self._acked.get(p, 0) for p in self.peers],
                       reverse=True)
        candidate = votes[self.cluster.quorum - 1]
        if candidate <= self.commit_sn:
            return
        if self._epoch_at(candidate) != self.my_epoch:
            # Raft's commit rule: only entries of the *current* epoch
            # commit by counting replicas; older entries commit
            # implicitly once a current-epoch entry (the election
            # no-op at the latest) covers them.  Without this, a
            # quorum-applied old-epoch entry could be acked and then
            # truncated by a later, more up-to-date primary.
            return
        self.commit_sn = candidate
        for sn in sorted(self.pending):
            if sn > self.commit_sn:
                break
            w = self.pending.pop(sn)
            self._trace_point("repl_ack", sn=sn, epoch=self.my_epoch,
                              quorum=self.cluster.quorum)
            self.endpoint.send(w.src, ClientResp(w.req_id, True, sn=sn))

    def _ship_to(self, peer: int) -> bool:
        """Ship the peer's next unacked range (empty = heartbeat);
        returns whether records were sent."""
        lo = self._acked.get(peer, 0) + 1
        if lo > self.applied_sn:
            records: Tuple[LogRecord, ...] = ()
            prev_sn = self.applied_sn
        else:
            records = tuple(self.log[lo - 1: lo - 1 + self.cfg.ship_batch])
            prev_sn = lo - 1
        ship = Ship(self.my_epoch, prev_sn, self._epoch_at(prev_sn),
                    records, self.commit_sn)
        if records:
            hi = records[-1].sn
            if hi <= self._sent_hi.get(peer, 0):
                self.stats.retransmits += 1
            self._sent_hi[peer] = max(self._sent_hi.get(peer, 0), hi)
            tr = self.engine.tracer
            if tr is not None:
                tr.point("repl_ship", track="net", frm=self.node_id,
                         to=peer, epoch=self.my_epoch,
                         lo=records[0].sn, hi=hi)
        self.endpoint.send(peer, ship, nbytes=ship.nbytes)
        return bool(records)

    def _primary_tick(self) -> None:
        cfg = self.cfg
        now = self.engine.now
        # Quorum health: the primary itself plus every peer heard from
        # within the read-only window.
        fresh = 1 + sum(1 for p in self.peers
                        if now - self._last_ack_t.get(p, -10**15)
                        <= cfg.readonly_after_ns)
        if fresh >= self.cluster.quorum:
            self._last_quorum_t = now
            self.readonly = False
        elif now - self._last_quorum_t > cfg.readonly_after_ns:
            if not self.readonly:
                self.readonly = True
                self._trace_point("repl_readonly", epoch=self.my_epoch)
        # Lease renewal -- suppressed while read-only, so a partitioned
        # primary lets its lease lapse and the majority side can elect.
        if not self.readonly and now >= self._next_renew:
            self.cluster.send_lease_request(self)
            self._next_renew = now + cfg.renew_every_ns
        # Ship / retransmit with bounded, deadline-clamped backoff.
        clamp = None
        deadlines = [w.deadline for w in self.pending.values()
                     if w.deadline is not None]
        if deadlines:
            clamp = max(cfg.tick_ns, min(deadlines) - now)
        for p in self.peers:
            if now >= self._next_ship.get(p, 0):
                if self._ship_to(p):
                    # Unacked records outstanding: exponential backoff,
                    # clamped so a deadlined write still gets retries.
                    backoff = min(
                        self._backoff.get(p, cfg.ship_interval_ns) * 2,
                        cfg.retransmit_cap_ns)
                    self._backoff[p] = backoff
                    delay = backoff if clamp is None else min(backoff, clamp)
                else:
                    # Idle heartbeat: steady cadence, never backed off,
                    # so quorum-health freshness stays well inside the
                    # read-only window.
                    self._backoff[p] = cfg.ship_interval_ns
                    delay = cfg.ship_interval_ns
                self._next_ship[p] = now + delay

    # ------------------------------------------------------------------
    # Role transitions
    # ------------------------------------------------------------------
    def _step_down(self, why: str) -> None:
        if self.role == PRIMARY:
            self._trace_point("repl_stepdown", epoch=self.my_epoch, why=why)
        self.role = BACKUP
        self.readonly = False
        self.pending.clear()
        self._el_phase = None
        self.last_primary_contact = self.engine.now

    def _become_primary(self, epoch: int, expires_at: int) -> None:
        now = self.engine.now
        self.role = PRIMARY
        self.my_epoch = epoch
        self.epoch_seen = max(self.epoch_seen, epoch)
        self.lease_expires = expires_at
        self.known_primary = self.node_id
        self.readonly = False
        self.pending.clear()
        self._el_phase = None
        self._el_backoff = self.cfg.election_backoff_base_ns
        self._last_quorum_t = now
        self._next_renew = now + self.cfg.renew_every_ns
        self._acked = {}
        self._last_ack_t = {}
        self._sent_hi = {}
        self._backoff = {p: self.cfg.ship_interval_ns for p in self.peers}
        self._next_ship = {p: now for p in self.peers}
        self.cluster.note_primary(self.node_id, epoch)

    # ------------------------------------------------------------------
    # Elections (probe quorum -> best log wins the lease)
    # ------------------------------------------------------------------
    def _log_rank(self) -> Tuple[int, int]:
        return (self._epoch_at(self.applied_sn), self.applied_sn)

    def _start_election(self) -> None:
        cfg = self.cfg
        self.role = CANDIDATE
        self._el_phase = "probe"
        self._el_deadline = self.engine.now + cfg.election_timeout_ns
        self._el_replies = {self.node_id: ProbeReply(
            self.node_id, self.applied_sn,
            self._epoch_at(self.applied_sn), self.epoch_seen)}
        for p in self.peers:
            self.endpoint.send(p, Probe())

    def _on_probe_reply(self, reply: ProbeReply) -> None:
        if self.role != CANDIDATE or self._el_phase != "probe":
            return
        self.epoch_seen = max(self.epoch_seen, reply.epoch_seen)
        self._el_replies[reply.node] = reply
        if len(self._el_replies) < self.cluster.quorum:
            return
        # A quorum answered.  Every probe quorum intersects every ack
        # quorum, so the best (tail_epoch, applied_sn) among the
        # responders covers every quorum-acked record; only a candidate
        # whose own log matches that rank may take the lease (Raft's
        # election restriction).  A behind candidate abandons the round
        # -- the best-logged node's own failover timer will elect it.
        best = max((r.tail_epoch, r.applied_sn)
                   for r in self._el_replies.values())
        if self._log_rank() >= best:
            self._request_lease()
        else:
            self._abandon_round()

    def _abandon_round(self) -> None:
        self._el_phase = None
        self._el_next = self.engine.now + self._el_backoff
        self._el_backoff = min(self._el_backoff * 2,
                               self.cfg.election_backoff_cap_ns)

    def _request_lease(self) -> None:
        self._el_phase = "lease"
        self._el_deadline = self.engine.now + self.cfg.election_timeout_ns
        self.cluster.send_lease_request(self)

    def _on_lease_reply(self, reply: LeaseReply):
        if self.role == PRIMARY:
            if reply.granted and reply.holder == self.node_id \
                    and reply.epoch == self.my_epoch:
                self.lease_expires = reply.expires_at   # renewed
            elif not reply.granted or reply.holder != self.node_id:
                self._step_down("lease lost")
            return
        if self.role != CANDIDATE or self._el_phase != "lease":
            return
        if reply.granted and reply.holder == self.node_id:
            self._become_primary(reply.epoch, reply.expires_at)
            # Commit-point no-op: the new primary cannot count-commit
            # inherited old-epoch records (see _recompute_commit), so
            # it seals them under its own epoch immediately.
            epoch = self.my_epoch
            noop = LogRecord(self.applied_sn + 1, epoch, 0,
                             token=("noop", epoch))
            ok = yield from self._persist(0)
            if not ok or self.role != PRIMARY or self.my_epoch != epoch:
                return
            self.log.append(noop)
            self._trace_point("repl_apply", sn=self.applied_sn,
                              epoch=self.epoch_seen, n=1)
        else:
            # Someone else holds the lease: fall back and give them a
            # full contact window before trying again.
            self._step_down("lease held elsewhere")

    def _candidate_tick(self) -> None:
        now = self.engine.now
        if self._el_phase is not None and now >= self._el_deadline:
            # This round stalled (probe/lease replies lost): back off
            # and retry a full round later.
            self._abandon_round()
        if self._el_phase is None and now >= self._el_next:
            self._start_election()

    # ------------------------------------------------------------------
    # Per-wakeup timer work
    # ------------------------------------------------------------------
    def _tick(self) -> None:
        role = self.role
        if role == PRIMARY:
            if self._is_primary_now():
                self._primary_tick()
        elif role == CANDIDATE:
            self._candidate_tick()
        else:
            timeout = (self.cfg.failover_timeout_ns
                       + self.node_id * self.cfg.failover_stagger_ns)
            if self.engine.now - self.last_primary_contact > timeout:
                self._start_election()
