"""Vectorised data-plane kernel selection (DESIGN.md §15).

The simulator's numeric hot kernels -- bandwidth waterfill, line-stream
replay, latency percentiles, wheel compaction -- each ship in two
implementations: the pure-Python *reference* (always available, always
the semantics) and a numpy-backed *vector* kernel that must produce
bit-identical outputs.  This module is the single switchboard deciding
which one is bound:

* numpy importable **and** ``REPRO_VECTOR`` unset/enabled -> vector
  kernels are selected at import;
* numpy absent -> reference kernels, silently (the fallback is
  first-class: CI runs a no-numpy leg);
* ``REPRO_VECTOR=0`` -> reference kernels even with numpy installed
  (the kill switch; also the A/B lever the perf harness uses).

Consumer modules register a *rebind* callback via :func:`register`;
it is invoked immediately with the current mode and again whenever
:func:`set_enabled` flips it, so the parity tests and the perf harness
can toggle kernels at runtime without re-importing anything.  Rebind
callbacks must also invalidate any memo caches keyed on kernel output
identity (the outputs are equal by the parity invariant, but A/B
timing must not serve one mode's cached results to the other).

Exact equality is a hard requirement, not an aspiration: the golden
equivalence, traced-golden, and crash-sweep suites run byte-exact in
both modes, and ``tests/test_vector_parity.py`` fuzzes each kernel
pair directly.  See DESIGN.md §15 for the per-kernel equality
argument.
"""

from __future__ import annotations

import os
from typing import Callable, List, Optional

#: The kill switch.  Evaluated once at import; flip at runtime with
#: :func:`set_enabled` instead of mutating the environment.
_KILLED = os.environ.get("REPRO_VECTOR", "1").strip().lower() in (
    "0", "off", "false", "no")

try:
    import numpy as _np
    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    _np = None
    HAVE_NUMPY = False

#: Whether vector kernels are currently bound.
ENABLED = HAVE_NUMPY and not _KILLED

_REBINDERS: List[Callable[[bool], None]] = []


def numpy():
    """The numpy module, or None when unavailable."""
    return _np


def register(rebind: Callable[[bool], None]) -> Callable[[bool], None]:
    """Register a kernel-selection callback and invoke it immediately.

    ``rebind(enabled)`` binds the module's kernel globals to the vector
    implementations when ``enabled`` is True, to the reference ones
    otherwise, and drops any caches holding kernel outputs.
    """
    _REBINDERS.append(rebind)
    rebind(ENABLED)
    return rebind


def set_enabled(flag: bool) -> bool:
    """Select vector (True) or reference (False) kernels process-wide.

    Requests to enable without numpy installed stay on the reference
    kernels.  Returns the mode actually in effect.
    """
    global ENABLED
    ENABLED = bool(flag) and HAVE_NUMPY
    for rebind in _REBINDERS:
        rebind(ENABLED)
    return ENABLED


class forced:
    """Context manager pinning the kernel mode (parity tests, A/B runs).

    >>> with forced(False):
    ...     ...  # reference kernels
    """

    def __init__(self, enabled: bool):
        self.enabled = enabled
        self._prev: Optional[bool] = None

    def __enter__(self):
        self._prev = ENABLED
        set_enabled(self.enabled)
        return self

    def __exit__(self, *exc):
        set_enabled(self._prev)
        return False


def describe() -> dict:
    """Mode summary recorded by the perf harness / profiler."""
    return {
        "numpy": getattr(_np, "__version__", None),
        "enabled": ENABLED,
        "kill_switch": _KILLED,
    }
