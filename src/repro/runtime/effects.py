"""Effects a uthread may yield to its scheduler.

A uthread body is a plain generator; each ``yield`` hands the scheduler
one of these request objects and receives the request's result when the
scheduler resumes it:

``Compute(ns)``
    Burn CPU for ``ns`` nanoseconds (uninterruptible, like a real
    uthread between yield points).

``Syscall(op)``
    Execute a filesystem operation (a simulation coroutine produced by
    e.g. ``fs.write(ctx, ...)``).  The synchronous part runs inline on
    the core.  If the operation returns pending asynchronous I/O the
    uthread is parked until completion and the core switches; the
    effect's result is always the finished :class:`~repro.fs.nova.OpResult`.

``Sleep(ns)``
    Leave the core for at least ``ns`` (timer sleep -- the core is free
    to run others; used by periodic tasks like the GC in Figure 12).

``Yield()``
    Voluntarily hand the core to the next runnable uthread.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator


@dataclass
class Compute:
    """Burn CPU for ``ns`` nanoseconds."""

    ns: int

    def __post_init__(self):
        if self.ns < 0:
            raise ValueError(f"negative compute time: {self.ns}")


@dataclass
class Syscall:
    """Execute a filesystem operation coroutine."""

    op: Generator
    #: Free-form label used in traces ("write", "read", ...).
    label: str = "syscall"


@dataclass
class Sleep:
    """Timer sleep: the uthread leaves the core for ``ns``."""

    ns: int

    def __post_init__(self):
        if self.ns < 0:
            raise ValueError(f"negative sleep time: {self.ns}")


@dataclass
class Yield:
    """Voluntarily yield the core."""


EffectResult = Any
