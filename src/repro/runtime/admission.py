"""Admission control and backpressure at the syscall boundary.

Under open-loop overload the runtime's queues grow without bound: every
arriving request parks behind the same saturated data path and p99
latency diverges.  The :class:`AdmissionController` sits in front of
syscall submission (consulted by :class:`~repro.runtime.scheduler.CoreScheduler`)
and turns sustained excess load away *early*, while it is still cheap.

Three mechanisms gate admission, all deterministic under the simulated
clock:

* a **token bucket** (``rate_ops_per_sec`` steady rate, ``burst``
  capacity) bounds the long-run syscall rate while absorbing bursts;
* an **inflight cap** (``max_inflight``) bounds concurrently admitted
  syscalls that have not yet completed;
* a **queue-depth gate** (``max_queue_depth`` against ``depth_fn``,
  wired by the runtime to the longest per-core run queue) sheds load
  once backlog builds regardless of arrival rate.

What happens to a turned-away syscall is the **policy**:

* ``"reject"`` -- fail fast: the scheduler raises
  :class:`OverloadRejected` inside the issuing uthread.
* ``"shed"`` -- priority-aware reject: only requests with priority <=
  ``shed_priority`` are turned away; higher-priority requests ride
  through the overload untouched.
* ``"degrade"`` -- admit, but force the synchronous (memcpy) data path
  via ``ctx.force_sync``: latency rises but queues stay bounded because
  the op completes before the uthread issues another.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.analysis.metrics import OverloadStats
from repro.sim import Engine

POLICIES = ("reject", "shed", "degrade")


class OverloadRejected(Exception):
    """The admission controller turned this syscall away."""


class AdmissionController:
    """Token-bucket + inflight + queue-depth gate for syscalls.

    All limits are optional; a limit left ``None`` never triggers.  The
    bucket refills lazily from simulated time, so behaviour is a pure
    function of the event trace (no wall-clock dependence).
    """

    def __init__(self, engine: Engine,
                 rate_ops_per_sec: Optional[float] = None,
                 burst: int = 32,
                 max_inflight: Optional[int] = None,
                 max_queue_depth: Optional[int] = None,
                 policy: str = "reject",
                 shed_priority: int = 0,
                 stats: Optional[OverloadStats] = None,
                 depth_fn: Optional[Callable[[], int]] = None):
        if policy not in POLICIES:
            raise ValueError(f"policy must be one of {POLICIES}, got {policy!r}")
        if rate_ops_per_sec is not None and rate_ops_per_sec <= 0:
            raise ValueError(f"rate must be > 0, got {rate_ops_per_sec}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.engine = engine
        self.rate_ops_per_sec = rate_ops_per_sec
        self.burst = burst
        self.max_inflight = max_inflight
        self.max_queue_depth = max_queue_depth
        self.policy = policy
        self.shed_priority = shed_priority
        self.stats = stats if stats is not None else OverloadStats()
        #: Supplies the current backlog (longest per-core run queue);
        #: wired by the runtime when the controller is installed.
        self.depth_fn = depth_fn
        self._tokens = float(burst)
        self._refilled_at = engine.now
        self.inflight = 0
        self.inflight_high_water = 0

    # -- token bucket ---------------------------------------------------
    def _refill(self) -> None:
        if self.rate_ops_per_sec is None:
            return
        now = self.engine.now
        elapsed = now - self._refilled_at
        if elapsed > 0:
            self._tokens = min(float(self.burst),
                               self._tokens
                               + elapsed * self.rate_ops_per_sec / 1e9)
            self._refilled_at = now

    @property
    def tokens(self) -> float:
        """Current bucket level (after a lazy refill)."""
        self._refill()
        return self._tokens

    # -- the gate -------------------------------------------------------
    def admit(self, priority: int = 0) -> str:
        """Decide one syscall: ``"admit"``, ``"reject"``, or ``"degrade"``.

        ``"admit"`` and ``"degrade"`` take an inflight slot the caller
        must return via :meth:`release` once the op resolves.
        """
        self._refill()
        overloaded = False
        if (self.max_inflight is not None
                and self.inflight >= self.max_inflight):
            overloaded = True
        if (not overloaded and self.max_queue_depth is not None
                and self.depth_fn is not None
                and self.depth_fn() >= self.max_queue_depth):
            overloaded = True
        if not overloaded and self.rate_ops_per_sec is not None:
            if self._tokens >= 1.0:
                self._tokens -= 1.0
            else:
                overloaded = True
        if not overloaded:
            return self._take("admit")
        if self.policy == "degrade":
            return self._take("degrade")
        if self.policy == "shed" and priority > self.shed_priority:
            return self._take("admit")
        if self.policy == "shed":
            self.stats.shed += 1
        else:
            self.stats.rejected += 1
        return "reject"

    def _take(self, verdict: str) -> str:
        self.inflight += 1
        self.inflight_high_water = max(self.inflight_high_water,
                                       self.inflight)
        self.stats.admitted += 1
        return verdict

    def release(self) -> None:
        """Return an inflight slot (op completed, failed, or timed out)."""
        if self.inflight <= 0:
            raise RuntimeError("release() without matching admit()")
        self.inflight -= 1
