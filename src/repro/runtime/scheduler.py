"""Per-core schedulers and the runtime that owns them.

Scheduling policy (mirroring the paper's modified Caladan, §5):

* Each core runs one scheduler.  Runnable uthreads live in two FIFO
  queues: ``completed_q`` (parked uthreads whose asynchronous I/O has
  finished -- preferred, to preserve the low-latency advantage) and
  ``fresh_q`` (everything else).
* A syscall executes inline on the core.  When it returns with pending
  asynchronous I/O the runtime charges one completion poll, parks the
  uthread, and switches to the next runnable one (``thread_yield()`` on
  every return from the kernel).
* A synchronous syscall result resumes the *same* uthread immediately
  -- which is exactly why interleaved memcpy reads delay concurrent
  asynchronous reads in Figure 9 (the paper's higher-read-latency
  effect).
* Idle cores steal runnable uthreads from the longest queue
  (work stealing; can be disabled for the Figure 11 ablation).
* A uthread is never resumed while its own issued DMA is unfinished
  (correctness rule from §5) -- parking guarantees it structurally.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from repro.analysis.metrics import OverloadStats
from repro.fs.nova import DeadlineExceeded, FsError, OpContext
from repro.hw.cpu import Core
from repro.hw.platform import Platform
from repro.runtime.admission import AdmissionController, OverloadRejected
from repro.runtime.effects import Compute, Sleep, Syscall, Yield
from repro.runtime.uthread import Uthread, UthreadState
from repro.sim import Event, Gate, WaitTimeout


class CoreScheduler:
    """The scheduler multiplexing uthreads on one physical core."""

    def __init__(self, runtime: "Runtime", core: Core):
        self.runtime = runtime
        self.core = core
        self.engine = runtime.engine
        self.completed_q: Deque[Uthread] = deque()
        self.fresh_q: Deque[Uthread] = deque()
        self._wake = Gate(self.engine)
        self.switches = 0
        self.steals = 0
        #: Deepest combined run queue ever seen (backpressure signal).
        self.queue_high_water = 0
        self._proc = self.engine.process(self._loop(),
                                         name=f"sched-core{core.core_id}")

    # -- queue management ------------------------------------------------
    def enqueue(self, ut: Uthread, completed: bool = False) -> None:
        """Make a uthread runnable on this core and wake the scheduler."""
        ut.state = UthreadState.RUNNABLE
        ut.home = self
        (self.completed_q if completed else self.fresh_q).append(ut)
        self.queue_high_water = max(self.queue_high_water, self.queue_len)
        self._wake.pulse()

    @property
    def queue_len(self) -> int:
        return len(self.completed_q) + len(self.fresh_q)

    def _next_local(self) -> Optional[Uthread]:
        if self.completed_q:
            return self.completed_q.popleft()
        if self.fresh_q:
            return self.fresh_q.popleft()
        return None

    # -- main loop ----------------------------------------------------------
    def _loop(self):
        model = self.runtime.platform.model
        while True:
            ut = self._next_local()
            stolen = False
            if ut is None and self.runtime.steal:
                ut = self._try_steal()
                stolen = ut is not None
            if ut is None:
                yield self._wake.wait()
                continue
            self.core.mark_busy(ut.name)
            try:
                if stolen:
                    yield self.engine.sleep(model.work_steal_cost)
                yield from self._run(ut)
            finally:
                # A uthread blocked in-kernel (idle_wait) may have
                # already released the core; only close an open span.
                if self.core.busy:
                    self.core.mark_idle()

    def _try_steal(self) -> Optional[Uthread]:
        victims = [s for s in self.runtime.schedulers
                   if s is not self and s.queue_len > 0]
        if not victims:
            return None
        victim = max(victims, key=lambda s: (s.queue_len, -s.core.core_id))
        ut = victim._next_local()
        if ut is not None:
            ut.steals += 1
            ut.home = self
            self.steals += 1
        return ut

    # -- running one uthread until it leaves the core -------------------------
    def _run(self, ut: Uthread):
        model = self.runtime.platform.model
        self.switches += 1
        yield self.engine.sleep(model.uthread_switch_cost)
        ut.state = UthreadState.RUNNING
        # A Naive-EasyIO style deferred second syscall (metadata commit
        # after DMA completion) runs before the uthread resumes.
        if ut.pending_continuation is not None:
            make, result = ut.pending_continuation
            ut.pending_continuation = None
            ctx = OpContext(self.runtime.platform, core=self.core,
                            deadline=ut.deadline)
            ut.last_op_id = ctx.op_id
            yield from make(ctx)
            ut.resume_value = result
        value = ut.resume_value
        ut.resume_value = None
        #: Exception to deliver into the body instead of a value --
        #: how syscall-level failures (DeadlineExceeded, WaitTimeout,
        #: OverloadRejected) reach application code without killing
        #: the scheduler.
        throw: Optional[BaseException] = None
        while True:
            try:
                if throw is not None:
                    exc, throw = throw, None
                    effect = ut.body.throw(exc)
                else:
                    effect = ut.body.send(value)
            except StopIteration as stop:
                ut.finish(stop.value)
                self.runtime._uthread_finished(ut)
                return
            except BaseException as exc:
                ut.fail(exc)
                self.runtime._uthread_finished(ut)
                raise
            value = None
            if isinstance(effect, Compute):
                yield self.engine.sleep(effect.ns)
            elif isinstance(effect, Yield):
                ut.state = UthreadState.RUNNABLE
                self.fresh_q.append(ut)
                self.queue_high_water = max(self.queue_high_water,
                                            self.queue_len)
                return
            elif isinstance(effect, Sleep):
                ut.state = UthreadState.PARKED
                home = self
                wake = self.engine.sleep(effect.ns)
                wake.add_callback(lambda _e, u=ut: home.enqueue(u))
                return
            elif isinstance(effect, Syscall):
                admission = self.runtime.admission
                verdict = ("admit" if admission is None
                           else admission.admit(ut.priority))
                if admission is not None:
                    tr = self.engine.tracer
                    if tr is not None:
                        tr.point("admission",
                                 track=f"core{self.core.core_id}",
                                 verdict=verdict, ut=ut.name)
                if verdict == "reject":
                    # Turned away at the gate: the syscall entry was
                    # still paid, then the error surfaces in the app.
                    yield self.engine.sleep(model.syscall_cost)
                    throw = OverloadRejected(
                        f"syscall by {ut.name} rejected under overload")
                    continue
                ctx = OpContext(self.runtime.platform, core=self.core,
                                deadline=ut.deadline)
                ut.last_op_id = ctx.op_id
                if verdict == "degrade":
                    ctx.force_sync = True
                try:
                    result = yield from effect.op(ctx)
                except (FsError, WaitTimeout) as exc:
                    # Typed op failure: release the admission slot,
                    # count it, and deliver into the app -- the
                    # scheduler itself must survive.
                    if admission is not None:
                        admission.release()
                    stats = self.runtime.overload_stats
                    if isinstance(exc, DeadlineExceeded):
                        stats.deadline_misses += 1
                    elif isinstance(exc, WaitTimeout):
                        stats.timeouts += 1
                    ut.syscalls += 1
                    yield self.engine.sleep(model.completion_poll_cost)
                    throw = exc
                    continue
                ut.syscalls += 1
                # Returning from the kernel: poll completion buffers.
                yield self.engine.sleep(model.completion_poll_cost)
                if result is not None and getattr(result, "is_async", False):
                    ut.state = UthreadState.PARKED
                    ut.io_parked = True
                    ut.parks += 1
                    tr = self.engine.tracer
                    if tr is not None:
                        op = result.ctx.op_id if result.ctx is not None \
                            else None
                        tr.point("park", track=f"core{self.core.core_id}",
                                 op=op, ut=ut.name)
                    self._park(ut, result, admission)
                    return
                if admission is not None:
                    admission.release()
                value = result
            else:
                raise TypeError(
                    f"uthread {ut.name} yielded unknown effect {effect!r}")

    def _park(self, ut: Uthread, result,
              admission: Optional[AdmissionController] = None) -> None:
        """Park until the op's pending I/O completes, then requeue."""
        def on_complete(_event):
            if admission is not None:
                admission.release()
            tr = self.engine.tracer
            if tr is not None:
                op = result.ctx.op_id if result.ctx is not None else None
                tr.point("wake", track="runtime", op=op, ut=ut.name)
            ut.io_parked = False
            continuation = getattr(result, "continuation", None)
            if continuation is not None:
                ut.pending_continuation = (continuation, result)
            else:
                ut.resume_value = result
            # Resume on the uthread's (possibly new) home core, with
            # completed-I/O priority.
            ut.home.enqueue(ut, completed=True)
        result.pending.add_callback(on_complete)


class Runtime:
    """The userspace runtime: one scheduler per dedicated core.

    ``admission`` installs an :class:`AdmissionController` in front of
    syscall submission; its ``depth_fn`` is wired to the longest
    per-core run queue unless already set.  ``overload_stats`` shares
    one counter set between the controller, the schedulers, the
    filesystem, and a watchdog.
    """

    def __init__(self, platform: Platform, cores: Optional[List[Core]] = None,
                 steal: bool = True,
                 admission: Optional[AdmissionController] = None,
                 overload_stats: Optional[OverloadStats] = None):
        self.platform = platform
        self.engine = platform.engine
        self.steal = steal
        self.cores = cores if cores is not None else platform.cores
        if not self.cores:
            raise ValueError("runtime needs at least one core")
        self.admission = admission
        if overload_stats is not None:
            self.overload_stats = overload_stats
        elif admission is not None:
            self.overload_stats = admission.stats
        else:
            self.overload_stats = OverloadStats()
        self.schedulers = [CoreScheduler(self, core) for core in self.cores]
        if admission is not None and admission.depth_fn is None:
            admission.depth_fn = self.max_queue_len
        #: Live (spawned, unfinished) uthreads, in spawn order -- the
        #: watchdog walks this to find parked-past-deadline uthreads.
        self.live_uthreads: dict = {}
        #: Hang watchdog, installed via Watchdog(...).attach(self).
        self.watchdog = None
        self._active = 0
        self._drain_waiters: List[Event] = []
        self._spawn_rr = 0

    def max_queue_len(self) -> int:
        """Longest per-core run queue right now (backpressure signal)."""
        return max(s.queue_len for s in self.schedulers)

    def spawn(self, body, core: Optional[int] = None,
              name: Optional[str] = None,
              deadline: Optional[int] = None, priority: int = 0) -> Uthread:
        """Create a uthread and enqueue it (round-robin without ``core``).

        ``deadline`` is an *absolute* simulated time (ns): it propagates
        into every syscall the uthread issues and is what the watchdog
        judges hangs against.  ``priority`` feeds admission control.
        """
        ut = Uthread(self.engine, body, name=name, deadline=deadline,
                     priority=priority)
        if core is None:
            idx = self._spawn_rr % len(self.schedulers)
            self._spawn_rr += 1
        else:
            idx = core
        self._active += 1
        self.live_uthreads[ut] = True
        self.schedulers[idx].enqueue(ut)
        if self.watchdog is not None:
            self.watchdog.notify()
        return ut

    @property
    def active_uthreads(self) -> int:
        return self._active

    def _uthread_finished(self, ut: Optional[Uthread] = None) -> None:
        self._active -= 1
        if ut is not None:
            self.live_uthreads.pop(ut, None)
        if self._active == 0:
            waiters, self._drain_waiters = self._drain_waiters, []
            for ev in waiters:
                ev.succeed()

    def drain(self) -> Event:
        """Event firing when no live uthreads remain."""
        ev = self.engine.event()
        if self._active == 0:
            ev.succeed()
        else:
            self._drain_waiters.append(ev)
        return ev

    def total_switches(self) -> int:
        return sum(s.switches for s in self.schedulers)
