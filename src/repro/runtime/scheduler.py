"""Per-core schedulers and the runtime that owns them.

Scheduling policy (mirroring the paper's modified Caladan, §5):

* Each core runs one scheduler.  Runnable uthreads live in two FIFO
  queues: ``completed_q`` (parked uthreads whose asynchronous I/O has
  finished -- preferred, to preserve the low-latency advantage) and
  ``fresh_q`` (everything else).
* A syscall executes inline on the core.  When it returns with pending
  asynchronous I/O the runtime charges one completion poll, parks the
  uthread, and switches to the next runnable one (``thread_yield()`` on
  every return from the kernel).
* A synchronous syscall result resumes the *same* uthread immediately
  -- which is exactly why interleaved memcpy reads delay concurrent
  asynchronous reads in Figure 9 (the paper's higher-read-latency
  effect).
* Idle cores steal runnable uthreads from the longest queue
  (work stealing; can be disabled for the Figure 11 ablation).
* A uthread is never resumed while its own issued DMA is unfinished
  (correctness rule from §5) -- parking guarantees it structurally.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from repro.fs.nova import OpContext
from repro.hw.cpu import Core
from repro.hw.platform import Platform
from repro.runtime.effects import Compute, Sleep, Syscall, Yield
from repro.runtime.uthread import Uthread, UthreadState
from repro.sim import Event, Gate


class CoreScheduler:
    """The scheduler multiplexing uthreads on one physical core."""

    def __init__(self, runtime: "Runtime", core: Core):
        self.runtime = runtime
        self.core = core
        self.engine = runtime.engine
        self.completed_q: Deque[Uthread] = deque()
        self.fresh_q: Deque[Uthread] = deque()
        self._wake = Gate(self.engine)
        self.switches = 0
        self.steals = 0
        self._proc = self.engine.process(self._loop(),
                                         name=f"sched-core{core.core_id}")

    # -- queue management ------------------------------------------------
    def enqueue(self, ut: Uthread, completed: bool = False) -> None:
        """Make a uthread runnable on this core and wake the scheduler."""
        ut.state = UthreadState.RUNNABLE
        ut.home = self
        (self.completed_q if completed else self.fresh_q).append(ut)
        self._wake.pulse()

    @property
    def queue_len(self) -> int:
        return len(self.completed_q) + len(self.fresh_q)

    def _next_local(self) -> Optional[Uthread]:
        if self.completed_q:
            return self.completed_q.popleft()
        if self.fresh_q:
            return self.fresh_q.popleft()
        return None

    # -- main loop ----------------------------------------------------------
    def _loop(self):
        model = self.runtime.platform.model
        while True:
            ut = self._next_local()
            stolen = False
            if ut is None and self.runtime.steal:
                ut = self._try_steal()
                stolen = ut is not None
            if ut is None:
                yield self._wake.wait()
                continue
            self.core.mark_busy(ut.name)
            try:
                if stolen:
                    yield self.engine.timeout(model.work_steal_cost)
                yield from self._run(ut)
            finally:
                # A uthread blocked in-kernel (idle_wait) may have
                # already released the core; only close an open span.
                if self.core.busy:
                    self.core.mark_idle()

    def _try_steal(self) -> Optional[Uthread]:
        victims = [s for s in self.runtime.schedulers
                   if s is not self and s.queue_len > 0]
        if not victims:
            return None
        victim = max(victims, key=lambda s: (s.queue_len, -s.core.core_id))
        ut = victim._next_local()
        if ut is not None:
            ut.steals += 1
            ut.home = self
            self.steals += 1
        return ut

    # -- running one uthread until it leaves the core -------------------------
    def _run(self, ut: Uthread):
        model = self.runtime.platform.model
        self.switches += 1
        yield self.engine.timeout(model.uthread_switch_cost)
        ut.state = UthreadState.RUNNING
        # A Naive-EasyIO style deferred second syscall (metadata commit
        # after DMA completion) runs before the uthread resumes.
        if getattr(ut, "pending_continuation", None) is not None:
            make, result = ut.pending_continuation
            ut.pending_continuation = None
            ctx = OpContext(self.runtime.platform, core=self.core)
            yield from make(ctx)
            ut.resume_value = result
        value = ut.resume_value
        ut.resume_value = None
        while True:
            try:
                effect = ut.body.send(value)
            except StopIteration as stop:
                ut.finish(stop.value)
                self.runtime._uthread_finished()
                return
            except BaseException as exc:
                ut.fail(exc)
                self.runtime._uthread_finished()
                raise
            value = None
            if isinstance(effect, Compute):
                yield self.engine.timeout(effect.ns)
            elif isinstance(effect, Yield):
                ut.state = UthreadState.RUNNABLE
                self.fresh_q.append(ut)
                return
            elif isinstance(effect, Sleep):
                ut.state = UthreadState.PARKED
                home = self
                wake = self.engine.timeout(effect.ns)
                wake.add_callback(lambda _e, u=ut: home.enqueue(u))
                return
            elif isinstance(effect, Syscall):
                ctx = OpContext(self.runtime.platform, core=self.core)
                result = yield from effect.op(ctx)
                ut.syscalls += 1
                # Returning from the kernel: poll completion buffers.
                yield self.engine.timeout(model.completion_poll_cost)
                if result is not None and getattr(result, "is_async", False):
                    ut.state = UthreadState.PARKED
                    ut.io_parked = True
                    ut.parks += 1
                    self._park(ut, result)
                    return
                value = result
            else:
                raise TypeError(
                    f"uthread {ut.name} yielded unknown effect {effect!r}")

    def _park(self, ut: Uthread, result) -> None:
        """Park until the op's pending I/O completes, then requeue."""
        def on_complete(_event):
            ut.io_parked = False
            continuation = getattr(result, "continuation", None)
            if continuation is not None:
                ut.pending_continuation = (continuation, result)
            else:
                ut.resume_value = result
            # Resume on the uthread's (possibly new) home core, with
            # completed-I/O priority.
            ut.home.enqueue(ut, completed=True)
        result.pending.add_callback(on_complete)


class Runtime:
    """The userspace runtime: one scheduler per dedicated core."""

    def __init__(self, platform: Platform, cores: Optional[List[Core]] = None,
                 steal: bool = True):
        self.platform = platform
        self.engine = platform.engine
        self.steal = steal
        self.cores = cores if cores is not None else platform.cores
        if not self.cores:
            raise ValueError("runtime needs at least one core")
        self.schedulers = [CoreScheduler(self, core) for core in self.cores]
        self._active = 0
        self._drain_waiters: List[Event] = []
        self._spawn_rr = 0

    def spawn(self, body, core: Optional[int] = None,
              name: Optional[str] = None) -> Uthread:
        """Create a uthread and enqueue it (round-robin without ``core``)."""
        ut = Uthread(self.engine, body, name=name)
        if core is None:
            idx = self._spawn_rr % len(self.schedulers)
            self._spawn_rr += 1
        else:
            idx = core
        self._active += 1
        self.schedulers[idx].enqueue(ut)
        return ut

    @property
    def active_uthreads(self) -> int:
        return self._active

    def _uthread_finished(self) -> None:
        self._active -= 1
        if self._active == 0:
            waiters, self._drain_waiters = self._drain_waiters, []
            for ev in waiters:
                ev.succeed()

    def drain(self) -> Event:
        """Event firing when no live uthreads remain."""
        ev = self.engine.event()
        if self._active == 0:
            ev.succeed()
        else:
            self._drain_waiters.append(ev)
        return ev

    def total_switches(self) -> int:
        return sum(s.switches for s in self.schedulers)
