"""Lightweight userspace threads.

A :class:`Uthread` owns the generator implementing the application
task plus the scheduling state the runtime needs: which scheduler it
belongs to, whether it is parked on an I/O completion, and lifetime
statistics.  It is also waitable -- ``uthread.done`` is a simulation
event firing when the body returns.
"""

from __future__ import annotations

import enum
from typing import Any, Generator, Optional

from repro.sim import Engine, Event


class UthreadState(enum.Enum):
    RUNNABLE = "runnable"
    RUNNING = "running"
    PARKED = "parked"      # waiting on an I/O completion or timer
    FINISHED = "finished"


class Uthread:
    """One userspace thread."""

    __slots__ = ("uid", "engine", "body", "name", "state", "deadline",
                 "priority", "watchdog_flagged", "home", "resume_value",
                 "done", "io_parked", "pending_continuation", "spawned_at",
                 "finished_at", "syscalls", "parks", "steals", "last_op_id")

    def __init__(self, engine: Engine, body: Generator,
                 name: Optional[str] = None,
                 deadline: Optional[int] = None, priority: int = 0):
        if not hasattr(body, "send"):
            raise TypeError(
                f"uthread body must be a generator, got {type(body).__name__}")
        # Engine-scoped uid: deterministic per run, not per process
        # (a class-level counter would leak across engines and make
        # uthread names depend on everything run before).
        self.uid = engine.name_seq("uthread")
        self.engine = engine
        self.body = body
        self.name = name or f"uthread-{self.uid}"
        self.state = UthreadState.RUNNABLE
        #: Absolute simulated-time deadline (ns) propagated into every
        #: syscall's OpContext; None = unbounded.
        self.deadline = deadline
        #: QoS class for admission control (higher = more important).
        self.priority = priority
        #: Set once the watchdog has reported this uthread as hung.
        self.watchdog_flagged = False
        #: The scheduler currently responsible for running this uthread.
        self.home = None
        #: Value to send into the body on next resume.
        self.resume_value: Any = None
        #: Fired with the body's return value when it finishes.
        self.done: Event = engine.event()
        #: True once parked because of async I/O (vs a timer sleep).
        self.io_parked = False
        #: Deferred second syscall ``(make, result)`` to run before the
        #: next resume (Naive-EasyIO metadata commit, see scheduler).
        self.pending_continuation: Optional[tuple] = None
        #: Trace op id of the most recent syscall (None with tracing
        #: off) -- lets the watchdog tie a hang to its trace span.
        self.last_op_id: Optional[int] = None
        # Statistics.
        self.spawned_at = engine.now
        self.finished_at: Optional[int] = None
        self.syscalls = 0
        self.parks = 0
        self.steals = 0

    @property
    def finished(self) -> bool:
        return self.state is UthreadState.FINISHED

    def finish(self, value: Any) -> None:
        self.state = UthreadState.FINISHED
        self.finished_at = self.engine.now
        self.done.succeed(value)

    def fail(self, exc: BaseException) -> None:
        self.state = UthreadState.FINISHED
        self.finished_at = self.engine.now
        self.done.fail(exc)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Uthread {self.name} {self.state.value}>"
