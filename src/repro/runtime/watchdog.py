"""Simulated-time hang watchdog for the runtime.

A lost wakeup (a uthread parked on a completion that never fires, e.g.
because a DMA channel halted and its supervisor wedged) would otherwise
surface as an *eternally pending* simulation: ``engine.run()`` never
drains and the test harness hits its wall-clock cap with zero
diagnostics.  The :class:`Watchdog` converts that failure mode into a
*drained* engine plus a :class:`HangReport`.

Mechanism (all in simulated time, fully deterministic):

* Every live uthread with a time budget -- an absolute ``deadline`` set
  at spawn, or the watchdog's ``default_budget_ns`` -- is watched.
* A uthread still unfinished ``grace_factor x`` its budget past spawn is
  **flagged**: ``ut.watchdog_flagged`` is set, ``watchdog_trips`` is
  counted, a :class:`HangReport` snapshot (scheduler queues, DMA channel
  state, uthread states) is recorded, and ``on_trip`` is invoked.
* A flagged uthread is never re-flagged, and the watchdog *parks* on a
  gate whenever nothing is watchable -- so a genuinely hung simulation
  still drains: every watched uthread either finishes or trips, after
  which the watchdog holds no pending timers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.analysis.metrics import OverloadStats
from repro.runtime.uthread import Uthread
from repro.sim import Gate


@dataclass
class HangReport:
    """Diagnostic snapshot taken when the watchdog flags a uthread."""

    time: int
    uthread: str
    uid: int
    state: str
    spawned_at: int
    deadline: Optional[int]
    budget_ns: int
    #: Per-core scheduler queue state at trip time.
    schedulers: List[dict] = field(default_factory=list)
    #: Per-DMA-channel state at trip time (the usual hang culprit).
    channels: List[dict] = field(default_factory=list)
    #: Every live uthread at trip time (name, state, parked-on-I/O).
    uthreads: List[dict] = field(default_factory=list)
    #: Trace op id of the hung uthread's current syscall (None with
    #: tracing off or before its first syscall).
    trace_op: Optional[int] = None
    #: ``str()`` of the hung op's most recent trace event -- the last
    #: thing it did before going quiet (None when untraceable).
    last_trace_event: Optional[str] = None

    def render(self) -> str:
        """Human-readable multi-line summary for logs / assertions."""
        lines = [
            f"WATCHDOG: {self.uthread} (uid {self.uid}, {self.state}) "
            f"hung at t={self.time} ns "
            f"(spawned {self.spawned_at}, budget {self.budget_ns} ns)",
        ]
        if self.trace_op is not None:
            lines.append(
                f"  trace: op {self.trace_op}, last event "
                f"{self.last_trace_event or '<none buffered>'}")
        for s in self.schedulers:
            lines.append(
                f"  core{s['core']}: queue={s['queue_len']} "
                f"(hw {s['queue_high_water']}) switches={s['switches']} "
                f"steals={s['steals']}")
        for ch in self.channels:
            if ch["queue_depth"] or ch["halted"] or ch["suspended"]:
                flags = "".join(
                    f" {k}" for k in ("halted", "suspended") if ch[k])
                lines.append(
                    f"  dma{ch['channel']}: depth={ch['queue_depth']} "
                    f"sn={ch['completion_sn']}{flags}")
        for ut in self.uthreads:
            lines.append(
                f"  {ut['name']}: {ut['state']}"
                f"{' io-parked' if ut['io_parked'] else ''}"
                f"{' FLAGGED' if ut['flagged'] else ''}")
        return "\n".join(lines)


class Watchdog:
    """Flags uthreads parked far past their deadline budget.

    Installing the watchdog sets ``runtime.watchdog`` so that
    :meth:`~repro.runtime.scheduler.Runtime.spawn` can wake it when new
    uthreads arrive while it is parked.  Counters go to the runtime's
    shared :class:`OverloadStats` unless ``stats`` overrides that.
    """

    def __init__(self, runtime, interval_ns: int = 100_000,
                 grace_factor: int = 3,
                 default_budget_ns: Optional[int] = None,
                 stats: Optional[OverloadStats] = None,
                 on_trip: Optional[Callable[[HangReport], None]] = None):
        if grace_factor < 1:
            raise ValueError(f"grace_factor must be >= 1, got {grace_factor}")
        if interval_ns < 1:
            raise ValueError(f"interval_ns must be >= 1, got {interval_ns}")
        self.runtime = runtime
        self.engine = runtime.engine
        self.interval_ns = interval_ns
        self.grace_factor = grace_factor
        self.default_budget_ns = default_budget_ns
        self.stats = stats if stats is not None else runtime.overload_stats
        self.on_trip = on_trip
        self.reports: List[HangReport] = []
        self._work = Gate(self.engine)
        runtime.watchdog = self
        self._proc = self.engine.process(self._loop(), name="watchdog")

    def notify(self) -> None:
        """Wake the watchdog (a new uthread may need watching)."""
        self._work.pulse()

    # -- policy ---------------------------------------------------------
    def _budget(self, ut: Uthread) -> Optional[int]:
        if ut.deadline is not None:
            return max(0, ut.deadline - ut.spawned_at)
        return self.default_budget_ns

    def _watchable(self) -> List[tuple]:
        out = []
        for ut in self.runtime.live_uthreads:
            if ut.finished or ut.watchdog_flagged:
                continue
            budget = self._budget(ut)
            if budget is None:
                continue
            out.append((ut, budget))
        return out

    def _trip(self, ut: Uthread, budget: int) -> HangReport:
        ut.watchdog_flagged = True
        self.stats.watchdog_trips += 1
        report = self.snapshot(ut, budget)
        self.reports.append(report)
        if self.on_trip is not None:
            self.on_trip(report)
        return report

    def snapshot(self, ut: Uthread, budget: int) -> HangReport:
        """Capture the full runtime/DMA state around a hung uthread."""
        dma = self.runtime.platform.dma
        trace_op = getattr(ut, "last_op_id", None)
        last_ev = None
        tracer = self.engine.tracer
        if tracer is not None and trace_op is not None:
            ev = tracer.last_event(op=trace_op)
            if ev is not None:
                last_ev = str(ev)
        return HangReport(
            trace_op=trace_op,
            last_trace_event=last_ev,
            time=self.engine.now,
            uthread=ut.name,
            uid=ut.uid,
            state=ut.state.value,
            spawned_at=ut.spawned_at,
            deadline=ut.deadline,
            budget_ns=budget,
            schedulers=[{
                "core": s.core.core_id,
                "queue_len": s.queue_len,
                "queue_high_water": s.queue_high_water,
                "switches": s.switches,
                "steals": s.steals,
            } for s in self.runtime.schedulers],
            channels=[{
                "channel": ch.channel_id,
                "queue_depth": ch.queue_depth,
                "completion_sn": ch.completion_sn,
                "halted": ch.halted,
                "suspended": ch.suspended,
            } for ch in (dma.channel(i) for i in range(len(dma)))],
            uthreads=[{
                "name": u.name,
                "state": u.state.value,
                "io_parked": u.io_parked,
                "flagged": u.watchdog_flagged,
            } for u in self.runtime.live_uthreads],
        )

    # -- the scan loop --------------------------------------------------
    def _loop(self):
        while True:
            watchable = self._watchable()
            if not watchable:
                # Nothing to watch: hold no timers, so the engine can
                # drain.  spawn() pulses the gate to restart us.
                yield self._work.wait()
                continue
            now = self.engine.now
            next_due = None
            for ut, budget in watchable:
                trip_at = ut.spawned_at + self.grace_factor * budget
                if now >= trip_at:
                    self._trip(ut, budget)
                else:
                    next_due = (trip_at if next_due is None
                                else min(next_due, trip_at))
            if next_due is None:
                continue  # everything tripped this round; rescan
            # Sleep until the earliest possible trip (capped by the scan
            # interval), but wake early if new uthreads are spawned --
            # they may carry a shorter budget than anything watched now.
            delay = min(self.interval_ns, max(1, next_due - now))
            timer = self.engine.timeout(delay)
            yield self.engine.any_of([timer, self._work.wait()],
                                     cancel_losers=True)
