"""Userspace scheduling runtime (Caladan-like).

Application logic runs inside lightweight userspace threads
(:class:`~repro.runtime.uthread.Uthread`) multiplexed over physical
cores by per-core schedulers.  A uthread expresses its behaviour by
yielding :mod:`effects <repro.runtime.effects>`: compute for N ns,
issue a filesystem syscall, sleep, or yield the core.

The EasyIO integration contract (paper §5) is implemented exactly:

* a syscall runs inline on the core (the synchronous part burns CPU);
* if it returns with pending asynchronous I/O, the runtime performs a
  ``thread_yield()`` -- the uthread parks on the completion and the
  core switches to the next runnable uthread;
* uthreads whose completions have arrived are preferred over fresh
  ones, and idle cores steal runnable uthreads from busy ones
  (work stealing can be disabled, as the Figure 11 ablation requires).
"""

from repro.runtime.admission import AdmissionController, OverloadRejected
from repro.runtime.effects import Compute, Sleep, Syscall, Yield
from repro.runtime.scheduler import CoreScheduler, Runtime
from repro.runtime.uthread import Uthread
from repro.runtime.watchdog import HangReport, Watchdog

__all__ = [
    "AdmissionController",
    "Compute",
    "CoreScheduler",
    "HangReport",
    "OverloadRejected",
    "Runtime",
    "Sleep",
    "Syscall",
    "Uthread",
    "Watchdog",
    "Yield",
]
