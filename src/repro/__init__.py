"""EasyIO reproduction: asynchronous I/O for slow-memory filesystems.

A faithful, simulation-based reproduction of *"Exploring the Asynchrony
of Slow Memory Filesystem with EasyIO"* (EuroSys 2024): the EasyIO
filesystem (orderless file operation, two-level locking, traffic-aware
channel manager) together with every substrate it needs -- a
deterministic discrete-event simulator, an Optane-like slow-memory
model, an I/OAT-style on-chip DMA engine, a NOVA-like persistent-memory
filesystem, a Caladan-like uthread runtime -- plus the paper's baselines
(NOVA, NOVA-DMA, Odinfs), workloads (FxMark, eight applications,
CrashMonkey) and a benchmark per evaluation figure/table.

Quick start::

    from repro import EasyIoFS, Platform
    from repro.runtime import Runtime, Syscall

    platform = Platform()
    fs = EasyIoFS(platform).mount()
    runtime = Runtime(platform, cores=platform.cores[:2])

    def task():
        ino = yield Syscall(lambda ctx: fs.create(ctx, "/hello"))
        yield Syscall(lambda ctx: fs.write(ctx, ino, 0, 65536))

    runtime.spawn(task())
    platform.run()

See README.md for the architecture tour and DESIGN.md / EXPERIMENTS.md
for the reproduction methodology and results.
"""

from repro.baselines import NovaDmaFS, OdinfsFS
from repro.core import AppProfile, ChannelManager, EasyIoFS, NaiveAsyncFS
from repro.fs import (DeadlineExceeded, FsError, NovaFS, OpResult, PMImage,
                      recover)
from repro.hw import CostModel, Platform, PlatformConfig
from repro.obs import TraceChecker, Tracer, default_tracing
from repro.runtime import Compute, Runtime, Sleep, Syscall, Yield
from repro.workloads.factory import (FS_KINDS, FS_LABELS, fs_class, make_fs,
                                     make_platform, register_fs)

__version__ = "1.0.0"

__all__ = [
    "AppProfile",
    "ChannelManager",
    "Compute",
    "CostModel",
    "DeadlineExceeded",
    "EasyIoFS",
    "FS_KINDS",
    "FS_LABELS",
    "FsError",
    "NaiveAsyncFS",
    "NovaDmaFS",
    "NovaFS",
    "OdinfsFS",
    "OpResult",
    "PMImage",
    "Platform",
    "PlatformConfig",
    "Runtime",
    "Sleep",
    "Syscall",
    "TraceChecker",
    "Tracer",
    "Yield",
    "default_tracing",
    "fs_class",
    "make_fs",
    "make_platform",
    "recover",
    "register_fs",
]
