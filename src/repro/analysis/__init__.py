"""Measurement and reporting utilities.

:mod:`repro.analysis.metrics` collects latency distributions,
throughput windows, and time series; :mod:`repro.analysis.report`
renders the text tables and series the benchmark harness prints for
each reproduced figure/table.
"""

from repro.analysis.metrics import (FaultStats, LatencySeries, OverloadStats,
                                    Timeline, ThroughputMeter)
from repro.analysis.report import banner, fmt_counters, fmt_series, fmt_table
from repro.analysis.sweep import (fxmark_point, fxmark_sweep, run_sweep,
                                  summarize)

__all__ = [
    "FaultStats",
    "LatencySeries",
    "OverloadStats",
    "ThroughputMeter",
    "Timeline",
    "banner",
    "fmt_counters",
    "fmt_series",
    "fmt_table",
    "fxmark_point",
    "fxmark_sweep",
    "run_sweep",
    "summarize",
]
