"""Measurement and reporting utilities.

:mod:`repro.analysis.metrics` collects latency distributions,
throughput windows, and time series; :mod:`repro.analysis.report`
renders the text tables and series the benchmark harness prints for
each reproduced figure/table.
"""

from repro.analysis.metrics import (FaultStats, LatencySeries, OverloadStats,
                                    Timeline, ThroughputMeter)
from repro.analysis.report import banner, fmt_counters, fmt_series, fmt_table

__all__ = [
    "FaultStats",
    "LatencySeries",
    "OverloadStats",
    "ThroughputMeter",
    "Timeline",
    "banner",
    "fmt_counters",
    "fmt_series",
    "fmt_table",
]
