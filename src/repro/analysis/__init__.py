"""Measurement and reporting utilities.

:mod:`repro.analysis.metrics` collects latency distributions,
throughput windows, and time series; :mod:`repro.analysis.report`
renders the text tables and series the benchmark harness prints for
each reproduced figure/table.
"""

from repro.analysis.metrics import (FaultStats, LatencySeries, Timeline,
                                    ThroughputMeter)
from repro.analysis.report import fmt_table, fmt_series, banner

__all__ = [
    "FaultStats",
    "LatencySeries",
    "ThroughputMeter",
    "Timeline",
    "banner",
    "fmt_series",
    "fmt_table",
]
