"""Latency, throughput, time-series, and fault-tolerance accounting."""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass, fields
from typing import Dict, List, Optional, Tuple

from repro import vector

#: When a percentile query finds at most this many samples recorded
#: since the last sorted view, they are insorted incrementally; a
#: larger backlog re-sorts from scratch (cheaper past this point).
_INSORT_TAIL_MAX = 64

#: Mirrors ``vector.ENABLED``; when set, LatencySeries keeps its sorted
#: view as an int64 ndarray (np.sort build, searchsorted tail merge).
_VEC_ON = False


@vector.register
def _rebind_kernels(enabled: bool) -> None:
    global _VEC_ON
    _VEC_ON = enabled
    # Per-instance sorted views are left alone: both representations
    # hold the same sorted values, and every consumer below handles
    # either (mode flips mid-run are fine).


@dataclass
class FaultStats:
    """Counters for the fault-tolerance paths (availability reporting).

    One instance is shared by the channel manager and the filesystem's
    supervisors, so a benchmark reads a single coherent picture of what
    the fault plan cost: how many descriptors failed, how many retries/
    failovers fixed them, how much work fell back to the memcpy path,
    and how many media faults the checksum hook caught.
    """

    transfer_errors: int = 0        # failed descriptors observed
    channel_halts: int = 0          # CHANERR interrupts taken
    channel_resets: int = 0         # reset() recoveries issued
    quarantines: int = 0            # channels pulled from rotation
    readmissions: int = 0           # probe successes returning a channel
    retries: int = 0                # descriptor resubmissions
    failovers: int = 0              # resubmissions landing on a new channel
    degraded_writes: int = 0        # writes that fell back to memcpy
    degraded_reads: int = 0         # reads that fell back to memcpy
    degraded_bytes: int = 0         # bytes moved on the fallback path
    media_faults_detected: int = 0  # checksum mismatches caught & rewritten

    def as_dict(self) -> Dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def reset(self) -> None:
        """Zero every counter (for reusing the stats across runs)."""
        for f in fields(self):
            setattr(self, f.name, 0)

    @property
    def any_faults(self) -> bool:
        return any(self.as_dict().values())

    @staticmethod
    def availability(completed_ops: int, failed_ops: int = 0) -> float:
        """Fraction of operations that completed (1.0 = no data loss)."""
        total = completed_ops + failed_ops
        return completed_ops / total if total else 1.0


@dataclass
class OverloadStats:
    """Counters for the overload-robustness paths.

    One instance is shared by the admission controller, the scheduler's
    syscall dispatch, the filesystem's deadline checks, and the
    watchdog, so a benchmark reads one coherent picture of how an
    overload episode was absorbed: what was admitted, what was turned
    away (and under which policy), and what missed its deadline anyway.
    """

    admitted: int = 0             # syscalls let through the gate
    rejected: int = 0             # turned away (policy "reject")
    shed: int = 0                 # low-priority ops dropped under load
    degraded_to_sync: int = 0     # forced onto the memcpy path
    timeouts: int = 0             # WaitTimeout raised by timed waits
    cancelled: int = 0            # in-flight work cut short by a deadline
    deadline_misses: int = 0      # ops that raised DeadlineExceeded
    watchdog_trips: int = 0       # uthreads flagged as hung

    def as_dict(self) -> Dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def reset(self) -> None:
        """Zero every counter (for reusing the stats across runs)."""
        for f in fields(self):
            setattr(self, f.name, 0)

    @property
    def any_overload(self) -> bool:
        """Whether any op was turned away, degraded, or cut short."""
        counted = self.as_dict()
        counted.pop("admitted")
        return any(counted.values())

    def goodput(self, completed_ops: int) -> float:
        """Fraction of offered load that completed in time."""
        offered = (completed_ops + self.rejected + self.shed
                   + self.deadline_misses)
        return completed_ops / offered if offered else 1.0


class LatencySeries:
    """A collection of latency samples (ns) with percentile queries."""

    __slots__ = ("name", "samples", "_sorted")

    def __init__(self, name: str = "latency"):
        self.name = name
        self.samples: List[int] = []
        # Sorted view, maintained lazily: a query after a few appends
        # insorts just the new tail; a query after many appends (or
        # the first ever) sorts from scratch.  Interleaved
        # record()/percentile() loops therefore cost O(tail * log n)
        # per query instead of O(n log n).
        self._sorted: Optional[List[int]] = None

    def record(self, ns: int) -> None:
        self.samples.append(ns)

    def _sorted_samples(self):
        # The sorted view covers a prefix of `samples` (appends -- via
        # record() or directly on the public list -- only grow the
        # tail); its length tells how much is missing.  The view is a
        # plain list in reference mode, an int64 ndarray in vector
        # mode; both hold the same sorted values, so the two paths can
        # hand off to each other mid-run.
        data = self._sorted
        n = len(self.samples)
        if data is not None:
            delta = n - len(data)
            if delta == 0:
                return data
            if 0 < delta <= _INSORT_TAIL_MAX:
                tail = self.samples[n - delta:]
                if isinstance(data, list):
                    for x in tail:
                        bisect.insort(data, x)
                    return data
                np = vector.numpy()
                try:
                    # Sorted-tail merge: with an ascending tail and
                    # 'left' insertion points, equal positions receive
                    # ascending values, so the result stays sorted.
                    tail_arr = np.sort(np.asarray(tail, dtype=data.dtype))
                    idx = np.searchsorted(data, tail_arr)
                    self._sorted = np.insert(data, idx, tail_arr)
                    return self._sorted
                except (TypeError, OverflowError):
                    pass  # non-int64 tail: rebuild below
        if _VEC_ON:
            np = vector.numpy()
            arr = np.asarray(self.samples)
            if arr.dtype.kind in "iu":
                arr.sort()
                self._sorted = arr
                return arr
            # Float or oversized samples: the reference list keeps
            # Python-object arithmetic (and its exact results).
        self._sorted = sorted(self.samples)
        return self._sorted

    def __len__(self) -> int:
        return len(self.samples)

    @property
    def count(self) -> int:
        return len(self.samples)

    def mean(self) -> float:
        """Average latency in ns (0.0 when empty)."""
        return sum(self.samples) / len(self.samples) if self.samples else 0.0

    def percentile(self, p: float) -> float:
        """The p-th percentile (0 < p <= 100), linear interpolation."""
        if not self.samples:
            return 0.0
        if not 0 < p <= 100:
            raise ValueError(f"percentile must be in (0, 100], got {p}")
        data = self._sorted_samples()
        k = (len(data) - 1) * (p / 100.0)
        lo = math.floor(k)
        hi = math.ceil(k)
        if lo == hi:
            return float(data[lo])
        if isinstance(data, list):
            a, b = data[lo], data[hi]
        else:
            # ndarray view: pull the two ranks back to Python ints so
            # the interpolation arithmetic (and its rounding) is the
            # same expression the reference evaluates.
            a, b = data[lo].item(), data[hi].item()
        return a + (b - a) * (k - lo)

    def p50(self) -> float:
        return self.percentile(50)

    def p99(self) -> float:
        return self.percentile(99)

    def maximum(self) -> float:
        return float(max(self.samples)) if self.samples else 0.0

    def mean_us(self) -> float:
        return self.mean() / 1000.0

    def p99_us(self) -> float:
        return self.p99() / 1000.0


class ThroughputMeter:
    """Counts operations (and bytes) inside a measurement window."""

    def __init__(self, window_start: int, window_end: int):
        if window_end <= window_start:
            raise ValueError("empty measurement window")
        self.window_start = window_start
        self.window_end = window_end
        self.ops = 0
        self.bytes = 0

    def record(self, now: int, nbytes: int = 0) -> bool:
        """Count an op completing at ``now`` if it falls in the window."""
        if self.window_start <= now < self.window_end:
            self.ops += 1
            self.bytes += nbytes
            return True
        return False

    @property
    def window_ns(self) -> int:
        return self.window_end - self.window_start

    def ops_per_sec(self) -> float:
        return self.ops * 1e9 / self.window_ns

    def bandwidth_gbps(self) -> float:
        """GB/s moved during the window."""
        return self.bytes / self.window_ns


class Timeline:
    """(time, value) samples for latency-over-time figures (4 and 12)."""

    def __init__(self, name: str = "timeline"):
        self.name = name
        self.points: List[Tuple[int, float]] = []

    def record(self, t: int, value: float) -> None:
        self.points.append((t, value))

    def __len__(self) -> int:
        return len(self.points)

    def max_value(self, t_lo: Optional[int] = None,
                  t_hi: Optional[int] = None) -> float:
        vals = [v for t, v in self.points
                if (t_lo is None or t >= t_lo) and (t_hi is None or t < t_hi)]
        return max(vals) if vals else 0.0

    def mean_value(self, t_lo: Optional[int] = None,
                   t_hi: Optional[int] = None) -> float:
        vals = [v for t, v in self.points
                if (t_lo is None or t >= t_lo) and (t_hi is None or t < t_hi)]
        return sum(vals) / len(vals) if vals else 0.0

    def bucketed(self, bucket_ns: int) -> List[Tuple[int, float]]:
        """Max value per time bucket (what the paper's figures plot)."""
        buckets = {}
        for t, v in self.points:
            b = t // bucket_ns
            buckets[b] = max(buckets.get(b, 0.0), v)
        return [(b * bucket_ns, v) for b, v in sorted(buckets.items())]


def speedup(new: float, base: float) -> float:
    """`new` over `base`, guarding division by zero."""
    return new / base if base else math.inf
