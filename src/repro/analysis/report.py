"""Plain-text rendering for reproduced tables and figure series."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def banner(title: str, width: int = 78) -> str:
    """A section banner for benchmark output."""
    pad = max(0, width - len(title) - 2)
    left = pad // 2
    right = pad - left
    return f"\n{'=' * left} {title} {'=' * right}"


def _fmt_cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.2f}"
    return str(value)


def fmt_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render an aligned text table."""
    str_rows: List[List[str]] = [[_fmt_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.rjust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def fmt_series(name: str, xs: Sequence, ys: Sequence[float],
               y_fmt: str = "{:.2f}") -> str:
    """Render one figure series as 'name: x=y, x=y, ...'."""
    pairs = ", ".join(f"{x}={y_fmt.format(y)}" for x, y in zip(xs, ys))
    return f"{name}: {pairs}"


def fmt_counters(title: str, counters, skip_zero: bool = True) -> str:
    """Render a counter set (FaultStats/OverloadStats or a plain dict)
    as a two-column table."""
    as_dict = getattr(counters, "as_dict", None)
    data = as_dict() if callable(as_dict) else dict(counters)
    rows = [(k, v) for k, v in data.items() if v or not skip_zero]
    if not rows:
        return f"{title}: (all zero)"
    return f"{title}\n" + fmt_table(("counter", "value"), rows)


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """A coarse unicode sparkline for timeline sanity checks."""
    if not values:
        return ""
    blocks = " .:-=+*#%@"
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    step = max(1, len(values) // width)
    out = []
    for i in range(0, len(values), step):
        chunk = values[i:i + step]
        v = max(chunk)
        idx = int((v - lo) / span * (len(blocks) - 1))
        out.append(blocks[idx])
    return "".join(out)
