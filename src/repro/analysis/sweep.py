"""Parallel sweep runner: many independent simulations, many cores.

A parameter sweep (Figure 9's throughput-latency curves, Figure 12's
throttling grid) is embarrassingly parallel: every point is a fresh
:class:`~repro.workloads.fxmark.FxmarkConfig` run in its own engine,
sharing nothing with its neighbours.  This module fans the points out
over a ``multiprocessing`` pool.

Determinism: each point's result depends only on its config (the
simulator is seeded and single-threaded inside one engine), so the
sweep output is byte-identical whether it runs serially, with two
workers, or with twenty -- ``run_sweep`` preserves input order and
tests/test_sweep.py pins this down.

Workers are plain module-level functions (picklable) and results are
plain dicts of floats/ints (cheap to ship back over the pipe --
LatencySeries and friends stay in the worker).
"""

from __future__ import annotations

import multiprocessing
import os
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.workloads.fxmark import FxmarkConfig, FxmarkResult

# repro.workloads is imported inside the functions below:
# repro.core.channel_manager imports this package's metrics module
# while repro.core is still initialising, so a module-level workloads
# import here would close an import cycle.


def summarize(result: "FxmarkResult") -> dict:
    """The canonical scalar summary of one sweep point.

    Exactly the metric set the golden-equivalence suite pins, so a
    sweep summary can be compared against ``golden_pre_refactor.json``
    directly.
    """
    return {
        "throughput_ops": result.throughput_ops,
        "bandwidth_gbps": result.bandwidth_gbps,
        "total_ops": result.total_ops,
        "mean_us": result.mean_us,
        "p99_us": result.p99_us,
        "cpu_busy_fraction": result.cpu_busy_fraction,
    }


def fxmark_point(cfg: "FxmarkConfig") -> dict:
    """Run one configuration and return its scalar summary.

    Module-level so a multiprocessing pool can pickle it by reference.
    """
    from repro.workloads.fxmark import run_fxmark
    return summarize(run_fxmark(cfg))


def run_sweep(configs: Sequence["FxmarkConfig"],
              processes: Optional[int] = None) -> List[dict]:
    """Run every config, in input order, and return their summaries.

    ``processes=None`` uses one worker per host CPU; ``processes<=1``
    (or a single point) runs serially in this process -- same results
    either way, the pool only changes wall-clock time.
    """
    configs = list(configs)
    if processes is None:
        processes = os.cpu_count() or 1
    if processes <= 1 or len(configs) <= 1:
        return [fxmark_point(cfg) for cfg in configs]
    # fork (the Linux default) skips re-importing the simulator in
    # every worker; chunksize=1 keeps long points from queueing behind
    # one worker while others sit idle.
    with multiprocessing.Pool(min(processes, len(configs))) as pool:
        return pool.map(fxmark_point, configs, chunksize=1)


def fxmark_sweep(kinds: Iterable[str], workers: Iterable[int],
                 op: str = "write", io_size: int = 16384,
                 duration_us: int = 1200, warmup_us: int = 300,
                 elide: bool = False,
                 processes: Optional[int] = None) -> Dict[str, dict]:
    """The Figure 9 grid: ``{op}/{kind}/{workers}`` -> point summary.

    ``elide=True`` runs every point in payload-elision mode (identical
    summaries, less host work) -- the pure-performance default.
    """
    from repro.workloads.fxmark import FxmarkConfig
    kinds = list(kinds)
    workers = list(workers)
    configs = [FxmarkConfig(kind=kind, op=op, io_size=io_size,
                            workers=n, duration_us=duration_us,
                            warmup_us=warmup_us, elide=elide)
               for kind in kinds for n in workers]
    keys = [f"{op}/{kind}/{n}" for kind in kinds for n in workers]
    return dict(zip(keys, run_sweep(configs, processes=processes)))


# ----------------------------------------------------------------------
# Crash sweeps (Table 2): one process per (kind, workload, granularity)
# ----------------------------------------------------------------------
def crash_point(spec: dict) -> dict:
    """Run one crash test and return a plain-dict summary.

    ``spec`` is keyword arguments for
    :func:`repro.crash.run_crash_test` (``kind``, ``workload``, and
    optionally ``granularity``, ``crash_points``, planner knobs...).
    Module-level and dict-in/dict-out so a multiprocessing pool can
    ship it; crash tests are seeded and engine-local, so the summary
    is a pure function of the spec (run_crash_sweep's determinism).
    """
    from repro.crash import run_crash_test
    report = run_crash_test(**spec)
    return {
        "workload": report.workload,
        "kind": report.kind,
        "granularity": report.granularity,
        "total_crash_points": report.total_crash_points,
        "passed": report.passed,
        "all_passed": report.all_passed,
        "raw_states": report.raw_states,
        "plan_classes": dict(sorted(report.plan_classes.items())),
        "failures": [tuple(f) for f in report.failures[:5]],
    }


def run_crash_sweep(specs: Sequence[dict],
                    processes: Optional[int] = None) -> List[dict]:
    """Run every crash spec, in input order (parallel over a pool).

    Same contract as :func:`run_sweep`: ``processes<=1`` or a single
    spec runs serially, and the summaries are identical either way.
    """
    specs = list(specs)
    if processes is None:
        processes = os.cpu_count() or 1
    if processes <= 1 or len(specs) <= 1:
        return [crash_point(spec) for spec in specs]
    with multiprocessing.Pool(min(processes, len(specs))) as pool:
        return pool.map(crash_point, specs, chunksize=1)


def table2_crash_sweep(kinds: Iterable[str],
                       workloads: Iterable[str],
                       granularities: Iterable[str] = ("page", "line"),
                       crash_points: int = 1000,
                       per_signature: Optional[int] = 3,
                       processes: Optional[int] = None) -> Dict[str, dict]:
    """The Table 2 grid at both granularities:
    ``{granularity}/{kind}/{workload}`` -> crash summary."""
    kinds, workloads = list(kinds), list(workloads)
    grans = list(granularities)
    specs, keys = [], []
    for gran in grans:
        for kind in kinds:
            for wl in workloads:
                spec = {"kind": kind, "workload": wl, "granularity": gran}
                if gran == "page":
                    spec["crash_points"] = crash_points
                else:
                    spec["per_signature"] = per_signature
                specs.append(spec)
                keys.append(f"{gran}/{kind}/{wl}")
    return dict(zip(keys, run_crash_sweep(specs, processes=processes)))


# -- fuzz campaigns ----------------------------------------------------

def fuzz_point(spec: dict) -> dict:
    """Run one fuzz scenario spec and return the picklable verdict.

    ``spec`` is ``{"tuple": <ScenarioTuple.to_dict()>, "mutant":
    str-or-None}``; the result is ``ScenarioResult.as_dict()``.
    Module-level so a multiprocessing pool can pickle it by reference.
    """
    from repro.fuzz.scenario import run_scenario
    from repro.fuzz.tuples import ScenarioTuple
    t = ScenarioTuple.from_dict(spec["tuple"])
    return run_scenario(t, mutant=spec.get("mutant")).as_dict()


def run_fuzz_batch(specs: Sequence[dict],
                   processes: Optional[int] = None) -> List[dict]:
    """Evaluate one generation of fuzz specs, in input order.

    Same determinism contract as :func:`run_sweep`: each spec's
    verdict depends only on the spec (the scenario runner is a pure
    function of the tuple), and order is preserved -- so a campaign
    that batches by generation sees byte-identical results at any
    worker count (tests/test_fuzz_campaign.py pins serial == parallel).
    """
    specs = list(specs)
    if processes is None:
        processes = os.cpu_count() or 1
    if processes <= 1 or len(specs) <= 1:
        return [fuzz_point(spec) for spec in specs]
    with multiprocessing.Pool(min(processes, len(specs))) as pool:
        return pool.map(fuzz_point, specs, chunksize=1)
