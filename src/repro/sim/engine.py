"""Discrete-event simulation engine.

The engine keeps a schedule queue of triggered events ordered by
``(time, schedule-order)``.  Processes are generator coroutines that
yield :class:`Event` objects; the engine resumes a process when the
event it is waiting on fires.  Time is an integer number of
nanoseconds, which keeps arithmetic exact and traces reproducible.

Hot-path design (the engine is the throughput ceiling for every
figure sweep, so the representation is tuned without changing the
``(time, schedule-order)`` firing order):

* The schedule queue is pluggable (see :mod:`repro.sim.queues`):
  ``Engine(scheduler="heap")`` keeps the reference packed-key binary
  heap, ``Engine(scheduler="wheel")`` -- the default -- uses a
  hierarchical timing wheel whose per-timestamp FIFO buckets make
  pushes O(1) amortised.  Both produce byte-identical schedules.
* The run loop *batch-fires*: all events at one ``when`` drain in a
  single queue dispatch, so the clock, the limit check, and the queue
  are touched once per distinct timestamp instead of once per event.
* :meth:`Engine.sleep` hands out pooled one-shot timer events for the
  fire-and-forget delays that dominate simulations (CPU cost charges,
  scheduler switch costs, device service delays).  See its docstring
  for the (strict) usage contract.
* Cancelled events already queued are counted and the queue is lazily
  compacted once they dominate, so cancel-heavy overload runs do not
  drag dead entries around forever.
* :class:`AnyOf`/:class:`AllOf` fast-path the 1-event case.

Example
-------
>>> eng = Engine()
>>> log = []
>>> def worker(name, delay):
...     yield eng.timeout(delay)
...     log.append((eng.now, name))
>>> _ = eng.process(worker("a", 10))
>>> _ = eng.process(worker("b", 5))
>>> eng.run()
>>> log
[(5, 'b'), (10, 'a')]
"""

from __future__ import annotations

import gc
from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, Optional

from repro.sim.queues import TimingWheelQueue, make_queue


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel."""


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class WaitTimeout(Exception):
    """A timed wait expired before it was granted.

    Raised into processes waiting on a ``timeout=``-bounded primitive
    (:meth:`~repro.sim.sync.Semaphore.acquire` and friends) and by any
    other deadline-bounded wait built on :meth:`Event.cancel`.
    """


# Event states.
_PENDING = 0
_TRIGGERED = 1  # scheduled to fire, callbacks not yet run
_PROCESSED = 2  # callbacks have run
_CANCELLED = 3  # withdrawn; callbacks will never run

#: When set, every new :class:`Engine` calls this with itself and
#: stores the result as its ``tracer`` (see :func:`set_tracer_factory`).
_TRACER_FACTORY: Optional[Callable[["Engine"], Any]] = None

#: run(until=None) limit: beyond any reachable simulated time.
_NO_LIMIT = 1 << 120


def set_tracer_factory(factory: Optional[Callable[["Engine"], Any]]) -> None:
    """Install (or, with None, remove) the module-level tracer factory.

    Figure sweeps construct their engines deep inside library code, so
    callers that want those engines traced cannot attach a tracer by
    hand; the factory hook closes that gap.  The engine module itself
    never imports the tracing package -- the factory is an opaque
    callable, keeping :mod:`repro.obs` strictly optional.  Prefer the
    :func:`repro.obs.default_tracing` context manager, which saves and
    restores the previous factory.
    """
    global _TRACER_FACTORY
    _TRACER_FACTORY = factory


def get_tracer_factory() -> Optional[Callable[["Engine"], Any]]:
    """The currently-installed tracer factory (None when tracing is off)."""
    return _TRACER_FACTORY


class EngineStats:
    """Counters the engine maintains about its own operation.

    ``events_fired`` counts processed events, ``events_cancelled``
    counts :meth:`Event.cancel` calls that performed a cancellation,
    and ``heap_compactions`` counts lazy rebuilds of the schedule queue
    (each one evicts the cancelled entries accumulated so far; the name
    predates the pluggable queue and covers both implementations).
    ``sleeps_reused`` counts pooled :meth:`Engine.sleep` recycles.
    """

    __slots__ = ("events_fired", "events_cancelled", "heap_compactions",
                 "sleeps_reused")

    def __init__(self):
        self.events_fired = 0
        self.events_cancelled = 0
        self.heap_compactions = 0
        self.sleeps_reused = 0

    def as_dict(self) -> dict:
        return {name: getattr(self, name) for name in self.__slots__}

    def reset(self) -> None:
        """Zero every counter (for reusing an engine across runs)."""
        for name in self.__slots__:
            setattr(self, name, 0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"<EngineStats {inner}>"


class Event:
    """A happening in simulated time that processes can wait on.

    An event starts *pending*; calling :meth:`succeed` or :meth:`fail`
    *triggers* it, which schedules its callbacks to run at the current
    simulation time.  Once the callbacks have run the event is
    *processed* and its value is frozen.
    """

    __slots__ = ("engine", "callbacks", "_value", "_ok", "_state")

    def __init__(self, engine: "Engine"):
        self.engine = engine
        self.callbacks: Optional[list] = []
        self._value: Any = None
        self._ok: bool = True
        self._state = _PENDING

    # -- inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        """Whether the event has been scheduled to fire."""
        return self._state in (_TRIGGERED, _PROCESSED)

    @property
    def processed(self) -> bool:
        """Whether the event's callbacks have already run."""
        return self._state == _PROCESSED

    @property
    def cancelled(self) -> bool:
        """Whether the event was withdrawn before its callbacks ran."""
        return self._state == _CANCELLED

    @property
    def ok(self) -> bool:
        """Whether the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception if it failed)."""
        return self._value

    # -- triggering -------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._state != _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._value = value
        self._state = _TRIGGERED
        # succeed() is the hottest trigger: the wheel's near-window
        # bucket push is inlined (see Engine._wheel), other queues get
        # one bound push call.
        engine = self.engine
        wheel = engine._wheel
        when = engine._now
        if wheel is not None and when < wheel._epoch_end:
            wheel._len += 1
            bucket = wheel._buckets.get(when)
            if bucket is None:
                wheel._buckets[when] = [self]
                heappush(wheel._whens, when)
            else:
                bucket.append(self)
        else:
            engine._push(self, when)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        Any process waiting on the event will have the exception thrown
        into it.
        """
        if self._state != _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self._state = _TRIGGERED
        self.engine._schedule(self)
        return self

    def cancel(self) -> bool:
        """Withdraw the event: its callbacks will never run.

        A *pending* event becomes inert -- triggering it later is an
        error, and any synchronisation primitive holding it in a waiter
        queue skips it when granting.  A *triggered* event (already in
        the schedule queue, e.g. a :class:`Timeout`) is skipped by the
        engine when its turn comes.  Cancelling an already-cancelled
        event is a no-op; cancelling a processed event is an error.

        Returns True if this call performed the cancellation.
        """
        state = self._state
        if state == _CANCELLED:
            return False
        if state == _PROCESSED:
            raise SimulationError(f"cannot cancel processed event {self!r}")
        self._state = _CANCELLED
        self.callbacks = None
        engine = self.engine
        engine._stats.events_cancelled += 1
        if state == _TRIGGERED:
            # The entry stays in the schedule queue; the queue counts
            # it and compacts lazily once dead entries dominate.
            engine._queue.note_cancelled(self)
        return True

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Run ``fn(event)`` when the event fires.

        If the event has already been processed the callback runs
        immediately (still at the current simulation time).  Adding a
        callback to a cancelled event is a no-op.
        """
        state = self._state
        if state == _PROCESSED:
            fn(self)
        elif state == _CANCELLED:
            return
        else:
            assert self.callbacks is not None
            self.callbacks.append(fn)

    def _process_callbacks(self) -> None:
        callbacks = self.callbacks
        self.callbacks = None
        self._state = _PROCESSED
        if callbacks:
            for fn in callbacks:
                fn(self)
        elif not self._ok and isinstance(self, Process):
            # A process died with no one waiting on it: surface the error
            # instead of letting it pass silently.
            raise self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = {_PENDING: "pending", _TRIGGERED: "triggered",
                 _PROCESSED: "processed", _CANCELLED: "cancelled"}[self._state]
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` nanoseconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, engine: "Engine", delay: int, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(engine)
        self.delay = delay
        self._value = value
        self._state = _TRIGGERED
        engine._schedule(self, delay)


class _PooledSleep(Event):
    """A recyclable one-shot timer (see :meth:`Engine.sleep`).

    Recognised by exact type in the run loop and returned to the
    engine's pool right after its callbacks run.
    """

    __slots__ = ()


class AnyOf(Event):
    """Fires when the first of ``events`` fires.

    The value is a dict mapping the already-fired events to their
    values (there may be more than one if several fire at the same
    instant before callbacks run).

    When the winner fires, the losing waiters are *detached*: this
    AnyOf's callback is removed from them, so an abandoned race leaves
    no dangling references on long-lived events.  With
    ``cancel_losers=True`` still-pending losers are additionally
    :meth:`~Event.cancel`-ed outright -- only safe when the losers are
    private to this race (e.g. a timeout guard), never for shared
    completion events that other waiters observe.
    """

    __slots__ = ("events", "cancel_losers")

    def __init__(self, engine: "Engine", events: Iterable[Event],
                 cancel_losers: bool = False):
        super().__init__(engine)
        self.events = list(events)
        self.cancel_losers = cancel_losers
        if not self.events:
            self.succeed({})
            return
        if len(self.events) == 1:
            # Fast path: a 1-event race has no losers to detach.
            self.events[0].add_callback(self._on_fire_single)
            return
        for ev in self.events:
            ev.add_callback(self._on_fire)

    def _on_fire_single(self, event: Event) -> None:
        if self._state != _PENDING:
            return
        if not event._ok:
            self.fail(event._value)
        else:
            self.succeed({event: event._value})

    def _on_fire(self, event: Event) -> None:
        if self._state != _PENDING:
            return
        self._detach(winner=event)
        if not event._ok:
            self.fail(event._value)
            return
        fired = {ev: ev._value for ev in self.events if ev.processed or ev is event}
        self.succeed(fired)

    def _detach(self, winner: Event) -> None:
        """Unhook from the losing events (and optionally cancel them)."""
        for ev in self.events:
            if ev is winner:
                continue
            if ev.callbacks is not None:
                try:
                    ev.callbacks.remove(self._on_fire)
                except ValueError:
                    pass
            if self.cancel_losers and not ev.processed and not ev.cancelled:
                ev.cancel()


class AllOf(Event):
    """Fires when every one of ``events`` has fired."""

    __slots__ = ("events", "_remaining")

    def __init__(self, engine: "Engine", events: Iterable[Event]):
        super().__init__(engine)
        self.events = list(events)
        self._remaining = len(self.events)
        if self._remaining == 0:
            self.succeed({})
            return
        if self._remaining == 1:
            self.events[0].add_callback(self._on_fire_single)
            return
        for ev in self.events:
            ev.add_callback(self._on_fire)

    def _on_fire_single(self, event: Event) -> None:
        if self._state != _PENDING:
            return
        if not event._ok:
            self.fail(event._value)
        else:
            self.succeed({event: event._value})

    def _on_fire(self, event: Event) -> None:
        if self._state != _PENDING:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed({ev: ev._value for ev in self.events})


class Process(Event):
    """A running generator coroutine; also an event that fires on exit.

    The generator may ``yield`` any :class:`Event`; the process resumes
    when that event fires, receiving the event's value (or having the
    event's exception thrown in).  The value a generator ``return``s
    becomes the process event's value.
    """

    __slots__ = ("generator", "name", "_waiting_on", "_interrupts",
                 "_resume_cb")

    def __init__(self, engine: "Engine", generator: Generator,
                 name: Optional[str] = None):
        super().__init__(engine)
        if not hasattr(generator, "send"):
            raise SimulationError(
                f"process body must be a generator, got {type(generator).__name__}"
            )
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        self._interrupts: list = []
        # One bound method for the life of the process instead of a
        # fresh one per wait (the single hottest callback).
        self._resume_cb = self._resume
        # Bootstrap: resume once at the current time (a pooled zero
        # sleep schedules exactly like the old succeed()-ed event).
        engine.sleep(0).add_callback(self._resume_cb)

    @property
    def is_alive(self) -> bool:
        """Whether the process is still running."""
        return self._state == _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt finished process {self.name!r}")
        self._interrupts.append(Interrupt(cause))
        self.engine.sleep(0).add_callback(self._resume_cb)

    def _resume(self, event: Event) -> None:
        if self._state != _PENDING:
            return
        # The branch order favours the hot case: resumed by the event
        # we are waiting on, successfully, with no interrupt queued.
        # _waiting_on is left stale through the generator step: the
        # consumed event can never fire again, every exit path below
        # either parks on a new target or finishes the process, and the
        # stale-wakeup test compares against the `waited` local.
        waited = self._waiting_on
        generator = self.generator
        try:
            if self._interrupts:
                target = generator.throw(self._interrupts.pop(0))
            elif event is waited:
                if event._ok:
                    target = generator.send(event._value)
                else:
                    # Mark the failure as handled by this process.
                    target = generator.throw(event._value)
            elif waited is not None:
                # Stale wakeup: waiting on some other event and this
                # resume is not an interrupt delivery.
                return
            else:
                target = generator.send(None)
        except StopIteration as stop:
            self.succeed(stop.value)
            self._resume_cb = None  # break the self-reference cycle
            return
        except Interrupt as exc:
            self.fail(exc)
            self._resume_cb = None
            return
        except BaseException as exc:
            # Propagate to waiters; if nobody is waiting, _process_callbacks
            # re-raises so the failure is never silent.
            self.fail(exc)
            self._resume_cb = None
            return
        try:
            # Duck-typed hot path: every Event has `engine` and
            # `callbacks`; a non-event yield lands in the AttributeError
            # arm.  Inlines target.add_callback(self._resume_cb) -- the
            # hottest callback registration in the simulator.
            if target.engine is self.engine:
                self._waiting_on = target
                callbacks = target.callbacks
                if callbacks is not None:
                    callbacks.append(self._resume_cb)
                elif target._state == _PROCESSED:
                    self._resume(target)
                # A cancelled target keeps the process parked, exactly
                # as add_callback's no-op branch did.
                return
        except AttributeError:
            pass
        if not isinstance(target, Event):
            self.fail(SimulationError(
                f"process {self.name!r} yielded non-event {target!r}"))
        else:
            self.fail(SimulationError(
                f"process {self.name!r} yielded event from another engine"))


class Engine:
    """The simulation event loop.

    Attributes
    ----------
    now:
        Current simulated time in nanoseconds.

    Parameters
    ----------
    scheduler:
        Which schedule queue to use: ``"heap"`` (the reference packed
        binary heap), ``"wheel"`` (hierarchical timing wheel, the
        default), an :class:`~repro.sim.queues.EventQueue` subclass, or
        an instance.  None picks the process default
        (:data:`repro.sim.queues.DEFAULT_SCHEDULER`, overridable with
        the ``REPRO_SIM_SCHEDULER`` environment variable).  Both
        shipped queues produce byte-identical schedules; the knob
        exists for validation and benchmarking.
    """

    __slots__ = ("_now", "_queue", "_push", "_wheel", "_active",
                 "_sleep_pool", "_sleeps_reused", "_stats", "_done",
                 "_name_seqs", "tracer")

    def __init__(self, scheduler=None):
        self._now: int = 0
        self._stats = EngineStats()
        #: Engine-scoped naming counters (see :meth:`name_seq`).
        self._name_seqs: dict = {}
        # Kept as a plain engine slot (cheaper to bump than a field of
        # _stats on the sleep() hot path) and synced into _stats by the
        # `stats` property.
        self._sleeps_reused = 0
        queue = make_queue(scheduler)
        queue.stats = self._stats
        self._queue = queue
        # Bound push method: the one-attribute-load schedule call used
        # by the hot triggers (succeed / sleep / _schedule).
        self._push = queue.push
        # Exact-type check: the near-window push of the stock wheel is
        # inlined at the hottest trigger sites (succeed / sleep), which
        # is only sound when push() has the stock implementation.
        self._wheel = queue if type(queue) is TimingWheelQueue else None
        self._active = False
        self._sleep_pool: list = []
        #: Structured tracer (see repro.obs), or None.  Every
        #: instrumentation site guards on ``engine.tracer is not None``,
        #: so the default costs one attribute load per site.
        self.tracer = _TRACER_FACTORY(self) if _TRACER_FACTORY is not None \
            else None
        # A permanently-processed no-op event (see the `done` property).
        done = Event(self)
        done._state = _PROCESSED
        done.callbacks = None
        self._done = done

    @property
    def now(self) -> int:
        """Current simulated time (ns)."""
        return self._now

    @property
    def stats(self) -> EngineStats:
        """Counters: events fired / cancelled, heap compactions, ..."""
        self._stats.sleeps_reused = self._sleeps_reused
        return self._stats

    @property
    def scheduler(self) -> str:
        """Name of the schedule queue implementation in use."""
        return self._queue.name

    def reset_stats(self) -> None:
        """Zero the engine's counters (the clock and queue are untouched).

        The queue's dead-entry count tracks live state, not history, so
        it is deliberately left alone.  Naming counters are also left
        alone -- they identify objects already created on this engine.
        """
        self._sleeps_reused = 0
        self._stats.reset()

    def name_seq(self, kind: str) -> int:
        """Next value (1, 2, ...) of an engine-scoped naming counter.

        Object uids/names built from these are deterministic *per run*:
        two engines constructed in one process hand out identical
        sequences, where a class-level counter would leak monotonically
        across every engine in the process and make names depend on
        whatever ran before (tests/test_runtime.py pins this down).
        """
        n = self._name_seqs.get(kind, 0) + 1
        self._name_seqs[kind] = n
        return n

    @property
    def done(self) -> Event:
        """A shared, already-processed no-op event with value None.

        Yielding it resumes the process immediately (still at the
        current time, via the processed-event callback fast path)
        without scheduling anything -- the zero-cost result for APIs
        that sometimes have nothing to wait for, e.g. a zero-ns charge.
        """
        return self._done

    @property
    def heap_size(self) -> int:
        """Entries in the schedule queue (including cancelled ones).

        The name predates the pluggable queue; it reports whichever
        implementation the engine runs on.
        """
        return len(self._queue)

    # -- event factories --------------------------------------------
    def event(self) -> Event:
        """Create a fresh pending event."""
        return Event(self)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        """An event firing ``delay`` ns from now."""
        return Timeout(self, int(delay), value)

    def sleep(self, delay: int) -> Event:
        """A pooled one-shot timer firing ``delay`` ns from now.

        Contract (what makes pooling safe): the returned event must be
        ``yield``-ed (or given at most short-lived callbacks) and then
        *forgotten*.  It is recycled the moment its callbacks have run,
        so callers must never retain it across that instant, never
        :meth:`~Event.cancel` it, and never hand it to code that might
        (``any_of`` guards, :func:`repro.sim.sync._timed`, ...).  Use
        :meth:`timeout` whenever the timer may be cancelled or kept.

        Scheduling order is identical to an equivalent :meth:`timeout`;
        only the allocation is elided.
        """
        pool = self._sleep_pool
        if pool:
            # The run loop parked it TRIGGERED with an emptied callbacks
            # list, so reuse touches no event state at all.
            ev = pool.pop()
            self._sleeps_reused += 1
        else:
            ev = _PooledSleep(self)
            ev._state = _TRIGGERED
        if delay.__class__ is not int:
            delay = int(delay)
        if delay < 0:
            raise SimulationError(f"negative sleep delay: {delay}")
        when = self._now + delay
        wheel = self._wheel
        if wheel is not None and when < wheel._epoch_end:
            # Inlined near-window wheel push (the hottest schedule op).
            wheel._len += 1
            bucket = wheel._buckets.get(when)
            if bucket is None:
                wheel._buckets[when] = [ev]
                heappush(wheel._whens, when)
            else:
                bucket.append(ev)
        else:
            self._push(ev, when)
        return ev

    def process(self, generator: Generator, name: Optional[str] = None) -> Process:
        """Start a new process from a generator coroutine."""
        return Process(self, generator, name)

    def any_of(self, events: Iterable[Event],
               cancel_losers: bool = False) -> AnyOf:
        """Event firing when the first of ``events`` fires.

        Losing waiters are detached; ``cancel_losers=True`` also
        cancels still-pending losers (safe only for private events).
        """
        return AnyOf(self, events, cancel_losers=cancel_losers)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event firing when all of ``events`` have fired."""
        return AllOf(self, events)

    # -- scheduling --------------------------------------------------
    def _schedule(self, event: Event, delay: int = 0) -> None:
        self._push(event, self._now + delay)

    def call_at(self, when: int, fn: Callable[[], None]) -> Event:
        """Run ``fn`` at absolute time ``when`` (must not be in the past)."""
        if when < self._now:
            raise SimulationError(f"call_at({when}) is in the past (now={self._now})")
        ev = self.timeout(when - self._now)
        ev.add_callback(lambda _e: fn())
        return ev

    # -- main loop ---------------------------------------------------
    def run(self, until: Optional[int] = None) -> None:
        """Run until the event queue drains or ``until`` ns is reached.

        When ``until`` is given the clock is advanced exactly to it even
        if the queue drains earlier, so back-to-back ``run`` calls see a
        consistent timeline.
        """
        if self._active:
            raise SimulationError("engine is already running (reentrant run())")
        self._active = True
        # Pause the cyclic garbage collector for the duration of the
        # run: simulation allocation is dominated by short-lived
        # acyclic objects reclaimed by refcounting, and generational
        # collections triggered mid-run cost ~15% of sweep wall time
        # while finding almost nothing.  Cyclic garbage (finished
        # process/generator webs) is simply deferred to the first
        # collection after the run.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        limit = until if until is not None else _NO_LIMIT
        fired = 0
        try:
            if self._wheel is not None:
                fired = self._run_wheel(limit)
            else:
                fired = self._run_generic(limit)
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._stats.events_fired += fired
            self._active = False
            if gc_was_enabled:
                gc.enable()

    # The two loop bodies below are intentionally the same code twice:
    # _run_generic speaks the EventQueue interface (one pop_batch call
    # per timestamp), _run_wheel walks the stock wheel's buckets
    # directly to shave the per-batch call and tuple from the hottest
    # loop in the simulator.  Keep their firing semantics in sync;
    # tests/test_sim_queues.py pins both to identical schedules.
    def _run_generic(self, limit: int) -> int:
        pool = self._sleep_pool
        pop_batch = self._queue.pop_batch
        fired = 0
        while True:
            popped = pop_batch(limit)
            if popped is None:
                break
            when, batch = popped
            # Batch firing: every event scheduled for this instant, in
            # schedule order, with Event._process_callbacks inlined.
            # The clock is set once up front and rolled back in the
            # (rare) case the whole batch turned out to be cancelled.
            prev_now = self._now
            self._now = when
            live = len(batch)
            for event in batch:
                if event.__class__ is _PooledSleep:
                    # Pooled timers stay TRIGGERED for life and fire
                    # straight off their live callback list (appends
                    # during firing still run, matching the processed-
                    # event immediate-call path); the emptied list is
                    # parked with the event for the next sleep().
                    callbacks = event.callbacks
                    if callbacks is None:
                        # Contract-violating cancel: drop, don't recycle.
                        live -= 1
                        continue
                    for fn in callbacks:
                        fn(event)
                    callbacks.clear()
                    pool.append(event)
                    continue
                if event._state == _CANCELLED:
                    # Withdrawn after scheduling (e.g. a cancelled
                    # Timeout, possibly by an earlier event in this
                    # very batch): drop without firing.
                    live -= 1
                    continue
                callbacks = event.callbacks
                event.callbacks = None
                event._state = _PROCESSED
                if callbacks:
                    for fn in callbacks:
                        fn(event)
                elif not event._ok and isinstance(event, Process):
                    # A process died with no one waiting on it:
                    # surface the error, never silently.
                    raise event._value
            if live:
                fired += live
            else:
                # Nothing fired: an all-cancelled batch must not
                # advance the clock.
                self._now = prev_now
        return fired

    def _run_wheel(self, limit: int) -> int:
        wheel = self._wheel
        pool = self._sleep_pool
        fired = 0
        while True:
            # Re-read per iteration: cascade and compaction replace
            # the wheel's internal containers.
            whens = wheel._whens
            if not whens:
                if not wheel._cascade():
                    break
                continue
            when = whens[0]
            if when > limit:
                break
            if len(whens) == 1:
                del whens[0]
            else:
                heappop(whens)
            batch = wheel._buckets.pop(when)
            wheel._len -= len(batch)
            prev_now = self._now
            self._now = when
            live = len(batch)
            for event in batch:
                if event.__class__ is _PooledSleep:
                    callbacks = event.callbacks
                    if callbacks is None:
                        live -= 1
                        continue
                    for fn in callbacks:
                        fn(event)
                    callbacks.clear()
                    pool.append(event)
                    continue
                if event._state == _CANCELLED:
                    live -= 1
                    continue
                callbacks = event.callbacks
                event.callbacks = None
                event._state = _PROCESSED
                if callbacks:
                    for fn in callbacks:
                        fn(event)
                elif not event._ok and isinstance(event, Process):
                    raise event._value
            if live:
                fired += live
            else:
                self._now = prev_now
        return fired

    def peek(self) -> Optional[int]:
        """Time of the next scheduled event, or None if the queue is empty."""
        return self._queue.peek_when()
