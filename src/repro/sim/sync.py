"""Synchronisation primitives that operate in simulated time.

All primitives hand out :class:`~repro.sim.engine.Event` objects, so a
process waits by ``yield``-ing the returned event.  Wakeup order is
strictly FIFO, which keeps simulations deterministic.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from repro.sim.engine import Engine, Event, SimulationError


class Semaphore:
    """Counting semaphore with FIFO waiters.

    >>> eng = Engine()
    >>> sem = Semaphore(eng, 1)
    >>> def user():
    ...     yield sem.acquire()
    ...     yield eng.timeout(5)
    ...     sem.release()
    """

    def __init__(self, engine: Engine, capacity: int = 1):
        if capacity < 1:
            raise SimulationError(f"semaphore capacity must be >= 1, got {capacity}")
        self.engine = engine
        self.capacity = capacity
        self._available = capacity
        self._waiters: Deque[Event] = deque()

    @property
    def available(self) -> int:
        """Number of free slots."""
        return self._available

    @property
    def queued(self) -> int:
        """Number of processes waiting to acquire."""
        return len(self._waiters)

    def acquire(self) -> Event:
        """Return an event that fires once a slot is held."""
        ev = self.engine.event()
        if self._available > 0:
            self._available -= 1
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def try_acquire(self) -> bool:
        """Take a slot immediately if one is free."""
        if self._available > 0:
            self._available -= 1
            return True
        return False

    def release(self) -> None:
        """Free a slot, waking the oldest waiter if any."""
        if self._waiters:
            self._waiters.popleft().succeed()
        else:
            if self._available >= self.capacity:
                raise SimulationError("release() without matching acquire()")
            self._available += 1


class Lock(Semaphore):
    """Mutual exclusion lock (a semaphore of capacity one).

    Adds :attr:`locked` for introspection and an ``owner`` tag useful
    when debugging deadlocks.
    """

    def __init__(self, engine: Engine, name: str = "lock"):
        super().__init__(engine, capacity=1)
        self.name = name
        self.owner: Optional[object] = None

    @property
    def locked(self) -> bool:
        """Whether the lock is currently held."""
        return self._available == 0

    def acquire(self, owner: Optional[object] = None) -> Event:
        ev = super().acquire()
        if ev.triggered:
            self.owner = owner
        else:
            ev.add_callback(lambda _e: setattr(self, "owner", owner))
        return ev

    def release(self) -> None:
        self.owner = None
        super().release()


class Store:
    """Unbounded FIFO queue of items with blocking ``get``.

    ``put`` never blocks; ``get`` returns an event that fires with the
    next item, in arrival order.
    """

    def __init__(self, engine: Engine):
        self.engine = engine
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def waiting_getters(self) -> int:
        """Number of processes blocked in ``get``."""
        return len(self._getters)

    def put(self, item: Any) -> None:
        """Deposit an item, waking the oldest blocked getter."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Event that fires with the next item."""
        ev = self.engine.event()
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> Any:
        """Pop an item immediately, or return None when empty."""
        return self._items.popleft() if self._items else None


class Gate:
    """A broadcast condition: processes wait until the gate opens.

    Opening the gate releases every current waiter; the gate can be
    re-closed and reused.  Waiting on an already-open gate returns an
    immediately-fired event.
    """

    def __init__(self, engine: Engine, opened: bool = False):
        self.engine = engine
        self._open = opened
        self._waiters: Deque[Event] = deque()

    @property
    def is_open(self) -> bool:
        return self._open

    def wait(self) -> Event:
        ev = self.engine.event()
        if self._open:
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def open(self) -> None:
        """Open the gate, releasing all waiters."""
        self._open = True
        while self._waiters:
            self._waiters.popleft().succeed()

    def close(self) -> None:
        """Close the gate; later waiters block until the next open()."""
        self._open = False

    def pulse(self) -> None:
        """Release current waiters without leaving the gate open."""
        while self._waiters:
            self._waiters.popleft().succeed()


class Channel:
    """A bounded hand-off queue between producer and consumer processes.

    Unlike :class:`Store`, ``put`` blocks when the channel holds
    ``capacity`` items.  Used to model hardware command queues where a
    full ring back-pressures the submitter.
    """

    def __init__(self, engine: Engine, capacity: int):
        if capacity < 1:
            raise SimulationError(f"channel capacity must be >= 1, got {capacity}")
        self.engine = engine
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple] = deque()  # (event, item)

    def __len__(self) -> int:
        return len(self._items)

    @property
    def full(self) -> bool:
        return len(self._items) >= self.capacity

    def put(self, item: Any) -> Event:
        """Event firing once the item has been accepted."""
        ev = self.engine.event()
        if self._getters:
            self._getters.popleft().succeed(item)
            ev.succeed()
        elif len(self._items) < self.capacity:
            self._items.append(item)
            ev.succeed()
        else:
            self._putters.append((ev, item))
        return ev

    def get(self) -> Event:
        """Event firing with the next item."""
        ev = self.engine.event()
        if self._items:
            ev.succeed(self._items.popleft())
            if self._putters:
                put_ev, item = self._putters.popleft()
                self._items.append(item)
                put_ev.succeed()
        else:
            self._getters.append(ev)
        return ev

    def drain(self) -> list:
        """Remove and return every queued item, in queue order.

        Blocked putters are unblocked (their put events fire) and their
        items are included in the returned list -- from the producer's
        point of view the item *was* accepted, it just never reached a
        consumer.  Models a hardware ring being torn down by a channel
        reset: the stranded descriptors are handed back to software.
        """
        items = list(self._items)
        self._items.clear()
        while self._putters:
            put_ev, item = self._putters.popleft()
            items.append(item)
            put_ev.succeed()
        return items


class RWLock:
    """Reader-writer lock with FIFO fairness.

    Multiple readers may hold the lock together; writers are exclusive.
    Waiters are granted strictly in arrival order (a waiting writer
    blocks later readers), which prevents writer starvation and keeps
    simulations deterministic.
    """

    def __init__(self, engine: Engine, name: str = "rwlock"):
        self.engine = engine
        self.name = name
        self._readers = 0
        self._writer = False
        self._waiters: Deque[tuple] = deque()  # (event, is_writer)

    @property
    def held_exclusive(self) -> bool:
        return self._writer

    @property
    def reader_count(self) -> int:
        return self._readers

    @property
    def queued(self) -> int:
        return len(self._waiters)

    def acquire_read(self) -> Event:
        """Event firing once shared access is granted."""
        ev = self.engine.event()
        if not self._writer and not self._waiters:
            self._readers += 1
            ev.succeed()
        else:
            self._waiters.append((ev, False))
        return ev

    def acquire_write(self) -> Event:
        """Event firing once exclusive access is granted."""
        ev = self.engine.event()
        if not self._writer and self._readers == 0 and not self._waiters:
            self._writer = True
            ev.succeed()
        else:
            self._waiters.append((ev, True))
        return ev

    def release_read(self) -> None:
        if self._readers <= 0:
            raise SimulationError(f"{self.name}: release_read without readers")
        self._readers -= 1
        self._grant()

    def release_write(self) -> None:
        if not self._writer:
            raise SimulationError(f"{self.name}: release_write without writer")
        self._writer = False
        self._grant()

    def _grant(self) -> None:
        while self._waiters:
            ev, is_writer = self._waiters[0]
            if is_writer:
                if self._readers == 0 and not self._writer:
                    self._waiters.popleft()
                    self._writer = True
                    ev.succeed()
                return
            if self._writer:
                return
            self._waiters.popleft()
            self._readers += 1
            ev.succeed()


class Barrier:
    """N-party rendezvous: the barrier trips when ``parties`` arrive."""

    def __init__(self, engine: Engine, parties: int):
        if parties < 1:
            raise SimulationError(f"barrier parties must be >= 1, got {parties}")
        self.engine = engine
        self.parties = parties
        self._arrived = 0
        self._waiters: Deque[Event] = deque()

    def wait(self) -> Event:
        """Event that fires once all parties have arrived."""
        ev = self.engine.event()
        self._arrived += 1
        if self._arrived >= self.parties:
            self._arrived = 0
            while self._waiters:
                self._waiters.popleft().succeed()
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev
