"""Synchronisation primitives that operate in simulated time.

All primitives hand out :class:`~repro.sim.engine.Event` objects, so a
process waits by ``yield``-ing the returned event.  Wakeup order is
strictly FIFO, which keeps simulations deterministic.

Every blocking operation takes an optional ``timeout=`` (nanoseconds).
A bounded wait that expires fails its event with
:class:`~repro.sim.engine.WaitTimeout` and *cancels* the queued waiter,
so an expired waiter can never absorb a later grant: grant paths skip
cancelled waiters lazily.  On a grant/timeout tie at the same
simulated instant, the grant wins.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Optional

from repro.sim.engine import Engine, Event, SimulationError, WaitTimeout


def _timed(engine: Engine, waiter: Event, timeout: Optional[int],
           what: str = "wait",
           on_timeout: Optional[Callable[[], None]] = None) -> Event:
    """Bound a queued ``waiter`` event by ``timeout`` nanoseconds.

    Returns ``waiter`` unchanged when no bound is needed (no timeout,
    or already granted).  Otherwise returns a fresh event that mirrors
    the grant -- or fails with :class:`WaitTimeout` once the timer
    expires, after cancelling ``waiter`` so the owning primitive can
    never grant it.  ``on_timeout`` lets the primitive fix up internal
    state (e.g. re-run an RWLock grant scan) after the cancellation.
    """
    if timeout is None or waiter.triggered:
        return waiter
    outer = engine.event()
    timer = engine.timeout(timeout)

    def granted(w: Event) -> None:
        if outer.triggered:  # pragma: no cover - timer cancels waiter first
            return
        if not timer.processed:
            timer.cancel()
        if w.ok:
            outer.succeed(w.value)
        else:
            outer.fail(w.value)

    def expired(_t: Event) -> None:
        if outer.triggered or waiter.triggered:
            return  # granted at the same instant: the grant wins
        waiter.cancel()
        outer.fail(WaitTimeout(f"{what} timed out after {timeout} ns"))
        if on_timeout is not None:
            on_timeout()

    waiter.add_callback(granted)
    timer.add_callback(expired)
    return outer


class Semaphore:
    """Counting semaphore with FIFO waiters.

    >>> eng = Engine()
    >>> sem = Semaphore(eng, 1)
    >>> def user():
    ...     yield sem.acquire()
    ...     yield eng.timeout(5)
    ...     sem.release()
    """

    __slots__ = ("engine", "capacity", "_available", "_waiters")


    def __init__(self, engine: Engine, capacity: int = 1):
        if capacity < 1:
            raise SimulationError(f"semaphore capacity must be >= 1, got {capacity}")
        self.engine = engine
        self.capacity = capacity
        self._available = capacity
        self._waiters: Deque[Event] = deque()

    @property
    def available(self) -> int:
        """Number of free slots."""
        return self._available

    @property
    def queued(self) -> int:
        """Number of processes waiting to acquire (live waiters only)."""
        return sum(1 for w in self._waiters if not w.cancelled)

    def acquire(self, timeout: Optional[int] = None) -> Event:
        """Return an event that fires once a slot is held.

        With ``timeout=`` the event instead fails with
        :class:`WaitTimeout` if no slot frees up in time; the queued
        waiter is cancelled and never takes a slot.
        """
        ev = self.engine.event()
        if self._available > 0:
            self._available -= 1
            ev.succeed()
        else:
            self._waiters.append(ev)
        return _timed(self.engine, ev, timeout,
                      f"{type(self).__name__}.acquire")

    def try_acquire(self) -> bool:
        """Take a slot immediately if one is free."""
        if self._available > 0:
            self._available -= 1
            return True
        return False

    def release(self) -> None:
        """Free a slot, waking the oldest live waiter if any."""
        while self._waiters and self._waiters[0].cancelled:
            self._waiters.popleft()
        if self._waiters:
            self._waiters.popleft().succeed()
        else:
            if self._available >= self.capacity:
                raise SimulationError("release() without matching acquire()")
            self._available += 1


class Lock(Semaphore):
    """Mutual exclusion lock (a semaphore of capacity one).

    Adds :attr:`locked` for introspection and an ``owner`` tag useful
    when debugging deadlocks.
    """

    __slots__ = ("name", "owner")


    def __init__(self, engine: Engine, name: str = "lock"):
        super().__init__(engine, capacity=1)
        self.name = name
        self.owner: Optional[object] = None

    @property
    def locked(self) -> bool:
        """Whether the lock is currently held."""
        return self._available == 0

    def acquire(self, owner: Optional[object] = None,
                timeout: Optional[int] = None) -> Event:
        ev = super().acquire(timeout=timeout)
        if ev.triggered:
            if ev.ok:
                self.owner = owner
        else:
            def on_grant(e: Event) -> None:
                if e.ok:  # a WaitTimeout failure never took the lock
                    self.owner = owner
            ev.add_callback(on_grant)
        return ev

    def release(self) -> None:
        self.owner = None
        super().release()


class Store:
    """Unbounded FIFO queue of items with blocking ``get``.

    ``put`` never blocks; ``get`` returns an event that fires with the
    next item, in arrival order.
    """

    __slots__ = ("engine", "_items", "_getters")


    def __init__(self, engine: Engine):
        self.engine = engine
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def waiting_getters(self) -> int:
        """Number of processes blocked in ``get`` (live waiters only)."""
        return sum(1 for g in self._getters if not g.cancelled)

    def put(self, item: Any) -> None:
        """Deposit an item, waking the oldest live blocked getter."""
        while self._getters and self._getters[0].cancelled:
            self._getters.popleft()
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self, timeout: Optional[int] = None) -> Event:
        """Event that fires with the next item (or fails with
        :class:`WaitTimeout` after ``timeout`` ns)."""
        ev = self.engine.event()
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return _timed(self.engine, ev, timeout, "Store.get")

    def try_get(self) -> Any:
        """Pop an item immediately, or return None when empty."""
        return self._items.popleft() if self._items else None


class Gate:
    """A broadcast condition: processes wait until the gate opens.

    Opening the gate releases every current waiter; the gate can be
    re-closed and reused.  Waiting on an already-open gate returns an
    immediately-fired event.
    """

    __slots__ = ("engine", "_open", "_waiters")


    def __init__(self, engine: Engine, opened: bool = False):
        self.engine = engine
        self._open = opened
        self._waiters: Deque[Event] = deque()

    @property
    def is_open(self) -> bool:
        return self._open

    @property
    def waiting(self) -> int:
        """Number of processes blocked in ``wait`` (live waiters only)."""
        return sum(1 for w in self._waiters if not w.cancelled)

    def wait(self, timeout: Optional[int] = None) -> Event:
        ev = self.engine.event()
        if self._open:
            ev.succeed()
        else:
            self._waiters.append(ev)
        return _timed(self.engine, ev, timeout, "Gate.wait")

    def open(self) -> None:
        """Open the gate, releasing all waiters."""
        self._open = True
        self._release_all()

    def close(self) -> None:
        """Close the gate; later waiters block until the next open()."""
        self._open = False

    def pulse(self) -> None:
        """Release current waiters without leaving the gate open."""
        self._release_all()

    def _release_all(self) -> None:
        while self._waiters:
            w = self._waiters.popleft()
            if not w.cancelled:
                w.succeed()


class Channel:
    """A bounded hand-off queue between producer and consumer processes.

    Unlike :class:`Store`, ``put`` blocks when the channel holds
    ``capacity`` items.  Used to model hardware command queues where a
    full ring back-pressures the submitter.
    """

    __slots__ = ("engine", "capacity", "_items", "_getters", "_putters")


    def __init__(self, engine: Engine, capacity: int):
        if capacity < 1:
            raise SimulationError(f"channel capacity must be >= 1, got {capacity}")
        self.engine = engine
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple] = deque()  # (event, item)

    def __len__(self) -> int:
        return len(self._items)

    @property
    def full(self) -> bool:
        return len(self._items) >= self.capacity

    def put(self, item: Any, timeout: Optional[int] = None) -> Event:
        """Event firing once the item has been accepted.

        A timed-out put cancels its queued slot: the item is *not*
        delivered later.
        """
        ev = self.engine.event()
        while self._getters and self._getters[0].cancelled:
            self._getters.popleft()
        if self._getters:
            self._getters.popleft().succeed(item)
            ev.succeed()
        elif len(self._items) < self.capacity:
            self._items.append(item)
            ev.succeed()
        else:
            self._putters.append((ev, item))
        return _timed(self.engine, ev, timeout, "Channel.put")

    def get(self, timeout: Optional[int] = None) -> Event:
        """Event firing with the next item."""
        ev = self.engine.event()
        if self._items:
            ev.succeed(self._items.popleft())
            self._admit_putter()
        else:
            self._getters.append(ev)
        return _timed(self.engine, ev, timeout, "Channel.get")

    def _admit_putter(self) -> None:
        """Move the oldest live blocked putter's item into the queue."""
        while self._putters:
            put_ev, item = self._putters.popleft()
            if put_ev.cancelled:
                continue  # timed-out put: the item was never accepted
            self._items.append(item)
            put_ev.succeed()
            return

    def drain(self) -> list:
        """Remove and return every queued item, in queue order.

        Blocked putters are unblocked (their put events fire) and their
        items are included in the returned list -- from the producer's
        point of view the item *was* accepted, it just never reached a
        consumer.  Models a hardware ring being torn down by a channel
        reset: the stranded descriptors are handed back to software.
        Timed-out putters are skipped: their items were never accepted.
        """
        items = list(self._items)
        self._items.clear()
        while self._putters:
            put_ev, item = self._putters.popleft()
            if put_ev.cancelled:
                continue
            items.append(item)
            put_ev.succeed()
        return items


class RWLock:
    """Reader-writer lock with FIFO fairness.

    Multiple readers may hold the lock together; writers are exclusive.
    Waiters are granted strictly in arrival order (a waiting writer
    blocks later readers), which prevents writer starvation and keeps
    simulations deterministic.
    """

    __slots__ = ("engine", "name", "_readers", "_writer", "_waiters")


    def __init__(self, engine: Engine, name: str = "rwlock"):
        self.engine = engine
        self.name = name
        self._readers = 0
        self._writer = False
        self._waiters: Deque[tuple] = deque()  # (event, is_writer)

    @property
    def held_exclusive(self) -> bool:
        return self._writer

    @property
    def reader_count(self) -> int:
        return self._readers

    @property
    def queued(self) -> int:
        return sum(1 for ev, _w in self._waiters if not ev.cancelled)

    def _purge_cancelled_head(self) -> None:
        while self._waiters and self._waiters[0][0].cancelled:
            self._waiters.popleft()

    def acquire_read(self, timeout: Optional[int] = None) -> Event:
        """Event firing once shared access is granted."""
        self._purge_cancelled_head()
        ev = self.engine.event()
        if not self._writer and not self.queued:
            self._readers += 1
            ev.succeed()
        else:
            self._waiters.append((ev, False))
        return _timed(self.engine, ev, timeout,
                      f"{self.name}.acquire_read", on_timeout=self._grant)

    def acquire_write(self, timeout: Optional[int] = None) -> Event:
        """Event firing once exclusive access is granted."""
        self._purge_cancelled_head()
        ev = self.engine.event()
        if not self._writer and self._readers == 0 and not self.queued:
            self._writer = True
            ev.succeed()
        else:
            self._waiters.append((ev, True))
        return _timed(self.engine, ev, timeout,
                      f"{self.name}.acquire_write", on_timeout=self._grant)

    def release_read(self) -> None:
        if self._readers <= 0:
            raise SimulationError(f"{self.name}: release_read without readers")
        self._readers -= 1
        self._grant()

    def release_write(self) -> None:
        if not self._writer:
            raise SimulationError(f"{self.name}: release_write without writer")
        self._writer = False
        self._grant()

    def _grant(self) -> None:
        while self._waiters:
            ev, is_writer = self._waiters[0]
            if ev.cancelled:
                self._waiters.popleft()
                continue
            if is_writer:
                if self._readers == 0 and not self._writer:
                    self._waiters.popleft()
                    self._writer = True
                    ev.succeed()
                return
            if self._writer:
                return
            self._waiters.popleft()
            self._readers += 1
            ev.succeed()


class Barrier:
    """N-party rendezvous: the barrier trips when ``parties`` arrive."""

    __slots__ = ("engine", "parties", "_arrived", "_waiters")


    def __init__(self, engine: Engine, parties: int):
        if parties < 1:
            raise SimulationError(f"barrier parties must be >= 1, got {parties}")
        self.engine = engine
        self.parties = parties
        self._arrived = 0
        self._waiters: Deque[Event] = deque()

    def wait(self, timeout: Optional[int] = None) -> Event:
        """Event that fires once all parties have arrived.

        A timed-out party withdraws its arrival: the barrier then needs
        that many fresh arrivals again.
        """
        ev = self.engine.event()
        self._arrived += 1
        if self._arrived >= self.parties:
            self._arrived = 0
            while self._waiters:
                w = self._waiters.popleft()
                if not w.cancelled:
                    w.succeed()
            ev.succeed()
            return ev
        self._waiters.append(ev)

        def withdraw() -> None:
            self._arrived -= 1

        return _timed(self.engine, ev, timeout, "Barrier.wait",
                      on_timeout=withdraw)
