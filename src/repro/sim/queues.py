"""Pluggable schedule queues for the simulation engine.

The engine's firing order contract is ``(when, schedule-order)``: of
two scheduled events the earlier ``when`` fires first, and within one
``when`` the event scheduled first fires first.  Everything else --
representation, compaction policy, batching -- is an implementation
choice, so it lives behind the :class:`EventQueue` interface and is
selected per engine with ``Engine(scheduler=...)``.

Two implementations ship:

* :class:`PackedHeapQueue` -- the reference implementation: a binary
  heap of ``(key, event)`` 2-tuples with the integer key
  ``(when << 40) | seq`` (one C-level int comparison per sift step).
  ``seq`` is globally unique and bounded below ``2**40`` (guarded), so
  the int order *is* the ``(when, seq)`` order.
* :class:`TimingWheelQueue` -- a hierarchical timing wheel / calendar
  queue: events within a near *horizon* live in exact per-timestamp
  FIFO buckets keyed by a min-heap of **distinct** timestamps; events
  beyond the horizon overflow into per-epoch far buckets that cascade
  into the near structure as the clock advances.  Same-``when`` events
  need no sequence numbers (bucket order is schedule order), pushes to
  an existing timestamp are a plain ``list.append``, and the whole
  bucket drains as one batch -- which is what makes it faster than the
  heap on the simulator's bursty, clustered timestamp distributions.

Both queues count cancelled entries they still hold and lazily compact
once the dead dominate the live (see :data:`COMPACT_MIN_DEAD`), so
cancel-heavy overload runs do not drag dead entries around forever.

Determinism: the two implementations produce byte-identical firing
schedules -- ``tests/test_sim_queues.py`` pins this down directly and
the golden-equivalence suite pins it end-to-end.

The process-wide default is :data:`DEFAULT_SCHEDULER` and can be
overridden with the ``REPRO_SIM_SCHEDULER`` environment variable
(``heap`` or ``wheel``) -- the CI scheduler matrix runs the test suite
under both.
"""

from __future__ import annotations

import heapq
import os
from typing import List, Optional, Tuple

from repro import vector

_CANCELLED = 3  # mirrors repro.sim.engine's event-state constant

#: Mirrors ``vector.ENABLED``; selects the np.sort heap rebuild below.
_VEC_ON = False

#: Below this many keys the stdlib heapify beats array round-tripping.
_VECTOR_MIN_KEYS = 16


@vector.register
def _rebind_kernels(enabled: bool) -> None:
    global _VEC_ON
    _VEC_ON = enabled


def _heapify_ints(values: List[int]) -> List[int]:
    """Build a min-heap of distinct ints (wheel timestamps / epochs).

    Vector mode returns the ascending np.sort -- a sorted list *is* a
    valid binary min-heap, and since only pop order is observable (and
    the keys are distinct), later heappush/heappop behave identically
    on either layout.  Raw ns timestamps fit int64 comfortably; a
    hypothetical overflow falls back to the reference heapify.
    """
    if _VEC_ON and len(values) >= _VECTOR_MIN_KEYS:
        np = vector.numpy()
        try:
            return np.sort(np.asarray(values, dtype=np.int64)).tolist()
        except OverflowError:  # pragma: no cover - >2**63 ns timestamps
            pass
    heapq.heapify(values)
    return values

#: Heap keys pack (when, seq) as ``(when << TIME_SHIFT) | seq``.
TIME_SHIFT = 40
SEQ_LIMIT = 1 << TIME_SHIFT

#: Compaction policy: rebuild the structure when more than this many
#: cancelled entries are queued *and* they outnumber the live ones.
COMPACT_MIN_DEAD = 64

#: Near-window width of the timing wheel, ns.  Events further out than
#: this from the window base overflow into far epochs.  1 ms covers the
#: sleeps/timeouts the hot paths issue; only long watchdogs and idle
#: timers overflow.
WHEEL_HORIZON = 1 << 20


class EventQueue:
    """Interface for engine schedule queues.

    Implementations order events by ``(when, push order)`` and must
    provide:

    * :meth:`push` -- enqueue a triggered event for ``when`` (never in
      the past).
    * :meth:`pop_batch` -- remove and return ``(when, events)`` for the
      earliest ``when <= limit``, with *every* queued event at that
      timestamp in push order, or None.  Returned lists may contain
      cancelled entries; the caller skips them.
    * :meth:`peek_when` -- earliest queued timestamp, or None.
    * :meth:`note_cancelled` -- a queued event was cancelled in place;
      the queue may compact lazily.
    * ``len(queue)`` -- queued entries, including cancelled ones.

    ``stats`` (an :class:`~repro.sim.engine.EngineStats`) is attached
    by the engine; implementations bump ``heap_compactions`` on every
    lazy rebuild.
    """

    name = "abstract"

    stats = None

    def push(self, event, when: int) -> None:
        raise NotImplementedError

    def pop_batch(self, limit: int) -> Optional[Tuple[int, list]]:
        raise NotImplementedError

    def peek_when(self) -> Optional[int]:
        raise NotImplementedError

    def note_cancelled(self, event) -> None:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError


class PackedHeapQueue(EventQueue):
    """The reference queue: a binary heap of packed-int-keyed entries."""

    name = "heap"

    __slots__ = ("_heap", "_seq", "_dead", "stats")

    def __init__(self):
        self._heap: List[tuple] = []
        self._seq = 0
        #: Cancelled entries still sitting in the heap.
        self._dead = 0
        self.stats = None

    def push(self, event, when: int) -> None:
        seq = self._seq + 1
        if seq >= SEQ_LIMIT:  # pragma: no cover - 2**40 events
            from repro.sim.engine import SimulationError
            raise SimulationError("event sequence space exhausted")
        self._seq = seq
        heapq.heappush(self._heap, ((when << TIME_SHIFT) | seq, event))

    def pop_batch(self, limit: int) -> Optional[Tuple[int, list]]:
        heap = self._heap
        while heap:
            key, event = heap[0]
            when = key >> TIME_SHIFT
            if when > limit:
                return None
            if event._state == _CANCELLED:
                # Withdrawn after scheduling: drop without firing.
                heapq.heappop(heap)
                self._dead -= 1
                continue
            heapq.heappop(heap)
            batch = [event]
            # Batch firing: drain every event scheduled for this same
            # instant in one dispatch (they are contiguous at the heap
            # top because the seq bits sit below the time bits).
            limit_key = ((when + 1) << TIME_SHIFT)
            while heap and heap[0][0] < limit_key:
                batch.append(heapq.heappop(heap)[1])
            return when, batch
        return None

    def peek_when(self) -> Optional[int]:
        heap = self._heap
        while heap:
            key, event = heap[0]
            if event._state != _CANCELLED:
                return key >> TIME_SHIFT
            heapq.heappop(heap)
            self._dead -= 1
        return None

    def note_cancelled(self, event) -> None:
        dead = self._dead + 1
        self._dead = dead
        if dead > COMPACT_MIN_DEAD and dead * 2 > len(self._heap):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without its cancelled entries (in place, so
        any loop holding the list keeps seeing the same object)."""
        heap = self._heap
        heap[:] = [entry for entry in heap if entry[1]._state != _CANCELLED]
        heapq.heapify(heap)
        self._dead = 0
        if self.stats is not None:
            self.stats.heap_compactions += 1

    def __len__(self) -> int:
        return len(self._heap)


class TimingWheelQueue(EventQueue):
    """Hierarchical timing wheel: exact near buckets, far-epoch overflow.

    *Near* events (``when < epoch_end``) live in ``_buckets``, a dict
    mapping each distinct timestamp to its FIFO event list, with the
    distinct timestamps ordered by the ``_whens`` min-heap -- so a
    timestamp pays one heap operation however many events share it, and
    the common "another event at an existing instant" push is a dict
    hit plus a list append.

    *Far* events overflow into ``_far``: per-epoch dicts of the same
    shape (epoch = ``when // horizon``).  When the near structure
    drains, the earliest far epoch cascades: its buckets become the
    near buckets and ``epoch_end`` advances to the epoch's end.  The
    cascade preserves FIFO order per timestamp (bucket lists move
    wholesale) and the near/far split preserves global order because
    every far timestamp is >= ``epoch_end`` > every near timestamp.
    """

    name = "wheel"

    __slots__ = ("_buckets", "_whens", "_far", "_far_epochs", "_epoch_end",
                 "_horizon", "_len", "_dead", "stats")

    def __init__(self, horizon: int = WHEEL_HORIZON):
        if horizon < 1:
            raise ValueError(f"wheel horizon must be >= 1, got {horizon}")
        self._buckets: dict = {}
        self._whens: List[int] = []
        self._far: dict = {}
        self._far_epochs: List[int] = []
        self._epoch_end = horizon
        self._horizon = horizon
        self._len = 0
        self._dead = 0
        self.stats = None

    def push(self, event, when: int) -> None:
        self._len += 1
        if when < self._epoch_end:
            bucket = self._buckets.get(when)
            if bucket is None:
                self._buckets[when] = [event]
                heapq.heappush(self._whens, when)
            else:
                bucket.append(event)
            return
        epoch = when // self._horizon
        sub = self._far.get(epoch)
        if sub is None:
            self._far[epoch] = {when: [event]}
            heapq.heappush(self._far_epochs, epoch)
        else:
            bucket = sub.get(when)
            if bucket is None:
                sub[when] = [event]
            else:
                bucket.append(event)

    def _cascade(self) -> bool:
        """Promote the earliest far epoch into the near window."""
        while self._far_epochs:
            epoch = heapq.heappop(self._far_epochs)
            sub = self._far.pop(epoch)
            self._epoch_end = (epoch + 1) * self._horizon
            if sub:
                # Near timestamps are all < the old epoch_end and far
                # ones all >= it, so the dicts are disjoint.
                self._buckets.update(sub)
                self._whens = _heapify_ints(list(self._buckets))
                return True
        return False

    def pop_batch(self, limit: int) -> Optional[Tuple[int, list]]:
        whens = self._whens
        while not whens:
            if not self._cascade():
                return None
            whens = self._whens
        when = whens[0]
        if when > limit:
            return None
        heapq.heappop(whens)
        batch = self._buckets.pop(when)
        self._len -= len(batch)
        return when, batch

    def peek_when(self) -> Optional[int]:
        while not self._whens:
            if not self._cascade():
                return None
        return self._whens[0]

    def note_cancelled(self, event) -> None:
        dead = self._dead + 1
        self._dead = dead
        if dead > COMPACT_MIN_DEAD and dead * 2 > self._len:
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries from every bucket, near and far."""
        live = 0
        buckets = {}
        for when, bucket in self._buckets.items():
            kept = [ev for ev in bucket if ev._state != _CANCELLED]
            if kept:
                buckets[when] = kept
                live += len(kept)
        self._buckets = buckets
        self._whens = _heapify_ints(list(buckets))
        far = {}
        for epoch, sub in self._far.items():
            kept_sub = {}
            for when, bucket in sub.items():
                kept = [ev for ev in bucket if ev._state != _CANCELLED]
                if kept:
                    kept_sub[when] = kept
                    live += len(kept)
            if kept_sub:
                far[epoch] = kept_sub
        self._far = far
        self._far_epochs = _heapify_ints(list(far))
        self._len = live
        self._dead = 0
        if self.stats is not None:
            self.stats.heap_compactions += 1

    def __len__(self) -> int:
        return self._len


#: name -> implementation, for ``Engine(scheduler="...")``.
SCHEDULERS = {
    PackedHeapQueue.name: PackedHeapQueue,
    TimingWheelQueue.name: TimingWheelQueue,
}

#: The process-wide default scheduler.  The wheel is the default: it is
#: byte-equivalent to the heap (golden-pinned) and faster on the hot
#: paths; set REPRO_SIM_SCHEDULER=heap to fall back to the reference.
DEFAULT_SCHEDULER = os.environ.get("REPRO_SIM_SCHEDULER", "wheel")


def make_queue(scheduler=None) -> EventQueue:
    """Resolve ``scheduler`` (None, a name, a class, or an instance)."""
    if scheduler is None:
        scheduler = DEFAULT_SCHEDULER
    if isinstance(scheduler, EventQueue):
        return scheduler
    if isinstance(scheduler, type) and issubclass(scheduler, EventQueue):
        return scheduler()
    try:
        cls = SCHEDULERS[scheduler]
    except (KeyError, TypeError):
        raise ValueError(
            f"unknown scheduler {scheduler!r}; choose from "
            f"{sorted(SCHEDULERS)} or pass an EventQueue") from None
    return cls()
