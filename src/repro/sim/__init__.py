"""Deterministic discrete-event simulation kernel.

This package provides the substrate every simulated component in the
reproduction runs on: a nanosecond-resolution event loop (:mod:`engine`),
generator-coroutine processes, and simulated-time synchronisation
primitives (:mod:`sync`).

The design is intentionally SimPy-like but self-contained (no external
dependency) and fully deterministic: events scheduled for the same
timestamp fire in schedule order, so a given seed always produces an
identical trace.
"""

from repro.sim.engine import (
    Engine,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
    WaitTimeout,
)
from repro.sim.queues import (
    DEFAULT_SCHEDULER,
    SCHEDULERS,
    EventQueue,
    PackedHeapQueue,
    TimingWheelQueue,
)
from repro.sim.sync import (
    Barrier,
    Channel,
    Gate,
    Lock,
    RWLock,
    Semaphore,
    Store,
)

__all__ = [
    "Barrier",
    "Channel",
    "DEFAULT_SCHEDULER",
    "Engine",
    "Event",
    "EventQueue",
    "Gate",
    "Interrupt",
    "Lock",
    "PackedHeapQueue",
    "Process",
    "RWLock",
    "SCHEDULERS",
    "Semaphore",
    "SimulationError",
    "Store",
    "TimingWheelQueue",
    "Timeout",
    "WaitTimeout",
]
