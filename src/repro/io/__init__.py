"""The unified I/O pipeline: planning, copy backends, completion
strategies, middleware, and fault supervision.

Every filesystem variant's data path is a declarative composition of
these pieces (see each variant's ``_build_pipeline``):

==========  ======================  ==================  ===================
variant     write pipeline          copy backend        completion
==========  ======================  ==================  ===================
NOVA        SyncWritePipeline       MemcpyBackend       (synchronous copy)
NOVA-DMA    SyncWritePipeline       DmaPollBackend      BusyPollCompletion
Odinfs      SyncWritePipeline       DelegationBackend   ParkAndWakeCompletion
EasyIO      OrderlessWritePipeline  DmaAsyncBackend     BatchedPendingCompletion
Naive       OrderedAsyncWrite...    DmaAsyncBackend     BatchedPendingCompletion
==========  ======================  ==================  ===================

(The read side pairs SyncReadPipeline with the same backend for the
synchronous variants and AsyncReadPipeline with DmaAsyncBackend for
EasyIO/Naive.)
"""

from repro.io.backends import (
    CopyBackend,
    DelegationBackend,
    DelegationRequest,
    DelegationThread,
    DmaAsyncBackend,
    DmaPollBackend,
    MemcpyBackend,
)
from repro.io.completion import (
    BatchedPendingCompletion,
    BusyPollCompletion,
    CompletionStrategy,
    ParkAndWakeCompletion,
)
from repro.io.middleware import (
    AdmissionControl,
    DeadlineGate,
    Level2Gate,
    OpCounters,
    SupervisionPolicy,
)
from repro.io.persist import (
    ElidingPagePersister,
    PagePersister,
    VerifyingPagePersister,
)
from repro.io.pipeline import (
    AsyncReadPipeline,
    IoPipeline,
    OrderedAsyncWritePipeline,
    OrderlessWritePipeline,
    SyncReadPipeline,
    SyncWritePipeline,
)
from repro.io.plan import (
    CowPrep,
    Extent,
    IoPlan,
    IoPlanner,
    contiguous_runs,
    extent_runs,
    run_sizes,
)
from repro.io.supervision import DmaJob, FaultSupervisor

__all__ = [
    "AdmissionControl",
    "AsyncReadPipeline",
    "BatchedPendingCompletion",
    "BusyPollCompletion",
    "CompletionStrategy",
    "CopyBackend",
    "CowPrep",
    "DeadlineGate",
    "DelegationBackend",
    "DelegationRequest",
    "DelegationThread",
    "DmaAsyncBackend",
    "DmaJob",
    "DmaPollBackend",
    "ElidingPagePersister",
    "Extent",
    "FaultSupervisor",
    "IoPipeline",
    "IoPlan",
    "IoPlanner",
    "Level2Gate",
    "MemcpyBackend",
    "OpCounters",
    "OrderedAsyncWritePipeline",
    "OrderlessWritePipeline",
    "PagePersister",
    "ParkAndWakeCompletion",
    "SupervisionPolicy",
    "SyncReadPipeline",
    "SyncWritePipeline",
    "VerifyingPagePersister",
    "contiguous_runs",
    "extent_runs",
    "run_sizes",
]
