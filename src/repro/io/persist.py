"""Page persistence: recording copied data as durable.

The persister is the pipeline stage between "bytes moved" and
"metadata may reference them".  The base :class:`PagePersister` simply
lands page contents in the PM image; :class:`VerifyingPagePersister`
adds EasyIO's media-fault detection (checksum read-back + bounded
rewrite), used on both the DMA completion path and the memcpy
degradation path.
"""

from __future__ import annotations

from repro.fs.pmimage import ELIDED


class PagePersister:
    """Record new page contents as durable (data landed)."""

    #: Whether this persister discards payloads (see ElidingPagePersister).
    elides = False

    #: Engine reference for tracing (set by the pipeline builders); the
    #: persister itself never schedules anything, so this stays optional.
    engine = None

    def __init__(self, image):
        self.image = image

    def _trace_persist(self, pids) -> None:
        engine = self.engine
        if engine is not None:
            tr = engine.tracer
            if tr is not None:
                tr.point("pages_persist", track="persist", pids=list(pids))

    def persist(self, pids, contents) -> None:
        image = self.image
        for pid, content in zip(pids, contents):
            image.write_page(pid, content)
        # clwb+sfence over the store train (line-granularity crash
        # model; a no-op when the batch landed via DMA or the image is
        # not line-recording).
        image.pages_fence()
        self._trace_persist(pids)

    def on_complete(self, pids, contents):
        """A DMA ``on_complete`` callback persisting these pages."""
        def _persist(_desc):
            self.persist(pids, contents)
        return _persist


class ElidingPagePersister(PagePersister):
    """Count pages as durable without storing any contents.

    The payload-elision persister for pure-performance sweeps: payloads
    are never inspected by throughput/latency figures, and the
    simulated *timing* of persistence is unchanged (persisting is
    synchronous bookkeeping at the completion instant -- it schedules
    no events and charges no time), so every measured quantity is
    byte-identical with or without it.  It must never be combined with
    recording images (crash replay needs the page store) or fault
    plans (media-fault verification reads pages back) -- the pipeline
    builders guard for that.
    """

    #: Lets backends skip assembling per-chunk content lists.
    elides = True

    def __init__(self, image):
        super().__init__(image)
        self.pages_persisted = 0

    def persist(self, pids, contents) -> None:
        self.pages_persisted += len(pids)
        self._trace_persist(pids)

    def on_complete(self, pids, contents):
        """None: the DMA completion path skips absent callbacks."""
        return None


class VerifyingPagePersister(PagePersister):
    """Persist pages, detecting media faults via the checksum hook.

    A mismatching read-back is rewritten immediately; crash-sound
    because the completion buffer (or log amendment) that validates
    the data is only persisted after this returns -- a crash between
    garbage and rewrite leaves the entry invalid.
    """

    #: Give up on a page after this many checksum-verify rewrites.
    MEDIA_REWRITE_MAX = 8

    def __init__(self, image, fault_stats, rewrite_max: int = None):
        super().__init__(image)
        self.fault_stats = fault_stats
        self.rewrite_max = (rewrite_max if rewrite_max is not None
                            else self.MEDIA_REWRITE_MAX)

    def persist(self, pids, contents) -> None:
        image = self.image
        guard = image.fault_plan is not None
        for pid, content in zip(pids, contents):
            image.write_page(pid, content)
            if not guard or content is ELIDED:
                continue
            expected = image.checksum(content)
            rewrites = 0
            while not image.verify_page(pid, expected):
                self.fault_stats.media_faults_detected += 1
                rewrites += 1
                if rewrites > self.rewrite_max:
                    raise RuntimeError(
                        f"page {pid}: media faults persist after "
                        f"{rewrites - 1} rewrites")
                image.write_page(pid, content)
        image.pages_fence()
        self._trace_persist(pids)
