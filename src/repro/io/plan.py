"""Backend-neutral I/O planning: (inode, offset, length) -> IoPlan.

The planner absorbs the contiguous-run/extent helpers that used to be
copied between the filesystem variants:

* the run-size grouping in NOVA's CoW preparation
  (``NovaFS._prepare_cow``),
* EasyIO's ``_contiguous_runs`` descriptor grouping,
* the mapped-extent walk behind ``MemInode.extent_runs``.

Every copy backend consumes the same :class:`IoPlan` -- a list of
physically contiguous :class:`Extent` runs -- so planning is written
once and the backends differ only in how they move the bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.fs.pmimage import ELIDED
from repro.fs.structures import PAGE_SIZE


def contiguous_runs(page_ids: Sequence[int],
                    contents: Optional[Sequence[Any]] = None
                    ) -> List[Tuple[list, list]]:
    """Group ``(page_ids, contents)`` into physically contiguous runs.

    NOVA issues one memcpy -- EasyIO one DMA descriptor chain -- per
    physically contiguous run of destination pages.  ``contents`` may
    be omitted when only the run shapes matter.
    """
    n = len(page_ids)
    # Fast path: freshly allocated pages are almost always one fully
    # consecutive run -- skip the element-wise grouping loop.
    if n and page_ids[-1] - page_ids[0] == n - 1 \
            and list(page_ids) == list(range(page_ids[0], page_ids[0] + n)):
        return [(list(page_ids),
                 list(contents) if contents is not None else [None] * n)]
    if contents is None:
        contents = [None] * n
    runs: List[Tuple[list, list]] = []
    cur_ids: list = []
    cur_contents: list = []
    for pid, content in zip(page_ids, contents):
        if cur_ids and pid != cur_ids[-1] + 1:
            runs.append((cur_ids, cur_contents))
            cur_ids, cur_contents = [], []
        cur_ids.append(pid)
        cur_contents.append(content)
    if cur_ids:
        runs.append((cur_ids, cur_contents))
    return runs


def run_sizes(page_ids: Sequence[int]) -> List[int]:
    """Bytes per physically contiguous run of ``page_ids``."""
    n = len(page_ids)
    if n and page_ids[-1] - page_ids[0] == n - 1 \
            and list(page_ids) == list(range(page_ids[0], page_ids[0] + n)):
        return [n * PAGE_SIZE]
    return [len(ids) * PAGE_SIZE for ids, _ in contiguous_runs(page_ids)]


def extent_runs(index: Dict[int, Any], pgoff: int,
                npages: int) -> Iterator[Tuple[int, List[int]]]:
    """Yield ``(pgoff, [page_ids...])`` runs of physically consecutive
    pages over a mapped file range.

    ``index`` maps file page offsets to :class:`PageMapping`; a hole
    (unmapped offset) is emitted as an empty run so readers can
    zero-fill.
    """
    run_start = None
    run_pages: List[int] = []
    for off in range(pgoff, pgoff + npages):
        mapping = index.get(off)
        page_id = mapping.page_id if mapping else None
        if run_pages and page_id is not None and page_id == run_pages[-1] + 1:
            run_pages.append(page_id)
            continue
        if run_pages:
            yield run_start, run_pages
        run_start, run_pages = off, ([page_id] if page_id is not None else [])
        if page_id is None:
            # A hole: emit an empty run so readers can zero-fill.
            yield off, []
            run_start, run_pages = None, []
    if run_pages:
        yield run_start, run_pages


@dataclass(frozen=True)
class Extent:
    """One physically contiguous run of pages within an :class:`IoPlan`.

    ``page_ids`` is empty for a read hole (zero-fill); ``contents``
    carries the new page contents for write plans (``None`` entries /
    ELIDED for performance runs).
    """

    pgoff: int
    page_ids: Tuple[int, ...]
    contents: Optional[Tuple[Any, ...]] = None

    @property
    def nbytes(self) -> int:
        return len(self.page_ids) * PAGE_SIZE

    @property
    def is_hole(self) -> bool:
        return not self.page_ids


@dataclass
class IoPlan:
    """A backend-neutral description of one operation's data movement."""

    write: bool
    ino: int
    offset: int
    nbytes: int                 # the operation's logical byte count
    extents: List[Extent]

    @property
    def run_sizes(self) -> List[int]:
        """Bytes per non-hole extent (what each copy call moves)."""
        return [e.nbytes for e in self.extents if e.page_ids]

    @property
    def data_extents(self) -> List[Extent]:
        return [e for e in self.extents if e.page_ids]

    @property
    def mapped_bytes(self) -> int:
        """Total bytes backed by pages (excludes read holes)."""
        return sum(e.nbytes for e in self.extents if e.page_ids)

    @property
    def page_ids(self) -> List[int]:
        out: List[int] = []
        for e in self.extents:
            out.extend(e.page_ids)
        return out

    @property
    def contents(self) -> List[Any]:
        out: List[Any] = []
        for e in self.extents:
            if e.contents is not None:
                out.extend(e.contents)
        return out

    @property
    def tag(self) -> tuple:
        """The memory-accounting tag the legacy data paths used."""
        return ("w" if self.write else "r", self.ino)


@dataclass
class CowPrep:
    """Output of CoW preparation (pages allocated, contents computed).

    Consumed by the copy backends (via the write :class:`IoPlan`) and
    by the metadata commit (``NovaFS._commit_write``).
    """

    pgoff: int
    page_ids: List[int]
    contents: List[Any]
    old_pages: List[int]
    size_after: int
    run_sizes: List[int]
    nbytes: int
    offset: int


class IoPlanner:
    """Turns (inode, offset, length) into a backend-neutral IoPlan.

    One instance per filesystem: CoW preparation needs the allocator,
    cost model, and memory model, which the planner takes from the
    owning filesystem.
    """

    def __init__(self, fs):
        self.fs = fs

    # ------------------------------------------------------------------
    # Write planning: CoW page allocation + contents
    # ------------------------------------------------------------------
    def prepare_cow(self, ctx, m, offset: int, nbytes: int,
                    payload: Optional[bytes]):
        """Allocate CoW pages and compute their new contents.

        Partial head/tail pages cost an extra CPU copy of the preserved
        region (NOVA must merge old data into the fresh CoW page).
        """
        fs = self.fs
        pgoff = offset // PAGE_SIZE
        last = (offset + nbytes - 1) // PAGE_SIZE
        npages = last - pgoff + 1
        yield ctx.charge(
            "metadata",
            fs.model.block_alloc_cost
            + fs.model.block_alloc_page_cost * npages)
        page_ids = fs.allocator.allocate(npages)
        head_cut = offset - pgoff * PAGE_SIZE
        tail_cut = (pgoff + npages) * PAGE_SIZE - (offset + nbytes)
        # Merge cost for partially overwritten edge pages.
        merge_bytes = 0
        if head_cut and m.index.get(pgoff) is not None:
            merge_bytes += head_cut
        if tail_cut and m.index.get(last) is not None:
            merge_bytes += tail_cut
        if merge_bytes:
            yield from ctx.timed_cpu(
                "memcpy", fs.memory.cpu_copy(merge_bytes, write=True,
                                             tag=("merge", m.ino)))
        contents: List[Any] = []
        if payload is None:
            contents = [ELIDED] * npages
        else:
            for i in range(npages):
                page_start = (pgoff + i) * PAGE_SIZE
                old = fs._old_page_content(m, pgoff + i)
                lo = max(offset, page_start) - page_start
                hi = min(offset + nbytes, page_start + PAGE_SIZE) - page_start
                data_lo = page_start + lo - offset
                new = bytearray(old)
                new[lo:hi] = payload[data_lo:data_lo + (hi - lo)]
                contents.append(bytes(new))
        old_pages = [m.index[off].page_id
                     for off in range(pgoff, pgoff + npages) if off in m.index]
        # One copy per physically contiguous run of new pages; freshly
        # allocated runs are contiguous unless the recycler fragmented
        # them -- model one run per fragment.  The edge pages move
        # fewer payload bytes, but the CoW copy still writes whole
        # pages (merge + payload), so run sizes stay page-granular --
        # matching NOVA's page-granularity CoW cost.
        sizes = run_sizes(page_ids)
        size_after = max(m.size, offset + nbytes)
        return CowPrep(pgoff, page_ids, contents, old_pages,
                       size_after, sizes, nbytes, offset)

    def write_plan(self, m, prep: CowPrep) -> IoPlan:
        """The write's IoPlan: contiguous runs of the new CoW pages."""
        extents: List[Extent] = []
        off = prep.pgoff
        for ids, cts in contiguous_runs(prep.page_ids, prep.contents):
            extents.append(Extent(off, tuple(ids), tuple(cts)))
            off += len(ids)
        return IoPlan(write=True, ino=m.ino, offset=prep.offset,
                      nbytes=prep.nbytes, extents=extents)

    # ------------------------------------------------------------------
    # Read planning: mapped extents (holes included)
    # ------------------------------------------------------------------
    def read_plan(self, m, offset: int, nbytes: int) -> IoPlan:
        pgoff = offset // PAGE_SIZE
        last = (offset + nbytes - 1) // PAGE_SIZE
        runs = extent_runs(m.index, pgoff, last - pgoff + 1)
        return self.read_plan_from_runs(m.ino, offset, nbytes, runs)

    @staticmethod
    def read_plan_from_runs(ino: int, offset: int, nbytes: int,
                            runs) -> IoPlan:
        """Wrap already-computed ``(pgoff, pages)`` runs as an IoPlan."""
        extents = [Extent(off, tuple(pages)) for off, pages in runs]
        return IoPlan(write=False, ino=ino, offset=offset, nbytes=nbytes,
                      extents=extents)
