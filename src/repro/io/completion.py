"""Completion strategies: how an operation learns its copy finished.

The strategy owns the scheduler parking contract -- whether the core
spins, sleeps, or returns to the application with a pending event:

* :class:`BusyPollCompletion` -- NOVA-DMA: the core polls the
  completion buffer, burning CPU for the whole transfer (no cycles
  harvested).
* :class:`ParkAndWakeCompletion` -- Odinfs: the application thread
  sleeps while delegation threads copy and pays a kernel wakeup on
  completion (synchronous interface, but the core is idle).
* :class:`BatchedPendingCompletion` -- EasyIO: the syscall returns
  immediately with one pending event covering the whole descriptor
  batch; completion is observed after return (orderless operation).
"""

from __future__ import annotations

from typing import List, Sequence


class CompletionStrategy:
    """Interface marker; see the module docstring for the contract."""

    name = "none"


class BusyPollCompletion(CompletionStrategy):
    """Poll the completion buffer; the core burns CPU throughout."""

    name = "busy-poll"

    def wait(self, ctx, descs: Sequence):
        """Process generator: spin until every descriptor completes.

        The elapsed time is charged to the "memcpy" phase -- to the
        software it is indistinguishable from a slow synchronous copy.
        """
        engine = ctx.engine
        for desc in descs:
            if not desc.done.triggered:
                t0 = engine.now
                yield desc.done
                elapsed = engine.now - t0
                if ctx.record:
                    ctx.breakdown["memcpy"] += elapsed
                ctx.cpu_ns += elapsed


class ParkAndWakeCompletion(CompletionStrategy):
    """Sleep until every chunk lands, then pay the kernel wakeup."""

    name = "park-and-wake"

    def __init__(self, model):
        self.model = model

    def wait(self, ctx, events: List):
        """Process generator: park the core on the batch of events."""
        engine = ctx.engine
        t0 = engine.now
        yield from ctx.idle_wait(engine.all_of(events))
        yield ctx.charge("syscall", self.model.kernel_wakeup_cost)
        if ctx.record:
            ctx.breakdown["wait"] += engine.now - t0


class BatchedPendingCompletion(CompletionStrategy):
    """Return a single pending event covering a descriptor batch."""

    name = "batched-pending"

    def __init__(self, engine):
        self.engine = engine

    def pending(self, descs: Sequence):
        """The event that fires once every descriptor has resolved."""
        if len(descs) == 1:
            return descs[0].done
        return self.engine.all_of([d.done for d in descs])
