"""Pluggable copy backends: the four data-movement policies of the
paper's evaluation (§6), behind one interface.

A backend moves the bytes an :class:`~repro.io.plan.IoPlan` describes:

* :class:`MemcpyBackend` -- synchronous CPU copy (NOVA, and everyone's
  degradation fallback);
* :class:`DmaPollBackend` -- synchronous DMA offload, busy-polled
  (NOVA-DMA, the Fastmove stand-in);
* :class:`DmaAsyncBackend` -- asynchronous DMA through the
  traffic-aware channel manager (EasyIO; returns retryable jobs);
* :class:`DelegationBackend` -- background delegation threads on
  reserved cores (Odinfs).

Backends charge the *caller's* CPU exactly as the legacy inlined paths
did: submission/dispatch costs land in the "memcpy" phase, and
synchronous backends persist the pages before returning.  Counters are
bumped through the :class:`~repro.io.middleware.OpCounters` stats
stage so the per-variant accounting (``dma_writes``, ``memcpy_ops``,
...) stays on the filesystem object where tests read it.
"""

from __future__ import annotations

from typing import List

from repro.fs.structures import PAGE_SIZE
from repro.hw.dma import DmaDescriptor
from repro.io.plan import IoPlan
from repro.io.supervision import DmaJob
from repro.sim import Store


class CopyBackend:
    """Interface marker for data-movement backends.

    Synchronous backends implement ``write(ctx, plan)`` /
    ``read(ctx, plan)`` as process generators that return once the
    data has moved (and, for writes, persisted).  Asynchronous
    backends submit and return in-flight work instead.
    """

    name = "none"


class MemcpyBackend(CopyBackend):
    """Synchronous CPU memcpy into/out of slow memory (NOVA's path)."""

    name = "memcpy"

    def __init__(self, memory, persister):
        self.memory = memory
        self.persister = persister

    def write(self, ctx, plan: IoPlan):
        """One CPU copy per contiguous run, then persist the pages."""
        for run_bytes in plan.run_sizes:
            yield from ctx.timed_cpu(
                "memcpy", self.memory.cpu_copy(run_bytes, write=True,
                                               tag=plan.tag))
        self.persister.persist(plan.page_ids, plan.contents)

    def read(self, ctx, plan: IoPlan):
        """One CPU copy per contiguous mapped extent."""
        for extent in plan.extents:
            if extent.page_ids:
                yield from ctx.timed_cpu(
                    "memcpy", self.memory.cpu_copy(extent.nbytes,
                                                   write=False,
                                                   tag=plan.tag))


class DmaPollBackend(CopyBackend):
    """Synchronous DMA offload, busy-polled (NOVA-DMA / Fastmove).

    The interface stays synchronous -- the CPU core busy-polls the
    completion buffer until the copy lands, so no cycles are
    harvested.  Requests spread across **all** channels (the paper
    calls this out as the reason NOVA-DMA's write throughput collapses
    under high concurrency -- the §2.2 multi-channel penalty bites).
    """

    name = "dma-poll"

    def __init__(self, dma, model, memory, persister, completion, counters,
                 offload_threshold: int = 4096):
        self.dma = dma
        self.model = model
        self.memory = memory
        self.persister = persister
        self.completion = completion
        self.counters = counters
        #: Below this size the DMA engine loses to memcpy, so like
        #: Fastmove we keep small copies on the CPU.
        self.offload_threshold = offload_threshold

    def _pick_channel(self):
        """Least-loaded across *all* channels (no traffic separation)."""
        return self.dma.least_loaded()

    def write(self, ctx, plan: IoPlan):
        """Submit, busy-poll, persist (strictly ordered)."""
        if plan.nbytes <= self.offload_threshold:
            self.counters.bump("memcpy_ops")
            for run_bytes in plan.run_sizes:
                yield from ctx.timed_cpu(
                    "memcpy", self.memory.cpu_copy(run_bytes, write=True,
                                                   tag=plan.tag))
        else:
            self.counters.bump("dma_writes")
            channel = self._pick_channel()
            descs = [DmaDescriptor(run_bytes, write=True, tag=plan.tag)
                     for run_bytes in plan.run_sizes]
            yield from ctx.timed_cpu("memcpy", channel.submit_all(descs))
            yield from self.completion.wait(ctx, descs)
        self.persister.persist(plan.page_ids, plan.contents)

    def read(self, ctx, plan: IoPlan):
        """DMA for every extent above the threshold, else memcpy."""
        for extent in plan.extents:
            if not extent.page_ids:
                continue
            run_bytes = extent.nbytes
            if run_bytes <= self.offload_threshold:
                self.counters.bump("memcpy_ops")
                yield from ctx.timed_cpu(
                    "memcpy", self.memory.cpu_copy(run_bytes, write=False,
                                                   tag=plan.tag))
            else:
                self.counters.bump("dma_reads")
                channel = self._pick_channel()
                desc = DmaDescriptor(run_bytes, write=False, tag=plan.tag)
                yield from ctx.timed_cpu("memcpy", channel.submit([desc]))
                yield from self.completion.wait(ctx, [desc])


class DmaAsyncBackend(CopyBackend):
    """Asynchronous DMA through the channel manager (EasyIO §4).

    Writes and reads are split per the traffic policy (B-apps: 64 KB),
    batch-submitted, and returned as :class:`DmaJob` lists still in
    flight -- the pipeline decides whether a supervisor or a plain
    pending event tracks them.
    """

    name = "dma-async"

    def __init__(self, cm, memory, persister, counters):
        self.cm = cm
        self.memory = memory
        self.persister = persister
        self.counters = counters

    def select_write_channel(self, ctx):
        """The channel-manager's pick for this write (None = degrade)."""
        return self.cm.write_channel(ctx.app)

    def submit_write(self, ctx, plan: IoPlan, channel=None) -> List[DmaJob]:
        """Build one descriptor per contiguous page run (B-apps: split
        to 64 KB), batch-submit, and hook page persistence.

        Returns the submitted :class:`DmaJob` list (one per
        descriptor, carrying the pages needed for retries).
        """
        app = ctx.app
        if channel is None:
            channel = self.cm.write_channel(app)
        jobs: List[DmaJob] = []
        for extent in plan.extents:
            pids, contents = list(extent.page_ids), list(extent.contents)
            run_bytes = len(pids) * PAGE_SIZE
            for chunk in self.cm.split(app, run_bytes):
                take = chunk // PAGE_SIZE
                chunk_pids, pids = pids[:take], pids[take:]
                chunk_contents, contents = contents[:take], contents[take:]
                desc = DmaDescriptor(chunk, write=True, tag=plan.tag)
                desc.on_complete = self.persister.on_complete(
                    chunk_pids, chunk_contents)
                jobs.append(DmaJob(desc, channel, write=True,
                                   pids=chunk_pids,
                                   contents=chunk_contents))
        # The submission cost is the CPU's remaining share of the data
        # movement, so it lands in the memcpy bucket.
        descs = [j.desc for j in jobs]
        yield from ctx.timed_cpu("memcpy", channel.submit_all(descs))
        stream = self.persister.image.linestream
        if stream is not None:
            # Line-granularity crash model: the pages are in flight
            # from submission (SNs are assigned by submit_all) until a
            # completion fence covers their descriptor.
            for j in jobs:
                stream.announce_dma_pages(channel.channel_id, j.desc.sn,
                                          j.pids, j.contents)
        return jobs

    def read(self, ctx, plan: IoPlan, force_sync: bool) -> List[DmaJob]:
        """Per-extent read admission (Listing 2): DMA when a channel
        admits the run, memcpy otherwise.  Returns in-flight jobs."""
        jobs: List[DmaJob] = []
        for extent in plan.extents:
            if not extent.page_ids:
                continue
            run_bytes = extent.nbytes
            channel = (None if force_sync
                       else self.cm.admit_read(run_bytes, ctx.app))
            if channel is None:
                self.counters.bump("memcpy_reads")
                yield from ctx.timed_cpu(
                    "memcpy", self.memory.cpu_copy(run_bytes, write=False,
                                                   tag=plan.tag))
            else:
                self.counters.bump("dma_reads")
                # B-apps' bulk reads are split to 64 KB like their
                # writes, so a channel suspension never wastes a
                # large in-flight transfer (§4.4).
                descs = [DmaDescriptor(chunk, write=False, tag=plan.tag)
                         for chunk in self.cm.split(ctx.app, run_bytes)]
                yield from ctx.timed_cpu("memcpy", channel.submit_all(descs))
                jobs.extend(DmaJob(d, channel, write=False)
                            for d in descs)
        return jobs


class DelegationRequest:
    """One chunk handed to a delegation thread."""

    __slots__ = ("nbytes", "write", "done", "tag")

    def __init__(self, engine, nbytes: int, write: bool, tag):
        self.nbytes = nbytes
        self.write = write
        self.tag = tag
        self.done = engine.event()


class DelegationThread:
    """One background thread pinned to a reserved core."""

    def __init__(self, backend: "DelegationBackend", core):
        self.backend = backend
        self.core = core
        self.queue = Store(backend.engine)
        self.bytes_moved = 0
        backend.engine.process(self._loop(),
                               name=f"odinfs-dg{core.core_id}")

    def _loop(self):
        while True:
            req = yield self.queue.get()
            self.core.mark_busy("odinfs-delegation")
            try:
                yield from self.backend.memory.delegated_copy(
                    req.nbytes, write=req.write, tag=req.tag)
            finally:
                self.core.mark_idle()
            self.bytes_moved += req.nbytes
            req.done.succeed()


class DelegationBackend(CopyBackend):
    """NUMA-aware delegation to reserved cores (Odinfs).

    The application thread splits each request into chunks, fans them
    out round-robin over the delegation threads, and parks until every
    chunk lands (synchronous interface: the saved cycles only help
    whole-machine utilisation, not the application's own throughput).
    """

    name = "delegation"

    def __init__(self, engine, model, memory, cores, persister, completion):
        self.engine = engine
        self.model = model
        self.memory = memory
        self.persister = persister
        self.completion = completion
        self.threads = [DelegationThread(self, core) for core in cores]
        self._rr = 0
        self.requests_delegated = 0

    def transfer(self, ctx, nbytes: int, write: bool, tag):
        """Split, fan out round-robin, park until all chunks land."""
        chunk = self.model.delegation_chunk
        sizes = [chunk] * (nbytes // chunk)
        if nbytes % chunk:
            sizes.append(nbytes % chunk)
        events = []
        for size in sizes:
            # Dispatch costs the app thread a ring enqueue per chunk.
            yield ctx.charge("memcpy",
                                  self.model.delegation_dispatch_cost)
            thread = self.threads[self._rr % len(self.threads)]
            self._rr += 1
            req = DelegationRequest(self.engine, size, write, tag)
            thread.queue.put(req)
            events.append(req.done)
            self.requests_delegated += 1
        yield from self.completion.wait(ctx, events)

    def write(self, ctx, plan: IoPlan):
        """Delegate the logical write, then persist the CoW pages."""
        yield from self.transfer(ctx, plan.nbytes, True, plan.tag)
        self.persister.persist(plan.page_ids, plan.contents)

    def read(self, ctx, plan: IoPlan):
        """Delegate the read's total mapped bytes as one batch."""
        total = plan.mapped_bytes
        if total:
            yield from self.transfer(ctx, total, False, plan.tag)
