"""Fault supervision for offloaded operations (retry / failover /
graceful degradation).

Every offloaded EasyIO operation may run under a *supervisor* process
that watches its descriptors.  Failed descriptors are retried with
bounded exponential backoff (sim-time); descriptors lost to a channel
halt fail over to a healthy channel; when no healthy channel remains
the supervisor degrades to the memcpy path.  SN-safety: after a
failover the committed log entry's SN field is amended to the new
(channel, sn) pairs, so the recovery validator stays sound at every
crash point inside the retry/failover window.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.hw.dma import DmaChannel, DmaDescriptor


class DmaJob:
    """One descriptor's worth of an offloaded operation, retryable.

    ``final`` is None while unresolved, the achieved ``(channel, sn)``
    pair once its data landed via DMA, or ``()`` when the job was
    degraded to the memcpy path (contributing no SN).
    """

    __slots__ = ("desc", "channel", "nbytes", "write", "pids", "contents",
                 "final")

    def __init__(self, desc: DmaDescriptor, channel: DmaChannel,
                 write: bool, pids=None, contents=None):
        self.desc = desc
        self.channel = channel
        self.nbytes = desc.nbytes
        self.write = write
        self.pids = pids
        self.contents = contents
        self.final = None


class FaultSupervisor:
    """Drives offloaded jobs to resolution and settles their metadata.

    One instance per filesystem; each supervised operation spawns one
    supervisor *process* running :meth:`supervise_write` /
    :meth:`supervise_read`.
    """

    #: Bounded exponential backoff for descriptor retries (sim-time).
    DMA_RETRY_MAX = 4
    DMA_RETRY_BASE_NS = 2_000
    DMA_RETRY_CAP_NS = 64_000

    #: Test-only planted ordering bug: persist degraded pages only
    #: *after* the SN amendment, instead of before (see
    #: repro.core.easyio.install_crash_mutant).  The line-granularity
    #: crash sweep must catch the valid-entry/absent-pages window this
    #: opens.
    mutant_reorder_amend = False

    def __init__(self, engine, cm, image, memory, persister,
                 overload_stats):
        self.engine = engine
        self.cm = cm
        self.image = image
        self.memory = memory
        self.persister = persister
        self.overload_stats = overload_stats
        self._deferred_persists = []

    @property
    def fault_stats(self):
        return self.cm.fault_stats

    def supervise_write(self, app, m, jobs: List[DmaJob],
                        orig_sns: Tuple[Tuple[int, int], ...],
                        log_idx: int, outer,
                        deadline: Optional[int] = None):
        """Drive one write's descriptors to resolution, then settle the
        log entry.

        Terminates because each round either resolves every job or
        consumes a retry budget, and the degradation fallback (memcpy)
        always succeeds.  Once all data has landed, the committed log
        entry's SN field is amended iff any descriptor moved (failover
        or degradation), so recovery judges the entry by SNs that are
        actually achievable.  Only then does ``outer`` fire -- which
        releases level-2 waiters and recycles the replaced CoW pages.

        ``deadline`` bounds the retry/backoff loop: once it passes, the
        supervisor stops gambling on retries and degrades immediately.
        """
        yield from self._resolve_jobs(app, m.ino, jobs, deadline=deadline)
        final_sns = tuple(j.final for j in jobs if j.final)
        if final_sns != orig_sns:
            self.image.amend_log_sns(m.ino, log_idx, final_sns)
            tr = self.engine.tracer
            if tr is not None:
                tr.point("sn_amend", track="fs", ino=m.ino,
                         old=orig_sns, new=final_sns)
            if m.pending_sns == orig_sns:
                m.pending_sns = final_sns
        if self._deferred_persists:
            # Only the reorder-amend mutant defers persists; flushing
            # them here (after the amendment) is the planted bug.
            for pids, contents in self._deferred_persists:
                self.persister.persist(pids, contents)
            self._deferred_persists.clear()
        outer.succeed(None)

    def supervise_read(self, app, ino: int, jobs: List[DmaJob], outer,
                       deadline: Optional[int] = None):
        """Drive one read's descriptors to resolution (reads carry no
        SNs, so no log settlement is needed)."""
        yield from self._resolve_jobs(app, ino, jobs, deadline=deadline)
        outer.succeed(None)

    def _resolve_jobs(self, app, ino: int, jobs: List[DmaJob],
                      deadline: Optional[int] = None):
        stats = self.fault_stats
        attempt = 0
        while True:
            waits = [j.desc.done for j in jobs
                     if j.final is None and not j.desc.done.triggered]
            if waits:
                yield self.engine.all_of(waits)
            bad: List[DmaJob] = []
            for j in jobs:
                if j.final is not None:
                    continue
                if j.desc.status == "ok":
                    j.final = (j.channel.channel_id, j.desc.sn)
                    self.cm.note_success(j.channel)
                else:
                    bad.append(j)
            if not bad:
                return
            attempt += 1
            for j in bad:
                if j.desc.status == "error" and j.desc.error == "xfer_error":
                    # Soft error: feed the health tracker.  Halts and
                    # strands are already accounted via on_halt.
                    self.cm.note_error(j.channel)
            past_deadline = (deadline is not None
                             and self.engine.now >= deadline)
            if attempt > self.DMA_RETRY_MAX or past_deadline:
                # Out of retry budget -- or out of time: a missed
                # deadline cancels the remaining retry/backoff rounds
                # and settles the data via memcpy right now.
                if past_deadline and attempt <= self.DMA_RETRY_MAX:
                    self.overload_stats.cancelled += len(bad)
                for j in bad:
                    yield from self._degrade_job(j, ino)
                continue
            backoff = min(self.DMA_RETRY_BASE_NS * (2 ** (attempt - 1)),
                          self.DMA_RETRY_CAP_NS)
            if deadline is not None:
                backoff = min(backoff, max(0, deadline - self.engine.now))
            yield self.engine.timeout(backoff)
            for j in bad:
                soft = (j.desc.status == "error"
                        and j.desc.error == "xfer_error")
                target = self.cm.retry_channel(app, j.channel, soft)
                if target is None:
                    yield from self._degrade_job(j, ino)
                    continue
                stats.retries += 1
                if target is not j.channel:
                    stats.failovers += 1
                redo = DmaDescriptor(j.nbytes, write=j.write, tag=j.desc.tag)
                if j.write:
                    redo.on_complete = self.persister.on_complete(
                        j.pids, j.contents)
                j.desc = redo
                j.channel = target
                yield from target.submit([redo])
                stream = self.image.linestream
                if stream is not None and j.write:
                    # Re-announce the pages under the redo descriptor's
                    # (channel, sn): the original announcement was
                    # cancelled when its descriptor failed.
                    stream.announce_dma_pages(target.channel_id,
                                              redo.sn, j.pids, j.contents)

    def _degrade_job(self, j: DmaJob, ino: int):
        """Graceful degradation: move one job's bytes via memcpy."""
        stats = self.fault_stats
        if j.write:
            stats.degraded_writes += 1
        else:
            stats.degraded_reads += 1
        stats.degraded_bytes += j.nbytes
        tr = self.engine.tracer
        if tr is not None:
            tr.point("degrade", track="fs", ino=ino, sn=j.desc.sn,
                     ch=j.channel.channel_id, write=j.write)
        yield from self.memory.cpu_copy(j.nbytes, write=j.write,
                                        tag=("degrade", ino))
        if j.write:
            if self.mutant_reorder_amend:
                self._deferred_persists.append((j.pids, j.contents))
            else:
                self.persister.persist(j.pids, j.contents)
        j.final = ()
