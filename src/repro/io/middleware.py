"""Middleware stages shared by the I/O pipelines.

A pipeline threads each operation through a short, fixed chain --
level-2 gate -> lock-contention charge -> deadline check -> admission
-> copy backend -> fault supervision -> stats -- and each stage here
owns exactly one of those policies.  The stages hold *policy*, not
data movement: the bytes move in :mod:`repro.io.backends`.
"""

from __future__ import annotations


class Level2Gate:
    """The two-level lock's level-2 check (EasyIO §4.3).

    Blocks until the previous write's DMA lands.  Runs with the
    level-1 lock held; safe because completion is hardware-driven and
    always makes progress (no deadlock).  The wait spins inside the
    syscall, so it costs CPU -- which is why high-contention workloads
    cap EasyIO's benefit (§6.6).

    Under fault supervision the wait targets the supervisor's
    all-data-landed event instead of the raw completion buffer: a
    halted channel's completion may never arrive, but the supervisor
    always resolves (retry, failover, or memcpy).

    With a context deadline the wait is bounded: it raises
    ``DeadlineExceeded`` (detaching from, never cancelling, the shared
    completion event) once the budget runs out.
    """

    def __init__(self, fs):
        self.fs = fs

    def wait(self, ctx, m):
        done = m.pending_done
        if done is not None and not done.triggered:
            ctx.trace_begin("level2", ino=m.ino)
            try:
                yield from ctx.timed_wait(done,
                                          what=f"level-2 wait ino{m.ino}")
            finally:
                ctx.trace_end("level2")
            return
        for chid, sn in m.pending_sns:
            ch = self.fs.platform.dma.channel(chid)
            if not ch.is_complete(sn):
                ctx.trace_begin("level2", ino=m.ino, ch=chid, sn=sn)
                try:
                    yield from ctx.timed_wait(
                        ch.completion_event(sn),
                        what=f"level-2 completion ch{chid}/sn{sn}")
                finally:
                    ctx.trace_end("level2")


class DeadlineGate:
    """Clean abort point: nothing allocated or submitted yet."""

    @staticmethod
    def check(ctx, m) -> None:
        ctx.check_deadline(f"write ino{m.ino} pre-submit")


class AdmissionControl:
    """Overload policy: run the data path synchronously when the
    scheduler demanded it or the deadline budget is too thin."""

    def __init__(self, overload_stats, min_async_ns: int):
        self.overload_stats = overload_stats
        #: Below this much remaining budget the async path is not
        #: worth the completion-wait risk: stay on the memcpy path.
        self.min_async_ns = min_async_ns

    def forces_sync(self, ctx) -> bool:
        if ctx.force_sync:
            return True
        rem = ctx.remaining()
        return rem is not None and rem < self.min_async_ns

    def note_degraded(self) -> None:
        self.overload_stats.degraded_to_sync += 1


class SupervisionPolicy:
    """Should offloaded operations run under a fault supervisor?

    Reads the filesystem's ``fault_tolerant`` override dynamically
    (None = auto: supervise iff a fault plan is installed on the image
    or any DMA channel; detection is sticky once seen).
    """

    def __init__(self, fs, supervisor):
        self.fs = fs
        #: The :class:`~repro.io.supervision.FaultSupervisor` driving
        #: supervised operations to resolution.
        self.supervisor = supervisor
        self._ft_seen = False

    def active(self) -> bool:
        fs = self.fs
        if fs.fault_tolerant is not None:
            return fs.fault_tolerant
        if self._ft_seen:
            return True
        if (fs.image.fault_plan is not None
                or any(ch.fault_plan is not None
                       for ch in fs.platform.dma.channels)):
            self._ft_seen = True
            return True
        return False


class OpCounters:
    """The stats stage: per-variant operation counters.

    The counters themselves stay as plain attributes on the filesystem
    object (``fs.dma_writes``, ``fs.memcpy_ops``, ...) -- the public
    surface tests and benchmarks read -- and this stage is the single
    place pipelines bump them through.
    """

    def __init__(self, fs):
        self.fs = fs

    def bump(self, name: str, by: int = 1) -> None:
        setattr(self.fs, name, getattr(self.fs, name) + by)
