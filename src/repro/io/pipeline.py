"""The I/O pipelines: how an operation is staged, not how bytes move.

Every filesystem variant's read and write path is one of these four
pipelines, composed declaratively from a planner, middleware stages,
a copy backend, and a completion strategy (see the per-variant
``_build_pipeline`` methods):

* :class:`SyncWritePipeline` / :class:`SyncReadPipeline` -- strictly
  ordered: copy + persist, then the metadata commit, then unlock
  (NOVA, NOVA-DMA, Odinfs; only the backend differs).
* :class:`OrderlessWritePipeline` -- EasyIO §4.2: metadata commits in
  parallel with the in-flight DMA, the lock releases at commit, and
  the SNs embedded in the log entry regulate later conflicts.
* :class:`OrderedAsyncWritePipeline` -- the §6.4 Naive ablation:
  asynchronous submission but strictly ordered commit in a *second*
  syscall, the file lock held across the gap.
* :class:`AsyncReadPipeline` -- EasyIO reads: per-extent admission,
  unlock immediately, completion observed after return.

Pipelines own stage *ordering* (level-2 gate -> contention charge ->
deadline check -> admission -> backend -> supervision -> stats); all
data movement lives in the backends and all metadata stays on the
filesystem (``_commit_write`` and friends).
"""

from __future__ import annotations

from typing import List

from repro.fs.nova import OpResult
from repro.io.supervision import DmaJob


class IoPipeline:
    """One filesystem's I/O composition: a write and a read pipeline."""

    def __init__(self, write, read, planner, level2=None):
        self.write = write
        self.read = read
        self.planner = planner
        #: The level-2 gate (two-level locking), where the variant has
        #: one; ``NovaFS._wait_level2`` also waits on it for truncate.
        self.level2 = level2

    def describe(self) -> dict:
        """Backend/completion matrix entry for this composition."""
        out = {"write": type(self.write).__name__,
               "read": type(self.read).__name__}
        for side in ("write", "read"):
            stage = getattr(self, side)
            backend = getattr(stage, "backend", None)
            if backend is not None:
                out[f"{side}_backend"] = backend.name
            completion = getattr(stage, "completion", None)
            if completion is not None:
                out[f"{side}_completion"] = completion.name
        return out


class SyncWritePipeline:
    """Strictly ordered write: data pages first, then the commit."""

    def __init__(self, fs, planner, backend):
        self.fs = fs
        self.planner = planner
        self.backend = backend

    def run(self, ctx, m, offset: int, nbytes: int, payload):
        fs = self.fs
        try:
            yield from fs._charge_lock_contention(ctx)
            ctx.trace_begin("plan")
            try:
                prep = yield from self.planner.prepare_cow(ctx, m, offset,
                                                           nbytes, payload)
                plan = self.planner.write_plan(m, prep)
            finally:
                ctx.trace_end("plan")
            # Data pages first (strict order)...
            ctx.trace_begin("copy")
            try:
                yield from self.backend.write(ctx, plan)
            finally:
                ctx.trace_end("copy")
            # ...then the metadata commit.
            yield from fs._commit_write(ctx, m, prep, sns=())
        finally:
            m.lock.release_write()
        return OpResult(value=nbytes, ctx=ctx)


class SyncReadPipeline:
    """Strictly ordered read: copy every extent, then return."""

    def __init__(self, fs, planner, backend):
        self.fs = fs
        self.planner = planner
        self.backend = backend

    def run(self, ctx, m, offset: int, nbytes: int, runs, want_data: bool):
        fs = self.fs
        try:
            plan = self.planner.read_plan_from_runs(m.ino, offset, nbytes,
                                                    runs)
            ctx.trace_begin("copy")
            try:
                yield from self.backend.read(ctx, plan)
            finally:
                ctx.trace_end("copy")
            yield ctx.charge("metadata",
                                  fs.model.timestamp_update_cost)
            value = (fs._collect_data(m, offset, nbytes)
                     if want_data else nbytes)
        finally:
            m.lock.release_read()
        return OpResult(value=value, ctx=ctx)


class OrderlessWritePipeline:
    """EasyIO's orderless file operation (§4.2).

    The log entry carries the SNs of the write's DMA descriptors, so
    the metadata commit proceeds *in parallel* with the data copy; the
    file lock is released as soon as the commit lands, and the level-2
    gate regulates later conflicts against the pending SNs.
    """

    def __init__(self, fs, planner, level2, deadline, admission, backend,
                 fallback, completion, supervision, stats):
        self.fs = fs
        self.planner = planner
        self.level2 = level2
        self.deadline = deadline
        self.admission = admission
        self.backend = backend
        #: Degradation target: the memcpy backend (verifying persister).
        self.fallback = fallback
        self.completion = completion
        self.supervision = supervision
        self.stats = stats

    def run(self, ctx, m, offset: int, nbytes: int, payload):
        fs = self.fs
        try:
            # Write-write conflict: an unfinished earlier write blocks us.
            yield from self.level2.wait(ctx, m)
            yield from fs._charge_lock_contention(ctx)
            self.deadline.check(ctx, m)
            ctx.trace_begin("plan")
            try:
                prep = yield from self.planner.prepare_cow(ctx, m, offset,
                                                           nbytes, payload)
            finally:
                ctx.trace_end("plan")
            offload = fs.cm.should_offload_write(nbytes)
            if offload and self.admission.forces_sync(ctx):
                self.admission.note_degraded()
                offload = False
            channel = (self.backend.select_write_channel(ctx) if offload
                       else None)
            if channel is None:
                # Selective offloading keeps small I/O on the CPU; a
                # missing channel means graceful degradation (no
                # healthy channel left) -- same path, plus accounting.
                if offload:
                    fs.fault_stats.degraded_writes += 1
                    fs.fault_stats.degraded_bytes += nbytes
                self.stats.bump("memcpy_writes")
                plan = self.planner.write_plan(m, prep)
                ctx.trace_begin("copy")
                try:
                    yield from self.fallback.write(ctx, plan)
                finally:
                    ctx.trace_end("copy")
                yield from fs._commit_write(ctx, m, prep, sns=())
                m.pending_sns = ()
                m.pending_done = None
                return OpResult(value=nbytes, ctx=ctx)
            self.stats.bump("dma_writes")
            plan = self.planner.write_plan(m, prep)
            ctx.trace_begin("submit")
            try:
                jobs = yield from self.backend.submit_write(ctx, plan,
                                                            channel)
            finally:
                ctx.trace_end("submit")
            sns = tuple((j.channel.channel_id, j.desc.sn) for j in jobs)
            if self.supervision.active():
                pending = fs.engine.event()
                _entry, log_idx = yield from fs._commit_write(
                    ctx, m, prep, sns=sns, free_on=pending)
                fs.engine.process(
                    self.supervision.supervisor.supervise_write(
                        ctx.app, m, jobs, sns, log_idx, pending,
                        deadline=ctx.deadline),
                    name=f"supervise-w-ino{m.ino}")
                m.pending_done = pending
            else:
                pending = self.completion.pending([j.desc for j in jobs])
                # Orderless: the metadata commit (with embedded SNs)
                # runs while the DMA engine moves the data.  The
                # replaced pages are recycled only once it has landed.
                yield from fs._commit_write(ctx, m, prep, sns=sns,
                                            free_on=pending)
                m.pending_done = None
            m.pending_sns = sns
            return OpResult(value=nbytes, pending=pending, sns=sns, ctx=ctx)
        finally:
            # Early release: the syscall both locked and unlocked the
            # file -- no lock is ever held across a scheduling point.
            m.lock.release_write()


class OrderedAsyncWritePipeline:
    """The Naive ablation (§6.4): asynchronous offload, strictly ordered.

    Data and metadata updates are split into two syscalls: the first
    submits the DMA and *keeps the file locked*; once the completion
    arrives, the runtime issues the second syscall, which commits the
    metadata and only then unlocks.  Intermediate scheduling between
    the two prolongs the critical section (Figure 11).
    """

    def __init__(self, fs, planner, backend, fallback, completion, stats):
        self.fs = fs
        self.planner = planner
        self.backend = backend
        self.fallback = fallback
        self.completion = completion
        self.stats = stats

    def run(self, ctx, m, offset: int, nbytes: int, payload):
        fs = self.fs
        yield from fs._charge_lock_contention(ctx)
        ctx.trace_begin("plan")
        try:
            prep = yield from self.planner.prepare_cow(ctx, m, offset,
                                                       nbytes, payload)
        finally:
            ctx.trace_end("plan")
        if not fs.cm.should_offload_write(nbytes):
            try:
                self.stats.bump("memcpy_writes")
                plan = self.planner.write_plan(m, prep)
                ctx.trace_begin("copy")
                try:
                    yield from self.fallback.write(ctx, plan)
                finally:
                    ctx.trace_end("copy")
                yield from fs._commit_write(ctx, m, prep, sns=())
            finally:
                m.lock.release_write()
            return OpResult(value=nbytes, ctx=ctx)
        self.stats.bump("dma_writes")
        plan = self.planner.write_plan(m, prep)
        ctx.trace_begin("submit")
        try:
            jobs = yield from self.backend.submit_write(ctx, plan)
        finally:
            ctx.trace_end("submit")
        pending = self.completion.pending([j.desc for j in jobs])

        def commit_syscall(ctx2):
            # Second interaction with the filesystem (§3): metadata
            # commit once the data I/O has finished.
            yield ctx2.charge("syscall", fs.model.syscall_cost)
            try:
                yield from fs._commit_write(ctx2, m, prep, sns=())
            finally:
                m.lock.release_write()
            return nbytes

        # NOTE: the level-1 lock stays held across the asynchronous gap.
        return OpResult(value=nbytes, pending=pending, ctx=ctx,
                        continuation=commit_syscall)


class AsyncReadPipeline:
    """EasyIO reads: admission-controlled DMA, unlock immediately.

    Reads only touch timestamps; commit and unlock happen right after
    submission -- later writes may start while our DMA is in flight
    (CoW plus deferred page recycling keep the data stable).
    """

    def __init__(self, fs, planner, admission, backend, completion,
                 supervision):
        self.fs = fs
        self.planner = planner
        self.admission = admission
        self.backend = backend
        self.completion = completion
        self.supervision = supervision

    def run(self, ctx, m, offset: int, nbytes: int, runs, want_data: bool):
        fs = self.fs
        jobs: List[DmaJob] = []
        try:
            force_sync = self.admission.forces_sync(ctx)
            if force_sync and any(pages for _off, pages in runs):
                self.admission.note_degraded()
            plan = self.planner.read_plan_from_runs(m.ino, offset, nbytes,
                                                    runs)
            ctx.trace_begin("submit")
            try:
                jobs = yield from self.backend.read(ctx, plan, force_sync)
            finally:
                ctx.trace_end("submit")
            yield ctx.charge("metadata",
                                  fs.model.timestamp_update_cost)
            value = (fs._collect_data(m, offset, nbytes)
                     if want_data else nbytes)
        finally:
            m.lock.release_read()
        pending = None
        if jobs:
            if self.supervision.active():
                pending = fs.engine.event()
                fs.engine.process(
                    self.supervision.supervisor.supervise_read(
                        ctx.app, m.ino, jobs, pending,
                        deadline=ctx.deadline),
                    name=f"supervise-r-ino{m.ino}")
            else:
                pending = self.completion.pending([j.desc for j in jobs])
        return OpResult(value=value, pending=pending, ctx=ctx)
