"""Coverage-signal extraction from traces and counters (fuzzer hooks).

The scenario fuzzer (:mod:`repro.fuzz`) guides mutation by *coverage*:
cheap, deterministic summaries of what a run exercised.  This module
turns the observability artefacts the codebase already emits -- the
structured trace stream (:mod:`repro.obs.trace`) and the ``as_dict()``
counter families (``EngineStats``/``FaultStats``/``OverloadStats``/
``NetStats``) -- into sets of string *coverage keys*.  A key is an
opaque token; two runs with the same key set exercised the same
behaviours at this granularity.

Three extractors:

* :func:`trace_vocabulary` -- which event names appeared, per phase and
  normalised track class (``ch3`` and ``ch5`` are the same class
  ``ch``: the fuzzer cares that *a* channel faulted, not which one);
* :func:`counter_buckets` -- log2-bucketed counter values, so a run
  with 60 retries and one with 70 are the same key but one with 2 is
  not (AFL-style hit-count buckets);
* :func:`ack_gap_buckets` -- oracle *near-misses*: the ack-to-durable
  slack of every acknowledged write, log2-bucketed.  A shrinking gap
  means mutation is closing in on an ack-before-durable violation even
  while every run still passes, which is exactly the gradient a
  coverage-guided search needs.

Determinism: every extractor is a pure function of its input, and all
inputs are themselves pure functions of the scenario tuple (the engine
is deterministic), so identical seeded runs produce identical keys
(tests/test_fuzz_coverage.py pins this).
"""

from __future__ import annotations

from typing import Dict, Iterable, Set

from repro.obs.trace import POINT, TraceEvent


def track_class(track: str) -> str:
    """Normalise a track name to its class (``ch3`` -> ``ch``,
    ``node12`` -> ``node``, ``fs`` -> ``fs``)."""
    return track.rstrip("0123456789") or track


def bucket(value) -> int:
    """Log2 hit-count bucket of a non-negative number (0 -> 0,
    1 -> 1, 2-3 -> 2, 4-7 -> 3, ...)."""
    n = int(value)
    return n.bit_length() if n > 0 else 0


def trace_vocabulary(events: Iterable[TraceEvent]) -> Set[str]:
    """``ev:<track-class>:<phase>:<name>`` for every event in the
    stream.

    Strictly monotone in behaviour: a run that additionally faults a
    channel (``dma_fault``/``dma_reset``), amends an SN, aborts on a
    deadline, or partitions the network grows this set -- the silent-
    breakage test relies on that.
    """
    return {f"ev:{track_class(ev.track)}:{ev.ph}:{ev.name}"
            for ev in events}


def counter_buckets(prefix: str, counters: Dict[str, object]) -> Set[str]:
    """``ctr:<prefix>:<name>:<bucket>`` for every non-zero counter.

    Zero counters are omitted on purpose: "nothing happened" carries no
    signal, and omitting it keeps a clean run's signature small.
    """
    out = set()
    for name, value in counters.items():
        try:
            b = bucket(value)
        except (TypeError, ValueError):
            continue
        if b:
            out.add(f"ctr:{prefix}:{name}:{b}")
    return out


def ack_gap_buckets(events: Iterable[TraceEvent]) -> Set[str]:
    """Near-miss signal: log2 buckets of every acked write's
    ack-to-durable slack.

    For each op, ``write_commit`` declares its page set and
    ``pages_persist`` stamps each page's persist time; at ``write_ack``
    the slack is ``ack_t - max(persist_t of the op's pages)``.  A slack
    of 0 (ack at the same instant the last page landed) is the tightest
    legal execution -- one reordering away from the ack-implies-durable
    violation the oracle would flag.
    """
    persisted_at: Dict[int, int] = {}
    op_pages: Dict[int, set] = {}
    out: Set[str] = set()
    for ev in events:
        if ev.ph != POINT:
            continue
        if ev.name == "pages_persist":
            for pid in ev.args["pids"]:
                persisted_at[pid] = ev.t
        elif ev.name == "write_commit" and ev.op is not None:
            op_pages.setdefault(ev.op, set()).update(ev.args["pids"])
        elif ev.name == "write_ack" and ev.op is not None:
            pages = op_pages.get(ev.op)
            if not pages:
                continue
            landed = [persisted_at[p] for p in pages if p in persisted_at]
            if len(landed) != len(pages):
                continue  # non-durable ack: the oracle's business
            out.add(f"near:ackgap:{bucket(ev.t - max(landed))}")
    return out
