"""Trace-invariant oracles: turn a trace into a checked execution.

A :class:`TraceChecker` replays a tracer's event stream through a set
of *oracles*, each encoding one ordering/persistence invariant the
simulator must uphold.  Aggregate counters and fixed-seed goldens can
only say "the totals look right"; these oracles say "nothing illegal
happened in between", in the spirit of trace-based PM-filesystem
checkers (Silhouette, Chipmunk).

Event vocabulary the instrumentation emits (see the site modules):

========================  =======================================================
event (track)             args
========================  =======================================================
``dma_submit``  (chN)     ``sn``, ``nbytes``, ``write``
``dma_complete`` (chN)    ``sn``
``dma_fault``  (chN)      ``sn``, ``fault``, ``halted``
``dma_reset``  (chN)      ``sns`` (stranded)
``chancmd_suspend/_resume`` (chN)
``write_commit`` (fs)     ``ino``, ``pids``, ``sns`` [op]
``sn_amend``   (fs)       ``ino``, ``old``, ``new``
``write_ack``  (fs)       ``ino`` [op]
``pages_persist`` (persist)  ``pids``
``deadline_abort`` (fs)   ``what`` [op]
``park`` / ``wake``       ``ut`` [op]
``admission``  (coreN)    ``verdict``, ``ut``
spans ``write``/``read``/``plan``/``submit``/``level2``/``copy`` [op]
``repl_ship``  (net)      ``frm``, ``to``, ``epoch``, ``lo``, ``hi``
``repl_apply`` (nodeN)    ``sn`` (durable high-water), ``epoch``, ``n``
``repl_truncate`` (nodeN) ``at`` (new high-water), ``epoch``
``repl_ack``   (nodeN)    ``sn``, ``epoch``, ``quorum``
``lease_grant`` (lease)   ``epoch``, ``node``, ``expires``
``partition`` / ``heal`` (net)  ``group``
``node_crash`` / ``node_restart`` (net)  ``node``
========================  =======================================================

Adding an oracle: subclass :class:`Oracle`, implement ``feed`` (called
once per event, in stream order) and optionally ``finish``, then
register it in :data:`ORACLES` (or pass the instance's class straight
to :class:`TraceChecker`).  Oracles are stateful and single-use; the
checker constructs a fresh set per ``check`` call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Type

from repro.obs.trace import BEGIN, END, POINT, TraceEvent


@dataclass
class Violation:
    """One invariant breach, anchored to the offending event."""

    oracle: str
    message: str
    t: int
    index: int

    def __str__(self) -> str:
        return f"[{self.oracle}] t={self.t} #{self.index}: {self.message}"


class Oracle:
    """Base class: feed events in order, collect violations."""

    name = "oracle"

    def __init__(self):
        self.violations: List[Violation] = []
        self._index = 0

    def flag(self, ev: TraceEvent, message: str) -> None:
        self.violations.append(
            Violation(self.name, message, ev.t, self._index))

    def observe(self, index: int, ev: TraceEvent) -> None:
        self._index = index
        self.feed(ev)

    def feed(self, ev: TraceEvent) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def finish(self) -> None:
        """Hook for end-of-stream checks (default: nothing)."""


class AckImpliesDurable(Oracle):
    """No write is acknowledged before every page it wrote persisted.

    ``write_commit`` declares the op's page set, ``pages_persist``
    events grow the durable set, and at ``write_ack`` the op's pages
    must all be durable.  This is exactly EasyIO's contract: the
    pending event fires only after the DMA's ``on_complete`` persisted
    the data (or the degradation path did).

    Requires a persisting pipeline -- payload-elision mode skips the
    DMA-completion persist call entirely, so do not run this oracle
    over elided traces.
    """

    name = "ack-implies-durable"

    def __init__(self):
        super().__init__()
        self._durable: Set[int] = set()
        self._op_pages: Dict[int, Set[int]] = {}

    def feed(self, ev: TraceEvent) -> None:
        if ev.ph != POINT:
            return
        if ev.name == "pages_persist":
            self._durable.update(ev.args["pids"])
        elif ev.name == "write_commit" and ev.op is not None:
            self._op_pages.setdefault(ev.op, set()).update(ev.args["pids"])
        elif ev.name == "write_ack" and ev.op is not None:
            pages = self._op_pages.get(ev.op)
            if pages is None:
                return  # zero-byte or metadata-only op
            missing = pages - self._durable
            if missing:
                self.flag(ev, f"op {ev.op} acked with non-durable pages "
                              f"{sorted(missing)}")


class ChannelSnOrder(Oracle):
    """Per-channel submit/complete sequencing.

    * submit SNs are strictly increasing (the channel allocates them
      from a counter);
    * a completion's SN must have been submitted, never completed
      twice, and completion SNs are strictly increasing (FIFO ring);
    * a completion that *jumps past* SNs is legal only when every
      skipped SN already failed or was stranded (poisoned-SN rule).
    """

    name = "channel-sn-order"

    def __init__(self):
        super().__init__()
        self._submitted: Dict[str, int] = {}          # track -> max sn
        self._completed: Dict[str, int] = {}          # track -> max sn
        self._failed: Dict[str, Set[int]] = {}        # track -> poisoned

    def feed(self, ev: TraceEvent) -> None:
        if ev.ph != POINT:
            return
        track = ev.track
        if ev.name == "dma_submit":
            sn = ev.args["sn"]
            last = self._submitted.get(track, 0)
            if sn <= last:
                self.flag(ev, f"{track}: submit sn {sn} not above "
                              f"previous {last}")
            self._submitted[track] = max(last, sn)
        elif ev.name == "dma_fault":
            self._failed.setdefault(track, set()).add(ev.args["sn"])
        elif ev.name == "dma_reset":
            self._failed.setdefault(track, set()).update(ev.args["sns"])
        elif ev.name == "dma_complete":
            sn = ev.args["sn"]
            if sn > self._submitted.get(track, 0):
                self.flag(ev, f"{track}: sn {sn} completed before submit")
            prev = self._completed.get(track, 0)
            if sn <= prev:
                self.flag(ev, f"{track}: completion sn {sn} not above "
                              f"previous completion {prev}")
            failed = self._failed.get(track, ())
            skipped = [s for s in range(prev + 1, sn) if s not in failed]
            if skipped:
                self.flag(ev, f"{track}: completion jumped past live SNs "
                              f"{skipped}")
            self._completed[track] = max(prev, sn)


class SnCommitConsistency(Oracle):
    """Committed/amended SNs are real, monotonic per inode, not poisoned.

    * every ``(channel, sn)`` a ``write_commit`` embeds must already be
      submitted on that channel;
    * per (inode, channel) the committed SN strictly increases across
      commits/amendments (level-2 serialises writes per inode);
    * an amendment's ``old`` matches the inode's latest SN tuple, and
      its ``new`` SNs are submitted and not poisoned at amend time --
      the SN-safety rule that keeps recovery sound across failover.
    """

    name = "sn-commit-consistency"

    def __init__(self):
        super().__init__()
        self._submitted: Dict[int, int] = {}               # chid -> max sn
        self._failed: Dict[int, Set[int]] = {}             # chid -> poisoned
        self._last: Dict[Tuple[int, int], int] = {}        # (ino, chid) -> sn
        self._last_tuple: Dict[int, tuple] = {}            # ino -> sns

    @staticmethod
    def _chid(track: str) -> Optional[int]:
        if track.startswith("ch"):
            try:
                return int(track[2:])
            except ValueError:
                return None
        return None

    def _apply(self, ev: TraceEvent, ino: int, sns: Sequence, what: str):
        for chid, sn in sns:
            if sn > self._submitted.get(chid, 0):
                self.flag(ev, f"ino {ino}: {what} embeds unsubmitted "
                              f"ch{chid}/sn{sn}")
            last = self._last.get((ino, chid), 0)
            if sn <= last:
                self.flag(ev, f"ino {ino}: {what} sn {sn} on ch{chid} "
                              f"not above previous {last}")
            self._last[(ino, chid)] = max(last, sn)
        self._last_tuple[ino] = tuple(tuple(p) for p in sns)

    def feed(self, ev: TraceEvent) -> None:
        if ev.ph != POINT:
            return
        if ev.name == "dma_submit":
            chid = self._chid(ev.track)
            if chid is not None:
                self._submitted[chid] = max(self._submitted.get(chid, 0),
                                            ev.args["sn"])
        elif ev.name == "dma_fault":
            chid = self._chid(ev.track)
            if chid is not None:
                self._failed.setdefault(chid, set()).add(ev.args["sn"])
        elif ev.name == "dma_reset":
            chid = self._chid(ev.track)
            if chid is not None:
                self._failed.setdefault(chid, set()).update(ev.args["sns"])
        elif ev.name == "write_commit":
            self._apply(ev, ev.args["ino"], ev.args["sns"], "commit")
        elif ev.name == "sn_amend":
            ino = ev.args["ino"]
            old = tuple(tuple(p) for p in ev.args["old"])
            seen = self._last_tuple.get(ino)
            if seen is not None and seen != old:
                self.flag(ev, f"ino {ino}: amend replaces {old} but last "
                              f"committed tuple was {seen}")
            new = ev.args["new"]
            for chid, sn in new:
                if sn > self._submitted.get(chid, 0):
                    self.flag(ev, f"ino {ino}: amend embeds unsubmitted "
                                  f"ch{chid}/sn{sn}")
                if sn in self._failed.get(chid, ()):
                    self.flag(ev, f"ino {ino}: amend embeds poisoned "
                                  f"ch{chid}/sn{sn}")
            self._last_tuple[ino] = tuple(tuple(p) for p in new)


class SpanCausality(Oracle):
    """Span nesting and park/wake causality.

    * per operation, ``end`` events close the innermost open span of
      the same name (stack discipline) -- an ``end`` with no matching
      ``begin`` is a violation (a *still-open* span at end of stream
      is not: truncated ``run(until=...)`` sweeps abandon ops legally);
    * a ``wake`` for a uthread requires an earlier unconsumed ``park``
      for the same uthread, and a parked uthread cannot park again
      before waking.
    """

    name = "span-causality"

    def __init__(self):
        super().__init__()
        self._stacks: Dict[object, List[str]] = {}
        self._parked: Dict[str, int] = {}

    def feed(self, ev: TraceEvent) -> None:
        if ev.ph == BEGIN:
            self._stacks.setdefault((ev.op, ev.track), []).append(ev.name)
        elif ev.ph == END:
            stack = self._stacks.get((ev.op, ev.track))
            if not stack:
                self.flag(ev, f"end of {ev.name!r} with no open span")
            elif stack[-1] != ev.name:
                self.flag(ev, f"end of {ev.name!r} but innermost open "
                              f"span is {stack[-1]!r}")
            else:
                stack.pop()
        elif ev.ph == POINT:
            if ev.name == "park":
                ut = ev.args["ut"]
                if self._parked.get(ut, 0):
                    self.flag(ev, f"uthread {ut} parked while parked")
                self._parked[ut] = self._parked.get(ut, 0) + 1
            elif ev.name == "wake":
                ut = ev.args["ut"]
                if not self._parked.get(ut, 0):
                    self.flag(ev, f"uthread {ut} woken without a park")
                else:
                    self._parked[ut] -= 1


class DeadlineAbortFinality(Oracle):
    """A deadline-aborted operation has no later effects.

    Deadlines abort only at clean points (pre-submit, or while
    waiting), so an op that emitted ``deadline_abort`` must never
    commit or ack afterwards.
    """

    name = "deadline-abort-finality"

    def __init__(self):
        super().__init__()
        self._aborted: Set[int] = set()

    def feed(self, ev: TraceEvent) -> None:
        if ev.ph != POINT or ev.op is None:
            return
        if ev.name == "deadline_abort":
            self._aborted.add(ev.op)
        elif ev.name in ("write_commit", "write_ack") \
                and ev.op in self._aborted:
            self.flag(ev, f"op {ev.op} emitted {ev.name} after its "
                          f"deadline abort")


def _node_track(track: str) -> Optional[str]:
    """``node<id>`` tracks carry per-replica replication events."""
    return track[4:] if track.startswith("node") else None


class ClusterAckDurable(Oracle):
    """A replicated ack implies quorum durability -- and stays durable.

    ``repl_apply``/``repl_truncate`` maintain each replica's durable
    SN high-water.  At every ``repl_ack`` (the primary acking a client
    write), at least ``quorum`` replicas must already hold the acked
    SN.  Afterwards, a truncation is only legal over *unacked* suffix:
    if a truncate drops a replica below an acked SN, the survivors
    holding that SN must still form a quorum, else committed data was
    lost (the cluster analogue of :class:`AckImpliesDurable`).

    No-op on traces without replication events.
    """

    name = "cluster-ack-durable"

    def __init__(self):
        super().__init__()
        self._applied: Dict[str, int] = {}       # node -> high-water
        self._acked: Dict[int, int] = {}         # acked sn -> quorum
        self._max_acked = 0

    def feed(self, ev: TraceEvent) -> None:
        if ev.ph != POINT:
            return
        node = _node_track(ev.track)
        if node is None:
            return
        if ev.name == "repl_apply":
            self._applied[node] = max(self._applied.get(node, 0),
                                      ev.args["sn"])
        elif ev.name == "repl_ack":
            sn, quorum = ev.args["sn"], ev.args["quorum"]
            holders = sum(1 for hw in self._applied.values() if hw >= sn)
            if holders < quorum:
                self.flag(ev, f"sn {sn} acked with only {holders} durable "
                              f"replica(s), quorum is {quorum}")
            self._acked[sn] = quorum
            self._max_acked = max(self._max_acked, sn)
        elif ev.name == "repl_truncate":
            at = ev.args["at"]
            before = self._applied.get(node, 0)
            self._applied[node] = at
            for sn in range(at + 1, min(before, self._max_acked) + 1):
                quorum = self._acked.get(sn)
                if quorum is None:
                    continue
                holders = sum(1 for hw in self._applied.values()
                              if hw >= sn)
                if holders < quorum:
                    self.flag(ev, f"node {node} truncated to {at}, "
                                  f"leaving acked sn {sn} on only "
                                  f"{holders} replica(s) (quorum {quorum})")


class ReplicaSnMonotonic(Oracle):
    """Per-replica SN/epoch discipline.

    * ``repl_apply`` raises the node's durable high-water strictly
      (appends are in SN order, no re-apply);
    * ``repl_truncate`` strictly lowers it (an empty truncate would be
      instrumentation noise);
    * the ``epoch`` stamped on apply/truncate events never decreases
      per node -- a replica's durable epoch is a high-water mark.

    No-op on traces without replication events.
    """

    name = "replica-sn-monotonic"

    def __init__(self):
        super().__init__()
        self._applied: Dict[str, int] = {}
        self._epoch: Dict[str, int] = {}

    def feed(self, ev: TraceEvent) -> None:
        if ev.ph != POINT or ev.name not in ("repl_apply", "repl_truncate"):
            return
        node = _node_track(ev.track)
        if node is None:
            return
        epoch = ev.args["epoch"]
        last_epoch = self._epoch.get(node, 0)
        if epoch < last_epoch:
            self.flag(ev, f"node {node}: epoch regressed "
                          f"{last_epoch} -> {epoch}")
        self._epoch[node] = max(last_epoch, epoch)
        hw = self._applied.get(node, 0)
        if ev.name == "repl_apply":
            sn = ev.args["sn"]
            if sn <= hw:
                self.flag(ev, f"node {node}: applied sn {sn} not above "
                              f"high-water {hw}")
            self._applied[node] = max(hw, sn)
        else:
            at = ev.args["at"]
            if at >= hw:
                self.flag(ev, f"node {node}: truncate to {at} does not "
                              f"lower high-water {hw}")
            self._applied[node] = at


class OnePrimaryPerEpoch(Oracle):
    """Lease epochs are exclusive: one grant, one acting primary.

    * ``lease_grant`` epochs are strictly increasing (each new holder
      mints a fresh epoch), so an epoch is granted at most once;
    * every ``repl_ship`` and ``repl_ack`` stamped with epoch ``e``
      must be emitted by the node ``e`` was granted to -- two nodes
      acting as primary in one epoch is the split-brain this oracle
      exists to catch.

    No-op on traces without replication events.
    """

    name = "one-primary-per-lease-epoch"

    def __init__(self):
        super().__init__()
        self._grantee: Dict[int, str] = {}
        self._last_epoch = 0

    def feed(self, ev: TraceEvent) -> None:
        if ev.ph != POINT:
            return
        if ev.name == "lease_grant":
            epoch, node = ev.args["epoch"], str(ev.args["node"])
            if epoch <= self._last_epoch:
                self.flag(ev, f"lease epoch {epoch} granted after epoch "
                              f"{self._last_epoch}")
            if epoch in self._grantee:
                self.flag(ev, f"lease epoch {epoch} granted twice")
            self._grantee[epoch] = node
            self._last_epoch = max(self._last_epoch, epoch)
            return
        if ev.name == "repl_ship":
            actor = str(ev.args["frm"])
        elif ev.name == "repl_ack":
            actor = _node_track(ev.track)
            if actor is None:
                return
        else:
            return
        epoch = ev.args["epoch"]
        grantee = self._grantee.get(epoch)
        if grantee is None:
            self.flag(ev, f"{ev.name} in epoch {epoch} which was never "
                          f"granted")
        elif grantee != actor:
            self.flag(ev, f"{ev.name} by node {actor} in epoch {epoch} "
                          f"granted to node {grantee}")


#: The oracle registry: name -> class.  ``register_oracle`` (or a
#: direct assignment) adds project-specific invariants.
ORACLES: Dict[str, Type[Oracle]] = {
    cls.name: cls for cls in (
        AckImpliesDurable, ChannelSnOrder, SnCommitConsistency,
        SpanCausality, DeadlineAbortFinality,
        ClusterAckDurable, ReplicaSnMonotonic, OnePrimaryPerEpoch,
    )
}


def register_oracle(cls: Type[Oracle]) -> Type[Oracle]:
    """Register an oracle class under its ``name`` (usable as a
    decorator)."""
    ORACLES[cls.name] = cls
    return cls


class TraceChecker:
    """Replays an event stream through a set of oracles.

    ``oracles`` may mix registry names and :class:`Oracle` subclasses;
    the default is every registered oracle.  Each ``check`` call
    constructs fresh oracle instances, so a checker is reusable.
    """

    def __init__(self, oracles: Optional[Iterable] = None):
        if oracles is None:
            self._classes = list(ORACLES.values())
        else:
            self._classes = [ORACLES[o] if isinstance(o, str) else o
                             for o in oracles]

    def check(self, events: Iterable[TraceEvent]) -> List[Violation]:
        """All violations across the stream, in stream order."""
        instances = [cls() for cls in self._classes]
        for i, ev in enumerate(events):
            for oracle in instances:
                oracle.observe(i, ev)
        out: List[Violation] = []
        for oracle in instances:
            oracle.finish()
            out.extend(oracle.violations)
        out.sort(key=lambda v: v.index)
        return out

    def check_tracer(self, tracer) -> List[Violation]:
        return self.check(tracer.events)


def assert_trace_ok(events: Iterable[TraceEvent],
                    oracles: Optional[Iterable] = None) -> None:
    """Raise ``AssertionError`` listing every violation, if any."""
    violations = TraceChecker(oracles).check(events)
    if violations:
        lines = "\n".join(f"  {v}" for v in violations)
        raise AssertionError(
            f"{len(violations)} trace-invariant violation(s):\n{lines}")
