"""Sim-time structured tracing: spans and point events, zero overhead
when off.

The tracer is *passive instrumentation*: it only ever appends records
to an in-memory buffer.  It never schedules simulation events, charges
CPU time, or perturbs any data structure the simulation reads -- so a
traced run produces byte-identical summary metrics to an untraced one
(the golden-equivalence tests pin this).

Enabling/disabling works through the engine: every instrumentation
site in the simulator reads ``engine.tracer`` and emits only when it
is not None.  With the default (``None``) each site costs one
attribute load and a None check -- nothing allocates, nothing is
buffered.

Two buffer modes:

* **unbounded list** (``capacity=None``) -- for tests and short runs
  that will be checked by :class:`~repro.obs.oracles.TraceChecker`;
* **ring buffer** (``capacity=N``) -- a bounded ``deque`` keeping the
  most recent N events, for long sweeps where only the tail (or only
  the memory bound) matters.  ``dropped`` counts evictions.

Export is Chrome-trace-event JSON (the format ``chrome://tracing`` and
https://ui.perfetto.dev open directly): spans become ``B``/``E``
pairs, points become instants, and each track becomes one row.

Engines created *inside* library code (figure functions build their
own :class:`~repro.hw.platform.Platform`) pick a tracer up through the
module-level factory hook in :mod:`repro.sim.engine`; use
:func:`default_tracing` to install one for a lexical scope::

    with default_tracing(collect=tracers):
        run_figure()            # every Engine created here is traced
    for tr in tracers:
        check(tr.events)

This module is stdlib-only on purpose: :mod:`repro.sim.engine` must be
importable without it, and it must be importable without the rest of
the package.
"""

from __future__ import annotations

import json
from collections import deque
from contextlib import contextmanager
from typing import Any, Dict, List, Optional

#: Event phases (mirroring the Chrome trace-event phase letters).
BEGIN = "B"
END = "E"
POINT = "i"


class TraceEvent:
    """One trace record.

    ``t`` is the simulated time in ns, ``ph`` the phase (``"B"``,
    ``"E"``, ``"i"``), ``name`` the event/span name, ``track`` the row
    it renders on, ``op`` the operation id tying an op's events
    together across tracks (None for op-less hardware events), and
    ``args`` the free-form payload the oracles consume.
    """

    __slots__ = ("t", "ph", "name", "track", "op", "args")

    def __init__(self, t: int, ph: str, name: str, track: str,
                 op: Optional[int], args: Optional[Dict[str, Any]]):
        self.t = t
        self.ph = ph
        self.name = name
        self.track = track
        self.op = op
        self.args = args

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        op = f" op={self.op}" if self.op is not None else ""
        args = f" {self.args}" if self.args else ""
        return f"<{self.ph} {self.name}@{self.t} [{self.track}]{op}{args}>"


class Tracer:
    """Collects :class:`TraceEvent` records against an engine's clock.

    The engine is duck-typed: anything with an integer ``now`` works
    (tests drive the checker with a hand-rolled stub clock).
    """

    def __init__(self, engine, capacity: Optional[int] = None):
        self.engine = engine
        self.capacity = capacity
        if capacity is None:
            self._buf: Any = []
        else:
            if capacity < 1:
                raise ValueError(f"capacity must be >= 1, got {capacity}")
            self._buf = deque(maxlen=capacity)
        #: Total events ever emitted (>= len(events) in ring mode).
        self.emitted = 0
        self._next_op = 0

    # -- buffer access ----------------------------------------------
    @property
    def events(self) -> List[TraceEvent]:
        """The buffered events, oldest first."""
        return list(self._buf)

    def __len__(self) -> int:
        return len(self._buf)

    @property
    def dropped(self) -> int:
        """Events evicted by the ring buffer (0 in unbounded mode)."""
        return self.emitted - len(self._buf)

    def clear(self) -> None:
        self._buf.clear()
        self.emitted = 0

    def last_event(self, op: Optional[int] = None) -> Optional[TraceEvent]:
        """The most recent buffered event, newest first.

        With ``op=`` only events tied to that operation id count --
        used by the watchdog to report what a hung operation last did
        before going quiet.  Returns None when nothing matches (or the
        ring buffer already evicted it).
        """
        if op is None:
            return self._buf[-1] if self._buf else None
        for ev in reversed(self._buf):
            if ev.op == op:
                return ev
        return None

    # -- ids --------------------------------------------------------
    def next_op_id(self) -> int:
        """A fresh operation id (unique within this tracer)."""
        self._next_op += 1
        return self._next_op

    # -- emission ---------------------------------------------------
    def emit(self, ph: str, name: str, track: str,
             op: Optional[int], args: Optional[Dict[str, Any]]) -> None:
        self.emitted += 1
        self._buf.append(TraceEvent(self.engine.now, ph, name, track,
                                    op, args))

    def point(self, name: str, track: str = "main",
              op: Optional[int] = None, **args) -> None:
        """Emit an instantaneous event."""
        self.emit(POINT, name, track, op, args or None)

    def begin(self, name: str, track: str = "main",
              op: Optional[int] = None, **args) -> None:
        """Open a span (close it with :meth:`end`, LIFO per op/track)."""
        self.emit(BEGIN, name, track, op, args or None)

    def end(self, name: str, track: str = "main",
            op: Optional[int] = None, **args) -> None:
        """Close the innermost open span with this name."""
        self.emit(END, name, track, op, args or None)

    @contextmanager
    def span(self, name: str, track: str = "main",
             op: Optional[int] = None, **args):
        """Context-managed begin/end pair (host-side ``with`` only --
        do not hold it across simulation yields; instrumented
        coroutines use explicit begin/end in try/finally instead)."""
        self.begin(name, track, op, **args)
        try:
            yield self
        finally:
            self.end(name, track, op)

    # -- export -----------------------------------------------------
    def to_chrome(self) -> Dict[str, Any]:
        """The trace as a Chrome-trace-event JSON object.

        Timestamps convert from ns to the format's µs floats; each
        track maps to one ``tid`` with a ``thread_name`` metadata
        record so Perfetto labels the rows.
        """
        tids: Dict[str, int] = {}
        out: List[Dict[str, Any]] = []
        for ev in self._buf:
            tid = tids.get(ev.track)
            if tid is None:
                tid = tids[ev.track] = len(tids) + 1
            rec: Dict[str, Any] = {
                "name": ev.name, "ph": ev.ph, "ts": ev.t / 1000.0,
                "pid": 1, "tid": tid,
            }
            args = dict(ev.args) if ev.args else {}
            if ev.op is not None:
                args["op"] = ev.op
            if args:
                rec["args"] = args
            if ev.ph == POINT:
                rec["s"] = "t"  # instant scope: thread
            out.append(rec)
        meta = [{"name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
                 "args": {"name": track}} for track, tid in tids.items()]
        return {"traceEvents": meta + out,
                "displayTimeUnit": "ns",
                "otherData": {"emitted": self.emitted,
                              "dropped": self.dropped}}

    def dump_json(self, path: str) -> str:
        """Write the Chrome-trace JSON to ``path``; returns the path."""
        with open(path, "w") as f:
            json.dump(self.to_chrome(), f)
        return path


@contextmanager
def default_tracing(capacity: Optional[int] = None,
                    collect: Optional[list] = None):
    """Trace every :class:`~repro.sim.engine.Engine` created in scope.

    Installs a factory through :func:`repro.sim.engine.set_tracer_factory`
    so engines built deep inside library code (figure sweeps construct
    their own platforms) come up with a tracer attached.  Created
    tracers are appended to ``collect`` when given, so the caller can
    run the :class:`~repro.obs.oracles.TraceChecker` over each engine's
    stream afterwards.

    Restores the previous factory on exit (nesting works; the innermost
    scope wins).
    """
    from repro.sim import engine as engine_mod

    def factory(engine):
        tracer = Tracer(engine, capacity=capacity)
        if collect is not None:
            collect.append(tracer)
        return tracer

    previous = engine_mod.get_tracer_factory()
    engine_mod.set_tracer_factory(factory)
    try:
        yield
    finally:
        engine_mod.set_tracer_factory(previous)
