"""Observability: sim-time tracing, trace-invariant oracles, and
coverage-signal extraction (the fuzzer's guidance hooks)."""

from repro.obs.coverage import (
    ack_gap_buckets,
    bucket,
    counter_buckets,
    trace_vocabulary,
    track_class,
)
from repro.obs.trace import (
    BEGIN,
    END,
    POINT,
    TraceEvent,
    Tracer,
    default_tracing,
)
from repro.obs.oracles import (
    ORACLES,
    AckImpliesDurable,
    ChannelSnOrder,
    ClusterAckDurable,
    DeadlineAbortFinality,
    OnePrimaryPerEpoch,
    Oracle,
    ReplicaSnMonotonic,
    SnCommitConsistency,
    SpanCausality,
    TraceChecker,
    Violation,
    assert_trace_ok,
    register_oracle,
)

__all__ = [
    "BEGIN",
    "END",
    "POINT",
    "TraceEvent",
    "Tracer",
    "default_tracing",
    "ORACLES",
    "Oracle",
    "Violation",
    "TraceChecker",
    "AckImpliesDurable",
    "ChannelSnOrder",
    "ClusterAckDurable",
    "SnCommitConsistency",
    "SpanCausality",
    "DeadlineAbortFinality",
    "OnePrimaryPerEpoch",
    "ReplicaSnMonotonic",
    "assert_trace_ok",
    "register_oracle",
    "ack_gap_buckets",
    "bucket",
    "counter_buckets",
    "trace_vocabulary",
    "track_class",
]
