"""Observability: sim-time tracing and trace-invariant oracles."""

from repro.obs.trace import (
    BEGIN,
    END,
    POINT,
    TraceEvent,
    Tracer,
    default_tracing,
)
from repro.obs.oracles import (
    ORACLES,
    AckImpliesDurable,
    ChannelSnOrder,
    ClusterAckDurable,
    DeadlineAbortFinality,
    OnePrimaryPerEpoch,
    Oracle,
    ReplicaSnMonotonic,
    SnCommitConsistency,
    SpanCausality,
    TraceChecker,
    Violation,
    assert_trace_ok,
    register_oracle,
)

__all__ = [
    "BEGIN",
    "END",
    "POINT",
    "TraceEvent",
    "Tracer",
    "default_tracing",
    "ORACLES",
    "Oracle",
    "Violation",
    "TraceChecker",
    "AckImpliesDurable",
    "ChannelSnOrder",
    "ClusterAckDurable",
    "SnCommitConsistency",
    "SpanCausality",
    "DeadlineAbortFinality",
    "OnePrimaryPerEpoch",
    "ReplicaSnMonotonic",
    "assert_trace_ok",
    "register_oracle",
]
