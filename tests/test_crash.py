"""Crash-consistency harness tests (Table 2, reduced crash budget --
the full 1000-point sweep runs in benchmarks/test_tab02_crashmonkey.py)."""

import pytest

from repro.crash import CRASH_WORKLOADS, run_crash_test
from repro.crash.crashmonkey import snapshot_with_content
from repro.fs import NovaFS, PMImage
from repro.hw.platform import Platform, PlatformConfig
from tests.conftest import run_proc


class TestHarness:
    def test_workload_catalogue_matches_table2(self):
        assert set(CRASH_WORKLOADS) == {"create_delete", "generic_056",
                                        "generic_090", "generic_322"}

    def test_snapshot_includes_content_digest(self):
        fs = NovaFS(Platform(PlatformConfig.single_node()), PMImage()).mount()
        def scenario():
            ino = yield from fs.create(fs.context(), "/f")
            yield from fs.write(fs.context(), ino, 0, 4096, b"x" * 4096)
        run_proc(fs.engine, scenario())
        snap = snapshot_with_content(fs)
        assert snap["/f"][0] == "file"
        assert snap["/f"][1] == 4096
        assert snap["/f"][2] is not None

    def test_content_digest_distinguishes_payloads(self):
        def snap_for(payload):
            fs = NovaFS(Platform(PlatformConfig.single_node()),
                        PMImage()).mount()
            def scenario():
                ino = yield from fs.create(fs.context(), "/f")
                yield from fs.write(fs.context(), ino, 0, 4096, payload)
            run_proc(fs.engine, scenario())
            return snapshot_with_content(fs)["/f"][2]
        assert snap_for(b"a" * 4096) != snap_for(b"b" * 4096)


@pytest.mark.parametrize("workload", sorted(CRASH_WORKLOADS))
class TestCrashSweeps:
    def test_easyio_passes(self, workload):
        report = run_crash_test("easyio", workload, crash_points=60)
        assert report.all_passed, report.failures[:3]

    def test_nova_passes(self, workload):
        report = run_crash_test("nova", workload, crash_points=40)
        assert report.all_passed, report.failures[:3]

    def test_naive_passes(self, workload):
        report = run_crash_test("naive", workload, crash_points=40)
        assert report.all_passed, report.failures[:3]


class TestDetection:
    def test_checker_detects_broken_recovery(self):
        """If EasyIO recovery ignored SN validation, some crash point
        must fail -- proving the checker has teeth."""
        from repro.crash import crashmonkey as cmky
        from repro.fs.recovery import recover

        desc, driver, iterations = CRASH_WORKLOADS["generic_090"]
        image, oracle = cmky._record_workload("easyio", driver, 8)
        total = image.crash_points()
        failures = 0
        for k in range(0, total + 1, max(1, total // 80)):
            img = image.replay(k)
            plat = Platform(PlatformConfig.single_node())
            fs2 = cmky.make_fs_on_image("easyio", plat, img)
            recover(fs2, None)   # deliberately skip SN validation
            snap = snapshot_with_content(fs2)
            durable = sum(1 for (_s, e, _sn) in oracle if e <= k)
            started = sum(1 for (s, _e, _sn) in oracle if s <= k)
            cands = [{} if i == 0 else oracle[i - 1][2]
                     for i in range(durable, started + 1)]
            if not any(snap == c for c in cands):
                failures += 1
        assert failures > 0, \
            "disabling SN validation should corrupt some crash point"
