"""Differential testing across the five filesystem variants.

A seeded random op schedule (writes, reads, truncates at mixed offsets
and sizes) runs on every variant in :data:`FS_REGISTRY`; NOVA is the
reference oracle.  Whatever the data path -- synchronous memcpy,
delegation threads, orderless DMA offload, or the Naive ablation's
deferred commit -- the *logical* filesystem state must be identical:
byte-identical final contents, the same file size, the same number of
durable pages, and the same bytes returned by every interleaved read.
"""

import random

import pytest

from repro.fs.structures import PAGE_SIZE
from repro.hw.platform import Platform, PlatformConfig
from repro.workloads.factory import FS_KINDS, make_fs
from tests.conftest import run_proc

SEEDS = (0xEA5710, 20260806)
N_OPS = 40


def _schedule(seed, n_ops=N_OPS):
    """A reproducible mixed op schedule (same seed -> same ops)."""
    rng = random.Random(seed)
    ops = []
    for _ in range(n_ops):
        kind = rng.choices(("write", "read", "truncate"),
                           weights=(6, 3, 1))[0]
        if kind == "write":
            offset = rng.randrange(0, 6 * PAGE_SIZE)
            nbytes = rng.randrange(1, 5 * PAGE_SIZE)
            ops.append(("write", offset, nbytes, rng.randbytes(nbytes)))
        elif kind == "read":
            offset = rng.randrange(0, 8 * PAGE_SIZE)
            nbytes = rng.randrange(1, 5 * PAGE_SIZE)
            ops.append(("read", offset, nbytes))
        else:
            ops.append(("truncate", rng.randrange(0, 8 * PAGE_SIZE)))
    return ops


def _settle(fs, result):
    """Wait out async I/O and the Naive ablation's deferred commit."""
    if result.is_async:
        yield result.pending
    continuation = getattr(result, "continuation", None)
    if continuation is not None:
        yield from continuation(fs.context())


def _run_variant(kind, schedule):
    """Run the schedule on a fresh single-node platform; return the
    observable state: final contents, size, durable-page count, and
    every read's bytes in schedule order."""
    platform = Platform(PlatformConfig.single_node())
    fs = make_fs(kind, platform)
    reads = []

    def body():
        ino = yield from fs.create(fs.context(), "/diff")
        for op in schedule:
            if op[0] == "write":
                _, offset, nbytes, payload = op
                result = yield from fs.write(fs.context(), ino, offset,
                                             nbytes, payload)
                yield from _settle(fs, result)
            elif op[0] == "read":
                _, offset, nbytes = op
                result = yield from fs.read(fs.context(), ino, offset,
                                            nbytes, want_data=True)
                yield from _settle(fs, result)
                reads.append(result.value)
            else:
                yield from fs.truncate(fs.context(), ino, op[1])
        m = fs._mem[ino]
        return fs._collect_data(m, 0, m.size), m.size, len(m.index)

    content, size, pages = run_proc(fs.engine, body())
    return {"content": content, "size": size, "pages": pages,
            "reads": reads}


@pytest.fixture(scope="module", params=SEEDS, ids=lambda s: f"seed{s:#x}")
def reference(request):
    """The NOVA run for one seed (computed once per module)."""
    return request.param, _run_variant("nova", _schedule(request.param))


@pytest.mark.parametrize("kind", [k for k in FS_KINDS if k != "nova"])
def test_variant_matches_nova_reference(kind, reference):
    seed, expected = reference
    got = _run_variant(kind, _schedule(seed))
    assert got["size"] == expected["size"]
    assert got["pages"] == expected["pages"], \
        "durable-page count diverged from the NOVA reference"
    assert got["content"] == expected["content"], \
        "final file contents diverged from the NOVA reference"
    assert got["reads"] == expected["reads"], \
        "an interleaved read returned different bytes than NOVA"


def test_schedule_is_reproducible():
    assert _schedule(SEEDS[0]) == _schedule(SEEDS[0])
    assert _schedule(SEEDS[0]) != _schedule(SEEDS[1])


def test_schedule_covers_all_op_kinds():
    for seed in SEEDS:
        kinds = {op[0] for op in _schedule(seed)}
        assert kinds == {"write", "read", "truncate"}


def test_easyio_differential_run_is_trace_clean(trace_oracles):
    """The differential workload doubles as an oracle stress: EasyIO's
    stream over the whole schedule must satisfy every invariant."""
    _run_variant("easyio", _schedule(SEEDS[0]))
    assert trace_oracles and trace_oracles[0].emitted > 0
