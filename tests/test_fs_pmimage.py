"""Tests for the persistent-memory image and its mutation journal."""

import pytest

from repro.fs.pmimage import MutationRecord, PMImage
from repro.fs.structures import FileKind, Inode, WriteEntry


class TestMutations:
    def test_recording_off_by_default(self):
        img = PMImage()
        img.write_page(1, b"x")
        assert img.mutations == []

    def test_recording_captures_persist_order(self):
        img = PMImage(record=True)
        img.write_page(1, b"x")
        img.append_log(5, "entry")
        img.commit_log_tail(5, 1)
        assert [m.op for m in img.mutations] == [
            "write_page", "append_log", "commit_log_tail"]

    def test_page_free_does_not_erase_content(self):
        """PM does not zero freed pages; recovery may fall back to them."""
        img = PMImage(record=True)
        img.write_page(3, b"old")
        img.drop_page(3)
        assert img.pages[3] == b"old"

    def test_committed_log_respects_tail(self):
        img = PMImage()
        img.append_log(1, "a")
        img.append_log(1, "b")
        img.commit_log_tail(1, 1)
        assert img.committed_log(1) == ["a"]

    def test_alloc_counters_monotonic(self):
        img = PMImage(record=True)
        assert img.alloc_ino() == 1
        assert img.alloc_ino() == 2
        ids = img.alloc_page_ids(3)
        assert ids == [0, 1, 2]
        assert img.alloc_page_ids(1) == [3]


class TestReplay:
    def test_replay_requires_recording(self):
        with pytest.raises(RuntimeError):
            PMImage().replay(0)

    def test_full_replay_reproduces_state(self):
        img = PMImage(record=True)
        img.put_inode(1, Inode(1, FileKind.FILE, 1, 0))
        img.write_page(0, b"data")
        entry = WriteEntry(0, (0,), 4096, 10)
        img.append_log(1, entry)
        img.commit_log_tail(1, 1)
        img.update_completion_buffer(2, 7)
        replayed = img.replay(img.crash_points())
        assert replayed.pages == img.pages
        assert replayed.inodes == img.inodes
        assert replayed.logs == img.logs
        assert replayed.log_tails == img.log_tails
        assert replayed.completion_buffers == img.completion_buffers

    def test_prefix_replay_stops_at_crash_point(self):
        img = PMImage(record=True)
        img.write_page(0, b"a")
        img.write_page(1, b"b")
        half = img.replay(1)
        assert 0 in half.pages and 1 not in half.pages

    def test_replay_preserves_alloc_high_water_marks(self):
        img = PMImage(record=True)
        img.alloc_ino()
        img.alloc_page_ids(5)
        replayed = img.replay(img.crash_points())
        assert replayed.alloc_ino() == 2
        assert replayed.alloc_page_ids(1) == [5]

    def test_journal_begin_end_replay(self):
        img = PMImage(record=True)
        img.journal_begin("txn")
        mid = img.replay(img.crash_points())
        assert mid.journal == ["txn"]
        img.journal_end()
        done = img.replay(img.crash_points())
        assert done.journal == []

    def test_unknown_mutation_rejected(self):
        img = PMImage()
        with pytest.raises(ValueError):
            img.apply(MutationRecord("nonsense", ()))

    def test_append_log_not_valid_until_tail_commit(self):
        """NOVA's two-step append+commit: the appended entry is not part
        of the committed log until the tail moves."""
        img = PMImage(record=True)
        img.append_log(1, "e")
        crashed = img.replay(img.crash_points())
        assert crashed.committed_log(1) == []
        img.commit_log_tail(1, 1)
        crashed = img.replay(img.crash_points())
        assert crashed.committed_log(1) == ["e"]
