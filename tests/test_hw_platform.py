"""Tests for platform assembly and core busy-time accounting."""

import pytest

from repro.hw.cpu import Core
from repro.hw.params import DEFAULT_COST_MODEL, CostModel
from repro.hw.platform import Platform, PlatformConfig
from repro.sim import SimulationError
from tests.conftest import run_proc


class TestPlatformConfig:
    def test_paper_testbed_shape(self):
        cfg = PlatformConfig.paper_testbed()
        assert cfg.total_cores == 36
        assert cfg.total_dimms == 6
        assert cfg.total_dma_channels == 16

    def test_single_node_shape(self):
        cfg = PlatformConfig.single_node()
        assert cfg.sockets == 1
        assert cfg.total_dimms == 3
        assert cfg.total_dma_channels == 8

    def test_platform_wires_components(self, platform):
        assert len(platform.cores) == 36
        assert len(platform.dma) == 16
        assert platform.memory.dimms == 6
        assert platform.cores[0].socket == 0
        assert platform.cores[-1].socket == 1

    def test_engine_capacity_scales_with_sockets(self):
        one = Platform(PlatformConfig.single_node())
        two = Platform(PlatformConfig.paper_testbed())
        assert two.dma.capacity == pytest.approx(2 * one.dma.capacity)


class TestCostModel:
    def test_evolve_returns_modified_copy(self):
        tweaked = DEFAULT_COST_MODEL.evolve(syscall_cost=1)
        assert tweaked.syscall_cost == 1
        assert DEFAULT_COST_MODEL.syscall_cost != 1

    def test_describe_covers_every_field(self):
        d = DEFAULT_COST_MODEL.describe()
        assert "pm_write_bw_per_dimm" in d
        assert len(d) == len(CostModel.__dataclass_fields__)

    def test_cpu_write_capacity_ramps_then_collapses(self):
        m = DEFAULT_COST_MODEL
        caps = [m.cpu_write_capacity(6, n) for n in (1, 4, 8, 14, 24)]
        assert caps[0] < caps[1] < caps[2] < caps[3]
        assert caps[4] < caps[3]
        assert all(c <= m.pm_write_peak(6) for c in caps)

    def test_model_override_flows_through_platform(self):
        model = CostModel(syscall_cost=12345)
        plat = Platform(PlatformConfig.single_node(), model=model)
        assert plat.model.syscall_cost == 12345


class TestCoreAccounting:
    def test_busy_time_accumulates(self, engine):
        core = Core(engine, 0)
        def body():
            core.mark_busy("work")
            yield engine.timeout(100)
            core.mark_idle()
            yield engine.timeout(50)
            core.mark_busy("more")
            yield engine.timeout(25)
            core.mark_idle()
        run_proc(engine, body())
        assert core.busy_ns() == 125

    def test_open_span_counted(self, engine):
        core = Core(engine, 0)
        def body():
            core.mark_busy()
            yield engine.timeout(60)
        run_proc(engine, body())
        assert core.busy_ns() == 60
        assert core.busy

    def test_double_busy_rejected(self, engine):
        core = Core(engine, 0)
        core.mark_busy()
        with pytest.raises(SimulationError):
            core.mark_busy()

    def test_idle_while_idle_rejected(self, engine):
        core = Core(engine, 0)
        with pytest.raises(SimulationError):
            core.mark_idle()

    def test_busy_section_helper(self, engine):
        core = Core(engine, 0)
        def inner():
            yield engine.timeout(40)
            return "x"
        def body():
            result = yield from core.busy_section(inner(), occupant="job")
            return result
        assert run_proc(engine, body()) == "x"
        assert core.busy_ns() == 40
        assert not core.busy

    def test_utilization(self, engine):
        core = Core(engine, 0)
        def body():
            core.mark_busy()
            yield engine.timeout(30)
            core.mark_idle()
            yield engine.timeout(70)
        run_proc(engine, body())
        assert core.utilization() == pytest.approx(0.3)
