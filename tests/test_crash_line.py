"""Line-granularity crash sweeps + planted-mutant validation.

The headline claims of the cache-line crash model:

* clean implementations pass the line sweep (no false positives, with
  and without injected DMA faults), for every filesystem kind;
* two planted persistence bugs -- a skipped append/commit fence and a
  reordered failover (SN amend persisted before the degraded pages) --
  are caught by the line sweep;
* the skipped fence is *invisible* to the page-granularity sweep (the
  mutation journal records logical stores, not fences), demonstrating
  the detection gap the line model closes.

Failing plans from the mutant runs are dumped to
``crash_mutant_plans.json`` (CI uploads it as an artifact).
"""

import json
from pathlib import Path

import pytest

from repro.core.easyio import CRASH_MUTANTS, install_crash_mutant
from repro.crash.crashmonkey import (CRASH_WORKLOADS, _line_sweep,
                                     _record_workload, run_crash_test)
from repro.faults import ChannelHaltFault, FaultPlan

ARTIFACT = Path("crash_mutant_plans.json")

#: Reduced iteration counts keep the exhaustive (per_signature=None)
#: sweeps under a second; detection does not depend on workload length
#: (every epoch of the mutant is broken the same way).
ITER = 20


def _line_report(kind, workload="generic_056", iterations=ITER,
                 mutant=None, fault_plan=None, per_signature=None):
    desc, driver, _ = CRASH_WORKLOADS[workload]
    image, oracle = _record_workload(kind, driver, iterations, fault_plan,
                                     lines=True, mutant=mutant)
    return _line_sweep(kind, workload, image, oracle,
                       kind in ("easyio", "naive"),
                       per_signature=per_signature, budget=None, seed=0)


def _dump_artifact(name, report):
    data = {}
    if ARTIFACT.exists():
        data = json.loads(ARTIFACT.read_text())
    data[name] = {
        "workload": report.workload,
        "kind": report.kind,
        "granularity": report.granularity,
        "total_crash_points": report.total_crash_points,
        "passed": report.passed,
        "plan_classes": report.plan_classes,
        "failures": [f._asdict() for f in report.failures],
    }
    ARTIFACT.write_text(json.dumps(data, indent=2, sort_keys=True))


def _halt_all_channels():
    # single_node has 8 DMA channels; halting each one's first
    # descriptor forces every supervised write through the full
    # retry -> failover -> degrade path.
    return FaultPlan(schedule=[ChannelHaltFault(ch, 1) for ch in range(8)])


class TestCleanSweeps:
    @pytest.mark.parametrize("kind", ["easyio", "nova", "naive"])
    def test_clean_line_sweep_passes(self, kind):
        report = _line_report(kind)
        assert report.granularity == "line"
        assert report.all_passed, report.failures[:5]
        assert report.raw_states > report.total_crash_points ** 2

    def test_clean_line_sweep_passes_under_halts(self):
        """Channel halts exercise retry/failover/degrade; the correct
        implementation must still pass every plan (no false
        positives from cancellation, re-announcement, or amends)."""
        report = _line_report("easyio", fault_plan=_halt_all_channels)
        assert report.all_passed, report.failures[:5]

    def test_run_crash_test_line_entrypoint(self):
        report = run_crash_test("easyio", "generic_056",
                                granularity="line", per_signature=2)
        assert report.granularity == "line"
        assert report.all_passed, report.failures[:5]
        assert sum(report.plan_classes.values()) == report.total_crash_points

    def test_unknown_granularity_rejected(self):
        with pytest.raises(ValueError, match="granularity"):
            run_crash_test("easyio", "generic_056", granularity="byte")


class TestMutantDetection:
    def test_skip_append_fence_caught_by_line_sweep(self):
        report = _line_report("easyio", mutant="skip_append_fence")
        _dump_artifact("skip_append_fence/line", report)
        assert not report.all_passed
        checks = {f.check for f in report.failures}
        assert "torn-entry" in checks
        # Every failure names its crash-plan class for replay.
        assert all(f.plan for f in report.failures)
        assert any(f.plan.startswith("torn") for f in report.failures)

    def test_skip_append_fence_caught_even_when_sampled(self):
        report = _line_report("easyio", mutant="skip_append_fence",
                              per_signature=3)
        assert not report.all_passed
        assert {f.check for f in report.failures} == {"torn-entry"}

    def test_skip_append_fence_missed_by_page_sweep(self):
        """The detection gap: the page sweep replays whole-mutation
        prefixes, where the missing fence is invisible."""
        report = run_crash_test("easyio", "generic_056", crash_points=200,
                                mutant="skip_append_fence")
        assert report.granularity == "page"
        assert report.all_passed, report.failures[:5]

    def test_reorder_amend_persist_caught_by_line_sweep(self):
        report = _line_report("easyio", mutant="reorder_amend_persist",
                              fault_plan=_halt_all_channels)
        _dump_artifact("reorder_amend_persist/line", report)
        assert not report.all_passed
        checks = {f.check for f in report.failures}
        assert "sn-pages" in checks

    def test_mutants_require_their_preconditions(self):
        from repro.hw.platform import Platform, PlatformConfig
        from repro.workloads.factory import make_fs
        platform = Platform(PlatformConfig.single_node())
        fs = make_fs("easyio", platform, record=True)
        with pytest.raises(RuntimeError, match="line-recording"):
            install_crash_mutant(fs, "skip_append_fence")
        with pytest.raises(ValueError, match="unknown crash mutant"):
            install_crash_mutant(fs, "nonsense")
        assert set(CRASH_MUTANTS) == {"skip_append_fence",
                                      "reorder_amend_persist"}


class TestReportShape:
    def test_failures_are_structured(self):
        report = _line_report("easyio", mutant="skip_append_fence",
                              per_signature=2)
        f = report.failures[0]
        point, check, detail, plan = f
        assert isinstance(point, int) and check == "torn-entry"
        assert "committed log prefix" in detail
        assert plan.startswith("torn")

    def test_page_report_unchanged_shape(self):
        report = run_crash_test("easyio", "generic_056", crash_points=40)
        assert report.granularity == "page"
        assert report.raw_states == 0
        assert report.plan_classes == {}
        assert report.all_passed
