"""Unit tests for simulated-time synchronisation primitives."""

import pytest

from repro.sim import (
    Barrier,
    Channel,
    Gate,
    Lock,
    RWLock,
    Semaphore,
    SimulationError,
    Store,
    WaitTimeout,
)
from tests.conftest import run_proc


class TestSemaphore:
    def test_capacity_must_be_positive(self, engine):
        with pytest.raises(SimulationError):
            Semaphore(engine, 0)

    def test_acquire_release_counts(self, engine):
        sem = Semaphore(engine, 2)
        def body():
            yield sem.acquire()
            yield sem.acquire()
            assert sem.available == 0
            sem.release()
            assert sem.available == 1
            sem.release()
        run_proc(engine, body())
        assert sem.available == 2

    def test_waiters_wake_fifo(self, engine):
        sem = Semaphore(engine, 1)
        order = []
        def worker(name, hold):
            yield sem.acquire()
            order.append(("got", name, engine.now))
            yield engine.timeout(hold)
            sem.release()
        for i in range(3):
            engine.process(worker(i, 10))
        engine.run()
        assert [o[1] for o in order] == [0, 1, 2]
        assert [o[2] for o in order] == [0, 10, 20]

    def test_try_acquire(self, engine):
        sem = Semaphore(engine, 1)
        assert sem.try_acquire()
        assert not sem.try_acquire()
        sem.release()
        assert sem.try_acquire()

    def test_over_release_rejected(self, engine):
        sem = Semaphore(engine, 1)
        with pytest.raises(SimulationError):
            sem.release()


class TestLock:
    def test_mutual_exclusion(self, engine):
        lock = Lock(engine)
        inside = []
        def worker(name):
            yield lock.acquire(owner=name)
            inside.append(name)
            assert len(inside) == 1
            yield engine.timeout(5)
            inside.remove(name)
            lock.release()
        for i in range(4):
            engine.process(worker(i))
        engine.run()
        assert not lock.locked

    def test_owner_tracking(self, engine):
        lock = Lock(engine)
        def body():
            yield lock.acquire(owner="me")
            assert lock.owner == "me"
            lock.release()
            assert lock.owner is None
        run_proc(engine, body())


class TestRWLock:
    def test_readers_share(self, engine):
        rw = RWLock(engine)
        concurrent = []
        def reader(i):
            yield rw.acquire_read()
            concurrent.append(i)
            yield engine.timeout(10)
            rw.release_read()
        for i in range(3):
            engine.process(reader(i))
        engine.run(until=5)
        assert len(concurrent) == 3
        engine.run()

    def test_writer_excludes_readers(self, engine):
        rw = RWLock(engine)
        log = []
        def writer():
            yield rw.acquire_write()
            log.append(("w-in", engine.now))
            yield engine.timeout(10)
            log.append(("w-out", engine.now))
            rw.release_write()
        def reader():
            yield engine.timeout(1)
            yield rw.acquire_read()
            log.append(("r-in", engine.now))
            rw.release_read()
        engine.process(writer())
        engine.process(reader())
        engine.run()
        assert log == [("w-in", 0), ("w-out", 10), ("r-in", 10)]

    def test_waiting_writer_blocks_later_readers(self, engine):
        rw = RWLock(engine)
        log = []
        def first_reader():
            yield rw.acquire_read()
            yield engine.timeout(10)
            rw.release_read()
        def writer():
            yield engine.timeout(1)
            yield rw.acquire_write()
            log.append(("w", engine.now))
            rw.release_write()
        def late_reader():
            yield engine.timeout(2)
            yield rw.acquire_read()
            log.append(("r", engine.now))
            rw.release_read()
        engine.process(first_reader())
        engine.process(writer())
        engine.process(late_reader())
        engine.run()
        # FIFO fairness: the writer (arrived first) goes before the
        # late reader even though the lock was in read mode.
        assert log == [("w", 10), ("r", 10)]

    def test_unbalanced_release_rejected(self, engine):
        rw = RWLock(engine)
        with pytest.raises(SimulationError):
            rw.release_read()
        with pytest.raises(SimulationError):
            rw.release_write()


class TestStore:
    def test_put_then_get(self, engine):
        store = Store(engine)
        store.put("a")
        def body():
            item = yield store.get()
            return item
        assert run_proc(engine, body()) == "a"

    def test_get_blocks_until_put(self, engine):
        store = Store(engine)
        def getter():
            item = yield store.get()
            return (item, engine.now)
        def putter():
            yield engine.timeout(30)
            store.put("late")
        proc = engine.process(getter())
        engine.process(putter())
        engine.run()
        assert proc.value == ("late", 30)

    def test_fifo_order(self, engine):
        store = Store(engine)
        for i in range(5):
            store.put(i)
        got = []
        def body():
            for _ in range(5):
                got.append((yield store.get()))
        run_proc(engine, body())
        assert got == [0, 1, 2, 3, 4]

    def test_try_get(self, engine):
        store = Store(engine)
        assert store.try_get() is None
        store.put(1)
        assert store.try_get() == 1


class TestGate:
    def test_open_releases_all_waiters(self, engine):
        gate = Gate(engine)
        released = []
        def waiter(i):
            yield gate.wait()
            released.append(i)
        for i in range(3):
            engine.process(waiter(i))
        def opener():
            yield engine.timeout(10)
            gate.open()
        engine.process(opener())
        engine.run()
        assert sorted(released) == [0, 1, 2]

    def test_wait_on_open_gate_immediate(self, engine):
        gate = Gate(engine, opened=True)
        def body():
            yield gate.wait()
            return engine.now
        assert run_proc(engine, body()) == 0

    def test_pulse_does_not_leave_gate_open(self, engine):
        gate = Gate(engine)
        hits = []
        def w1():
            yield gate.wait()
            hits.append("w1")
        engine.process(w1())
        engine.run()
        gate.pulse()
        engine.run()
        assert hits == ["w1"]
        assert not gate.is_open


class TestChannel:
    def test_put_blocks_when_full(self, engine):
        chan = Channel(engine, capacity=1)
        times = []
        def producer():
            for i in range(3):
                yield chan.put(i)
                times.append(engine.now)
        def consumer():
            for _ in range(3):
                yield engine.timeout(10)
                yield chan.get()
        engine.process(producer())
        engine.process(consumer())
        engine.run()
        # First two puts immediate (one into queue, one handed over on
        # the first get); the third waits for ring space.
        assert times[0] == 0
        assert times[-1] >= 10

    def test_capacity_validation(self, engine):
        with pytest.raises(SimulationError):
            Channel(engine, 0)

    def test_full_property(self, engine):
        chan = Channel(engine, 2)
        def body():
            yield chan.put(1)
            yield chan.put(2)
        run_proc(engine, body())
        assert chan.full


class TestBarrier:
    def test_trips_when_all_arrive(self, engine):
        barrier = Barrier(engine, 3)
        times = []
        def party(delay):
            yield engine.timeout(delay)
            yield barrier.wait()
            times.append(engine.now)
        for d in (5, 10, 20):
            engine.process(party(d))
        engine.run()
        assert times == [20, 20, 20]

    def test_reusable(self, engine):
        barrier = Barrier(engine, 2)
        laps = []
        def party(i):
            for lap in range(3):
                yield barrier.wait()
                laps.append((i, lap))
        engine.process(party(0))
        engine.process(party(1))
        engine.run()
        assert len(laps) == 6


class TestTimedWaits:
    """timeout= on every blocking primitive: WaitTimeout fires, and --
    the regression these tests exist for -- the expired waiter must not
    linger in the primitive's queue and absorb a later grant."""

    def test_semaphore_timeout_and_no_leak(self, engine):
        sem = Semaphore(engine, 1)
        got = []
        def holder():
            yield sem.acquire()
            yield engine.timeout(100)
            sem.release()
        def impatient():
            with pytest.raises(WaitTimeout):
                yield sem.acquire(timeout=10)
            got.append(("timeout", engine.now))
        def patient():
            yield sem.acquire()
            got.append(("acquired", engine.now))
            sem.release()
        engine.process(holder())
        engine.process(impatient())
        engine.process(patient())
        engine.run()
        # The release at t=100 must reach `patient`, not the expired
        # waiter; afterwards the full capacity is back.
        assert got == [("timeout", 10), ("acquired", 100)]
        assert sem.available == 1
        assert sem.queued == 0

    def test_semaphore_timeout_unneeded_when_granted_first(self, engine):
        sem = Semaphore(engine, 1)
        def body():
            yield sem.acquire(timeout=50)
            yield engine.timeout(200)  # well past the timeout
            sem.release()
        run_proc(engine, body())
        assert sem.available == 1

    def test_lock_timeout_and_no_leak(self, engine):
        lock = Lock(engine)
        order = []
        def holder():
            yield lock.acquire(owner="holder")
            yield engine.timeout(100)
            lock.release()
        def impatient():
            with pytest.raises(WaitTimeout):
                yield lock.acquire(owner="impatient", timeout=10)
            order.append("timeout")
        def patient():
            yield lock.acquire(owner="patient")
            order.append("locked")
            assert lock.owner == "patient"
            lock.release()
        engine.process(holder())
        engine.process(impatient())
        engine.process(patient())
        engine.run()
        assert order == ["timeout", "locked"]
        assert not lock.locked

    def test_rwlock_write_timeout_does_not_block_readers(self, engine):
        rw = RWLock(engine)
        got = []
        def reader0():
            yield rw.acquire_read()
            yield engine.timeout(100)
            rw.release_read()
        def writer():
            with pytest.raises(WaitTimeout):
                yield rw.acquire_write(timeout=10)
            got.append(("wtimeout", engine.now))
        def reader1():
            # Arrives behind the queued writer; once the writer expires
            # it must share the read lock immediately (no phantom writer
            # parked at the queue head).
            yield engine.timeout(20)
            yield rw.acquire_read(timeout=5)
            got.append(("read", engine.now))
            rw.release_read()
        engine.process(reader0())
        engine.process(writer())
        engine.process(reader1())
        engine.run()
        assert got == [("wtimeout", 10), ("read", 20)]
        assert rw.reader_count == 0 and not rw.held_exclusive
        assert rw.queued == 0

    def test_rwlock_read_timeout_behind_writer(self, engine):
        rw = RWLock(engine)
        def writer():
            yield rw.acquire_write()
            yield engine.timeout(100)
            rw.release_write()
        def reader():
            with pytest.raises(WaitTimeout):
                yield rw.acquire_read(timeout=10)
        engine.process(writer())
        engine.process(reader())
        engine.run()
        assert rw.queued == 0 and not rw.held_exclusive

    def test_store_get_timeout_and_no_leak(self, engine):
        store = Store(engine)
        got = []
        def impatient():
            with pytest.raises(WaitTimeout):
                yield store.get(timeout=10)
        def patient():
            item = yield store.get()
            got.append(item)
        def producer():
            yield engine.timeout(50)
            store.put("x")
        engine.process(impatient())
        engine.process(patient())
        engine.process(producer())
        engine.run()
        # The item must reach the live getter, not the expired one.
        assert got == ["x"]
        assert store.waiting_getters == 0
        assert len(store) == 0

    def test_gate_wait_timeout_and_no_leak(self, engine):
        gate = Gate(engine)
        woke = []
        def impatient():
            with pytest.raises(WaitTimeout):
                yield gate.wait(timeout=10)
        def patient():
            yield gate.wait()
            woke.append(engine.now)
        def opener():
            yield engine.timeout(50)
            gate.pulse()
        engine.process(impatient())
        engine.process(patient())
        engine.process(opener())
        engine.run()
        assert woke == [50]
        assert gate.waiting == 0

    def test_channel_get_timeout_and_no_leak(self, engine):
        chan = Channel(engine, capacity=2)
        got = []
        def impatient():
            with pytest.raises(WaitTimeout):
                yield chan.get(timeout=10)
        def patient():
            item = yield chan.get()
            got.append(item)
        def producer():
            yield engine.timeout(50)
            yield chan.put("y")
        engine.process(impatient())
        engine.process(patient())
        engine.process(producer())
        engine.run()
        assert got == ["y"]
        assert len(chan) == 0

    def test_channel_put_timeout_item_never_accepted(self, engine):
        chan = Channel(engine, capacity=1)
        def filler():
            yield chan.put("keep")
        def impatient():
            with pytest.raises(WaitTimeout):
                yield chan.put("lost", timeout=10)
        def consumer():
            yield engine.timeout(50)
            first = yield chan.get()
            assert first == "keep"
            # The timed-out putter's item must never surface.
            with pytest.raises(WaitTimeout):
                yield chan.get(timeout=10)
        engine.process(filler())
        engine.process(impatient())
        engine.process(consumer())
        engine.run()
        assert len(chan) == 0 and chan.drain() == []

    def test_barrier_timeout_withdraws_arrival(self, engine):
        barrier = Barrier(engine, 2)
        tripped = []
        def impatient():
            with pytest.raises(WaitTimeout):
                yield barrier.wait(timeout=10)
        def pair(delay):
            yield engine.timeout(delay)
            yield barrier.wait()
            tripped.append(engine.now)
        engine.process(impatient())
        # Two later parties must trip the barrier alone: the expired
        # arrival withdrew and does not count toward the quorum.
        engine.process(pair(20))
        engine.process(pair(30))
        engine.run()
        assert tripped == [30, 30]
