"""Unit tests for simulated-time synchronisation primitives."""

import pytest

from repro.sim import (
    Barrier,
    Channel,
    Gate,
    Lock,
    RWLock,
    Semaphore,
    SimulationError,
    Store,
)
from tests.conftest import run_proc


class TestSemaphore:
    def test_capacity_must_be_positive(self, engine):
        with pytest.raises(SimulationError):
            Semaphore(engine, 0)

    def test_acquire_release_counts(self, engine):
        sem = Semaphore(engine, 2)
        def body():
            yield sem.acquire()
            yield sem.acquire()
            assert sem.available == 0
            sem.release()
            assert sem.available == 1
            sem.release()
        run_proc(engine, body())
        assert sem.available == 2

    def test_waiters_wake_fifo(self, engine):
        sem = Semaphore(engine, 1)
        order = []
        def worker(name, hold):
            yield sem.acquire()
            order.append(("got", name, engine.now))
            yield engine.timeout(hold)
            sem.release()
        for i in range(3):
            engine.process(worker(i, 10))
        engine.run()
        assert [o[1] for o in order] == [0, 1, 2]
        assert [o[2] for o in order] == [0, 10, 20]

    def test_try_acquire(self, engine):
        sem = Semaphore(engine, 1)
        assert sem.try_acquire()
        assert not sem.try_acquire()
        sem.release()
        assert sem.try_acquire()

    def test_over_release_rejected(self, engine):
        sem = Semaphore(engine, 1)
        with pytest.raises(SimulationError):
            sem.release()


class TestLock:
    def test_mutual_exclusion(self, engine):
        lock = Lock(engine)
        inside = []
        def worker(name):
            yield lock.acquire(owner=name)
            inside.append(name)
            assert len(inside) == 1
            yield engine.timeout(5)
            inside.remove(name)
            lock.release()
        for i in range(4):
            engine.process(worker(i))
        engine.run()
        assert not lock.locked

    def test_owner_tracking(self, engine):
        lock = Lock(engine)
        def body():
            yield lock.acquire(owner="me")
            assert lock.owner == "me"
            lock.release()
            assert lock.owner is None
        run_proc(engine, body())


class TestRWLock:
    def test_readers_share(self, engine):
        rw = RWLock(engine)
        concurrent = []
        def reader(i):
            yield rw.acquire_read()
            concurrent.append(i)
            yield engine.timeout(10)
            rw.release_read()
        for i in range(3):
            engine.process(reader(i))
        engine.run(until=5)
        assert len(concurrent) == 3
        engine.run()

    def test_writer_excludes_readers(self, engine):
        rw = RWLock(engine)
        log = []
        def writer():
            yield rw.acquire_write()
            log.append(("w-in", engine.now))
            yield engine.timeout(10)
            log.append(("w-out", engine.now))
            rw.release_write()
        def reader():
            yield engine.timeout(1)
            yield rw.acquire_read()
            log.append(("r-in", engine.now))
            rw.release_read()
        engine.process(writer())
        engine.process(reader())
        engine.run()
        assert log == [("w-in", 0), ("w-out", 10), ("r-in", 10)]

    def test_waiting_writer_blocks_later_readers(self, engine):
        rw = RWLock(engine)
        log = []
        def first_reader():
            yield rw.acquire_read()
            yield engine.timeout(10)
            rw.release_read()
        def writer():
            yield engine.timeout(1)
            yield rw.acquire_write()
            log.append(("w", engine.now))
            rw.release_write()
        def late_reader():
            yield engine.timeout(2)
            yield rw.acquire_read()
            log.append(("r", engine.now))
            rw.release_read()
        engine.process(first_reader())
        engine.process(writer())
        engine.process(late_reader())
        engine.run()
        # FIFO fairness: the writer (arrived first) goes before the
        # late reader even though the lock was in read mode.
        assert log == [("w", 10), ("r", 10)]

    def test_unbalanced_release_rejected(self, engine):
        rw = RWLock(engine)
        with pytest.raises(SimulationError):
            rw.release_read()
        with pytest.raises(SimulationError):
            rw.release_write()


class TestStore:
    def test_put_then_get(self, engine):
        store = Store(engine)
        store.put("a")
        def body():
            item = yield store.get()
            return item
        assert run_proc(engine, body()) == "a"

    def test_get_blocks_until_put(self, engine):
        store = Store(engine)
        def getter():
            item = yield store.get()
            return (item, engine.now)
        def putter():
            yield engine.timeout(30)
            store.put("late")
        proc = engine.process(getter())
        engine.process(putter())
        engine.run()
        assert proc.value == ("late", 30)

    def test_fifo_order(self, engine):
        store = Store(engine)
        for i in range(5):
            store.put(i)
        got = []
        def body():
            for _ in range(5):
                got.append((yield store.get()))
        run_proc(engine, body())
        assert got == [0, 1, 2, 3, 4]

    def test_try_get(self, engine):
        store = Store(engine)
        assert store.try_get() is None
        store.put(1)
        assert store.try_get() == 1


class TestGate:
    def test_open_releases_all_waiters(self, engine):
        gate = Gate(engine)
        released = []
        def waiter(i):
            yield gate.wait()
            released.append(i)
        for i in range(3):
            engine.process(waiter(i))
        def opener():
            yield engine.timeout(10)
            gate.open()
        engine.process(opener())
        engine.run()
        assert sorted(released) == [0, 1, 2]

    def test_wait_on_open_gate_immediate(self, engine):
        gate = Gate(engine, opened=True)
        def body():
            yield gate.wait()
            return engine.now
        assert run_proc(engine, body()) == 0

    def test_pulse_does_not_leave_gate_open(self, engine):
        gate = Gate(engine)
        hits = []
        def w1():
            yield gate.wait()
            hits.append("w1")
        engine.process(w1())
        engine.run()
        gate.pulse()
        engine.run()
        assert hits == ["w1"]
        assert not gate.is_open


class TestChannel:
    def test_put_blocks_when_full(self, engine):
        chan = Channel(engine, capacity=1)
        times = []
        def producer():
            for i in range(3):
                yield chan.put(i)
                times.append(engine.now)
        def consumer():
            for _ in range(3):
                yield engine.timeout(10)
                yield chan.get()
        engine.process(producer())
        engine.process(consumer())
        engine.run()
        # First two puts immediate (one into queue, one handed over on
        # the first get); the third waits for ring space.
        assert times[0] == 0
        assert times[-1] >= 10

    def test_capacity_validation(self, engine):
        with pytest.raises(SimulationError):
            Channel(engine, 0)

    def test_full_property(self, engine):
        chan = Channel(engine, 2)
        def body():
            yield chan.put(1)
            yield chan.put(2)
        run_proc(engine, body())
        assert chan.full


class TestBarrier:
    def test_trips_when_all_arrive(self, engine):
        barrier = Barrier(engine, 3)
        times = []
        def party(delay):
            yield engine.timeout(delay)
            yield barrier.wait()
            times.append(engine.now)
        for d in (5, 10, 20):
            engine.process(party(d))
        engine.run()
        assert times == [20, 20, 20]

    def test_reusable(self, engine):
        barrier = Barrier(engine, 2)
        laps = []
        def party(i):
            for lap in range(3):
                yield barrier.wait()
                laps.append((i, lap))
        engine.process(party(0))
        engine.process(party(1))
        engine.run()
        assert len(laps) == 6
