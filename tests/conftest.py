"""Shared fixtures and helpers for the test suite."""

import pytest

from repro.hw.platform import Platform, PlatformConfig
from repro.sim import Engine


@pytest.fixture
def engine():
    return Engine()


@pytest.fixture
def platform():
    """The paper testbed (2 sockets, 6 DIMMs, 16 channels)."""
    return Platform(PlatformConfig.paper_testbed())


@pytest.fixture
def node():
    """Single NUMA node (3 DIMMs, 8 channels) -- the §2.2 setup."""
    return Platform(PlatformConfig.single_node())


def run_proc(engine, gen, until=None):
    """Run a coroutine to completion; raise its error if it failed."""
    proc = engine.process(gen)
    engine.run(until=until)
    if proc.is_alive:
        raise RuntimeError("process did not finish")
    if not proc.ok:
        raise proc.value
    return proc.value
