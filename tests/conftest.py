"""Shared fixtures and helpers for the test suite."""

import pytest

from repro.hw.platform import Platform, PlatformConfig
from repro.obs import TraceChecker, default_tracing
from repro.sim import Engine


@pytest.fixture
def engine():
    return Engine()


@pytest.fixture
def trace_oracles():
    """Opt-in trace checking: every engine the test creates is traced,
    and at teardown every trace is replayed through the full oracle set
    (ack-implies-durable, SN ordering, span causality, ...).

    List this fixture *before* any fixture that builds a Platform (or
    build platforms inside the test body) so their engines are created
    under the tracing scope.  Yields the list of live tracers, should
    the test want to inspect the stream itself.
    """
    tracers = []
    with default_tracing(collect=tracers):
        yield tracers
    checker = TraceChecker()
    problems = []
    for tr in tracers:
        problems.extend(checker.check(tr.events))
    assert not problems, (
        f"{len(problems)} trace-invariant violation(s):\n"
        + "\n".join(f"  {v}" for v in problems))


@pytest.fixture
def platform():
    """The paper testbed (2 sockets, 6 DIMMs, 16 channels)."""
    return Platform(PlatformConfig.paper_testbed())


@pytest.fixture
def node():
    """Single NUMA node (3 DIMMs, 8 channels) -- the §2.2 setup."""
    return Platform(PlatformConfig.single_node())


def run_proc(engine, gen, until=None):
    """Run a coroutine to completion; raise its error if it failed."""
    proc = engine.process(gen)
    engine.run(until=until)
    if proc.is_alive:
        raise RuntimeError("process did not finish")
    if not proc.ok:
        raise proc.value
    return proc.value
