"""The cache-line persistence journal (repro.crash.linestream).

Pins the model-level invariants of the line stream:

* exact 64B tiling of data stores (a multi-page orderless write
  decomposes into per-page line stores whose slices partition the
  payload);
* fence epochs correspond to the trace events of the same run (every
  commit fence has its ``write_commit``, every pages fence its
  ``pages_persist``);
* the everything-landed replay equals the mutation-journal replay
  (the equivalence tying the line model to the page model);
* the recording guards (record=True, before-first-mutation).
"""

import pytest

from repro.crash.crashmonkey import CRASH_WORKLOADS, _record_workload
from repro.crash.linestream import (
    CACHE_LINE,
    FenceRec,
    LineStream,
    LineStore,
    replay_full,
)
from repro.faults import ChannelHaltFault, FaultPlan
from repro.fs.pmimage import PMImage


def _line_stores(stream, mech):
    return [r for r in stream.records
            if isinstance(r, LineStore) and r.mech == mech]


def _fences(stream, label):
    return [r for r in stream.records
            if isinstance(r, FenceRec) and r.label == label]


def _record(kind, workload="generic_056", iterations=4, **kw):
    desc, driver, _ = CRASH_WORKLOADS[workload]
    return _record_workload(kind, driver, iterations, lines=True, **kw)


class TestTiling:
    def test_multi_page_write_tiles_exactly(self):
        """A 12288B (3-page) write decomposes into three page-data
        stores of exactly 64 cache lines each, slices partitioning
        the payload."""
        image, _ = _record("easyio", "create_delete", iterations=2)
        stream = image.linestream
        stores = _line_stores(stream, "page-data")
        assert stores, "workload wrote no page data"
        # Page stores are per 4096B page: some op window (a 12288B
        # write) must contain at least three of them, 64 lines each.
        counts = [sum(1 for r in stream.records[s:e]
                      if isinstance(r, LineStore) and r.mech == "page-data")
                  for s, e in stream.op_bounds]
        assert max(counts) >= 3
        for s in stores:
            assert s.nlines == (len(s.payload) + CACHE_LINE - 1) // CACHE_LINE
            slices = s.line_slices()
            assert [i for i, _b in slices] == list(range(s.nlines))
            assert b"".join(b for _i, b in slices) == s.payload
            for i, b in slices[:-1]:
                assert len(b) == CACHE_LINE

    def test_page_stores_are_64_lines_per_4k_page(self):
        image, _ = _record("nova", "generic_056", iterations=3)
        per_page = [s for s in _line_stores(image.linestream, "page-data")
                    if len(s.payload) == 4096]
        assert per_page
        assert all(s.nlines == 64 for s in per_page)

    def test_op_bounds_cover_stream(self):
        image, oracle = _record("easyio", "generic_056", iterations=4)
        stream = image.linestream
        bounds = stream.op_bounds
        assert len(bounds) == len(oracle)
        assert all(s <= e for s, e in bounds)
        # Ends are non-decreasing and within the stream.
        ends = [e for _s, e in bounds]
        assert ends == sorted(ends)
        assert ends[-1] <= stream.position()


class TestFenceTraceCorrespondence:
    def test_easyio_commit_fences_match_write_commit_events(self):
        image, _ = _record("easyio", "generic_056", iterations=4,
                           trace_oracles=True)
        events = image.linestream.tracer.events
        commits = [ev for ev in events if ev.name == "write_commit"]
        commit_fences = _fences(image.linestream, "commit")
        # Every committed write flushed its tail with a commit fence
        # (creates/links commit too, so fences >= write commits).
        assert commits
        assert len(commit_fences) >= len(commits)
        line_fences = [ev for ev in events if ev.name == "line_fence"]
        assert len(line_fences) == sum(
            1 for r in image.linestream.records if isinstance(r, FenceRec))

    def test_nova_pages_fences_match_pages_persist_events(self):
        image, _ = _record("nova", "generic_056", iterations=4,
                           trace_oracles=True)
        events = image.linestream.tracer.events
        persists = [ev for ev in events if ev.name == "pages_persist"
                    and ev.args.get("pids")]
        pages_fences = _fences(image.linestream, "pages")
        # NOVA persists every write synchronously over CPU stores: one
        # pages fence per content-carrying persist batch.
        assert persists
        assert len(pages_fences) == len(persists)


class TestReplayEquivalence:
    @pytest.mark.parametrize("kind", ["nova", "easyio", "naive"])
    def test_replay_full_equals_mutation_replay(self, kind):
        image, _ = _record(kind, "generic_056", iterations=5)
        full = replay_full(image.linestream)
        ref = image.replay(len(image.mutations))
        assert full.pages == ref.pages
        assert full.inodes == ref.inodes
        assert full.logs == ref.logs
        assert full.log_tails == ref.log_tails
        assert full.journal == ref.journal
        assert full.completion_buffers == ref.completion_buffers
        assert full.channel_error_sns == ref.channel_error_sns
        assert (full.next_ino, full.next_page) == (ref.next_ino,
                                                   ref.next_page)

    def test_replay_full_equals_mutation_replay_under_halts(self):
        """Failover (cancelled announcements, re-announced redos,
        degraded CPU trains, SN amends) keeps the two models equal."""
        plan = lambda: FaultPlan(schedule=[ChannelHaltFault(0, 2)])
        image, _ = _record("easyio", "generic_056", iterations=5,
                           fault_plan=plan)
        full = replay_full(image.linestream)
        ref = image.replay(len(image.mutations))
        assert full.pages == ref.pages
        assert full.logs == ref.logs
        assert full.log_tails == ref.log_tails
        assert full.completion_buffers == ref.completion_buffers
        assert full.channel_error_sns == ref.channel_error_sns


class TestGuards:
    def test_line_recording_requires_recording_image(self):
        img = PMImage(record=False)
        with pytest.raises(RuntimeError, match="record=True"):
            img.enable_line_recording()

    def test_line_recording_must_precede_mutations(self):
        img = PMImage(record=True)
        img.put_inode(1, object())
        with pytest.raises(RuntimeError, match="precede"):
            img.enable_line_recording()

    def test_media_fault_plans_refused(self):
        from repro.crash.crashmonkey import run_crash_test
        from repro.faults import MediaFault
        plan = lambda: FaultPlan(schedule=[MediaFault(1)])
        with pytest.raises(ValueError, match="media"):
            run_crash_test("easyio", "generic_056", granularity="line",
                           fault_plan=plan)

    def test_skipped_fence_knob_counts(self):
        stream = LineStream()
        stream.skipped_fences.add("commit")
        stream.log_commit(1, 1)
        assert stream.fences_skipped == 1
        assert not _fences(stream, "commit")
