"""Tests for post-crash recovery (tail scan, SN validation, journal,
orphans)."""


from repro.fs import NovaFS, PMImage
from repro.fs.recovery import (
    completion_buffer_validator,
    recover,
    snapshot_namespace,
)
from repro.fs.structures import (PAGE_SIZE, DentryEntry, FileKind, Inode,
                                 WriteEntry)
from repro.hw.platform import Platform, PlatformConfig
from tests.conftest import run_proc


def fresh_fs(image=None):
    return NovaFS(Platform(PlatformConfig.single_node()),
                  image if image is not None else PMImage())


def _root_with_file(img, ino=1, name="f"):
    """Root dir + one linked file inode (so the orphan scan keeps it)."""
    img.put_inode(0, Inode(0, FileKind.DIR, 2, 0))
    img.put_inode(ino, Inode(ino, FileKind.FILE, 1, 0))
    img.append_log(0, DentryEntry(name, ino, FileKind.FILE, True, 0))
    img.commit_log_tail(0, 1)


def build_and_crash(scenario, upto=None):
    """Run scenario on a recording FS; return the crashed image."""
    fs = fresh_fs(PMImage(record=True)).mount()
    run_proc(fs.engine, scenario(fs))
    k = upto if upto is not None else fs.image.crash_points()
    return fs, fs.image.replay(k)


class TestTailScan:
    def test_uncommitted_log_entry_discarded(self):
        img = PMImage()
        _root_with_file(img)
        img.append_log(1, WriteEntry(0, (0,), PAGE_SIZE, 5))
        # No tail commit: the entry must not survive.
        fs = recover(fresh_fs(img))
        assert fs._mem[1].size == 0

    def test_committed_entry_survives(self):
        img = PMImage()
        _root_with_file(img)
        img.write_page(0, b"d" * PAGE_SIZE)
        img.append_log(1, WriteEntry(0, (0,), PAGE_SIZE, 5))
        img.commit_log_tail(1, 1)
        fs = recover(fresh_fs(img))
        assert fs._mem[1].size == PAGE_SIZE
        assert fs._mem[1].index[0].page_id == 0


class TestSnValidation:
    def _image_with_sn_entry(self, completion_sn):
        img = PMImage()
        _root_with_file(img)
        img.append_log(1, WriteEntry(0, (0,), PAGE_SIZE, 5, sns=((3, 7),)))
        img.commit_log_tail(1, 1)
        img.update_completion_buffer(3, completion_sn)
        return img

    def test_entry_with_unfinished_dma_discarded(self):
        img = self._image_with_sn_entry(completion_sn=6)
        fs = recover(fresh_fs(img), completion_buffer_validator(img))
        assert fs._mem[1].size == 0
        assert fs.recovered_discarded_entries == 1

    def test_entry_with_finished_dma_kept(self):
        img = self._image_with_sn_entry(completion_sn=7)
        fs = recover(fresh_fs(img), completion_buffer_validator(img))
        assert fs._mem[1].size == PAGE_SIZE

    def test_completion_sn_greater_than_entry_is_valid(self):
        img = self._image_with_sn_entry(completion_sn=100)
        fs = recover(fresh_fs(img), completion_buffer_validator(img))
        assert fs._mem[1].size == PAGE_SIZE

    def test_discard_truncates_everything_after(self):
        img = self._image_with_sn_entry(completion_sn=6)
        img.append_log(1, WriteEntry(1, (1,), 2 * PAGE_SIZE, 9, sns=()))
        img.commit_log_tail(1, 2)
        fs = recover(fresh_fs(img), completion_buffer_validator(img))
        # Defensive suffix discard: the later entry goes too.
        assert fs._mem[1].size == 0

    def test_without_validator_sn_entries_pass(self):
        img = self._image_with_sn_entry(completion_sn=6)
        fs = recover(fresh_fs(img))   # sync-filesystem recovery
        assert fs._mem[1].size == PAGE_SIZE


class TestNamespaceRecovery:
    def test_full_namespace_round_trip(self):
        def scenario(fs):
            yield from fs.mkdir(fs.context(), "/d")
            ino = yield from fs.create(fs.context(), "/d/f")
            yield from fs.write(fs.context(), ino, 0, 2 * PAGE_SIZE)
            yield from fs.create(fs.context(), "/top")
        live, img = build_and_crash(scenario)
        recovered = recover(fresh_fs(img))
        assert snapshot_namespace(recovered) == snapshot_namespace(live)

    def test_orphan_inode_dropped(self):
        img = PMImage()
        img.put_inode(0, Inode(0, FileKind.DIR, 2, 0))
        img.put_inode(9, Inode(9, FileKind.FILE, 1, 0))  # no dentry
        fs = recover(fresh_fs(img))
        assert 9 not in fs._mem

    def test_unlink_survives_crash(self):
        def scenario(fs):
            yield from fs.create(fs.context(), "/a")
            yield from fs.create(fs.context(), "/b")
            yield from fs.unlink(fs.context(), "/a")
        _live, img = build_and_crash(scenario)
        fs = recover(fresh_fs(img))
        names = snapshot_namespace(fs)
        assert "/b" in names and "/a" not in names

    def test_rename_crash_is_atomic_at_every_point(self):
        def scenario(fs):
            ino = yield from fs.create(fs.context(), "/old")
            yield from fs.write(fs.context(), ino, 0, PAGE_SIZE)
            yield from fs.rename(fs.context(), "/old", "/new")
        live, _img = build_and_crash(scenario)
        total = live.image.crash_points()
        for k in range(total + 1):
            fs = recover(fresh_fs(live.image.replay(k)))
            names = set(snapshot_namespace(fs))
            # Atomicity: exactly one of the two names (or neither,
            # before the create committed) -- never both-or-neither
            # after the rename started with the file existing.
            assert names in ({"/old"}, {"/new"}, set())

    def test_every_prefix_recovers_without_error(self):
        def scenario(fs):
            yield from fs.mkdir(fs.context(), "/d")
            a = yield from fs.create(fs.context(), "/d/a")
            yield from fs.write(fs.context(), a, 0, 3 * PAGE_SIZE)
            yield from fs.link(fs.context(), "/d/a", "/d/b")
            yield from fs.rename(fs.context(), "/d/a", "/d/c")
            yield from fs.unlink(fs.context(), "/d/b")
            yield from fs.truncate(fs.context(), a, PAGE_SIZE)
        live, _ = build_and_crash(scenario)
        for k in range(live.image.crash_points() + 1):
            fs = recover(fresh_fs(live.image.replay(k)))
            snapshot_namespace(fs)

    def test_recovered_allocator_reuses_dead_pages(self):
        def scenario(fs):
            ino = yield from fs.create(fs.context(), "/a")
            yield from fs.write(fs.context(), ino, 0, PAGE_SIZE)
            yield from fs.write(fs.context(), ino, 0, PAGE_SIZE)  # CoW
        live, img = build_and_crash(scenario)
        fs = recover(fresh_fs(img))
        assert fs.allocator.free_pages >= 1
