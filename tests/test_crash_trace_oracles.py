"""Crash sweeps with the trace oracles watching the recording run.

``run_crash_test(..., trace_oracles=True)`` traces the CrashMonkey
recording run and replays the stream through the full invariant-oracle
set before any crash point is examined: crash legality is then checked
against a *verified* execution, not just against the recovered images.
The full Table-2 matrix runs in benchmarks/test_tab02_crashmonkey.py;
here a reduced sweep keeps the tier-1 suite fast.
"""

import pytest

from repro.crash import run_crash_test
from repro.crash.crashmonkey import _record_workload
from repro.obs import ORACLES, Oracle, register_oracle

CRASH_POINTS = 40


@pytest.mark.parametrize("kind", ["easyio", "naive", "nova"])
def test_crash_sweep_with_trace_oracles(kind):
    report = run_crash_test(kind, "create_delete",
                            crash_points=CRASH_POINTS, trace_oracles=True)
    assert report.all_passed, report.failures[:3]
    assert report.total_crash_points >= CRASH_POINTS


def test_recording_run_actually_traced():
    """A broken custom oracle proves the recording run is replayed
    through the registry: its violations must surface as the
    AssertionError the harness promises."""

    @register_oracle
    class EveryCommitIsIllegal(Oracle):
        name = "every-commit-illegal"

        def feed(self, ev):
            if ev.name == "write_commit":
                self.flag(ev, "planted violation")

    try:
        with pytest.raises(AssertionError, match="every-commit-illegal"):
            run_crash_test("easyio", "create_delete", crash_points=2,
                           trace_oracles=True)
    finally:
        del ORACLES["every-commit-illegal"]


def test_tracing_does_not_change_the_mutation_log():
    """Sim-time neutrality at the persistence layer: the recorded
    mutation log and oracle snapshots are identical with and without
    tracing."""
    from repro.crash.crashmonkey import CRASH_WORKLOADS

    _desc, driver, _iters = CRASH_WORKLOADS["generic_056"]
    image_a, oracle_a = _record_workload("easyio", driver, 10)
    image_b, oracle_b = _record_workload("easyio", driver, 10,
                                         trace_oracles=True)
    assert image_a.crash_points() == image_b.crash_points()
    assert [(s, e, snap) for s, e, snap in oracle_a] == \
        [(s, e, snap) for s, e, snap in oracle_b]
