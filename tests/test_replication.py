"""End-to-end replicated-cluster scenarios via ``run_replication``.

Each test runs one seeded :class:`ReplicationConfig` and asserts the
robustness contract: acks only after quorum (the traced run replays
clean through the cluster oracles), failover completes inside the
cluster's lease budget, and the whole run is a deterministic function
of its config -- a failing seed replays exactly.
"""

import pytest

from repro.net import Cluster, NodeCrashFault, PartitionFault
from repro.sim import Engine
from repro.workloads import ReplicationConfig, run_replication
from repro.workloads.replication import CLUSTER_ORACLES


def _budget_ns(cfg: ReplicationConfig) -> int:
    """The lease-based failover budget for this config's cluster."""
    return Cluster(Engine(), n=cfg.n_nodes, quorum=cfg.quorum,
                   cfg=cfg.cluster_cfg).failover_budget_ns


class TestHappyPath:
    def test_all_writes_ack_with_one_epoch_and_clean_trace(self):
        res = run_replication(ReplicationConfig(
            n_clients=2, writes_per_client=10, seed=7))
        assert res.drained
        assert res.goodput == 1.0
        assert res.acked == 20 and res.failed == 0
        assert [e for _, e, _, _ in res.lease_log] == [1]
        assert res.failover_times_ns == []
        assert res.violations == []
        assert res.latency.count == res.acked
        assert res.goodput_ops_per_sec > 0

    def test_quorum_all_still_drains_on_clean_network(self):
        res = run_replication(ReplicationConfig(
            n_nodes=3, quorum=3, n_clients=1, writes_per_client=8,
            seed=3))
        assert res.drained and res.goodput == 1.0
        assert res.violations == []


class TestPrimaryCrash:
    def test_failover_within_budget_and_no_violations(self):
        cfg = ReplicationConfig(
            n_clients=2, writes_per_client=15, seed=11,
            schedule=(NodeCrashFault(0, at_ns=2_000_000,
                                     down_ns=15_000_000),))
        res = run_replication(cfg)
        assert res.drained, "clients must finish despite the crash"
        assert res.goodput == 1.0
        epochs = [e for _, e, _, _ in res.lease_log]
        assert epochs == [1, 2], "exactly one failover"
        assert res.failover_times_ns, "epoch-2 grant must be timed"
        budget = _budget_ns(cfg)
        assert all(t <= budget for t in res.failover_times_ns), \
            f"failover {res.failover_times_ns} exceeded budget {budget}"
        assert res.violations == []
        assert res.stats.failovers == 1


class TestPartitionHeal:
    def test_partitioned_primary_is_deposed_cleanly(self):
        cfg = ReplicationConfig(
            n_clients=2, writes_per_client=15, seed=13,
            schedule=(PartitionFault(start_ns=2_000_000,
                                     duration_ns=12_000_000,
                                     group=(0,)),))
        res = run_replication(cfg)
        assert res.drained
        assert res.goodput == 1.0
        assert len(res.lease_log) >= 2, "the majority side must take over"
        budget = _budget_ns(cfg)
        assert all(t <= budget for t in res.failover_times_ns)
        assert res.violations == []


class TestMessageLoss:
    def test_lossy_network_retransmits_until_acked(self):
        res = run_replication(ReplicationConfig(
            n_clients=2, writes_per_client=10, seed=17,
            p_drop=0.1, p_dup=0.05, p_delay=0.05, max_faults=200))
        assert res.drained
        assert res.goodput == 1.0
        assert res.stats.dropped_fault > 0, "the plan must actually bite"
        assert res.violations == []


class TestDeterminism:
    @pytest.mark.parametrize("seed", [5, 23])
    def test_same_config_same_outcome(self, seed):
        cfg = dict(n_clients=2, writes_per_client=8, seed=seed,
                   p_drop=0.08, max_faults=100,
                   schedule=(NodeCrashFault(0, at_ns=1_500_000,
                                            down_ns=10_000_000),))
        a = run_replication(ReplicationConfig(**cfg))
        b = run_replication(ReplicationConfig(**cfg))

        def key(r):
            return (r.offered, r.acked, r.deadline_missed, r.failed,
                    r.lease_log, r.failover_times_ns, r.elapsed_ns,
                    r.stats.as_dict())
        assert key(a) == key(b)

    def test_different_seed_diverges(self):
        def mk(s):
            return run_replication(ReplicationConfig(
                n_clients=1, writes_per_client=6, seed=s, p_drop=0.15,
                max_faults=100))
        assert (mk(1).stats.as_dict() != mk(2).stats.as_dict()
                or mk(1).elapsed_ns != mk(2).elapsed_ns)


class TestOracleWiring:
    def test_cluster_oracles_are_registered(self):
        from repro.obs import ORACLES
        for name in CLUSTER_ORACLES:
            assert name in ORACLES

    def test_check_oracles_off_skips_tracing(self):
        res = run_replication(ReplicationConfig(
            n_clients=1, writes_per_client=4, seed=9,
            check_oracles=False))
        assert res.drained and res.violations == []
