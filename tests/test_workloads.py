"""Tests for the workload drivers (FxMark, apps, hardware bench)."""

import pytest

from repro.workloads import (
    FS_KINDS,
    FxmarkConfig,
    make_fs,
    make_platform,
    max_workers,
    measure_single_op,
    run_fxmark,
)
from repro.workloads.apps import APPS, run_app, run_webserver_gc
from repro.workloads.hwbench import measure_copy_bandwidth, measure_interference


class TestFactory:
    def test_all_kinds_construct_and_mount(self):
        for kind in FS_KINDS:
            fs = make_fs(kind, make_platform())
            assert fs._mounted

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            make_fs("zfs", make_platform())

    def test_odinfs_worker_budget(self):
        plat = make_platform()
        assert max_workers("odinfs", plat) == plat.config.total_cores - 24
        assert max_workers("nova", plat) == plat.config.total_cores

    def test_platform_shapes(self):
        paper = make_platform()
        assert paper.config.total_cores == 36
        assert paper.config.total_dimms == 6
        assert len(paper.dma) == 16
        node = make_platform(single_node=True)
        assert node.config.total_dimms == 3


class TestFxmarkDriver:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            FxmarkConfig(op="erase")
        with pytest.raises(ValueError):
            FxmarkConfig(io_size=1000)
        with pytest.raises(ValueError):
            FxmarkConfig(io_size=1 << 30)

    def test_sync_run_produces_samples(self):
        r = run_fxmark(FxmarkConfig(kind="nova", op="write", io_size=16384,
                                    workers=2, duration_us=400,
                                    warmup_us=100))
        assert r.total_ops > 10
        assert r.latency.count > 10
        assert r.throughput_ops > 0
        assert 0 < r.cpu_busy_fraction <= 1.0

    def test_uthread_run_produces_samples(self):
        r = run_fxmark(FxmarkConfig(kind="easyio", op="write", io_size=16384,
                                    workers=2, duration_us=400,
                                    warmup_us=100))
        assert r.total_ops > 10

    def test_read_workload(self):
        r = run_fxmark(FxmarkConfig(kind="nova", op="read", io_size=16384,
                                    workers=2, duration_us=400,
                                    warmup_us=100))
        assert r.total_ops > 10

    def test_shared_file_contention_lowers_throughput(self):
        private = run_fxmark(FxmarkConfig(kind="nova", op="write",
                                          io_size=16384, workers=4,
                                          duration_us=500, warmup_us=100))
        shared = run_fxmark(FxmarkConfig(kind="nova", op="write",
                                         io_size=16384, workers=4,
                                         shared=True, duration_us=500,
                                         warmup_us=100))
        assert shared.throughput_ops < private.throughput_ops

    def test_naive_shared_two_uthreads_deadlocks(self):
        """The §3 deadlock: Naive holds the lock across scheduling."""
        with pytest.raises(RuntimeError, match="deadlock"):
            run_fxmark(FxmarkConfig(kind="naive", op="write", io_size=16384,
                                    workers=2, shared=True, duration_us=300,
                                    warmup_us=100, uthreads_per_core=2,
                                    steal=False))

    def test_single_op_probe(self):
        lat, cpu, bd = measure_single_op("nova", "write", 16384, repeats=4)
        assert lat > 0 and cpu == pytest.approx(lat)
        assert set(bd) >= {"metadata", "memcpy", "indexing", "syscall"}


class TestApps:
    def test_table1_sizes_are_exact(self):
        assert APPS["snappy"].read_bytes == 910 * 1024
        assert APPS["snappy"].write_bytes == 1900 * 1024
        assert APPS["jpgdecoder"].read_bytes == 343 * 1024
        assert APPS["aes"].read_bytes == 64 * 1024
        assert APPS["grep"].read_bytes == 2 * 1024 * 1024
        assert APPS["grep"].write_bytes == 0
        assert APPS["webserver"].write_every == 10
        assert APPS["webserver"].rw_ratio == "10:1"
        assert APPS["grep"].rw_ratio == "1:0"

    def test_app_run_produces_throughput(self):
        r = run_app("nova", "grep", cores=2, duration_us=4000,
                    warmup_us=1000)
        assert r.total_ops > 0
        assert r.throughput_ops > 0

    def test_easyio_beats_nova_on_io_bound_app(self):
        nova = run_app("nova", "bfs", cores=2, duration_us=6000,
                       warmup_us=1000)
        easy = run_app("easyio", "bfs", cores=2, duration_us=6000,
                       warmup_us=1000)
        assert easy.throughput_ops > nova.throughput_ops * 1.3

    def test_fileserver_cycle_runs(self):
        r = run_app("easyio", "fileserver", cores=2, duration_us=4000,
                    warmup_us=1000)
        assert r.total_ops > 0

    def test_webserver_shared_log_runs(self):
        r = run_app("nova", "webserver", cores=2, duration_us=2000,
                    warmup_us=500)
        assert r.total_ops > 0

    def test_colocation_modes(self):
        for mode in ("none", "cpu", "dma"):
            r = run_webserver_gc(mode, duration_us=3000)
            assert len(r.timeline) > 0
        with pytest.raises(ValueError):
            run_webserver_gc("magic", duration_us=1000)


class TestHwBench:
    def test_memcpy_bandwidth_positive(self):
        bp = measure_copy_bandwidth("memcpy", write=True, cores=2,
                                    io_size=16384, duration_us=200)
        assert bp.bandwidth_gbps > 0

    def test_dma_one_core_write_beats_memcpy_one_core(self):
        """Fig 2 observation ①."""
        dma = measure_copy_bandwidth("dma", write=True, cores=1,
                                     io_size=65536, duration_us=300)
        mcp = measure_copy_bandwidth("memcpy", write=True, cores=1,
                                     io_size=65536, duration_us=300)
        assert dma.bandwidth_gbps > mcp.bandwidth_gbps

    def test_dma_4k_underperforms_memcpy_peak(self):
        """Fig 2 observation ③."""
        dma = measure_copy_bandwidth("dma", write=True, cores=4,
                                     io_size=4096, batch=4, duration_us=300)
        mcp = measure_copy_bandwidth("memcpy", write=True, cores=6,
                                     io_size=4096, duration_us=300)
        assert dma.bandwidth_gbps < mcp.bandwidth_gbps

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            measure_copy_bandwidth("rdma", True, 1, 4096)

    def test_interference_sh_worse_than_ex(self):
        """Fig 4: sharing the foreground channel head-of-line blocks."""
        ex = measure_interference("dma-ex", duration_us=8000)
        sh = measure_interference("dma-sh", duration_us=8000)
        assert sh.fg_max_us(during_gc=True) > ex.fg_max_us(during_gc=True) * 3

    def test_interference_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            measure_interference("bg-what")
