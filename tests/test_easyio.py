"""Tests for EasyIO: asynchronous I/O, orderless operation, two-level
locking, selective offload, and the Naive ablation."""

import pytest

from repro.core import EasyIoFS, NaiveAsyncFS
from repro.fs import PMImage
from repro.fs.recovery import completion_buffer_validator, recover
from repro.hw.platform import Platform, PlatformConfig
from tests.conftest import run_proc


@pytest.fixture
def fs(node):
    return EasyIoFS(node, PMImage()).mount()


def do(fs, gen):
    return run_proc(fs.engine, gen)


def settle(fs, gen):
    """Run an op and wait out its pending I/O; returns the result."""
    def wrapper():
        result = yield from gen
        if result.is_async:
            yield result.pending
        cont = result.continuation
        if cont is not None:
            yield from cont(fs.context())
        return result
    return run_proc(fs.engine, wrapper())


class TestAsyncWrite:
    def test_large_write_returns_pending(self, fs):
        ino = do(fs, fs.create(fs.context(), "/a"))
        result = settle(fs, fs.write(fs.context(), ino, 0, 65536))
        assert result.sns, "offloaded write must carry SNs"
        assert result.pending is not None

    def test_small_write_is_synchronous(self, fs):
        """Selective offloading: <=4 KB stays on the CPU (§4.4)."""
        ino = do(fs, fs.create(fs.context(), "/a"))
        result = settle(fs, fs.write(fs.context(), ino, 0, 4096))
        assert result.pending is None
        assert result.sns == ()
        assert fs.memcpy_writes == 1
        assert fs.dma_writes == 0

    def test_syscall_returns_before_dma_completes(self, fs):
        """The early return that makes cycles harvestable."""
        ino = do(fs, fs.create(fs.context(), "/a"))
        timing = {}
        def body():
            ctx = fs.context()
            t0 = fs.engine.now
            result = yield from fs.write(ctx, ino, 0, 65536)
            timing["return"] = fs.engine.now - t0
            yield result.pending
            timing["complete"] = fs.engine.now - t0
        run_proc(fs.engine, body())
        assert timing["return"] < timing["complete"] * 0.6

    def test_metadata_committed_at_return_with_sns(self, fs):
        """Orderless operation: the log entry (with SNs) is committed
        before the data lands."""
        ino = do(fs, fs.create(fs.context(), "/a"))
        def body():
            ctx = fs.context()
            result = yield from fs.write(ctx, ino, 0, 65536)
            committed = fs.image.committed_log(ino)
            entry = committed[-1]
            state = {
                "entry_sns": entry.sns,
                "dma_done": all(fs.platform.dma.channel(c).is_complete(sn)
                                for c, sn in entry.sns),
            }
            yield result.pending
            return state
        state = run_proc(fs.engine, body())
        assert state["entry_sns"]
        assert not state["dma_done"], \
            "commit should precede DMA completion for a 64 KB write"

    def test_data_readable_after_completion(self, fs):
        ino = do(fs, fs.create(fs.context(), "/a"))
        data = bytes(range(256)) * 256  # 64 KB
        settle(fs, fs.write(fs.context(), ino, 0, len(data), data))
        result = settle(fs, fs.read(fs.context(), ino, 0, len(data),
                                    want_data=True))
        assert result.value == data

    def test_write_cpu_time_is_small_fraction(self, fs):
        ino = do(fs, fs.create(fs.context(), "/a"))
        def body():
            ctx = fs.context()
            t0 = fs.engine.now
            result = yield from fs.write(ctx, ino, 0, 65536)
            yield result.pending
            return ctx.cpu_ns, fs.engine.now - t0
        cpu, latency = run_proc(fs.engine, body())
        assert cpu / latency < 0.5, "most of the write should be offloaded"

    def test_completion_buffers_persisted(self, fs):
        ino = do(fs, fs.create(fs.context(), "/a"))
        settle(fs, fs.write(fs.context(), ino, 0, 65536))
        assert fs.image.completion_buffers, \
            "EasyIO must persist completion-buffer updates"

    def test_old_pages_freed_only_after_dma(self, fs):
        ino = do(fs, fs.create(fs.context(), "/a"))
        settle(fs, fs.write(fs.context(), ino, 0, 65536))
        def body():
            ctx = fs.context()
            result = yield from fs.write(ctx, ino, 0, 65536)
            freed_at_return = fs.allocator.free_pages
            yield result.pending
            return freed_at_return, fs.allocator.free_pages
        at_return, after = run_proc(fs.engine, body())
        assert at_return == 0, "CoW pages recycled before the DMA landed"
        assert after == 16


class TestTwoLevelLocking:
    def test_second_write_waits_for_first_dma(self, fs):
        ino = do(fs, fs.create(fs.context(), "/a"))
        def body():
            ctx1 = fs.context()
            r1 = yield from fs.write(ctx1, ino, 0, 65536)
            # Immediately issue a second write: level-2 must block it
            # until the first write's DMA lands.
            ctx2 = fs.context()
            r2 = yield from fs.write(ctx2, ino, 65536, 65536)
            waited = ctx2.breakdown["wait"]
            first_done = all(fs.platform.dma.channel(c).is_complete(sn)
                             for c, sn in r1.sns)
            yield r2.pending
            return waited, first_done
        waited, first_done = run_proc(fs.engine, body())
        assert waited > 0, "level-2 lock should have blocked the writer"
        assert first_done

    def test_read_after_write_waits_for_dma(self, fs):
        ino = do(fs, fs.create(fs.context(), "/a"))
        settle(fs, fs.write(fs.context(), ino, 0, 65536))
        def body():
            r1 = yield from fs.write(fs.context(), ino, 0, 65536)
            ctx2 = fs.context()
            r2 = yield from fs.read(ctx2, ino, 0, 65536)
            if r2.is_async:
                yield r2.pending
            return ctx2.breakdown["wait"]
        assert run_proc(fs.engine, body()) > 0

    def test_write_after_read_does_not_wait(self, fs):
        """Read-write conflicts proceed immediately (Figure 7a): CoW
        protects the in-flight reader."""
        ino = do(fs, fs.create(fs.context(), "/a"))
        settle(fs, fs.write(fs.context(), ino, 0, 131072))
        def body():
            r_read = yield from fs.read(fs.context(), ino, 0, 131072)
            assert r_read.is_async, "big read should be DMA-offloaded"
            ctx = fs.context()
            r_write = yield from fs.write(ctx, ino, 0, 65536)
            waited = ctx.breakdown["wait"]
            yield r_write.pending
            yield r_read.pending
            return waited
        assert run_proc(fs.engine, body()) == 0

    def test_in_flight_read_pins_cow_source_pages(self, fs):
        """A write that CoWs pages under an unfinished read must not
        recycle the read's source pages."""
        ino = do(fs, fs.create(fs.context(), "/a"))
        data = b"R" * 131072
        settle(fs, fs.write(fs.context(), ino, 0, len(data), data))
        def body():
            r_read = yield from fs.read(fs.context(), ino, 0, len(data),
                                        want_data=True)
            r_write = yield from fs.write(fs.context(), ino, 0, 65536,
                                          b"W" * 65536)
            yield r_write.pending
            yield r_read.pending
            return r_read.value
        assert run_proc(fs.engine, body()) == data

    def test_lock_never_held_across_return(self, fs):
        ino = do(fs, fs.create(fs.context(), "/a"))
        def body():
            result = yield from fs.write(fs.context(), ino, 0, 65536)
            held = fs.minode(ino).lock.held_exclusive
            yield result.pending
            return held
        assert run_proc(fs.engine, body()) is False


class TestReadPath:
    def test_large_read_offloaded_when_channels_free(self, fs):
        ino = do(fs, fs.create(fs.context(), "/a"))
        settle(fs, fs.write(fs.context(), ino, 0, 65536))
        result = settle(fs, fs.read(fs.context(), ino, 0, 65536))
        assert fs.dma_reads >= 1
        assert result.pending is not None

    def test_small_read_uses_memcpy(self, fs):
        ino = do(fs, fs.create(fs.context(), "/a"))
        settle(fs, fs.write(fs.context(), ino, 0, 4096))
        result = settle(fs, fs.read(fs.context(), ino, 0, 4096))
        assert result.pending is None
        assert fs.memcpy_reads >= 1

    def test_read_admission_control_shunts_under_load(self, fs):
        """Listing 2: with every L channel >= queue depth 2, reads fall
        back to memcpy."""
        ino = do(fs, fs.create(fs.context(), "/a"))
        settle(fs, fs.write(fs.context(), ino, 0, 1 << 20))
        def body():
            results = []
            for _ in range(24):
                r = yield from fs.read(fs.context(), ino, 0, 65536)
                results.append(r)
            for r in results:
                if r.pending is not None and not r.pending.processed:
                    yield r.pending
        run_proc(fs.engine, body())
        assert fs.memcpy_reads > 0, "saturated channels must shunt to memcpy"
        assert fs.dma_reads > 0


class TestNaiveAblation:
    @pytest.fixture
    def naive(self, node):
        return NaiveAsyncFS(node, PMImage()).mount()

    def test_commit_deferred_to_second_syscall(self, naive):
        ino = do(naive, naive.create(naive.context(), "/a"))
        def body():
            result = yield from naive.write(naive.context(), ino, 0, 65536)
            committed_at_return = len(naive.image.committed_log(ino))
            assert result.continuation is not None
            yield result.pending
            yield from result.continuation(naive.context())
            return committed_at_return, len(naive.image.committed_log(ino))
        before, after = run_proc(naive.engine, body())
        assert before == 0 and after == 1

    def test_lock_held_across_the_gap(self, naive):
        ino = do(naive, naive.create(naive.context(), "/a"))
        def body():
            result = yield from naive.write(naive.context(), ino, 0, 65536)
            held = naive.minode(ino).lock.held_exclusive
            yield result.pending
            yield from result.continuation(naive.context())
            return held, naive.minode(ino).lock.held_exclusive
        during, after = run_proc(naive.engine, body())
        assert during is True, "Naive must hold the lock across the DMA"
        assert after is False

    def test_naive_write_latency_higher_than_easyio(self, node):
        from repro.workloads import measure_single_op
        lat_easy, _c, _b = measure_single_op("easyio", "write", 65536)
        lat_naive, _c, _b = measure_single_op("naive", "write", 65536)
        assert lat_naive > lat_easy * 1.1


class TestRecoveryIntegration:
    def test_crash_between_commit_and_dma_discards_entry(self, node):
        fs = EasyIoFS(node, PMImage(record=True)).mount()
        data1 = b"1" * 65536
        ino_box = {}
        def body():
            ino = yield from fs.create(fs.context(), "/a")
            ino_box["ino"] = ino
            r = yield from fs.write(fs.context(), ino, 0, len(data1), data1)
            yield r.pending
            # Second write: crash right after its metadata commit.
            r2 = yield from fs.write(fs.context(), ino, 0, len(data1),
                                     b"2" * 65536)
            ino_box["crash_at"] = len(fs.image.mutations)
            yield r2.pending
        run_proc(node.engine, body())
        img = fs.image.replay(ino_box["crash_at"])
        plat2 = Platform(PlatformConfig.single_node())
        fs2 = recover(EasyIoFS(plat2, img), completion_buffer_validator(img))
        m = fs2.minode(ino_box["ino"])
        assert fs2._collect_data(m, 0, m.size) == data1, \
            "recovery must fall back to the first write's data"
