"""Scheduler edge cases, parametrized over both EventQueue implementations.

The engine's firing-order contract is ``(when, schedule-order)``; the
packed heap and the timing wheel must be indistinguishable through it.
These tests drive the corners where the two representations differ
most: same-timestamp FIFO runs, cancel-heavy compaction, far-future
wheel overflow (epoch cascading), and zero-delay self-rescheduling.
"""

import random

import pytest

from repro.sim import Engine, PackedHeapQueue, TimingWheelQueue
from repro.sim.queues import WHEEL_HORIZON, make_queue

SCHEDULERS = ("heap", "wheel")


@pytest.fixture(params=SCHEDULERS)
def scheduler(request):
    return request.param


@pytest.fixture
def engine(scheduler):
    return Engine(scheduler=scheduler)


def run_proc(engine, gen):
    proc = engine.process(gen)
    engine.run()
    return proc


class TestSelection:
    def test_scheduler_property_reports_choice(self, scheduler):
        assert Engine(scheduler=scheduler).scheduler == scheduler

    def test_make_queue_accepts_class_and_instance(self):
        assert isinstance(make_queue(PackedHeapQueue), PackedHeapQueue)
        wheel = TimingWheelQueue(horizon=128)
        assert make_queue(wheel) is wheel

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            Engine(scheduler="calendar-of-lies")


class TestSameTimestampFifo:
    def test_same_when_fires_in_schedule_order(self, engine):
        fired = []
        def waiter(i, delay):
            yield engine.timeout(delay)
            fired.append(i)
        # Interleave two target timestamps; within each, schedule order
        # must be preserved exactly.
        for i in range(40):
            engine.process(waiter(i, 100 if i % 2 else 200))
        engine.run()
        odds = [i for i in fired[:20]]
        evens = [i for i in fired[20:]]
        assert odds == [i for i in range(40) if i % 2]
        assert evens == [i for i in range(40) if not i % 2]

    def test_events_scheduled_while_firing_join_same_instant(self, engine):
        order = []
        def first():
            yield engine.timeout(50)
            order.append("first")
            engine.process(second())
        def second():
            order.append("spawned")
            yield engine.timeout(0)
            order.append("second")
        engine.process(first())
        engine.run()
        assert order == ["first", "spawned", "second"]
        assert engine.now == 50


class TestCancelHeavyCompaction:
    def test_lazy_compaction_bounds_queue_size(self, engine):
        def body():
            for _ in range(2000):
                engine.timeout(10_000_000).cancel()
                yield engine.sleep(1)
        run_proc(engine, body())
        assert engine.stats.events_cancelled == 2000
        assert engine.stats.heap_compactions > 0
        assert engine.heap_size < 200

    def test_compaction_preserves_survivor_order(self, engine):
        fired = []
        def body():
            doomed = [engine.timeout(5_000 + i) for i in range(300)]
            survivors = [engine.timeout(1_000 + i) for i in range(5)]
            for t in doomed:
                t.cancel()
            for i, t in enumerate(survivors):
                t.add_callback(lambda _ev, i=i: fired.append(i))
            yield engine.timeout(2_000)
        run_proc(engine, body())
        assert fired == [0, 1, 2, 3, 4]

    def test_far_future_cancellations_compact_too(self, scheduler):
        engine = Engine(scheduler=scheduler)
        def body():
            for i in range(2000):
                engine.timeout(10 * WHEEL_HORIZON + i).cancel()
                yield engine.sleep(1)
        run_proc(engine, body())
        assert engine.heap_size < 200


class TestWheelOverflow:
    """Events past the near horizon cascade through far epochs."""

    def test_far_future_timer_fires_exactly(self, engine):
        fired = []
        def body():
            yield engine.timeout(3 * WHEEL_HORIZON + 17)
            fired.append(engine.now)
        run_proc(engine, body())
        assert fired == [3 * WHEEL_HORIZON + 17]

    def test_epochs_scheduled_out_of_order_fire_in_order(self, engine):
        fired = []
        whens = [5 * WHEEL_HORIZON + 1, WHEEL_HORIZON + 3,
                 9 * WHEEL_HORIZON, 2 * WHEEL_HORIZON - 1, 40]
        def waiter(when):
            yield engine.timeout(when)
            fired.append(when)
        for w in whens:
            engine.process(waiter(w))
        engine.run()
        assert fired == sorted(whens)

    def test_push_into_cascaded_window(self, engine):
        # After the clock has advanced past the first horizon, newly
        # scheduled near-window events land in the cascaded buckets.
        fired = []
        def body():
            yield engine.timeout(WHEEL_HORIZON + 10)
            yield engine.timeout(5)  # near push inside epoch 1
            fired.append(engine.now)
        run_proc(engine, body())
        assert fired == [WHEEL_HORIZON + 15]

    def test_same_when_fifo_across_cascade(self, engine):
        fired = []
        when = 2 * WHEEL_HORIZON + 500
        def waiter(i):
            yield engine.timeout(when)
            fired.append(i)
        for i in range(10):
            engine.process(waiter(i))
        engine.run()
        assert fired == list(range(10))


class TestZeroDelaySelfReschedule:
    def test_zero_delay_chain_stays_at_one_instant(self, engine):
        hops = []
        def body():
            yield engine.timeout(30)
            for i in range(50):
                hops.append(engine.now)
                yield engine.sleep(0)
        run_proc(engine, body())
        assert hops == [30] * 50
        assert engine.now == 30

    def test_zero_delay_interleaves_fairly(self, engine):
        order = []
        def looper(name):
            for _ in range(3):
                order.append(name)
                yield engine.sleep(0)
        engine.process(looper("a"))
        engine.process(looper("b"))
        engine.run()
        assert order == ["a", "b"] * 3


class TestCrossImplementationEquivalence:
    def test_random_schedules_fire_identically(self):
        def trace(scheduler):
            engine = Engine(scheduler=scheduler)
            rng = random.Random(1234)
            fired = []
            def waiter(i, delay, respawn):
                yield engine.timeout(delay)
                fired.append((i, engine.now))
                if respawn:
                    engine.process(waiter(i + 1000, rng.randrange(0, 3000),
                                          False))
            cancels = []
            for i in range(300):
                delay = rng.choice((0, 1, 7, 100, 100, 2048,
                                    WHEEL_HORIZON + 13, 3 * WHEEL_HORIZON))
                engine.process(waiter(i, delay, rng.random() < 0.3))
                if rng.random() < 0.2:
                    cancels.append(engine.timeout(rng.randrange(1, 5000)))
            for t in cancels[::2]:
                t.cancel()
            engine.run()
            return fired
        assert trace("heap") == trace("wheel")
