"""Cross-cutting integration tests.

Every filesystem variant must expose identical *semantics* (same
logical state for the same operation sequence); they differ only in
timing and CPU consumption.  Recovery must round-trip for all of them.
"""

import pytest

from repro.crash.crashmonkey import snapshot_with_content
from repro.fs.recovery import completion_buffer_validator, recover
from repro.hw.platform import Platform, PlatformConfig
from repro.workloads.factory import FS_KINDS, make_fs
from tests.conftest import run_proc

SEQUENCE_KINDS = [k for k in FS_KINDS if k != "naive"] + ["naive"]


def run_sequence(kind, record=False):
    """A fixed operation mix on one filesystem; returns (fs, snapshot)."""
    plat = Platform(PlatformConfig.single_node())
    fs = make_fs(kind, plat, record=record)

    def settle(result):
        if getattr(result, "is_async", False):
            yield result.pending
        cont = getattr(result, "continuation", None)
        if cont is not None:
            yield from cont(fs.context())

    def body():
        yield from fs.mkdir(fs.context(), "/dir")
        a = yield from fs.create(fs.context(), "/dir/a")
        r = yield from fs.write(fs.context(), a, 0, 65536, b"A" * 65536)
        yield from settle(r)
        r = yield from fs.write(fs.context(), a, 4096, 8192, b"B" * 8192)
        yield from settle(r)
        b = yield from fs.create(fs.context(), "/b")
        r = yield from fs.write(fs.context(), b, 0, 4096, b"C" * 4096)
        yield from settle(r)
        yield from fs.link(fs.context(), "/b", "/dir/b2")
        yield from fs.rename(fs.context(), "/dir/a", "/renamed")
        yield from fs.truncate(fs.context(), a, 16384)
        c = yield from fs.create(fs.context(), "/victim")
        yield from fs.unlink(fs.context(), "/victim")
        rd = yield from fs.read(fs.context(), a, 0, 16384, want_data=True)
        yield from settle(rd)
        return rd.value

    data = run_proc(plat.engine, body())
    return fs, snapshot_with_content(fs), data


class TestSemanticsEquivalence:
    def test_all_filesystems_reach_the_same_state(self):
        reference = None
        ref_data = None
        for kind in SEQUENCE_KINDS:
            _fs, snap, data = run_sequence(kind)
            if reference is None:
                reference, ref_data = snap, data
            else:
                assert snap == reference, f"{kind} diverged"
                assert data == ref_data, f"{kind} read back different bytes"

    def test_expected_final_content(self):
        _fs, snap, data = run_sequence("easyio")
        expected = bytearray(b"A" * 65536)
        expected[4096:12288] = b"B" * 8192
        assert data == bytes(expected[:16384])
        assert set(snap) == {"/dir", "/renamed", "/b", "/dir/b2"}


class TestRecoveryRoundTrip:
    @pytest.mark.parametrize("kind", SEQUENCE_KINDS)
    def test_full_replay_recovers_identical_state(self, kind):
        fs, live_snap, _data = run_sequence(kind, record=True)
        img = fs.image.replay(fs.image.crash_points())
        plat2 = Platform(PlatformConfig.single_node())
        from repro.crash.crashmonkey import make_fs_on_image
        fs2 = make_fs_on_image(kind, plat2, img)
        validator = (completion_buffer_validator(img)
                     if kind in ("easyio", "naive") else None)
        recover(fs2, validator)
        assert snapshot_with_content(fs2) == live_snap


class TestDeterminism:
    def test_identical_runs_identical_images(self):
        fs1, snap1, _ = run_sequence("easyio", record=True)
        fs2, snap2, _ = run_sequence("easyio", record=True)
        assert snap1 == snap2
        assert [(m.op,) for m in fs1.image.mutations] == \
               [(m.op,) for m in fs2.image.mutations]
        assert fs1.engine.now == fs2.engine.now
