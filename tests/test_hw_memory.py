"""Tests for the bandwidth-pool model and slow-memory device."""

import pytest

from repro.hw.memory import (
    CPU_GROUP,
    DELEGATION_GROUP,
    BandwidthPool,
    _waterfill,
)
from tests.conftest import run_proc


class TestWaterfill:
    def test_equal_split_under_capacity(self):
        rates = _waterfill([1, 1], [10, 10], 4)
        assert rates == [2, 2]

    def test_caps_bind(self):
        rates = _waterfill([1, 1], [1, 10], 4)
        assert rates == [1, 3]

    def test_conservation(self):
        rates = _waterfill([1, 1, 1], [5, 5, 5], 9)
        assert sum(rates) == pytest.approx(9)

    def test_never_exceeds_caps(self):
        rates = _waterfill([1, 1, 1], [1, 2, 3], 100)
        assert rates == [1, 2, 3]

    def test_weighted_shares(self):
        rates = _waterfill([2, 1], [100, 100], 9)
        assert rates == [6, 3]

    def test_empty(self):
        assert _waterfill([], [], 5) == []


class TestBandwidthPool:
    def test_single_flow_runs_at_cap(self, engine):
        pool = BandwidthPool(engine, "p", capacity=10.0)
        def body():
            yield pool.transfer(1000, cap=2.0)
        run_proc(engine, body())
        assert engine.now == 500  # 1000 B at 2 B/ns

    def test_two_flows_share_capacity(self, engine):
        pool = BandwidthPool(engine, "p", capacity=2.0)
        done = []
        def flow(i):
            yield pool.transfer(1000, cap=10.0, tag=i)
            done.append(engine.now)
        engine.process(flow(0))
        engine.process(flow(1))
        engine.run()
        # Both share 2 B/ns -> 1 B/ns each -> finish at 1000.
        assert done == [1000, 1000]

    def test_late_flow_slows_early_flow(self, engine):
        pool = BandwidthPool(engine, "p", capacity=2.0)
        done = {}
        def early():
            yield pool.transfer(1000, cap=2.0, tag="e")
            done["early"] = engine.now
        def late():
            yield engine.timeout(250)
            yield pool.transfer(500, cap=2.0, tag="l")
            done["late"] = engine.now
        engine.process(early())
        engine.process(late())
        engine.run()
        # early runs alone for 250ns (500B), then shares 1 B/ns for the
        # remaining 500B -> done at 750.
        assert done["early"] == 750
        # late: 500B at 1 B/ns alongside early -> done at 750 too.
        assert done["late"] == 750

    def test_zero_byte_transfer_completes_immediately(self, engine):
        pool = BandwidthPool(engine, "p", 1.0)
        ev = pool.transfer(0, cap=1.0)
        assert ev.triggered

    def test_negative_size_rejected(self, engine):
        pool = BandwidthPool(engine, "p", 1.0)
        with pytest.raises(ValueError):
            pool.transfer(-1, cap=1.0)

    def test_group_cap_enforced(self, engine):
        pool = BandwidthPool(engine, "p", capacity=10.0,
                             group_cap_fn=lambda counts: {"slow": 1.0})
        done = {}
        def flow(group, tag):
            yield pool.transfer(1000, cap=10.0, group=group, tag=tag)
            done[tag] = engine.now
        engine.process(flow("slow", "s"))
        engine.process(flow("fast", "f"))
        engine.run()
        assert done["s"] == 1000      # capped at 1 B/ns
        assert done["f"] == pytest.approx(112, abs=10)  # gets ~9 B/ns

    def test_statistics(self, engine):
        pool = BandwidthPool(engine, "p", 1.0)
        def body():
            yield pool.transfer(100, cap=1.0)
            yield pool.transfer(200, cap=1.0)
        run_proc(engine, body())
        assert pool.bytes_moved == 300
        assert pool.transfers_completed == 2
        assert pool.active_flows == 0

    def test_conservation_under_churn(self, engine):
        """Aggregate bytes moved never exceed capacity * time."""
        pool = BandwidthPool(engine, "p", capacity=3.0)
        def flow(delay, size):
            yield engine.timeout(delay)
            yield pool.transfer(size, cap=2.0)
        for i in range(10):
            engine.process(flow(i * 37, 500 + 77 * i))
        engine.run()
        total = sum(500 + 77 * i for i in range(10))
        assert pool.bytes_moved == total
        assert total <= 3.0 * engine.now + 1e-6


class TestSlowMemory:
    def test_cpu_copy_write_duration(self, node):
        model = node.model
        t = run_copy(node, 65536, write=True)
        # A single writer is limited by both its core rate and the
        # single-writer device capacity (the ramp term).
        rate = min(model.cpu_copy_write_rate,
                   model.cpu_write_capacity(node.config.total_dimms, 1))
        expected = (model.cpu_copy_op_overhead + model.pm_write_latency
                    + 65536 / rate)
        assert t == pytest.approx(expected, rel=0.01)

    def test_cpu_copy_read_duration(self, node):
        model = node.model
        t = run_copy(node, 65536, write=False)
        expected = (model.cpu_copy_op_overhead + model.pm_read_latency
                    + 65536 / model.cpu_copy_read_rate)
        assert t == pytest.approx(expected, rel=0.01)

    def test_write_collapse_with_many_writers(self, node):
        """16 concurrent writers achieve less aggregate bandwidth than 6."""
        def agg_bw(writers):
            from repro.hw.platform import Platform, PlatformConfig
            plat = Platform(PlatformConfig.single_node())
            done = []
            def w(i):
                yield from plat.memory.cpu_copy(1 << 20, write=True, tag=i)
                done.append(plat.engine.now)
            for i in range(writers):
                plat.engine.process(w(i))
            plat.engine.run()
            return writers * (1 << 20) / max(done)
        assert agg_bw(16) < agg_bw(6)

    def test_dma_read_class_capped_below_device_peak(self, node):
        model = node.model
        ceiling = model.dma_read_ceiling(node.config.total_dimms)
        assert ceiling < model.pm_read_peak(node.config.total_dimms) * 0.5

    def test_delegation_group_avoids_collapse(self, node):
        """Delegated writes are not subject to the CPU-writer collapse."""
        caps = node.memory._write_group_caps(
            {CPU_GROUP: 16, DELEGATION_GROUP: 16})
        peak = node.model.pm_write_peak(node.config.total_dimms)
        assert caps[CPU_GROUP] < peak
        assert DELEGATION_GROUP not in caps  # uncapped = device limit

    def test_dma_write_ceiling_declines_with_channels(self, node):
        model = node.model
        dimms = node.config.total_dimms
        values = [model.dma_write_ceiling(dimms, ch) for ch in (1, 2, 4, 8)]
        assert values == sorted(values, reverse=True)

    def test_byte_counters(self, node):
        run_copy(node, 4096, write=True)
        assert node.memory.bytes_written() == 4096
        assert node.memory.bytes_read() == 0


def run_copy(platform, nbytes, write):
    t0 = platform.engine.now
    def body():
        yield from platform.memory.cpu_copy(nbytes, write=write)
    run_proc(platform.engine, body())
    return platform.engine.now - t0
