"""Tests for the traffic-aware channel manager (§4.4)."""

import pytest

from repro.core.channel_manager import AppProfile, ChannelManager
from repro.hw.dma import DmaDescriptor
from tests.conftest import run_proc


@pytest.fixture
def cm(node):
    return ChannelManager(node)


class TestAppProfile:
    def test_kind_validation(self):
        with pytest.raises(ValueError):
            AppProfile("x", kind="Z")

    def test_ewma_tracks_latency(self):
        app = AppProfile("web", kind="L", slo_ns=10_000)
        app.observe(8_000)
        assert app.latency_ewma == 8_000
        app.observe(12_000)
        assert 8_000 < app.latency_ewma < 12_000

    def test_slo_slack_sign(self):
        app = AppProfile("web", kind="L", slo_ns=10_000)
        app.observe(5_000)
        assert app.slo_slack > 0
        for _ in range(50):
            app.observe(20_000)
        assert app.slo_slack < 0

    def test_slack_none_without_slo_or_samples(self):
        assert AppProfile("b", kind="B").slo_slack is None
        assert AppProfile("l", kind="L", slo_ns=10).slo_slack is None


class TestChannelPolicy:
    def test_l_and_b_channels_disjoint(self, cm):
        l_ids = {c.channel_id for c in cm.l_channels}
        assert cm.b_channel.channel_id not in l_ids
        assert len(cm.l_channels) <= 4

    def test_b_app_writes_share_one_channel(self, cm):
        b = AppProfile("gc", kind="B")
        assert cm.write_channel(b) is cm.b_channel
        assert cm.write_channel(b) is cm.b_channel

    def test_l_app_writes_pick_least_loaded(self, cm, node):
        lapp = AppProfile("web", kind="L")
        first = cm.write_channel(lapp)
        def body():
            d = DmaDescriptor(1 << 20, write=True)
            yield from first.submit([d])
            # While the descriptor is queued, another L write must pick
            # a different (shallower) channel.
            return cm.write_channel(lapp)
        second = run_proc(node.engine, body())
        assert second is not first

    def test_read_admission_small_io_rejected(self, cm):
        assert cm.admit_read(4096) is None

    def test_read_admission_respects_queue_depth(self, cm, node):
        def body():
            for ch in cm.l_channels:
                descs = [DmaDescriptor(1 << 20, write=False)
                         for _ in range(cm.READ_QDEPTH_LIMIT)]
                yield from ch.submit(descs)
            # Check while every channel still has depth >= 2.
            return cm.admit_read(65536)
        assert run_proc(node.engine, body()) is None, \
            "all channels at depth >= 2 must shunt the read to memcpy"

    def test_b_app_reads_use_b_channel(self, cm):
        b = AppProfile("gc", kind="B")
        assert cm.admit_read(1 << 20, b) is cm.b_channel

    def test_selective_offload_threshold(self, cm):
        assert not cm.should_offload_write(4096)
        assert cm.should_offload_write(4097)

    def test_split_only_for_b_apps(self, cm):
        lapp = AppProfile("web", kind="L")
        b = AppProfile("gc", kind="B")
        assert cm.split(lapp, 1 << 20) == [1 << 20]
        chunks = cm.split(b, (1 << 20) + 1000)
        assert all(c <= cm.split_bytes for c in chunks)
        assert sum(chunks) == (1 << 20) + 1000

    def test_overlapping_l_and_b_channels_rejected(self, node):
        with pytest.raises(ValueError):
            ChannelManager(node, l_channel_ids=[0, 1], b_channel_id=1)


class TestConstructorValidation:
    def test_zero_split_bytes_rejected(self, node):
        with pytest.raises(ValueError, match="split_bytes"):
            ChannelManager(node, split_bytes=0)

    def test_negative_split_bytes_rejected(self, node):
        with pytest.raises(ValueError, match="split_bytes"):
            ChannelManager(node, split_bytes=-4096)

    def test_negative_offload_threshold_rejected(self, node):
        with pytest.raises(ValueError, match="offload_threshold"):
            ChannelManager(node, offload_threshold=-1)

    def test_zero_offload_threshold_allowed(self, node):
        cm = ChannelManager(node, offload_threshold=0)
        assert cm.should_offload_write(1)

    def test_bad_epoch_rejected(self, node):
        with pytest.raises(ValueError, match="epoch_ns"):
            ChannelManager(node, epoch_ns=0)

    def test_bad_quarantine_threshold_rejected(self, node):
        with pytest.raises(ValueError, match="quarantine_threshold"):
            ChannelManager(node, quarantine_threshold=0)


class TestRegulation:
    def test_token_bucket_throttles_b_traffic(self, node):
        cm = ChannelManager(node, b_limit=0.5, epoch_ns=10_000)
        cm.start_throttling()
        engine = node.engine
        moved = {}
        def bulk():
            ch = cm.b_channel
            while engine.now < 400_000:
                descs = [DmaDescriptor(65536, write=True) for _ in range(8)]
                yield from ch.submit(descs)
                for d in descs:
                    yield d.done
        engine.process(bulk())
        engine.run(until=400_000)
        in_window = cm.b_channel.bytes_moved   # before the drain below
        cm.stop()
        engine.run()
        achieved = in_window / 400_000
        assert achieved < 0.5 * 1.6, \
            f"B traffic ran at {achieved:.2f} GB/s against a 0.5 limit"
        assert cm.throttle_events > 0

    def test_unthrottled_b_traffic_runs_fast(self, node):
        cm = ChannelManager(node, b_limit=0.5)   # regulation not started
        engine = node.engine
        def bulk():
            ch = cm.b_channel
            for _ in range(20):
                descs = [DmaDescriptor(65536, write=True) for _ in range(8)]
                yield from ch.submit(descs)
                for d in descs:
                    yield d.done
        run_proc(engine, bulk())
        achieved = cm.b_channel.bytes_moved / engine.now
        assert achieved > 1.0

    def test_listing1_lowers_limit_on_slo_violation(self, node):
        cm = ChannelManager(node, b_limit=4.0, epoch_ns=5_000)
        app = cm.register(AppProfile("web", kind="L", slo_ns=10_000))
        for _ in range(50):
            app.observe(50_000)   # badly violating
        cm.start_throttling()
        node.engine.run(until=200_000)
        cm.stop()
        node.engine.run()
        assert cm.b_limit < 4.0

    def test_listing1_raises_limit_with_slack(self, node):
        cm = ChannelManager(node, b_limit=1.0, epoch_ns=5_000,
                            slack_threshold=0.2)
        app = cm.register(AppProfile("web", kind="L", slo_ns=100_000))
        for _ in range(50):
            app.observe(1_000)    # far below the SLO
        cm.start_throttling()
        node.engine.run(until=200_000)
        cm.stop()
        node.engine.run()
        assert cm.b_limit > 1.0

    def test_limit_clamped_to_bounds(self, node):
        cm = ChannelManager(node, b_limit=0.3, b_limit_min=0.25,
                            epoch_ns=5_000, delta=1.0)
        app = cm.register(AppProfile("web", kind="L", slo_ns=1_000))
        for _ in range(50):
            app.observe(100_000)
        cm.start_throttling()
        node.engine.run(until=100_000)
        cm.stop()
        node.engine.run()
        assert cm.b_limit == pytest.approx(0.25)

    def test_stop_resumes_suspended_channel(self, node):
        cm = ChannelManager(node, b_limit=0.1, epoch_ns=10_000)
        cm.start_throttling()
        def bulk():
            descs = [DmaDescriptor(65536, write=True) for _ in range(8)]
            yield from cm.b_channel.submit(descs)
            yield descs[-1].done
        node.engine.process(bulk())
        node.engine.run(until=100_000)
        cm.stop()
        node.engine.run()
        assert not cm.b_channel.suspended

    def test_stop_during_chancmd_window_does_not_strand_channel(self, node):
        """Regression: stop() racing an in-flight CHANCMD suspend.

        The regulation loop decides to suspend, spends 74 ns on the
        CHANCMD, and only then acts.  If stop() lands inside that
        window, the loop must NOT go through with the suspension --
        nobody would ever resume the B channel again.
        """
        cm = ChannelManager(node, b_limit=0.05, epoch_ns=20_000, subticks=1)
        cm.start_throttling()
        engine = node.engine
        def bulk():
            descs = [DmaDescriptor(65536, write=True) for _ in range(4)]
            yield from cm.b_channel.submit(descs)
            yield descs[-1].done
        engine.process(bulk())
        # Pause inside the first tick's CHANCMD window [20000, 20074).
        engine.run(until=20_040)
        assert cm.b_channel.bytes_moved > 0.05 * 20_000, \
            "precondition: the t=20000 tick must have decided to suspend"
        assert not cm.b_channel.suspended, \
            "precondition: the CHANCMD must still be in flight"
        cm.stop()
        engine.run()
        assert not cm.b_channel.suspended, \
            "stop() during the CHANCMD window left the channel suspended"
        def late():
            d = DmaDescriptor(65536, write=True)
            yield from cm.b_channel.submit([d])
            yield d.done
            return d.status
        assert run_proc(engine, late()) == "ok"
