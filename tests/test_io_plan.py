"""Regression tests for the shared I/O planner (repro.io.plan).

The contiguous-run / extent helpers used to be copied between the
filesystem variants; they now live in one place and every variant's
plans come from :class:`IoPlanner`.  These tests pin the edge cases
the duplicated copies used to cover: partial pages, holes, single-byte
operations, and runs that cross extent boundaries.
"""

import pytest

from repro.fs import NovaFS, PMImage
from repro.fs.structures import PAGE_SIZE, FileKind, MemInode, PageMapping
from repro.io.plan import (
    CowPrep,
    IoPlanner,
    contiguous_runs,
    extent_runs,
    run_sizes,
)
from tests.conftest import run_proc


@pytest.fixture
def fs(node):
    return NovaFS(node, PMImage()).mount()


def do(fs, gen):
    return run_proc(fs.engine, gen)


def _minode(mapping):
    m = MemInode(ino=7, kind=FileKind.FILE)
    m.index = {off: PageMapping(pid) for off, pid in mapping.items()}
    return m


class TestContiguousRuns:
    def test_empty(self):
        assert contiguous_runs([]) == []

    def test_single_run(self):
        assert contiguous_runs([4, 5, 6]) == [([4, 5, 6], [None] * 3)]

    def test_split_on_gap(self):
        runs = contiguous_runs([1, 2, 9, 10, 20])
        assert [ids for ids, _ in runs] == [[1, 2], [9, 10], [20]]

    def test_descending_pages_split(self):
        # Recycled pages can come back out of order: every step that is
        # not exactly +1 starts a new run.
        runs = contiguous_runs([5, 4, 3])
        assert [ids for ids, _ in runs] == [[5], [4], [3]]

    def test_contents_travel_with_their_pages(self):
        runs = contiguous_runs([1, 2, 9], ["a", "b", "c"])
        assert runs == [([1, 2], ["a", "b"]), ([9], ["c"])]

    def test_run_sizes_are_page_granular(self):
        assert run_sizes([1, 2, 9]) == [2 * PAGE_SIZE, PAGE_SIZE]
        assert run_sizes([]) == []


class TestExtentRuns:
    def test_fully_mapped_contiguous(self):
        m = _minode({0: 100, 1: 101, 2: 102})
        assert list(extent_runs(m.index, 0, 3)) == [(0, [100, 101, 102])]

    def test_cross_extent_split(self):
        # Physically discontiguous mappings split mid-range.
        m = _minode({0: 100, 1: 101, 2: 200, 3: 201})
        assert list(extent_runs(m.index, 0, 4)) == \
            [(0, [100, 101]), (2, [200, 201])]

    def test_hole_emits_empty_run(self):
        m = _minode({0: 100, 2: 102})
        assert list(extent_runs(m.index, 0, 3)) == \
            [(0, [100]), (1, []), (2, [102])]

    def test_hole_splits_physically_adjacent_pages(self):
        # Pages 100 and 101 are physically adjacent, but the file hole
        # between them must still break the run.
        m = _minode({0: 100, 2: 101})
        assert list(extent_runs(m.index, 0, 3)) == \
            [(0, [100]), (1, []), (2, [101])]

    def test_leading_and_trailing_holes(self):
        m = _minode({1: 50})
        assert list(extent_runs(m.index, 0, 3)) == \
            [(0, []), (1, [50]), (2, [])]

    def test_meminode_method_delegates(self):
        m = _minode({0: 100, 1: 101, 3: 50})
        assert list(m.extent_runs(0, 4)) == \
            list(extent_runs(m.index, 0, 4))


class TestReadPlan:
    def test_holes_excluded_from_data_extents(self):
        m = _minode({0: 100, 2: 102})
        plan = IoPlanner(None).read_plan(m, 0, 3 * PAGE_SIZE)
        assert not plan.write
        assert [e.is_hole for e in plan.extents] == [False, True, False]
        assert plan.mapped_bytes == 2 * PAGE_SIZE
        assert plan.run_sizes == [PAGE_SIZE, PAGE_SIZE]

    def test_single_byte_read_covers_one_page(self):
        m = _minode({0: 100})
        plan = IoPlanner(None).read_plan(m, 5, 1)
        assert plan.nbytes == 1
        assert plan.page_ids == [100]
        assert plan.mapped_bytes == PAGE_SIZE

    def test_offset_page_alignment(self):
        # A read starting mid-page must plan from that page, not page 0.
        m = _minode({0: 100, 1: 101, 2: 102})
        plan = IoPlanner(None).read_plan(m, PAGE_SIZE + 1, PAGE_SIZE)
        assert plan.extents == \
            IoPlanner.read_plan_from_runs(
                7, PAGE_SIZE + 1, PAGE_SIZE, [(1, (101, 102))]).extents


class TestWritePlan:
    def _plan(self, page_ids, contents=None):
        contents = contents or [b""] * len(page_ids)
        prep = CowPrep(pgoff=3, page_ids=list(page_ids),
                       contents=list(contents), old_pages=[],
                       size_after=0, run_sizes=run_sizes(page_ids),
                       nbytes=len(page_ids) * PAGE_SIZE,
                       offset=3 * PAGE_SIZE)
        return IoPlanner(None).write_plan(_minode({}), prep)

    def test_extents_mirror_contiguous_runs(self):
        plan = self._plan([10, 11, 40], [b"a", b"b", b"c"])
        assert [(e.pgoff, e.page_ids) for e in plan.extents] == \
            [(3, (10, 11)), (5, (40,))]
        assert plan.contents == [b"a", b"b", b"c"]
        assert plan.run_sizes == [2 * PAGE_SIZE, PAGE_SIZE]
        assert plan.tag == ("w", 7)

    def test_single_page(self):
        plan = self._plan([99])
        assert len(plan.extents) == 1
        assert plan.extents[0].nbytes == PAGE_SIZE


class TestCowPrepThroughFilesystem:
    """prepare_cow edge cases, driven through a real NovaFS."""

    def _write_read(self, fs, ino, offset, payload):
        r = do(fs, fs.write(fs.context(), ino, offset, len(payload),
                            payload))
        assert r.value == len(payload)
        m = fs._mem[ino]
        rd = do(fs, fs.read(fs.context(), ino, 0, m.size, want_data=True))
        return rd.value

    def test_partial_page_overwrite_merges_old_data(self, fs):
        ino = do(fs, fs.create(fs.context(), "/f"))
        base = bytes([1]) * PAGE_SIZE
        do(fs, fs.write(fs.context(), ino, 0, PAGE_SIZE, base))
        data = self._write_read(fs, ino, 100, b"\x02" * 50)
        assert data == base[:100] + b"\x02" * 50 + base[150:]

    def test_single_byte_write(self, fs):
        ino = do(fs, fs.create(fs.context(), "/f"))
        data = self._write_read(fs, ino, 0, b"Z")
        assert data == b"Z"
        m = fs._mem[ino]
        assert m.size == 1 and len(m.index) == 1

    def test_cross_page_unaligned_write(self, fs):
        ino = do(fs, fs.create(fs.context(), "/f"))
        payload = bytes(range(256)) * 32          # 2 pages worth
        data = self._write_read(fs, ino, PAGE_SIZE // 2, payload)
        assert data == b"\x00" * (PAGE_SIZE // 2) + payload

    def test_write_beyond_hole_zero_fills(self, fs):
        ino = do(fs, fs.create(fs.context(), "/f"))
        data = self._write_read(fs, ino, 3 * PAGE_SIZE, b"end")
        assert data == b"\x00" * (3 * PAGE_SIZE) + b"end"
