"""Tests for the trace-invariant oracles (repro.obs.oracles).

Each oracle gets a violation test (hand-built stream that breaks the
invariant) and a legality test (the nearest *legal* stream, so the
oracle is shown to be tight, not just noisy).  The bottom runs a mixed
workload on every filesystem variant under the ``trace_oracles``
fixture -- the real instrumentation streams must be clean.
"""

import pytest

from repro.hw.platform import Platform, PlatformConfig
from repro.obs import ORACLES, Oracle, TraceChecker, Tracer, register_oracle
from repro.workloads.factory import FS_KINDS, make_fs
from tests.conftest import run_proc


class _Clock:
    def __init__(self):
        self.now = 0


def _tracer():
    return Tracer(_Clock())


def _check(tr, oracle):
    return TraceChecker([oracle]).check(tr.events)


class TestAckImpliesDurable:
    ORACLE = "ack-implies-durable"

    def test_ack_after_persist_is_legal(self):
        tr = _tracer()
        tr.point("write_commit", track="fs", op=1, ino=2, pids=[7],
                 sns=[])
        tr.point("pages_persist", track="persist", pids=[7])
        tr.point("write_ack", track="fs", op=1, ino=2)
        assert _check(tr, self.ORACLE) == []

    def test_ack_with_missing_page_flagged(self):
        tr = _tracer()
        tr.point("write_commit", track="fs", op=1, ino=2, pids=[7, 8],
                 sns=[])
        tr.point("pages_persist", track="persist", pids=[7])
        tr.point("write_ack", track="fs", op=1, ino=2)
        [v] = _check(tr, self.ORACLE)
        assert "non-durable pages [8]" in v.message

    def test_metadata_only_op_skipped(self):
        # No commit recorded for the op (create, or the Naive ablation's
        # commit-after-ack continuation): nothing to check at the ack.
        tr = _tracer()
        tr.point("write_ack", track="fs", op=1, ino=2)
        assert _check(tr, self.ORACLE) == []


class TestChannelSnOrder:
    ORACLE = "channel-sn-order"

    def _submit(self, tr, sn, track="ch0"):
        tr.point("dma_submit", track=track, sn=sn, nbytes=4096,
                 write=True)

    def test_fifo_completion_is_legal(self):
        tr = _tracer()
        for sn in (1, 2, 3):
            self._submit(tr, sn)
        for sn in (1, 2, 3):
            tr.point("dma_complete", track="ch0", sn=sn)
        assert _check(tr, self.ORACLE) == []

    def test_non_increasing_submit_flagged(self):
        tr = _tracer()
        self._submit(tr, 2)
        self._submit(tr, 2)
        [v] = _check(tr, self.ORACLE)
        assert "submit sn 2 not above previous 2" in v.message

    def test_completion_before_submit_flagged(self):
        tr = _tracer()
        tr.point("dma_complete", track="ch0", sn=1)
        [v] = _check(tr, self.ORACLE)
        assert "completed before submit" in v.message

    def test_double_completion_flagged(self):
        tr = _tracer()
        self._submit(tr, 1)
        tr.point("dma_complete", track="ch0", sn=1)
        tr.point("dma_complete", track="ch0", sn=1)
        [v] = _check(tr, self.ORACLE)
        assert "not above previous completion" in v.message

    def test_jump_past_live_sn_flagged(self):
        tr = _tracer()
        for sn in (1, 2, 3):
            self._submit(tr, sn)
        tr.point("dma_complete", track="ch0", sn=1)
        tr.point("dma_complete", track="ch0", sn=3)  # sn 2 is still live
        [v] = _check(tr, self.ORACLE)
        assert "jumped past live SNs [2]" in v.message

    def test_jump_past_failed_sn_is_legal(self):
        tr = _tracer()
        for sn in (1, 2, 3):
            self._submit(tr, sn)
        tr.point("dma_complete", track="ch0", sn=1)
        tr.point("dma_fault", track="ch0", sn=2, fault="transfer",
                 halting=False)
        tr.point("dma_complete", track="ch0", sn=3)
        assert _check(tr, self.ORACLE) == []

    def test_jump_past_reset_stranded_sns_is_legal(self):
        tr = _tracer()
        for sn in (1, 2, 3):
            self._submit(tr, sn)
        tr.point("dma_reset", track="ch0", sns=[1, 2])
        tr.point("dma_complete", track="ch0", sn=3)
        assert _check(tr, self.ORACLE) == []

    def test_channels_are_independent(self):
        tr = _tracer()
        self._submit(tr, 1, track="ch0")
        self._submit(tr, 1, track="ch1")
        tr.point("dma_complete", track="ch1", sn=1)
        tr.point("dma_complete", track="ch0", sn=1)
        assert _check(tr, self.ORACLE) == []


class TestSnCommitConsistency:
    ORACLE = "sn-commit-consistency"

    def test_commit_of_submitted_sn_is_legal(self):
        tr = _tracer()
        tr.point("dma_submit", track="ch0", sn=1, nbytes=4096, write=True)
        tr.point("write_commit", track="fs", op=1, ino=5, pids=[9],
                 sns=[(0, 1)])
        assert _check(tr, self.ORACLE) == []

    def test_commit_of_unsubmitted_sn_flagged(self):
        tr = _tracer()
        tr.point("write_commit", track="fs", op=1, ino=5, pids=[9],
                 sns=[(0, 1)])
        [v] = _check(tr, self.ORACLE)
        assert "embeds unsubmitted ch0/sn1" in v.message

    def test_per_inode_sn_monotonicity_flagged(self):
        tr = _tracer()
        for sn in (1, 2):
            tr.point("dma_submit", track="ch0", sn=sn, nbytes=4096,
                     write=True)
        tr.point("write_commit", track="fs", op=1, ino=5, pids=[9],
                 sns=[(0, 2)])
        tr.point("write_commit", track="fs", op=2, ino=5, pids=[10],
                 sns=[(0, 1)])  # older sn re-committed on the same inode
        [v] = _check(tr, self.ORACLE)
        assert "sn 1 on ch0 not above previous 2" in v.message

    def _failover(self, tr, amend_old, amend_new):
        tr.point("dma_submit", track="ch0", sn=1, nbytes=4096, write=True)
        tr.point("write_commit", track="fs", op=1, ino=5, pids=[9],
                 sns=[(0, 1)])
        tr.point("dma_fault", track="ch0", sn=1, fault="transfer",
                 halting=False)
        tr.point("dma_submit", track="ch1", sn=1, nbytes=4096, write=True)
        tr.point("sn_amend", track="fs", ino=5, old=amend_old,
                 new=amend_new)

    def test_failover_amend_is_legal(self):
        tr = _tracer()
        self._failover(tr, amend_old=[(0, 1)], amend_new=[(1, 1)])
        assert _check(tr, self.ORACLE) == []

    def test_amend_with_stale_old_tuple_flagged(self):
        tr = _tracer()
        self._failover(tr, amend_old=[(0, 99)], amend_new=[(1, 1)])
        violations = _check(tr, self.ORACLE)
        assert any("amend replaces" in v.message for v in violations)

    def test_amend_onto_poisoned_sn_flagged(self):
        tr = _tracer()
        self._failover(tr, amend_old=[(0, 1)], amend_new=[(0, 1)])
        [v] = _check(tr, self.ORACLE)
        assert "poisoned ch0/sn1" in v.message

    def test_amend_onto_unsubmitted_sn_flagged(self):
        tr = _tracer()
        self._failover(tr, amend_old=[(0, 1)], amend_new=[(1, 7)])
        [v] = _check(tr, self.ORACLE)
        assert "unsubmitted ch1/sn7" in v.message


class TestSpanCausality:
    ORACLE = "span-causality"

    def test_nested_spans_are_legal(self):
        tr = _tracer()
        tr.begin("write", track="op1", op=1)
        tr.begin("plan", track="op1", op=1)
        tr.end("plan", track="op1", op=1)
        tr.end("write", track="op1", op=1)
        assert _check(tr, self.ORACLE) == []

    def test_end_without_begin_flagged(self):
        tr = _tracer()
        tr.end("write", track="op1", op=1)
        [v] = _check(tr, self.ORACLE)
        assert "no open span" in v.message

    def test_interleaved_close_flagged(self):
        tr = _tracer()
        tr.begin("write", track="op1", op=1)
        tr.begin("plan", track="op1", op=1)
        tr.end("write", track="op1", op=1)  # closes over the open plan
        [v] = _check(tr, self.ORACLE)
        assert "innermost open span is 'plan'" in v.message

    def test_unclosed_span_at_eof_is_legal(self):
        # Truncated run(until=...) sweeps abandon in-flight ops.
        tr = _tracer()
        tr.begin("write", track="op1", op=1)
        assert _check(tr, self.ORACLE) == []

    def test_ops_have_independent_stacks(self):
        tr = _tracer()
        tr.begin("write", track="op1", op=1)
        tr.begin("write", track="op2", op=2)
        tr.end("write", track="op1", op=1)
        tr.end("write", track="op2", op=2)
        assert _check(tr, self.ORACLE) == []

    def test_park_wake_pairing_is_legal(self):
        tr = _tracer()
        tr.point("park", track="core0", op=1, ut="w0")
        tr.point("wake", track="runtime", op=1, ut="w0")
        tr.point("park", track="core0", op=2, ut="w0")
        tr.point("wake", track="runtime", op=2, ut="w0")
        assert _check(tr, self.ORACLE) == []

    def test_wake_without_park_flagged(self):
        tr = _tracer()
        tr.point("wake", track="runtime", op=1, ut="w0")
        [v] = _check(tr, self.ORACLE)
        assert "woken without a park" in v.message

    def test_double_park_flagged(self):
        tr = _tracer()
        tr.point("park", track="core0", op=1, ut="w0")
        tr.point("park", track="core0", op=2, ut="w0")
        [v] = _check(tr, self.ORACLE)
        assert "parked while parked" in v.message


class TestDeadlineAbortFinality:
    ORACLE = "deadline-abort-finality"

    def test_abort_then_silence_is_legal(self):
        tr = _tracer()
        tr.point("deadline_abort", track="fs", op=1, what="write")
        tr.point("write_ack", track="fs", op=2, ino=3)  # a different op
        assert _check(tr, self.ORACLE) == []

    @pytest.mark.parametrize("effect", ["write_commit", "write_ack"])
    def test_effect_after_abort_flagged(self, effect):
        tr = _tracer()
        tr.point("deadline_abort", track="fs", op=1, what="write")
        tr.point(effect, track="fs", op=1, ino=3, pids=[], sns=[])
        [v] = _check(tr, self.ORACLE)
        assert f"emitted {effect} after its deadline abort" in v.message


class TestClusterAckDurable:
    ORACLE = "cluster-ack-durable"

    def test_ack_at_quorum_is_legal(self):
        tr = _tracer()
        tr.point("repl_apply", track="node0", sn=3, epoch=1, n=3)
        tr.point("repl_apply", track="node1", sn=3, epoch=1, n=3)
        tr.point("repl_ack", track="node0", sn=3, epoch=1, quorum=2)
        assert _check(tr, self.ORACLE) == []

    def test_ack_below_quorum_flagged(self):
        tr = _tracer()
        tr.point("repl_apply", track="node0", sn=3, epoch=1, n=3)
        tr.point("repl_ack", track="node0", sn=3, epoch=1, quorum=2)
        [v] = _check(tr, self.ORACLE)
        assert "sn 3 acked with only 1 durable replica(s)" in v.message

    def test_truncating_unacked_suffix_is_legal(self):
        # Divergent never-acked records may be amended away freely.
        tr = _tracer()
        tr.point("repl_apply", track="node0", sn=2, epoch=1, n=2)
        tr.point("repl_apply", track="node1", sn=2, epoch=1, n=2)
        tr.point("repl_ack", track="node0", sn=2, epoch=1, quorum=2)
        tr.point("repl_apply", track="node1", sn=4, epoch=1, n=2)
        tr.point("repl_truncate", track="node1", at=2, epoch=2)
        assert _check(tr, self.ORACLE) == []

    def test_truncating_acked_data_below_quorum_flagged(self):
        tr = _tracer()
        tr.point("repl_apply", track="node0", sn=3, epoch=1, n=3)
        tr.point("repl_apply", track="node1", sn=3, epoch=1, n=3)
        tr.point("repl_ack", track="node0", sn=3, epoch=1, quorum=2)
        tr.point("repl_truncate", track="node1", at=1, epoch=2)
        [v] = _check(tr, self.ORACLE)
        assert "leaving acked sn 3 on only 1 replica(s)" in v.message

    def test_noop_on_repl_free_trace(self):
        tr = _tracer()
        tr.point("write_ack", track="fs", op=1, ino=2)
        assert _check(tr, self.ORACLE) == []


class TestReplicaSnMonotonic:
    ORACLE = "replica-sn-monotonic"

    def test_apply_truncate_reapply_is_legal(self):
        tr = _tracer()
        tr.point("repl_apply", track="node1", sn=3, epoch=1, n=3)
        tr.point("repl_truncate", track="node1", at=2, epoch=2)
        tr.point("repl_apply", track="node1", sn=3, epoch=2, n=1)
        assert _check(tr, self.ORACLE) == []

    def test_reapplying_old_sn_flagged(self):
        tr = _tracer()
        tr.point("repl_apply", track="node1", sn=3, epoch=1, n=3)
        tr.point("repl_apply", track="node1", sn=3, epoch=1, n=1)
        [v] = _check(tr, self.ORACLE)
        assert "applied sn 3 not above high-water 3" in v.message

    def test_epoch_regression_flagged(self):
        tr = _tracer()
        tr.point("repl_apply", track="node1", sn=2, epoch=3, n=2)
        tr.point("repl_apply", track="node1", sn=3, epoch=2, n=1)
        [v] = _check(tr, self.ORACLE)
        assert "epoch regressed 3 -> 2" in v.message


class TestOnePrimaryPerEpoch:
    ORACLE = "one-primary-per-lease-epoch"

    def _grant(self, tr, epoch, node):
        tr.point("lease_grant", track="lease", epoch=epoch, node=node,
                 expires=99)

    def test_grantee_acting_alone_is_legal(self):
        tr = _tracer()
        self._grant(tr, 1, "0")
        tr.point("repl_ship", track="net", frm=0, to=1, epoch=1,
                 lo=1, hi=2)
        tr.point("repl_ack", track="node0", sn=1, epoch=1, quorum=2)
        self._grant(tr, 2, "2")
        tr.point("repl_ship", track="net", frm=2, to=1, epoch=2,
                 lo=3, hi=3)
        assert _check(tr, self.ORACLE) == []

    def test_non_grantee_shipping_flagged(self):
        tr = _tracer()
        self._grant(tr, 1, "0")
        tr.point("repl_ship", track="net", frm=2, to=1, epoch=1,
                 lo=1, hi=1)
        [v] = _check(tr, self.ORACLE)
        assert "repl_ship by node 2 in epoch 1 granted to node 0" \
            in v.message

    def test_ungranted_epoch_flagged(self):
        tr = _tracer()
        tr.point("repl_ack", track="node0", sn=1, epoch=5, quorum=2)
        [v] = _check(tr, self.ORACLE)
        assert "epoch 5 which was never granted" in v.message

    def test_epoch_granted_twice_flagged(self):
        tr = _tracer()
        self._grant(tr, 1, "0")
        self._grant(tr, 1, "2")
        violations = _check(tr, self.ORACLE)
        assert any("granted after epoch" in v.message
                   or "granted twice" in v.message for v in violations)


class TestChecker:
    def test_subset_by_name_runs_only_those(self):
        tr = _tracer()
        tr.point("dma_complete", track="ch0", sn=1)  # sn-order breach
        tr.end("write", track="op1", op=1)           # causality breach
        only_spans = TraceChecker(["span-causality"]).check(tr.events)
        assert [v.oracle for v in only_spans] == ["span-causality"]

    def test_checker_is_reusable(self):
        checker = TraceChecker()
        tr = _tracer()
        tr.point("dma_complete", track="ch0", sn=1)
        assert checker.check(tr.events)
        assert checker.check(tr.events)  # fresh oracle state per call

    def test_violations_sorted_by_stream_position(self):
        tr = _tracer()
        tr.end("write", track="op1", op=1)
        tr.point("dma_complete", track="ch0", sn=1)
        violations = TraceChecker().check(tr.events)
        assert [v.index for v in violations] == \
            sorted(v.index for v in violations)

    def test_register_oracle_extends_default_set(self):
        @register_oracle
        class NoFrobnicate(Oracle):
            name = "no-frobnicate"

            def feed(self, ev):
                if ev.name == "frobnicate":
                    self.flag(ev, "frobnication observed")

        try:
            tr = _tracer()
            tr.point("frobnicate", track="fs")
            violations = TraceChecker().check(tr.events)
            assert [v.oracle for v in violations] == ["no-frobnicate"]
        finally:
            del ORACLES["no-frobnicate"]


# ---------------------------------------------------------------------------
# The real instrumentation: every variant's stream must be clean.
# ---------------------------------------------------------------------------
def _settle(fs, result):
    if result.is_async:
        yield result.pending
    continuation = getattr(result, "continuation", None)
    if continuation is not None:
        yield from continuation(fs.context())


def _mixed_workload(fs):
    ino = yield from fs.create(fs.context(), "/mix")
    sizes = (2048, 16384, 65536, 300, 8192)
    for i, nbytes in enumerate(sizes):
        payload = bytes([i + 1]) * nbytes
        result = yield from fs.write(fs.context(), ino, i * 4096,
                                     nbytes, payload)
        yield from _settle(fs, result)
    result = yield from fs.read(fs.context(), ino, 0, 65536,
                                want_data=True)
    yield from _settle(fs, result)
    yield from fs.truncate(fs.context(), ino, 10000)
    result = yield from fs.write(fs.context(), ino, 9000, 20000,
                                 bytes(20000))
    yield from _settle(fs, result)


@pytest.mark.parametrize("kind", FS_KINDS)
def test_variant_stream_passes_all_oracles(trace_oracles, kind):
    """The fixture replays every engine's trace through the full oracle
    set at teardown; the test only has to run the workload traced."""
    platform = Platform(PlatformConfig.single_node())
    fs = make_fs(kind, platform)
    run_proc(fs.engine, _mixed_workload(fs))
    assert trace_oracles and trace_oracles[0].emitted > 0
