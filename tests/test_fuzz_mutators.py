"""Property tests: mutators preserve validity, the shrinker is
deterministic and monotone (ISSUE 10 satellite).

The mutator property is the load-bearing one: every mutated
``FaultPlan``/``NetFaultPlan`` must still pass its *own* validators
(probability bounds, disjoint windows, ``max_faults`` budget) --
:meth:`ScenarioTuple.validate` builds the real plans, so hammering
``apply_mutation`` and validating is a direct test of the fuzzer's
"validity by construction" claim.
"""

import random

import pytest

from repro.fuzz import (FAULT_TOLERANT_KINDS, ScenarioTuple, WorkloadSpec,
                        apply_mutation, make_op, mutator_names,
                        run_scenario, schedule_from_seed, seed_corpus,
                        shrink)
from repro.fuzz.tuples import FaultSpec, N_CHANNELS


def test_mutation_chains_stay_valid():
    """Long random mutation chains never escape the validators."""
    rng = random.Random(1234)
    for start in seed_corpus():
        t = start
        for _ in range(60):
            _name, t = apply_mutation(rng, t)
            t.validate()  # raises on any invariant break
            plan = t.fault.build()
            if plan is not None:
                # The live plan re-ran FaultPlan's validators on
                # construction (probabilities, 1-based SNs, no
                # conflicting (channel, sn) entries, window bounds).
                assert plan.max_faults >= 0
            t.net.build()


def test_mutation_visits_every_dimension():
    """The registry covers all five tuple dimensions (a mutator
    rename/removal that silently narrows the search space fails
    here)."""
    names = mutator_names()
    for prefix in ("wl-", "fault-", "net-", "rt-", "crash-", "kind-"):
        assert any(n.startswith(prefix) for n in names), \
            f"no mutator for dimension {prefix}"


def test_mutation_is_seed_deterministic():
    t = seed_corpus()[0]
    def chain(seed):
        rng = random.Random(seed)
        cur = t
        out = []
        for _ in range(20):
            name, cur = apply_mutation(rng, cur)
            out.append((name, cur.key()))
        return out
    assert chain(7) == chain(7)
    assert chain(7) != chain(8)  # and the seed actually matters


def test_descriptor_faults_imply_tolerant_kind():
    """Mutators may add descriptor faults to any tuple, but the result
    must always land on a supervised kind."""
    rng = random.Random(99)
    t = ScenarioTuple(kind="nova",
                      workload=schedule_from_seed(5, n_ops=4))
    for _ in range(80):
        _name, t = apply_mutation(rng, t)
        if t.fault.descriptor_faulty:
            assert t.kind in FAULT_TOLERANT_KINDS


def test_invalid_tuple_rejected_by_validators():
    """The plan validators the mutators rely on actually reject bad
    input (guards against validation becoming a no-op)."""
    with pytest.raises(ValueError):
        ScenarioTuple(fault=FaultSpec(p_chan_halt=1.5)).validate()
    with pytest.raises(ValueError):
        ScenarioTuple(fault=FaultSpec(halts=((N_CHANNELS + 3, 1),))
                      ).validate()
    with pytest.raises(ValueError):
        ScenarioTuple(kind="nova",
                      fault=FaultSpec(p_chan_halt=0.1)).validate()


# -- shrinker ----------------------------------------------------------

def _torn_tuple():
    """A deliberately padded tuple whose mutant failure survives
    shrinking (cheap: three appends, crash sweep on)."""
    return ScenarioTuple(workload=WorkloadSpec(ops=(
        make_op("append", 0, 0, 300, 1, 1_000),
        make_op("read", 0, 0, 100, 0, 0),
        make_op("append", 0, 0, 700, 3, 20_000))))


def _mutant_pred(t):
    return run_scenario(t, mutant="skip_append_fence").failing


def test_shrink_deterministic_by_seed():
    t = _torn_tuple()
    a, evals_a = shrink(t, _mutant_pred, seed=3, max_evals=80)
    b, evals_b = shrink(t, _mutant_pred, seed=3, max_evals=80)
    assert a == b and evals_a == evals_b


def test_shrink_monotonically_non_increasing():
    t = _torn_tuple()
    sizes = []
    # Track every accepted intermediate through the predicate.
    def pred(x):
        ok = _mutant_pred(x)
        if ok:
            sizes.append(x.size())
        return ok
    mini, _ = shrink(t, pred, seed=0, max_evals=80)
    assert mini.size() <= t.size()
    # Every accepted candidate (predicate-true) that the shrinker kept
    # is <= the input size; the final result is the smallest seen.
    assert mini.size() == min(sizes)
    assert pred(mini)  # still failing after reduction


def test_shrink_keeps_failure_reproducing():
    mini, _ = shrink(_torn_tuple(), _mutant_pred, seed=0, max_evals=80)
    assert run_scenario(mini, mutant="skip_append_fence").failing
    assert not run_scenario(mini).failing


def test_shrink_passthrough_on_passing_tuple():
    """Nothing to shrink: a passing tuple comes back unchanged."""
    t = ScenarioTuple(workload=WorkloadSpec(ops=(
        make_op("write", 0, 0, 64, 5),)),)
    out, evals = shrink(t, lambda x: run_scenario(x).failing,
                        seed=0, max_evals=10)
    assert out == t and evals == 1
