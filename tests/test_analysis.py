"""Tests for metrics collection and report rendering."""

import pytest

from repro.analysis import LatencySeries, ThroughputMeter, Timeline
from repro.analysis.report import banner, fmt_series, fmt_table, sparkline


class TestLatencySeries:
    def test_empty_series(self):
        s = LatencySeries()
        assert s.mean() == 0.0
        assert s.p99() == 0.0
        assert s.maximum() == 0.0
        assert len(s) == 0

    def test_mean(self):
        s = LatencySeries()
        for v in (10, 20, 30):
            s.record(v)
        assert s.mean() == 20

    def test_percentiles_interpolate(self):
        s = LatencySeries()
        for v in range(1, 101):
            s.record(v)
        assert s.p50() == pytest.approx(50.5)
        assert s.percentile(100) == 100
        assert s.p99() == pytest.approx(99.01)

    def test_interleaved_records_and_queries(self):
        # The sorted view is cached between queries and must be
        # invalidated by every record() -- interleave appends with
        # p50/p99 reads and check against a freshly sorted reference.
        s = LatencySeries()
        values = [50, 10, 90, 30, 70, 20, 80, 60, 40, 100]
        for i, v in enumerate(values):
            s.record(v)
            ref = sorted(values[:i + 1])
            r = LatencySeries()
            for x in ref:
                r.record(x)
            assert s.p50() == pytest.approx(r.p50())
            assert s.p99() == pytest.approx(r.p99())
        assert s.percentile(100) == 100

    def test_direct_append_to_samples_is_seen(self):
        # Some call sites extend the public `samples` list directly;
        # the cache must notice the length change.
        s = LatencySeries()
        s.record(10)
        assert s.p50() == 10
        s.samples.append(30)
        assert s.p50() == pytest.approx(20)
        s.samples.extend([50, 70])
        assert s.percentile(100) == 70

    def test_incremental_insort_matches_full_sort(self):
        # Small appended tails are insorted into the cached view
        # instead of re-sorting; large backlogs re-sort.  Both paths
        # must agree with a scratch sort at every step.
        import random
        rng = random.Random(7)
        s = LatencySeries()
        reference = []
        for step in range(40):
            # Alternate tiny tails (insort path) with big batches
            # (past _INSORT_TAIL_MAX: the re-sort path).
            batch = 3 if step % 3 else 200
            for _ in range(batch):
                v = rng.randrange(1_000_000)
                s.record(v)
                reference.append(v)
            ref = sorted(reference)
            # list in reference mode, int64 ndarray in vector mode --
            # same sorted values either way.
            assert list(s._sorted_samples()) == ref
            assert s.percentile(100) == ref[-1]
            assert s.p50() == pytest.approx(
                (ref[(len(ref) - 1) // 2] + ref[len(ref) // 2]) / 2)

    def test_query_between_every_append_stays_exact(self):
        s = LatencySeries()
        seen = []
        for v in [9, 1, 8, 2, 7, 3, 6, 4, 5, 5, 0, 10]:
            s.record(v)
            seen.append(v)
            assert list(s._sorted_samples()) == sorted(seen)
            assert s.maximum() == max(seen)
            assert s.mean() == pytest.approx(sum(seen) / len(seen))

    def test_percentile_bounds(self):
        s = LatencySeries()
        s.record(5)
        with pytest.raises(ValueError):
            s.percentile(0)
        with pytest.raises(ValueError):
            s.percentile(101)

    def test_unit_helpers(self):
        s = LatencySeries()
        s.record(2500)
        assert s.mean_us() == 2.5


class TestThroughputMeter:
    def test_counts_only_inside_window(self):
        m = ThroughputMeter(100, 200)
        assert not m.record(50)
        assert m.record(150, nbytes=10)
        assert not m.record(200)
        assert m.ops == 1 and m.bytes == 10

    def test_rates(self):
        m = ThroughputMeter(0, 1_000_000_000)  # 1 second
        for t in range(0, 1000, 10):
            m.record(t, nbytes=100)
        assert m.ops_per_sec() == pytest.approx(100)
        assert m.bandwidth_gbps() == pytest.approx(100 * 100 / 1e9)

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            ThroughputMeter(5, 5)


class TestTimeline:
    def test_windowed_stats(self):
        t = Timeline()
        t.record(10, 1.0)
        t.record(20, 5.0)
        t.record(30, 2.0)
        assert t.max_value() == 5.0
        assert t.max_value(t_lo=25) == 2.0
        assert t.mean_value(t_lo=15, t_hi=25) == 5.0

    def test_bucketed_takes_max_per_bucket(self):
        t = Timeline()
        t.record(1, 1.0)
        t.record(2, 9.0)
        t.record(11, 3.0)
        assert t.bucketed(10) == [(0, 9.0), (10, 3.0)]

    def test_empty(self):
        t = Timeline()
        assert t.max_value() == 0.0
        assert t.mean_value() == 0.0


class TestReport:
    def test_table_alignment(self):
        out = fmt_table(["name", "value"], [["a", 1], ["bb", 22.5]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")

    def test_series_format(self):
        out = fmt_series("NOVA", [1, 2], [3.14159, 2.0])
        assert "1=3.14" in out and "2=2.00" in out

    def test_banner_contains_title(self):
        assert "Figure 9" in banner("Figure 9")

    def test_sparkline_length_bounded(self):
        out = sparkline(list(range(1000)), width=50)
        assert 0 < len(out) <= 60

    def test_sparkline_empty(self):
        assert sparkline([]) == ""
