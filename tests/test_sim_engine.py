"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import Engine, Interrupt, SimulationError
from tests.conftest import run_proc


class TestEngineBasics:
    def test_clock_starts_at_zero(self, engine):
        assert engine.now == 0

    def test_timeout_advances_clock(self, engine):
        def body():
            yield engine.timeout(123)
        run_proc(engine, body())
        assert engine.now == 123

    def test_zero_timeout_fires_at_same_time(self, engine):
        def body():
            yield engine.timeout(0)
        run_proc(engine, body())
        assert engine.now == 0

    def test_negative_timeout_rejected(self, engine):
        with pytest.raises(SimulationError):
            engine.timeout(-1)

    def test_run_until_advances_clock_even_when_queue_drains(self, engine):
        engine.run(until=500)
        assert engine.now == 500

    def test_run_until_does_not_fire_later_events(self, engine):
        fired = []
        def body():
            yield engine.timeout(1000)
            fired.append(engine.now)
        engine.process(body())
        engine.run(until=400)
        assert fired == []
        engine.run()
        assert fired == [1000]

    def test_peek_reports_next_event_time(self, engine):
        engine.timeout(77)
        assert engine.peek() == 77

    def test_reentrant_run_rejected(self, engine):
        def body():
            engine.run()
            yield engine.timeout(1)
        with pytest.raises(SimulationError):
            run_proc(engine, body())


class TestEvents:
    def test_succeed_delivers_value(self, engine):
        ev = engine.event()
        got = []
        def body():
            got.append((yield ev))
        engine.process(body())
        ev.succeed(42)
        engine.run()
        assert got == [42]

    def test_double_succeed_rejected(self, engine):
        ev = engine.event()
        ev.succeed()
        with pytest.raises(SimulationError):
            ev.succeed()

    def test_fail_requires_exception(self, engine):
        ev = engine.event()
        with pytest.raises(SimulationError):
            ev.fail("not an exception")

    def test_fail_throws_into_waiter(self, engine):
        ev = engine.event()
        def body():
            with pytest.raises(ValueError):
                yield ev
            return "handled"
        proc = engine.process(body())
        ev.fail(ValueError("boom"))
        engine.run()
        assert proc.value == "handled"

    def test_callback_after_processed_runs_immediately(self, engine):
        ev = engine.event()
        ev.succeed(7)
        engine.run()
        seen = []
        ev.add_callback(lambda e: seen.append(e.value))
        assert seen == [7]

    def test_event_states(self, engine):
        ev = engine.event()
        assert not ev.triggered and not ev.processed
        ev.succeed(1)
        assert ev.triggered and not ev.processed
        engine.run()
        assert ev.processed


class TestProcesses:
    def test_return_value_becomes_event_value(self, engine):
        def body():
            yield engine.timeout(5)
            return "done"
        assert run_proc(engine, body()) == "done"

    def test_non_generator_rejected(self, engine):
        with pytest.raises(SimulationError):
            engine.process(lambda: None)

    def test_yielding_non_event_fails_process(self, engine):
        def body():
            yield 42
        proc = engine.process(body())
        with pytest.raises(SimulationError):
            engine.run()
        assert not proc.ok

    def test_unhandled_process_exception_surfaces(self, engine):
        def body():
            yield engine.timeout(1)
            raise RuntimeError("kaput")
        engine.process(body())
        with pytest.raises(RuntimeError, match="kaput"):
            engine.run()

    def test_waiter_observes_process_failure(self, engine):
        def child():
            yield engine.timeout(1)
            raise RuntimeError("child died")
        def parent():
            with pytest.raises(RuntimeError):
                yield engine.process(child())
            return "survived"
        assert run_proc(engine, parent()) == "survived"

    def test_process_waits_on_subprocess_value(self, engine):
        def child():
            yield engine.timeout(10)
            return 99
        def parent():
            value = yield engine.process(child())
            return value + 1
        assert run_proc(engine, parent()) == 100

    def test_interrupt_delivers_cause(self, engine):
        def body():
            try:
                yield engine.timeout(1000)
            except Interrupt as exc:
                return ("interrupted", exc.cause, engine.now)
        proc = engine.process(body())
        def killer():
            yield engine.timeout(10)
            proc.interrupt("reason")
        engine.process(killer())
        engine.run()
        # The abandoned timeout still drains at t=1000 (no cancellation,
        # as in SimPy), but the interrupt arrived at t=10.
        assert proc.value == ("interrupted", "reason", 10)

    def test_interrupt_finished_process_rejected(self, engine):
        def body():
            yield engine.timeout(1)
        proc = engine.process(body())
        engine.run()
        with pytest.raises(SimulationError):
            proc.interrupt()


class TestCompositeEvents:
    def test_any_of_fires_on_first(self, engine):
        def body():
            result = yield engine.any_of([engine.timeout(50, "a"),
                                          engine.timeout(10, "b")])
            return (sorted(result.values()), engine.now)
        assert run_proc(engine, body()) == (["b"], 10)

    def test_all_of_waits_for_every_event(self, engine):
        def body():
            result = yield engine.all_of([engine.timeout(50, "a"),
                                          engine.timeout(10, "b")])
            return sorted(result.values())
        assert run_proc(engine, body()) == ["a", "b"]
        assert engine.now == 50

    def test_all_of_empty_fires_immediately(self, engine):
        def body():
            result = yield engine.all_of([])
            return result
        assert run_proc(engine, body()) == {}

    def test_any_of_same_instant_collects_all_fired(self, engine):
        def body():
            result = yield engine.any_of([engine.timeout(5, "x"),
                                          engine.timeout(5, "y")])
            return set(result.values())
        # Both fire at t=5; the first processed triggers AnyOf, which
        # reports at least that one.
        assert "x" in run_proc(engine, body())


class TestDeterminism:
    def test_same_time_events_fire_in_schedule_order(self, engine):
        order = []
        for tag in ("first", "second", "third"):
            ev = engine.timeout(10, tag)
            ev.add_callback(lambda e: order.append(e.value))
        engine.run()
        assert order == ["first", "second", "third"]

    def test_identical_runs_produce_identical_traces(self):
        def trace():
            eng = Engine()
            log = []
            def worker(name, period, count):
                for _ in range(count):
                    yield eng.timeout(period)
                    log.append((eng.now, name))
            for i in range(5):
                eng.process(worker(f"w{i}", 7 + i, 20))
            eng.run()
            return log
        assert trace() == trace()

    def test_call_at_runs_at_absolute_time(self, engine):
        hits = []
        engine.call_at(250, lambda: hits.append(engine.now))
        engine.run()
        assert hits == [250]

    def test_call_at_past_rejected(self, engine):
        def body():
            yield engine.timeout(100)
        run_proc(engine, body())
        with pytest.raises(SimulationError):
            engine.call_at(50, lambda: None)


class TestCancellation:
    def test_cancel_pending_event(self, engine):
        ev = engine.event()
        assert ev.cancel()
        assert ev.cancelled and not ev.triggered

    def test_cancel_is_idempotent(self, engine):
        ev = engine.event()
        assert ev.cancel()
        assert not ev.cancel()

    def test_cancel_processed_event_rejected(self, engine):
        ev = engine.event()
        ev.succeed()
        engine.run()
        with pytest.raises(SimulationError):
            ev.cancel()

    def test_cancelled_event_ignores_callbacks(self, engine):
        ev = engine.event()
        ev.cancel()
        fired = []
        ev.add_callback(lambda e: fired.append(e))  # silently dropped
        with pytest.raises(SimulationError):
            ev.succeed()  # a cancelled event is dead: late trigger rejected
        assert fired == []

    def test_cancelled_timer_does_not_advance_clock(self, engine):
        # The scheduled entry stays in the heap but must be skipped
        # without moving time forward -- otherwise a cancelled timeout
        # would still stretch the simulation.
        long_timer = engine.timeout(10_000)
        engine.timeout(5)
        long_timer.cancel()
        engine.run()
        assert engine.now == 5

    def test_any_of_detaches_from_losers(self, engine):
        fast = engine.timeout(10)
        slow = engine.event()
        def body():
            yield engine.any_of([fast, slow])
        run_proc(engine, body())
        # The race is decided: the loser must not retain the composite's
        # callback (that is the waiter leak this guards against).
        assert not slow.callbacks
        assert not slow.cancelled  # shared events are left alive

    def test_any_of_cancel_losers(self, engine):
        fast = engine.timeout(10)
        slow = engine.timeout(10_000)
        def body():
            yield engine.any_of([fast, slow], cancel_losers=True)
        run_proc(engine, body())
        assert slow.cancelled
        engine.run()
        assert engine.now == 10  # the losing timer never fires


class TestEngineStats:
    """The hot-path bookkeeping added for the performance work."""

    def test_stats_counts_fired_events(self, engine):
        def body():
            for _ in range(5):
                yield engine.sleep(10)
        run_proc(engine, body())
        stats = engine.stats.as_dict()
        assert stats["events_fired"] >= 5
        assert set(stats) == {"events_fired", "events_cancelled",
                              "heap_compactions", "sleeps_reused"}

    def test_pooled_sleeps_are_reused(self, engine):
        def body():
            for _ in range(100):
                yield engine.sleep(1)
        run_proc(engine, body())
        # After the first sleep retires into the pool, every subsequent
        # one recycles it instead of allocating.
        assert engine.stats.sleeps_reused >= 99

    def test_done_event_resumes_without_scheduling(self, engine):
        log = []
        def body():
            yield engine.done
            log.append(engine.now)
            yield engine.sleep(7)
            yield engine.done
            log.append(engine.now)
        run_proc(engine, body())
        assert log == [0, 7]
        assert engine.done.processed and engine.done.value is None

    def test_cancel_heavy_run_does_not_grow_heap_unboundedly(self, engine):
        # The satellite regression test: schedule-and-cancel in a loop
        # used to leave every dead entry in the heap until drain time.
        def body():
            for _ in range(3000):
                t = engine.timeout(10_000_000)
                t.cancel()
                yield engine.sleep(1)
        run_proc(engine, body())
        assert engine.stats.events_cancelled == 3000
        assert engine.stats.heap_compactions > 0
        # Lazy compaction keeps the heap near the live-entry count, not
        # the cancellation count.
        assert engine.heap_size < 200

    def test_compaction_preserves_pending_order(self, engine):
        fired = []
        def body():
            dead = [engine.timeout(50_000 + i) for i in range(200)]
            keep = engine.timeout(500)
            for t in dead:
                t.cancel()
            yield keep
            fired.append(engine.now)
        run_proc(engine, body())
        assert fired == [500]

    def test_any_of_single_event_fast_path(self, engine):
        t = engine.timeout(5)
        got = []
        def body():
            fired = yield engine.any_of([t])
            got.append(dict(fired))
        run_proc(engine, body())
        assert got == [{t: None}]

    def test_all_of_single_event_fast_path(self, engine):
        ev = engine.event()
        got = []
        def body():
            values = yield engine.all_of([ev])
            got.append(values)
        def trigger():
            yield engine.sleep(3)
            ev.succeed("x")
        engine.process(trigger())
        run_proc(engine, body())
        assert got == [{ev: "x"}]
