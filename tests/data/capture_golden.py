"""Capture the golden pre-refactor summary metrics for the pipeline
equivalence tests (tests/test_golden_equivalence.py).

Run from the repo root::

    PYTHONPATH=src python tests/data/capture_golden.py

The output file ``tests/data/golden_pre_refactor.json`` was produced at
the last pre-refactor commit; the refactored I/O pipeline must
reproduce every number *exactly* (the simulator is deterministic under
fixed seeds, so any drift means the refactor changed behaviour).
"""

import json
import os

from repro.analysis.sweep import run_sweep
from repro.workloads import FxmarkConfig
from repro.workloads.fxmark import measure_single_op
from repro.workloads.hwbench import measure_copy_bandwidth

HERE = os.path.dirname(os.path.abspath(__file__))
OUT = os.path.join(HERE, "golden_pre_refactor.json")

FIG02_CORES = (1, 4, 16)
FIG08_KINDS = ("nova", "nova-dma", "odinfs", "easyio", "naive")
FIG08_SIZES = (4096, 65536)
FIG09_KINDS = ("nova", "nova-dma", "odinfs", "easyio")
FIG09_WORKERS = (1, 4)


def fig02():
    out = {}
    for write in (True, False):
        d = "write" if write else "read"
        for cores in FIG02_CORES:
            key = f"{d}/memcpy-4K/{cores}"
            out[key] = measure_copy_bandwidth(
                "memcpy", write, cores, 4096).bandwidth_gbps
            key = f"{d}/DMA-64K-B/{cores}"
            out[key] = measure_copy_bandwidth(
                "dma", write, cores, 65536, batch=4).bandwidth_gbps
    return out


def fig08(elide=False):
    out = {}
    for op in ("write", "read"):
        for kind in FIG08_KINDS:
            for size in FIG08_SIZES:
                lat, cpu, bd = measure_single_op(kind, op, size, elide=elide)
                out[f"{op}/{kind}/{size}"] = {
                    "lat": lat, "cpu": cpu,
                    "breakdown": {k: bd[k] for k in sorted(bd)},
                }
    return out


def fig09(elide=False, processes=1):
    """The 16-point sweep.  ``elide``/``processes`` must not change a
    single number (the equivalence tests run all combinations)."""
    keys, configs = [], []
    for op in ("write", "read"):
        for kind in FIG09_KINDS:
            for workers in FIG09_WORKERS:
                keys.append(f"{op}/{kind}/{workers}")
                configs.append(FxmarkConfig(
                    kind=kind, op=op, io_size=16384, workers=workers,
                    duration_us=1200, warmup_us=300, elide=elide))
    return dict(zip(keys, run_sweep(configs, processes=processes)))


def capture():
    return {"fig02": fig02(), "fig08": fig08(), "fig09": fig09()}


if __name__ == "__main__":
    golden = capture()
    with open(OUT, "w") as f:
        json.dump(golden, f, indent=1, sort_keys=True)
        f.write("\n")
    print(f"wrote {OUT}")
