"""Tests for the page allocator and its read-safe deferred frees."""

import pytest

from repro.fs.alloc import PageAllocator
from repro.fs.pmimage import PMImage


@pytest.fixture
def alloc():
    return PageAllocator(PMImage())


class TestAllocate:
    def test_fresh_ids_are_sequential(self, alloc):
        assert alloc.allocate(3) == [0, 1, 2]
        assert alloc.allocate(2) == [3, 4]

    def test_negative_count_rejected(self, alloc):
        with pytest.raises(ValueError):
            alloc.allocate(-1)

    def test_zero_count(self, alloc):
        assert alloc.allocate(0) == []

    def test_recycles_freed_pages_first(self, alloc):
        ids = alloc.allocate(4)
        alloc.free(ids[:2])
        again = alloc.allocate(3)
        assert again[:2] == ids[:2]
        assert again[2] == 4

    def test_counters(self, alloc):
        alloc.allocate(5)
        alloc.free([0, 1])
        assert alloc.pages_allocated == 5
        assert alloc.pages_freed == 2
        assert alloc.free_pages == 2


class TestDeferredFree:
    def test_free_with_no_readers_is_immediate(self, alloc):
        ids = alloc.allocate(2)
        alloc.free(ids)
        assert alloc.free_pages == 2
        assert alloc.deferred_pages == 0

    def test_free_during_read_is_deferred(self, alloc):
        ids = alloc.allocate(2)
        token = alloc.reader_enter()
        alloc.free(ids)
        assert alloc.free_pages == 0
        assert alloc.deferred_pages == 2
        alloc.reader_exit(token)
        assert alloc.free_pages == 2
        assert alloc.deferred_pages == 0

    def test_only_reads_in_flight_at_free_time_block_it(self, alloc):
        ids = alloc.allocate(1)
        t1 = alloc.reader_enter()
        alloc.free(ids)
        # A later reader must NOT block the already-parked free.
        t2 = alloc.reader_enter()
        alloc.reader_exit(t1)
        assert alloc.free_pages == 1
        alloc.reader_exit(t2)

    def test_multiple_blockers_all_must_drain(self, alloc):
        ids = alloc.allocate(1)
        t1 = alloc.reader_enter()
        t2 = alloc.reader_enter()
        alloc.free(ids)
        alloc.reader_exit(t1)
        assert alloc.free_pages == 0
        alloc.reader_exit(t2)
        assert alloc.free_pages == 1

    def test_deferred_page_not_reallocated_while_parked(self, alloc):
        ids = alloc.allocate(1)
        token = alloc.reader_enter()
        alloc.free(ids)
        fresh = alloc.allocate(1)
        assert fresh != ids, "parked page was handed out while a read flies"
        alloc.reader_exit(token)

    def test_empty_free_is_noop(self, alloc):
        alloc.free([])
        assert alloc.pages_freed == 0
