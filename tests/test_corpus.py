"""Replay the committed regression corpus (tests/corpus/*.json).

Every reproducer is a minimal scenario tuple the fuzzer shrank from a
failing campaign (ISSUE 10 satellite).  The tier-1 contract, per file:

* **on main** the tuple passes every detector (so a reproducer that
  starts failing here means a real regression, not fuzz flake);
* **with its planted mutant** the tuple fails, and the expected
  detector:check pairs all fire (so the crash model keeps catching
  the exact bug class the reproducer encodes).
"""

import os

import pytest

from repro.fuzz import ScenarioTuple, load_reproducers, run_scenario
from repro.core.easyio import CRASH_MUTANTS

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")

REPRODUCERS = load_reproducers(CORPUS_DIR)


def test_corpus_is_seeded():
    """The committed corpus covers both planted mutants."""
    assert REPRODUCERS, "tests/corpus/ is empty"
    mutants = {p["mutant"] for _, p in REPRODUCERS}
    assert set(CRASH_MUTANTS) <= mutants


@pytest.mark.parametrize("fname,payload", REPRODUCERS,
                         ids=[f for f, _ in REPRODUCERS])
class TestReproducer:
    def test_tuple_is_valid_and_keyed(self, fname, payload):
        t = ScenarioTuple.from_dict(payload["tuple"])
        t.validate()
        assert t.key() == payload["key"], \
            "committed tuple was edited without refreshing its key"

    def test_passes_on_main(self, fname, payload):
        t = ScenarioTuple.from_dict(payload["tuple"])
        result = run_scenario(t)
        assert not result.failing, \
            f"reproducer now fails on main: {result.findings}"

    def test_fails_with_mutant(self, fname, payload):
        t = ScenarioTuple.from_dict(payload["tuple"])
        result = run_scenario(t, mutant=payload["mutant"])
        assert result.failing, "planted mutant no longer detected"
        fired = {f"{f.detector}:{f.check}" for f in result.findings}
        missing = set(payload["expect"]) - fired
        assert not missing, \
            f"expected detectors did not fire: {sorted(missing)}"

    def test_shrunk_size_recorded(self, fname, payload):
        t = ScenarioTuple.from_dict(payload["tuple"])
        assert t.size() == payload["shrink"]["to_size"]
        assert payload["shrink"]["to_size"] <= payload["shrink"]["from_size"]
