"""Property-based tests for the I/O planner (seeded stdlib ``random``).

Hundreds of randomised cases, one fixed seed each, no external
dependency: every generated plan must *tile* its byte range exactly --
no gaps, no overlaps, extent bounds respected -- and CoW preparation
must allocate exactly the pages the range spans, place the payload at
the right offset inside them, and report page-granular run sizes.
"""

import random

import pytest

from repro.fs import NovaFS, PMImage
from repro.fs.structures import PAGE_SIZE, FileKind, MemInode, PageMapping
from repro.io.plan import IoPlanner, run_sizes
from tests.conftest import run_proc

READ_CASES = 300
COW_CASES = 40


def _random_index(rng, max_pages=32):
    """A random page index mixing holes, fragments, and adjacent runs."""
    index = {}
    pid = rng.randrange(10, 1000)
    for off in range(max_pages):
        roll = rng.random()
        if roll < 0.3:
            continue                          # hole
        pid = rng.randrange(10, 10_000) if roll < 0.5 else pid + 1
        index[off] = PageMapping(pid)
    return index


class TestReadPlanProperties:
    def test_plans_tile_the_range_exactly(self):
        rng = random.Random(0xC0FFEE)
        planner = IoPlanner(None)
        for _ in range(READ_CASES):
            m = MemInode(ino=1, kind=FileKind.FILE)
            m.index = _random_index(rng)
            offset = rng.randrange(0, 34 * PAGE_SIZE)
            nbytes = rng.randrange(1, 6 * PAGE_SIZE)
            plan = planner.read_plan(m, offset, nbytes)
            first = offset // PAGE_SIZE
            last = (offset + nbytes - 1) // PAGE_SIZE

            # Tiling: extents advance page by page, no gaps or overlaps
            # (a hole extent covers exactly one page).
            pos = first
            for e in plan.extents:
                assert e.pgoff == pos, "gap or overlap between extents"
                pos += len(e.page_ids) or 1
            assert pos == last + 1, "plan does not cover the full range"

            # Bounds: every page is inside the requested range and the
            # plan's byte accounting is page-granular.
            assert plan.offset == offset and plan.nbytes == nbytes
            assert plan.mapped_bytes == \
                sum(len(e.page_ids) for e in plan.extents) * PAGE_SIZE
            assert plan.run_sizes == \
                [e.nbytes for e in plan.extents if not e.is_hole]

            # Fidelity: data extents are physically contiguous and agree
            # with the index; holes sit exactly where mappings miss.
            for e in plan.extents:
                for i, pid in enumerate(e.page_ids):
                    assert m.index[e.pgoff + i].page_id == pid
                    if i:
                        assert pid == e.page_ids[i - 1] + 1, \
                            "data extent not physically contiguous"
                if e.is_hole:
                    assert m.index.get(e.pgoff) is None

    def test_every_mapped_page_appears_exactly_once(self):
        rng = random.Random(0xBEEF)
        planner = IoPlanner(None)
        for _ in range(READ_CASES // 3):
            m = MemInode(ino=1, kind=FileKind.FILE)
            m.index = _random_index(rng)
            offset = rng.randrange(0, 20 * PAGE_SIZE)
            nbytes = rng.randrange(1, 8 * PAGE_SIZE)
            plan = planner.read_plan(m, offset, nbytes)
            first = offset // PAGE_SIZE
            last = (offset + nbytes - 1) // PAGE_SIZE
            planned = {}
            for e in plan.extents:
                for i, pid in enumerate(e.page_ids):
                    off = e.pgoff + i
                    assert off not in planned, f"page {off} planned twice"
                    planned[off] = pid
            expected = {off: m.index[off].page_id
                        for off in range(first, last + 1)
                        if off in m.index}
            assert planned == expected


class TestCowPrepProperties:
    """prepare_cow driven through a real NovaFS with random writes."""

    def test_cow_preparation_invariants(self, node):
        rng = random.Random(42)
        fs = NovaFS(node, PMImage()).mount()
        ino = run_proc(fs.engine, fs.create(fs.context(), "/cow"))
        planner = fs.io.planner
        for i in range(COW_CASES):
            # Every other round, a real write evolves the file so the
            # preparation sees pre-existing pages (merge paths).
            if i % 2:
                off = rng.randrange(0, 8 * PAGE_SIZE)
                n = rng.randrange(1, 2 * PAGE_SIZE)
                run_proc(fs.engine, fs.write(fs.context(), ino, off, n,
                                             rng.randbytes(n)))
            m = fs._mem[ino]
            size_before = m.size
            offset = rng.randrange(0, 10 * PAGE_SIZE)
            nbytes = rng.randrange(1, 4 * PAGE_SIZE)
            payload = rng.randbytes(nbytes)
            prep = run_proc(fs.engine, planner.prepare_cow(
                fs.context(), m, offset, nbytes, payload))
            first = offset // PAGE_SIZE
            last = (offset + nbytes - 1) // PAGE_SIZE
            npages = last - first + 1

            # Exactly the spanned pages, each a fresh distinct page.
            assert prep.pgoff == first
            assert len(prep.page_ids) == npages
            assert len(set(prep.page_ids)) == npages
            assert prep.size_after == max(size_before, offset + nbytes)

            # Run sizes are page-granular and account for every page.
            assert prep.run_sizes == run_sizes(prep.page_ids)
            assert sum(prep.run_sizes) == npages * PAGE_SIZE

            # The payload lands at the right place inside the new pages.
            assert all(len(c) == PAGE_SIZE for c in prep.contents)
            joined = b"".join(prep.contents)
            lo = offset - first * PAGE_SIZE
            assert joined[lo:lo + nbytes] == payload

            # The write plan wraps the same pages, in order, tiled.
            plan = planner.write_plan(m, prep)
            assert plan.page_ids == prep.page_ids
            assert plan.contents == prep.contents
            pos = first
            for e in plan.extents:
                assert e.pgoff == pos and not e.is_hole
                pos += len(e.page_ids)
            assert pos == last + 1

    def test_elided_payload_prepares_same_shape(self, node):
        """Payload elision changes contents, never geometry."""
        rng = random.Random(7)
        fs = NovaFS(node, PMImage()).mount()
        ino = run_proc(fs.engine, fs.create(fs.context(), "/e"))
        planner = fs.io.planner
        for _ in range(10):
            m = fs._mem[ino]
            offset = rng.randrange(0, 6 * PAGE_SIZE)
            nbytes = rng.randrange(1, 3 * PAGE_SIZE)
            prep = run_proc(fs.engine, planner.prepare_cow(
                fs.context(), m, offset, nbytes, None))
            first = offset // PAGE_SIZE
            last = (offset + nbytes - 1) // PAGE_SIZE
            assert len(prep.page_ids) == last - first + 1
            assert len(prep.contents) == len(prep.page_ids)


class TestShadowModel:
    """Random writes against a plain-bytearray shadow file."""

    @pytest.mark.parametrize("seed", [3, 11])
    def test_random_writes_match_shadow(self, node, seed):
        rng = random.Random(seed)
        fs = NovaFS(node, PMImage()).mount()
        ino = run_proc(fs.engine, fs.create(fs.context(), "/s"))
        shadow = bytearray()
        for _ in range(60):
            offset = rng.randrange(0, 20 * PAGE_SIZE)
            nbytes = rng.randrange(1, 3 * PAGE_SIZE)
            payload = rng.randbytes(nbytes)
            run_proc(fs.engine, fs.write(fs.context(), ino, offset,
                                         nbytes, payload))
            if len(shadow) < offset:
                shadow.extend(b"\x00" * (offset - len(shadow)))
            shadow[offset:offset + nbytes] = payload
        m = fs._mem[ino]
        assert m.size == len(shadow)
        assert fs._collect_data(m, 0, m.size) == bytes(shadow)
