"""Campaign determinism and scheduling (ISSUE 10 acceptance).

The acceptance bar: a seeded campaign is *bit-reproducible* -- same
seed => same tuple sequence, coverage signatures, and verdicts, and a
parallel run walks exactly the same path as a serial one.  The
fingerprint hashes the full walk, so one equality pins all three.
"""

from repro.fuzz import (CorpusEntry, FuzzConfig, ScenarioTuple,
                        pick_parents, run_campaign, seed_corpus)

SMALL = dict(budget=14, batch=4)


def test_campaign_bit_reproducible_same_seed():
    a = run_campaign(FuzzConfig(seed=11, **SMALL))
    b = run_campaign(FuzzConfig(seed=11, **SMALL))
    assert a.fingerprint() == b.fingerprint()
    assert a.walk == b.walk
    assert a.coverage.signature() == b.coverage.signature()


def test_campaign_serial_equals_parallel():
    serial = run_campaign(FuzzConfig(seed=11, processes=1, **SMALL))
    parallel = run_campaign(FuzzConfig(seed=11, processes=4, **SMALL))
    assert serial.fingerprint() == parallel.fingerprint()
    assert serial.walk == parallel.walk
    assert [f.key for f in serial.failures] \
        == [f.key for f in parallel.failures]


def test_campaign_seed_changes_walk():
    a = run_campaign(FuzzConfig(seed=11, **SMALL))
    b = run_campaign(FuzzConfig(seed=12, **SMALL))
    # Generation 0 (the seeds) is shared; the mutated tail must differ.
    assert a.fingerprint() != b.fingerprint()


def test_campaign_respects_budget_and_reports():
    r = run_campaign(FuzzConfig(seed=3, **SMALL))
    assert r.executed == SMALL["budget"]
    assert len(r.walk) == r.executed
    assert r.generations >= 2  # seeds + at least one mutated batch
    assert len(r.coverage) > 0
    assert r.distinct_signatures >= 2
    d = r.as_dict()
    assert d["executed"] == r.executed
    assert d["fingerprint"] == r.fingerprint()


def test_campaign_finds_planted_mutant_from_seeds():
    """The committed-corpus pipeline end-to-end: a mutant campaign
    detects the planted bug within the seed generation."""
    r = run_campaign(FuzzConfig(seed=1, budget=10, batch=4,
                                mutant="skip_append_fence",
                                stop_after_failures=1))
    assert r.failures, "campaign missed the planted mutant"
    assert any(f[0] == "crash" for fail in r.failures
               for f in fail.findings)


def test_mutant_campaign_keeps_supervised_kinds():
    r = run_campaign(FuzzConfig(seed=2, budget=8, batch=4,
                                mutant="skip_append_fence"))
    assert r.executed == 8  # no run rejected a planted mutant
    for fail in r.failures:
        assert ScenarioTuple.from_dict(fail.tuple_dict).kind == "easyio"


def test_energy_scheduler_prefers_novel_parents():
    rich = CorpusEntry(seed_corpus()[0], novel=50, chosen=1)
    poor = CorpusEntry(seed_corpus()[1], novel=0, chosen=10)
    assert rich.energy > poor.energy
    import random
    picks = pick_parents(random.Random(0), [rich, poor], 200)
    assert picks.count(rich) > picks.count(poor)


def test_stop_after_failures_short_circuits():
    full = run_campaign(FuzzConfig(seed=1, budget=30, batch=4,
                                   mutant="skip_append_fence"))
    early = run_campaign(FuzzConfig(seed=1, budget=30, batch=4,
                                    mutant="skip_append_fence",
                                    stop_after_failures=1))
    assert early.failures
    assert early.executed <= full.executed
