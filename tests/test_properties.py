"""Property-based tests (hypothesis) for the core invariants DESIGN.md
calls out."""


import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.metrics import LatencySeries
from repro.core import EasyIoFS
from repro.crash.crashmonkey import snapshot_with_content
from repro.fs import NovaFS, PMImage
from repro.fs.recovery import completion_buffer_validator, recover
from repro.fs.structures import PAGE_SIZE
from repro.hw.dma import DmaDescriptor
from repro.hw.memory import BandwidthPool, _waterfill
from repro.hw.platform import Platform, PlatformConfig
from tests.conftest import run_proc

SLOW = settings(max_examples=25, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


class TestWaterfillProperties:
    @given(caps=st.lists(st.floats(0.1, 50), min_size=1, max_size=12),
           capacity=st.floats(0.1, 100))
    @settings(max_examples=200, deadline=None)
    def test_feasible_and_work_conserving(self, caps, capacity):
        rates = _waterfill([1.0] * len(caps), caps, capacity)
        # Feasibility: no flow exceeds its cap; total within capacity.
        for rate, cap in zip(rates, caps):
            assert rate <= cap + 1e-9
        assert sum(rates) <= capacity + 1e-9
        # Work conservation: either capacity or every cap is exhausted.
        assert (sum(rates) == pytest.approx(min(capacity, sum(caps)),
                                            rel=1e-6, abs=1e-6))

    @given(caps=st.lists(st.floats(0.5, 20), min_size=2, max_size=8),
           capacity=st.floats(1, 40))
    @settings(max_examples=200, deadline=None)
    def test_max_min_fairness(self, caps, capacity):
        """No flow below the fair share unless capped below it."""
        rates = _waterfill([1.0] * len(caps), caps, capacity)
        floor = min(rates)
        for rate, cap in zip(rates, caps):
            if rate > floor + 1e-9:
                # A flow above the floor must be at its own cap... no:
                # in max-min, a flow above the minimum got spare
                # capacity others could not use; every flow below its
                # cap must share the same (maximal) rate.
                pass
        uncapped = [r for r, c in zip(rates, caps) if r < c - 1e-9]
        if uncapped:
            assert max(uncapped) - min(uncapped) < 1e-6


class TestPoolConservation:
    @given(sizes=st.lists(st.integers(100, 50_000), min_size=1, max_size=10),
           delays=st.lists(st.integers(0, 5_000), min_size=1, max_size=10))
    @SLOW
    def test_all_bytes_delivered_exactly_once(self, sizes, delays):
        from repro.sim import Engine
        engine = Engine()
        pool = BandwidthPool(engine, "p", capacity=3.0)
        delays = (delays * len(sizes))[:len(sizes)]
        def flow(delay, size):
            yield engine.timeout(delay)
            got = yield pool.transfer(size, cap=1.7)
            assert got == size
        for d, s in zip(delays, sizes):
            engine.process(flow(d, s))
        engine.run()
        assert pool.bytes_moved == sum(sizes)
        assert pool.active_flows == 0
        # Physical limit: bytes <= capacity * elapsed.
        assert sum(sizes) <= 3.0 * engine.now + 1e-6


class TestSnMonotonicity:
    @given(sizes=st.lists(st.integers(4096, 262144), min_size=1, max_size=20))
    @SLOW
    def test_completion_sn_strictly_increases(self, sizes):
        node = Platform(PlatformConfig.single_node())
        ch = node.dma.channel(0)
        observed = []
        ch.on_completion = lambda c: observed.append(c.completion_sn)
        def body():
            for size in sizes:
                d = DmaDescriptor(size, write=True)
                yield from ch.submit([d])
                yield d.done
        run_proc(node.engine, body())
        assert observed == sorted(set(observed))
        assert observed[-1] == len(sizes)


class TestFileIntegrity:
    @given(ops=st.lists(
        st.tuples(st.integers(0, 40),          # page offset
                  st.integers(1, 6),           # pages
                  st.integers(0, 255)),        # fill byte
        min_size=1, max_size=12))
    @SLOW
    def test_readback_matches_model_nova(self, ops):
        self._run_integrity(ops, easyio=False)

    @given(ops=st.lists(
        st.tuples(st.integers(0, 40), st.integers(1, 6),
                  st.integers(0, 255)),
        min_size=1, max_size=12))
    @SLOW
    def test_readback_matches_model_easyio(self, ops):
        self._run_integrity(ops, easyio=True)

    @staticmethod
    def _run_integrity(ops, easyio):
        node = Platform(PlatformConfig.single_node())
        fs = (EasyIoFS(node) if easyio else NovaFS(node)).mount()
        model = bytearray()
        def body():
            ino = yield from fs.create(fs.context(), "/f")
            for pgoff, pages, fill in ops:
                data = bytes([fill]) * (pages * PAGE_SIZE)
                offset = pgoff * PAGE_SIZE
                result = yield from fs.write(fs.context(), ino, offset,
                                             len(data), data)
                if result.is_async:
                    yield result.pending
                if offset + len(data) > len(model):
                    model.extend(bytes(offset + len(data) - len(model)))
                model[offset:offset + len(data)] = data
            result = yield from fs.read(fs.context(), ino, 0, len(model),
                                        want_data=True)
            if result.is_async:
                yield result.pending
            return result.value
        got = run_proc(node.engine, body())
        assert got == bytes(model)


class TestRecoveryPrefixLegality:
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_random_crash_points_recover_to_legal_states(self, seed):
        import random
        rng = random.Random(seed)
        node = Platform(PlatformConfig.single_node())
        fs = EasyIoFS(node, PMImage(record=True)).mount()
        snapshots = [snapshot_with_content(fs)]
        bounds = [(0, 0)]
        def body():
            inos = []
            for i in range(6):
                start = len(fs.image.mutations)
                kind = rng.choice(["create", "write", "write"])
                if kind == "create" or not inos:
                    ino = yield from fs.create(fs.context(), f"/f{i}")
                    inos.append(ino)
                else:
                    ino = rng.choice(inos)
                    size = rng.choice([4096, 16384, 65536])
                    r = yield from fs.write(fs.context(), ino, 0, size,
                                            bytes([i]) * size)
                    if r.is_async:
                        yield r.pending
                bounds.append((start, len(fs.image.mutations)))
                snapshots.append(snapshot_with_content(fs))
        run_proc(node.engine, body())
        total = fs.image.crash_points()
        for _ in range(12):
            k = rng.randint(0, total)
            img = fs.image.replay(k)
            plat2 = Platform(PlatformConfig.single_node())
            fs2 = recover(EasyIoFS(plat2, img),
                          completion_buffer_validator(img))
            snap = snapshot_with_content(fs2)
            durable = sum(1 for (s, e) in bounds[1:] if e <= k)
            started = sum(1 for (s, e) in bounds[1:] if s <= k)
            legal = [snapshots[i] for i in range(durable, started + 1)]
            assert any(snap == c for c in legal), \
                f"crash at {k}: state matches none of ops [{durable},{started}]"


class TestLatencySeriesProperties:
    @given(values=st.lists(st.integers(0, 10**9), min_size=1, max_size=300))
    @settings(max_examples=200, deadline=None)
    def test_percentiles_are_monotone_and_bounded(self, values):
        s = LatencySeries()
        for v in values:
            s.record(v)
        p50, p90, p99 = s.p50(), s.percentile(90), s.p99()
        assert min(values) <= p50 <= p90 <= p99 <= max(values)
        assert min(values) <= s.mean() <= max(values)


class TestDeterminismProperty:
    @given(seed=st.integers(0, 1000))
    @settings(max_examples=5, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_same_seed_same_trace(self, seed):
        from repro.workloads.apps import run_webserver_gc
        r1 = run_webserver_gc("none", duration_us=1500, seed=seed)
        r2 = run_webserver_gc("none", duration_us=1500, seed=seed)
        assert r1.timeline.points == r2.timeline.points
