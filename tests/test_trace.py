"""Tests for the sim-time tracer (repro.obs.trace): buffer modes,
Chrome export, the engine factory hook, zero overhead when off, and
sim-time neutrality when on.

The negative test at the bottom is the whole point of the layer: a toy
pipeline that acknowledges a write *before* its pages persisted is
caught by the oracle set, where aggregate counters would look fine.
"""

import json
from contextlib import nullcontext

import pytest

from repro.core import EasyIoFS
from repro.fs import PMImage
from repro.hw.platform import Platform, PlatformConfig
from repro.obs import (
    BEGIN,
    END,
    POINT,
    Tracer,
    assert_trace_ok,
    default_tracing,
)
from repro.sim import Engine
from repro.sim import engine as engine_mod
from tests.conftest import run_proc


class _Clock:
    """Duck-typed engine stand-in: the tracer only reads ``now``."""

    def __init__(self):
        self.now = 0


class TestBuffer:
    def test_unbounded_collects_everything(self):
        tr = Tracer(_Clock())
        for i in range(100):
            tr.point("tick", n=i)
        assert len(tr) == 100
        assert tr.emitted == 100
        assert tr.dropped == 0
        assert [ev.args["n"] for ev in tr.events] == list(range(100))

    def test_ring_buffer_bounds_memory(self):
        tr = Tracer(_Clock(), capacity=64)
        for i in range(1000):
            tr.point("tick", n=i)
        assert len(tr) == 64
        assert tr.emitted == 1000
        assert tr.dropped == 936
        # The ring keeps the most recent events, oldest first.
        assert [ev.args["n"] for ev in tr.events] == list(range(936, 1000))

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            Tracer(_Clock(), capacity=0)

    def test_clear_empties_and_resets_counters(self):
        tr = Tracer(_Clock(), capacity=8)
        for _ in range(20):
            tr.point("tick")
        tr.clear()
        assert len(tr) == 0
        assert tr.emitted == 0
        assert tr.dropped == 0

    def test_events_are_clock_stamped(self):
        clk = _Clock()
        tr = Tracer(clk)
        tr.point("a")
        clk.now = 1500
        tr.point("b")
        assert [ev.t for ev in tr.events] == [0, 1500]

    def test_op_ids_are_unique(self):
        tr = Tracer(_Clock())
        ids = [tr.next_op_id() for _ in range(10)]
        assert len(set(ids)) == 10


class TestSpans:
    def test_span_contextmanager_emits_matched_pair(self):
        tr = Tracer(_Clock())
        with tr.span("plan", track="op1", op=1, nbytes=4096):
            tr.point("inner", track="op1", op=1)
        phases = [(ev.ph, ev.name) for ev in tr.events]
        assert phases == [(BEGIN, "plan"), (POINT, "inner"), (END, "plan")]
        assert_trace_ok(tr.events)

    def test_span_closes_on_exception(self):
        tr = Tracer(_Clock())
        with pytest.raises(RuntimeError):
            with tr.span("plan", track="op1", op=1):
                raise RuntimeError("boom")
        assert [ev.ph for ev in tr.events] == [BEGIN, END]

    def test_empty_args_stored_as_none(self):
        tr = Tracer(_Clock())
        tr.point("bare")
        tr.point("loaded", k=1)
        assert tr.events[0].args is None
        assert tr.events[1].args == {"k": 1}


class TestChromeExport:
    def _sample(self):
        clk = _Clock()
        tr = Tracer(clk)
        clk.now = 1500
        tr.begin("write", track="op1", op=1, ino=3)
        clk.now = 2000
        tr.point("dma_submit", track="ch0", sn=1)
        clk.now = 4500
        tr.end("write", track="op1", op=1)
        return tr

    def test_structure_and_units(self):
        doc = self._sample().to_chrome()
        events = doc["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        body = [e for e in events if e["ph"] != "M"]
        # One thread_name metadata record per track.
        assert {m["args"]["name"] for m in meta} == {"op1", "ch0"}
        assert all(m["name"] == "thread_name" for m in meta)
        # ns -> us timestamps; op id merged into args; instants scoped.
        begin = next(e for e in body if e["ph"] == "B")
        end = next(e for e in body if e["ph"] == "E")
        instant = next(e for e in body if e["ph"] == "i")
        assert begin["ts"] == 1.5 and end["ts"] == 4.5
        assert begin["args"]["ino"] == 3
        assert begin["args"]["op"] == 1
        assert instant["s"] == "t"
        # Events on the same track share a tid; tracks differ.
        assert begin["tid"] == end["tid"]
        assert begin["tid"] != instant["tid"]
        assert doc["otherData"] == {"emitted": 3, "dropped": 0}

    def test_dump_json_round_trips(self, tmp_path):
        path = str(tmp_path / "trace.json")
        assert self._sample().dump_json(path) == path
        with open(path) as f:
            doc = json.load(f)
        assert len(doc["traceEvents"]) == 5  # 2 metadata + 3 events


class TestDefaultTracing:
    def test_engine_untraced_by_default(self):
        assert Engine().tracer is None

    def test_scope_traces_created_engines(self):
        tracers = []
        with default_tracing(collect=tracers):
            engine = Engine()
        assert engine.tracer is not None
        assert tracers == [engine.tracer]
        # The factory is uninstalled on exit.
        assert Engine().tracer is None
        assert engine_mod.get_tracer_factory() is None

    def test_capacity_reaches_created_tracers(self):
        with default_tracing(capacity=16):
            engine = Engine()
        assert engine.tracer.capacity == 16

    def test_nested_scopes_restore_previous(self):
        outer, inner = [], []
        with default_tracing(collect=outer):
            with default_tracing(collect=inner):
                Engine()
            engine = Engine()
        assert len(inner) == 1
        assert outer == [engine.tracer]


# ---------------------------------------------------------------------------
# Tracing a real run: sim-time neutrality and bounded memory.
# ---------------------------------------------------------------------------
def _workload(fs):
    ino = yield from fs.create(fs.context(), "/t")
    for i in range(4):
        data = bytes([i]) * 16384
        result = yield from fs.write(fs.context(), ino, i * 16384,
                                     len(data), data)
        if result.is_async:
            yield result.pending
    result = yield from fs.read(fs.context(), ino, 0, 65536,
                                want_data=True)
    if result.is_async:
        yield result.pending
    return result.value


def _run_easyio(traced, capacity=None):
    tracers = []
    scope = default_tracing(capacity=capacity, collect=tracers) \
        if traced else nullcontext()
    with scope:
        platform = Platform(PlatformConfig.single_node())
        fs = EasyIoFS(platform, PMImage()).mount()
    data = run_proc(fs.engine, _workload(fs))
    return fs.engine.now, fs.ops_completed, data, tracers


class TestTracedRun:
    def test_sim_time_neutrality(self):
        """A traced run is byte-identical to an untraced one: same final
        clock, same op count, same data read back."""
        base_now, base_ops, base_data, _ = _run_easyio(traced=False)
        now, ops, data, tracers = _run_easyio(traced=True)
        assert (now, ops, data) == (base_now, base_ops, base_data)
        assert tracers and tracers[0].emitted > 0
        assert_trace_ok(tracers[0].events)

    def test_ring_buffer_bounded_in_real_run(self):
        now, _ops, _data, tracers = _run_easyio(traced=True, capacity=16)
        base_now, *_ = _run_easyio(traced=False)
        tr = tracers[0]
        assert len(tr) <= 16
        assert tr.emitted > 16 and tr.dropped == tr.emitted - len(tr)
        assert now == base_now  # ring eviction is sim-time neutral too


# ---------------------------------------------------------------------------
# The negative test: a broken ordering must be *caught*.
# ---------------------------------------------------------------------------
class TestBrokenPipelineIsCaught:
    def _toy_trace(self, ack_before_persist):
        """A hand-rolled toy write pipeline: submit -> commit -> persist
        -> complete -> ack, with the ack optionally hoisted before the
        persist (the classic lost-durability bug)."""
        clk = _Clock()
        tr = Tracer(clk)
        op = tr.next_op_id()
        clk.now = 10
        tr.point("dma_submit", track="ch0", sn=1, nbytes=8192, write=True)
        clk.now = 20
        tr.point("write_commit", track="fs", op=op, ino=3,
                 pids=[100, 101], sns=[(0, 1)])
        if ack_before_persist:
            clk.now = 30
            tr.point("write_ack", track="fs", op=op, ino=3)
        clk.now = 40
        tr.point("pages_persist", track="persist", pids=[100, 101])
        tr.point("dma_complete", track="ch0", sn=1)
        if not ack_before_persist:
            clk.now = 50
            tr.point("write_ack", track="fs", op=op, ino=3)
        return tr

    def test_correct_ordering_passes(self):
        assert_trace_ok(self._toy_trace(ack_before_persist=False).events)

    def test_ack_before_persist_is_flagged(self):
        tr = self._toy_trace(ack_before_persist=True)
        with pytest.raises(AssertionError, match="ack-implies-durable"):
            assert_trace_ok(tr.events)
