"""The parallel sweep runner is deterministic and order-preserving.

Every sweep point runs in a fresh engine with a fixed seed, so the
multiprocessing fan-out must return byte-identical summaries for any
worker count -- including the serial in-process fallback.  These tests
use short runs (hundreds of microseconds of simulated time) to keep
the fork cost the dominant term.
"""

import pytest

from repro.analysis.sweep import fxmark_point, fxmark_sweep, run_sweep
from repro.workloads.fxmark import FxmarkConfig


def _grid():
    return [FxmarkConfig(kind=kind, op=op, io_size=16384, workers=workers,
                         duration_us=400, warmup_us=100, single_node=True)
            for op in ("write", "read")
            for kind in ("nova", "easyio")
            for workers in (1, 2)]


class TestSweepDeterminism:
    @pytest.fixture(scope="class")
    def serial(self):
        return run_sweep(_grid(), processes=1)

    def test_serial_matches_two_workers(self, serial):
        assert run_sweep(_grid(), processes=2) == serial

    def test_serial_matches_four_workers(self, serial):
        assert run_sweep(_grid(), processes=4) == serial

    def test_order_is_preserved(self, serial):
        # The summaries come back in config order, not completion order:
        # identify points by their distinct op counts.
        direct = [fxmark_point(cfg) for cfg in _grid()]
        assert direct == serial

    def test_repeat_runs_are_identical(self, serial):
        assert run_sweep(_grid(), processes=1) == serial


class TestSweepApi:
    def test_summary_schema(self):
        point = fxmark_point(FxmarkConfig(
            kind="nova", duration_us=300, warmup_us=100, single_node=True))
        assert set(point) == {"throughput_ops", "bandwidth_gbps",
                              "total_ops", "mean_us", "p99_us",
                              "cpu_busy_fraction"}

    def test_fxmark_sweep_keys_and_elision(self):
        kw = dict(op="write", io_size=16384, duration_us=300,
                  warmup_us=100)
        plain = fxmark_sweep(("nova",), (1,), **kw)
        elided = fxmark_sweep(("nova",), (1,), elide=True, **kw)
        assert list(plain) == ["write/nova/1"]
        # Payload elision must not move a single number.
        assert elided == plain

    def test_single_point_runs_serially(self):
        # processes=8 with one config must not spin up a pool.
        out = run_sweep([FxmarkConfig(kind="nova", duration_us=300,
                                      warmup_us=100, single_node=True)],
                        processes=8)
        assert len(out) == 1 and out[0]["total_ops"] > 0
