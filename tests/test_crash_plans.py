"""The mechanism-aware crash planner (repro.crash.plans).

Unit tests on hand-built line streams: candidate classes per
mechanism, deduplication across positions, legality bounds from op
acks, the raw-state accounting, and seeded determinism of sampling.
"""

from repro.crash.linestream import LineStream, in_flight, replay_plan
from repro.crash.plans import CrashPlan, CrashPlanner
from repro.fs.structures import (FileKind, RenameTxn, TornEntry,
                                 TornRecord, WriteEntry)


def _write_entry(pgoff=0, pages=(0, 1), sns=()):
    return WriteEntry(pgoff=pgoff, page_ids=tuple(pages),
                      size_after=4096 * len(pages), mtime=1,
                      sns=tuple(sns))


def _plans(stream, op_bounds=(), **kw):
    planner = CrashPlanner(stream, op_bounds=list(op_bounds), **kw)
    return planner, planner.plans()


class TestCandidates:
    def test_atomic_slot_all_or_nothing(self):
        """An in-flight tail commit yields intact/flushed/solo, never a
        partial."""
        stream = LineStream()
        stream.skipped_fences.add("commit")   # keep the commit in flight
        stream.log_commit(1, 1)
        planner, plans = _plans(stream, per_signature=None)
        classes = {p.cls for p in plans}
        # "solo" and "flushed" coincide for a single store, so dedup
        # keeps the first: exactly two states, neither partial.
        assert classes == {"intact", "flushed"}
        assert all(not p.partials for p in plans)

    def test_record_store_tears_to_prefix(self):
        stream = LineStream()
        stream.skipped_fences.add("append:WriteEntry")
        stream.log_append(1, _write_entry())
        planner, plans = _plans(stream, per_signature=None)
        classes = {p.cls for p in plans}
        assert "torn:log-append" in classes
        torn = next(p for p in plans if p.cls == "torn:log-append")
        (seq, lines), = torn.partials
        rec = stream.records[seq]
        assert rec.mech == "log-append"
        assert 0 < len(lines) < rec.nlines
        img = replay_plan(stream, torn)
        entry = img.logs[1][0]
        assert isinstance(entry, TornEntry)
        assert entry.of == "WriteEntry"

    def test_journal_record_tears_to_torn_record(self):
        stream = LineStream()
        stream.skipped_fences.add("journal")
        stream.journal_begin(RenameTxn(src_dir=0, src_name="a",
                                       dst_dir=0, dst_name="b", ino=1,
                                       kind=FileKind.FILE))
        planner, plans = _plans(stream, per_signature=None)
        torn = next(p for p in plans if p.cls == "torn:journal-entry")
        img = replay_plan(stream, torn)
        assert isinstance(img.journal[0], TornRecord)

    def test_data_store_partial_shapes(self):
        stream = LineStream()
        stream.page_write(0, bytes(range(256)) * 16)  # 4096B, 64 lines
        planner, plans = _plans(stream, per_signature=None)
        classes = {p.cls for p in plans}
        assert {"head:page-data", "prefix:page-data",
                "suffix:page-data", "hole:page-data"} <= classes
        prefix = next(p for p in plans if p.cls == "prefix:page-data")
        img = replay_plan(stream, prefix)
        page = img.pages[0]
        assert page[:2048] == (bytes(range(256)) * 16)[:2048]
        assert page[2048:] == b"\x00" * 2048

    def test_dma_store_durable_only_after_completion_fence(self):
        stream = LineStream()
        stream.announce_dma_pages(0, 1, [0], [b"x" * 4096])
        assert len(in_flight(stream, stream.position())) == 1
        stream.fence("pages")  # global sfence does NOT cover DMA
        assert len(in_flight(stream, stream.position())) == 1
        stream.completion_update(0, 1)
        assert in_flight(stream, stream.position()) == []

    def test_cancelled_dma_store_never_applies(self):
        stream = LineStream()
        stream.announce_dma_pages(0, 1, [0], [b"x" * 4096])
        stream.error_log(0, (1,))
        planner, plans = _plans(stream, per_signature=None)
        for p in plans:
            img = replay_plan(stream, p)
            assert 0 not in img.pages


class TestDedupAndBounds:
    def test_identical_epochs_dedup(self):
        """Two identical fence epochs with identical op progress
        produce one plan set, not two."""
        stream = LineStream()
        stream.log_commit(1, 1)
        single = CrashPlanner(stream, op_bounds=[], per_signature=None)
        n_single = len(single.plans())
        stream.log_commit(1, 1)   # byte-identical second epoch...
        planner, plans = _plans(stream, per_signature=None)
        # ...but a different durable prefix, so states differ; dedup
        # only collapses *equal* durable+applied states:
        assert len(plans) > n_single
        keys = {(p.point, p.cls, p.applied, p.partials) for p in plans}
        assert len(keys) == len(plans)

    def test_lo_hi_from_ack_bounds(self):
        stream = LineStream()
        stream.log_commit(1, 1)
        mid = stream.position()
        stream.log_commit(1, 2)
        end = stream.position()
        planner, plans = _plans(stream, op_bounds=[(0, mid), (mid, end)],
                                per_signature=None)
        final = [p for p in plans if p.point == end]
        assert final
        assert all(p.lo == 2 and p.hi == 2 for p in final)
        first = [p for p in plans if p.point < mid]
        assert all(p.lo == 0 and p.hi == 1 for p in first)

    def test_raw_states_count(self):
        stream = LineStream()
        stream.skipped_fences.add("pages")
        stream.page_write(0, b"x" * 4096)      # 64 lines -> 2^64
        stream.page_write(1, b"y" * 128)       # 2 lines  -> 2^2
        stream.fence("end")                    # one interesting position
        planner, plans = _plans(stream, per_signature=None)
        # end-of-stream visit sees the same in-flight set again (the
        # "end" fence made nothing durable: it was emitted, so stores
        # BEFORE it became durable -- hence only the fence position
        # counts both stores).
        assert planner.raw_states >= (1 << 64) * 4


class TestSampling:
    def _busy_stream(self, n=12):
        stream = LineStream()
        bounds = []
        for i in range(n):
            start = stream.position()
            stream.page_write(i, bytes([i]) * 4096)
            stream.pages_fence()
            stream.log_append(1, _write_entry(pages=(i,)))
            stream.log_commit(1, i + 1)
            bounds.append((start, stream.position()))
        return stream, bounds

    def test_per_signature_caps_groups(self):
        stream, bounds = self._busy_stream()
        exhaustive = CrashPlanner(stream, op_bounds=bounds,
                                  per_signature=None).plans()
        sampled = CrashPlanner(stream, op_bounds=bounds,
                               per_signature=2).plans()
        assert len(sampled) < len(exhaustive)
        # At least one representative per signature survives.
        assert ({p.signature for p in sampled}
                == {p.signature for p in exhaustive})

    def test_seeded_determinism(self):
        stream, bounds = self._busy_stream()
        a = CrashPlanner(stream, op_bounds=bounds, per_signature=2,
                         seed=7).plans()
        b = CrashPlanner(stream, op_bounds=bounds, per_signature=2,
                         seed=7).plans()
        assert a == b
        c = CrashPlanner(stream, op_bounds=bounds, per_signature=2,
                         seed=8).plans()
        assert {p.signature for p in c} == {p.signature for p in a}

    def test_budget_floor_one_per_signature(self):
        stream, bounds = self._busy_stream()
        planner = CrashPlanner(stream, op_bounds=bounds,
                               per_signature=None, budget=5)
        plans = planner.plans()
        sigs = {p.signature for p in plans}
        full_sigs = {p.signature
                     for p in CrashPlanner(stream, op_bounds=bounds,
                                           per_signature=None).plans()}
        assert sigs == full_sigs
        assert len(plans) >= len(sigs)

    def test_plan_classes_filled(self):
        stream, bounds = self._busy_stream()
        planner = CrashPlanner(stream, op_bounds=bounds, per_signature=2)
        plans = planner.plans()
        assert sum(planner.plan_classes.values()) == len(plans)


class TestPlanValue:
    def test_plan_is_hashable_and_ordered(self):
        p = CrashPlan(point=3, cls="intact", applied=frozenset(),
                      partials=(), lo=0, hi=1)
        q = CrashPlan(point=3, cls="intact", applied=frozenset(),
                      partials=(), lo=0, hi=1, signature="different")
        assert p == q  # signature excluded from equality
        assert len({p, q}) == 1
