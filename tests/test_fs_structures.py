"""Tests for the persistent metadata structures and volatile mirrors."""

from repro.fs.structures import (
    PAGE_SIZE,
    DentryEntry,
    FileKind,
    MemInode,
    PageMapping,
    WriteEntry,
)


class TestWriteEntry:
    def test_num_pages(self):
        entry = WriteEntry(0, (5, 6, 7), 3 * PAGE_SIZE, 100)
        assert entry.num_pages == 3

    def test_entries_are_immutable(self):
        entry = WriteEntry(0, (5,), PAGE_SIZE, 100)
        try:
            entry.pgoff = 9
            assert False, "frozen dataclass accepted a mutation"
        except AttributeError:
            pass

    def test_default_sns_empty(self):
        assert WriteEntry(0, (1,), PAGE_SIZE, 1).sns == ()


class TestExtentRuns:
    def make(self, mapping):
        m = MemInode(ino=1, kind=FileKind.FILE)
        for off, pid in mapping.items():
            m.index[off] = PageMapping(pid)
        return m

    def test_contiguous_pages_form_one_run(self):
        m = self.make({0: 10, 1: 11, 2: 12})
        runs = list(m.extent_runs(0, 3))
        assert runs == [(0, [10, 11, 12])]

    def test_discontiguous_pages_split_runs(self):
        m = self.make({0: 10, 1: 50, 2: 51})
        runs = list(m.extent_runs(0, 3))
        assert runs == [(0, [10]), (1, [50, 51])]

    def test_hole_emits_empty_run(self):
        m = self.make({0: 10, 2: 12})
        runs = list(m.extent_runs(0, 3))
        assert (1, []) in runs
        assert (0, [10]) in runs

    def test_subrange(self):
        m = self.make({i: 100 + i for i in range(8)})
        runs = list(m.extent_runs(2, 3))
        assert runs == [(2, [102, 103, 104])]

    def test_all_holes(self):
        m = self.make({})
        runs = list(m.extent_runs(0, 2))
        assert runs == [(0, []), (1, [])]


class TestDentryEntry:
    def test_valid_flag_round_trip(self):
        add = DentryEntry("x", 5, FileKind.FILE, True, 0)
        rm = DentryEntry("x", 5, FileKind.FILE, False, 1)
        assert add.valid and not rm.valid
